package stats

import "math"

// Binomial confidence intervals for the reliability harness. Both
// estimators take k successes out of n trials and a confidence level
// (e.g. 0.95) and return a two-sided interval [Lo, Hi] on the success
// probability. Wilson is the cheap default with good coverage even for
// small n; Clopper-Pearson is the exact (conservative) interval used
// when a verdict must never overstate confidence.

// Interval is a two-sided confidence interval on a probability.
type Interval struct {
	Lo, Hi float64
}

// WilsonInterval returns the Wilson score interval for k successes in n
// trials at the given confidence level. n <= 0 returns the vacuous
// interval [0,1].
func WilsonInterval(k, n int64, confidence float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	z := normalQuantile(0.5 + confidence/2)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	iv := Interval{Lo: clamp01(center - half), Hi: clamp01(center + half)}
	// At the edges the bounds are analytically exact (Lo=0 at k=0, Hi=1
	// at k=n); pin them so float rounding never excludes the point
	// estimate from its own interval.
	if k <= 0 {
		iv.Lo = 0
	}
	if k >= n {
		iv.Hi = 1
	}
	return iv
}

// ClopperPearson returns the exact (Clopper-Pearson) interval for k
// successes in n trials at the given confidence level. It inverts the
// binomial CDF via the regularized incomplete beta function; edge cases
// follow the standard convention Lo=0 when k=0 and Hi=1 when k=n.
func ClopperPearson(k, n int64, confidence float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	alpha := 1 - confidence
	var iv Interval
	if k <= 0 {
		iv.Lo = 0
	} else {
		// Lo solves P(X >= k | p) = alpha/2, i.e. I_p(k, n-k+1) = alpha/2.
		iv.Lo = betaQuantile(alpha/2, float64(k), float64(n-k+1))
	}
	if k >= n {
		iv.Hi = 1
	} else {
		// Hi solves P(X <= k | p) = alpha/2, i.e. I_p(k+1, n-k) = 1-alpha/2.
		iv.Hi = betaQuantile(1-alpha/2, float64(k+1), float64(n-k))
	}
	return iv
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// normalQuantile returns the standard normal quantile via the
// Acklam rational approximation (relative error < 1.15e-9), refined with
// one Halley step against math.Erfc for full float64 accuracy.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// Halley refinement: e = Phi(x) - p.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// betaQuantile inverts the regularized incomplete beta function: returns
// x with I_x(a, b) = p, by bisection (60 iterations gives ~1e-18 interval
// width, ample for verdict tables).
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// by the standard continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)), computed in log space.
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the symmetry relation to keep the continued fraction convergent
	// (strict inequality: at the fixed point x == (a+1)/(a+b+2) the direct
	// expansion converges fine and recursing would loop forever).
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	const tiny = 1e-300
	const eps = 1e-15
	// Lentz's algorithm for the continued fraction.
	f, c, d := 1.0, 1.0, 0.0
	for m := 0; m <= 300; m++ {
		var numer float64
		if m == 0 {
			numer = 1
		} else if m%2 == 0 {
			k := float64(m / 2)
			numer = k * (b - k) * x / ((a + 2*k - 1) * (a + 2*k))
		} else {
			k := float64((m - 1) / 2)
			numer = -(a + k) * (a + b + k) * x / ((a + 2*k) * (a + 2*k + 1))
		}
		d = 1 + numer*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numer/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			return front * (f - 1) / a
		}
	}
	return front * (f - 1) / a
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
