package stats

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Percentile(99) != 0 {
		t.Fatalf("empty histogram reports data: %+v", s)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 106 { // -5 clamps to 0
		t.Fatalf("Sum = %d, want 106", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %d, want 100", s.Max)
	}
	// p100 upper bound is the max itself.
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("Percentile(100) = %d, want 100", got)
	}
	// The median (3rd of 5 sorted values 0,1,2,3,100) is 2; its bucket
	// [2,4) upper-bounds it at 4.
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("Percentile(50) = %d, want 4", got)
	}
}

// TestHistogramSingleObservation: with one sample every quantile is
// that sample — the bucket upper bound must clamp to Max, not report
// the power-of-two ceiling above it.
func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(37)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 37 || s.Max != 37 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Mean() != 37 {
		t.Fatalf("Mean = %v, want 37", s.Mean())
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := s.Percentile(p); got != 37 {
			t.Fatalf("Percentile(%v) = %d, want 37 (single observation)", p, got)
		}
	}
}

// TestHistogramDuplicateHeavy: a distribution dominated by one repeated
// value must not let a few outliers drag low quantiles upward, and the
// outlier must still own the tail.
func TestHistogramDuplicateHeavy(t *testing.T) {
	var h Histogram
	for i := 0; i < 998; i++ {
		h.Observe(8)
	}
	h.Observe(1 << 20)
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1<<20 {
		t.Fatalf("snapshot: count=%d max=%d", s.Count, s.Max)
	}
	// 8 lands in bucket [8,16): every quantile through p99 upper-bounds
	// at 16.
	for _, p := range []float64{1, 50, 90, 99} {
		if got := s.Percentile(p); got != 16 {
			t.Fatalf("Percentile(%v) = %d, want 16", p, got)
		}
	}
	if got := s.Percentile(100); got != 1<<20 {
		t.Fatalf("Percentile(100) = %d, want %d", got, 1<<20)
	}
}

// TestHistogramAllZeros: zero-valued observations (instant cache hits)
// are a legal distribution, not an empty one.
func TestHistogramAllZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
	if got := s.Percentile(99); got != 0 {
		t.Fatalf("Percentile(99) = %d, want 0", got)
	}
	if s.Mean() != 0 {
		t.Fatalf("Mean = %v, want 0", s.Mean())
	}
}

// TestHistogramPercentileMonotone: quantiles must be non-decreasing in
// p for an arbitrary mixed distribution.
func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233} {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := int64(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		got := s.Percentile(p)
		if got < prev {
			t.Fatalf("Percentile(%v) = %d < Percentile(%v) = %d", p, got, p-0.5, prev)
		}
		prev = got
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run
// under -race this pins the locking.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
}
