package stats

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Percentile(99) != 0 {
		t.Fatalf("empty histogram reports data: %+v", s)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 106 { // -5 clamps to 0
		t.Fatalf("Sum = %d, want 106", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %d, want 100", s.Max)
	}
	// p100 upper bound is the max itself.
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("Percentile(100) = %d, want 100", got)
	}
	// The median (3rd of 5 sorted values 0,1,2,3,100) is 2; its bucket
	// [2,4) upper-bounds it at 4.
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("Percentile(50) = %d, want 4", got)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run
// under -race this pins the locking.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
}
