// Package stats collects the measurements the paper's figures report:
// average packet latency with the Fig. 8 breakdown (router, link,
// serialization, contention, FLOV), throughput, latency histograms and
// the Fig. 10 latency-over-time series.
package stats

import (
	"encoding/json"
	"math"

	"flov/internal/noc"
)

// Breakdown is the Fig. 8 latency decomposition, in cycles (averages).
type Breakdown struct {
	Router        float64 // active-router pipeline cycles (hops x stages)
	Link          float64 // link traversal cycles
	Serialization float64 // flits per packet - 1
	FLOV          float64 // cycles spent in FLOV latches
	Contention    float64 // everything else: blocking + source queuing
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Router + b.Link + b.Serialization + b.FLOV + b.Contention
}

// TimeBin is one bin of the latency timeline (Fig. 10).
type TimeBin struct {
	Start  int64   // first cycle of the bin
	Count  int64   // packets ejected in the bin
	AvgLat float64 // average total latency of those packets //flovsnap:skip derived from sumLat/Count when Timeline renders
	sumLat int64
}

// timeBinJSON carries the accumulator too, so a serialized bin (e.g. in
// the sweep result cache) deserializes to an identical value.
type timeBinJSON struct {
	Start  int64   `json:"start"`
	Count  int64   `json:"count"`
	AvgLat float64 `json:"avg_lat"`
	SumLat int64   `json:"sum_lat,omitempty"`
}

// MarshalJSON implements a lossless encoding of the bin.
func (b TimeBin) MarshalJSON() ([]byte, error) {
	return json.Marshal(timeBinJSON{Start: b.Start, Count: b.Count, AvgLat: b.AvgLat, SumLat: b.sumLat})
}

// UnmarshalJSON restores a bin, including the internal accumulator.
func (b *TimeBin) UnmarshalJSON(data []byte) error {
	var w timeBinJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*b = TimeBin{Start: w.Start, Count: w.Count, AvgLat: w.AvgLat, sumLat: w.SumLat}
	return nil
}

// Collector accumulates per-packet statistics. Packets created before
// MeasureStart contribute to the timeline but not to the aggregate
// averages (warmup exclusion).
type Collector struct {
	MeasureStart int64 // first cycle of the measurement window //flovsnap:skip immutable measurement window config
	BinSize      int64 // timeline bin width; 0 disables the timeline //flovsnap:skip immutable measurement window config

	RouterStages   int // cycles per active router hop //flovsnap:skip immutable latency-model parameter
	FLOVHopLatency int // cycles per FLOV latch hop //flovsnap:skip immutable latency-model parameter

	count         int64
	sumTotal      int64
	sumNet        int64
	sumRouterCyc  int64
	sumLinkCyc    int64
	sumSerCyc     int64
	sumFLOVCyc    int64
	sumHops       int64
	escapeCount   int64
	maxLatency    int64
	histo         []int64 // power-of-two latency buckets
	ejectedFlits  int64
	injectedFlits int64

	// Reliability accounting (fault-injection runs; all zero otherwise).
	createdPkts  int64 // packets created in the measurement window
	lostPkts     int64 // windowed packets dropped as classified losses
	droppedFlits int64 // all-time flits discarded by drops (conservation)

	bins []TimeBin
}

// NewCollector returns a collector with the given measurement window
// start, timeline bin size and per-hop cycle costs.
func NewCollector(measureStart, binSize int64, routerStages, flovHopLatency int) *Collector {
	return &Collector{
		MeasureStart:   measureStart,
		BinSize:        binSize,
		RouterStages:   routerStages,
		FLOVHopLatency: flovHopLatency,
	}
}

// NoteInjectedFlits counts flits entering the network (drain detection).
func (c *Collector) NoteInjectedFlits(n int) { c.injectedFlits += int64(n) }

// NoteEjectedFlits counts flits leaving the network.
func (c *Collector) NoteEjectedFlits(n int) { c.ejectedFlits += int64(n) }

// NotePacketCreated counts a packet entering the system (source queue
// included) at the given cycle; warmup packets are excluded like every
// other windowed aggregate. Delivery probability is Count()/Created().
func (c *Collector) NotePacketCreated(createdAt int64) {
	if createdAt >= c.MeasureStart {
		c.createdPkts++
	}
}

// NotePacketLost records a classified loss: a packet the fault subsystem
// dropped because its destination is unreachable (or it was wedged past
// the drop timeout). flits is how many already-injected flits were
// discarded with it — they leave the in-flight count so flit conservation
// holds; packets dropped straight from a source queue pass 0.
func (c *Collector) NotePacketLost(p *noc.Packet, flits int) {
	c.droppedFlits += int64(flits)
	if p.CreatedAt >= c.MeasureStart {
		c.lostPkts++
	}
}

// InFlightFlits returns flits injected but not yet ejected or dropped.
func (c *Collector) InFlightFlits() int64 { return c.injectedFlits - c.ejectedFlits - c.droppedFlits }

// Created returns measured (post-warmup) packets created.
func (c *Collector) Created() int64 { return c.createdPkts }

// Lost returns measured (post-warmup) packets dropped as classified
// losses.
func (c *Collector) Lost() int64 { return c.lostPkts }

// DroppedFlits returns all-time flits discarded by fault drops.
func (c *Collector) DroppedFlits() int64 { return c.droppedFlits }

// EjectedTotal returns all-time ejected flits (the caller snapshots this
// at the warmup boundary to compute windowed throughput).
func (c *Collector) EjectedTotal() int64 { return c.ejectedFlits }

// Record ingests a delivered packet.
func (c *Collector) Record(p *noc.Packet) {
	lat := p.TotalLatency()
	if c.BinSize > 0 {
		idx := p.EjectedAt / c.BinSize
		for int64(len(c.bins)) <= idx {
			c.bins = append(c.bins, TimeBin{Start: int64(len(c.bins)) * c.BinSize})
		}
		b := &c.bins[idx]
		b.Count++
		b.sumLat += lat
	}
	if p.CreatedAt < c.MeasureStart {
		return
	}
	c.count++
	c.sumTotal += lat
	c.sumNet += p.NetworkLatency()
	c.sumRouterCyc += int64(p.ActiveHops * c.RouterStages)
	c.sumLinkCyc += int64(p.LinkHops)
	c.sumSerCyc += int64(p.Size - 1)
	c.sumFLOVCyc += int64(p.FLOVHops * c.FLOVHopLatency)
	c.sumHops += int64(p.ActiveHops + p.FLOVHops)
	if p.Escape {
		c.escapeCount++
	}
	if lat > c.maxLatency {
		c.maxLatency = lat
	}
	b := bucketOf(lat)
	for len(c.histo) <= b {
		c.histo = append(c.histo, 0)
	}
	c.histo[b]++
}

// bucketOf returns the power-of-two histogram bucket for a latency:
// bucket i covers [2^i, 2^(i+1)).
func bucketOf(lat int64) int {
	b := 0
	for lat > 1 {
		lat >>= 1
		b++
	}
	return b
}

// Count returns measured (post-warmup) packets delivered.
func (c *Collector) Count() int64 { return c.count }

// AvgLatency returns average total latency (cycles) of measured packets.
func (c *Collector) AvgLatency() float64 { return c.avg(c.sumTotal) }

// AvgNetworkLatency returns the average latency excluding source queuing.
func (c *Collector) AvgNetworkLatency() float64 { return c.avg(c.sumNet) }

// AvgHops returns the average router traversals (active + FLOV).
func (c *Collector) AvgHops() float64 { return c.avg(c.sumHops) }

// MaxLatency returns the worst measured packet latency.
func (c *Collector) MaxLatency() int64 { return c.maxLatency }

// EscapeFraction returns the fraction of measured packets that used the
// escape subnetwork.
func (c *Collector) EscapeFraction() float64 {
	if c.count == 0 {
		return 0
	}
	return float64(c.escapeCount) / float64(c.count)
}

// LatencyBreakdown returns the Fig. 8 decomposition of AvgLatency.
func (c *Collector) LatencyBreakdown() Breakdown {
	b := Breakdown{
		Router:        c.avg(c.sumRouterCyc),
		Link:          c.avg(c.sumLinkCyc),
		Serialization: c.avg(c.sumSerCyc),
		FLOV:          c.avg(c.sumFLOVCyc),
	}
	b.Contention = math.Max(0, c.AvgLatency()-b.Router-b.Link-b.Serialization-b.FLOV)
	return b
}

// Timeline returns the latency-over-time bins with averages filled in.
func (c *Collector) Timeline() []TimeBin {
	out := make([]TimeBin, len(c.bins))
	for i, b := range c.bins {
		out[i] = b
		if b.Count > 0 {
			out[i].AvgLat = float64(b.sumLat) / float64(b.Count)
		}
	}
	return out
}

// AcceptedFlitRate returns ejected flits per cycle per node over the
// window [MeasureStart, now), given the ejected-flit count snapshotted at
// the start of the window.
func (c *Collector) AcceptedFlitRate(now int64, nodes int, ejectedAtStart int64) float64 {
	dur := now - c.MeasureStart
	if dur <= 0 || nodes == 0 {
		return 0
	}
	return float64(c.ejectedFlits-ejectedAtStart) / float64(dur) / float64(nodes)
}

// Percentile returns an upper bound on the p-th percentile latency
// (p in [0,100]), at power-of-two bucket resolution.
func (c *Collector) Percentile(p float64) int64 {
	if c.count == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(c.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, n := range c.histo {
		cum += n
		if cum >= target {
			hi := int64(1) << (uint(b) + 1)
			if hi > c.maxLatency {
				hi = c.maxLatency
			}
			return hi
		}
	}
	return c.maxLatency
}

// Histogram returns the power-of-two latency buckets: entry i counts
// measured packets with latency in [2^i, 2^(i+1)).
func (c *Collector) Histogram() []int64 { return append([]int64(nil), c.histo...) }

func (c *Collector) avg(sum int64) float64 {
	if c.count == 0 {
		return 0
	}
	return float64(sum) / float64(c.count)
}
