package stats

import (
	"math"
	"testing"
)

func TestWilsonEdgeCases(t *testing.T) {
	cases := []struct {
		k, n int64
	}{
		{0, 10}, {10, 10}, {0, 1}, {1, 1}, {5, 10}, {1, 2}, {99, 100},
	}
	for _, c := range cases {
		iv := WilsonInterval(c.k, c.n, 0.95)
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			t.Fatalf("Wilson(%d/%d) = %+v out of order", c.k, c.n, iv)
		}
		p := float64(c.k) / float64(c.n)
		if p < iv.Lo-1e-12 || p > iv.Hi+1e-12 {
			t.Fatalf("Wilson(%d/%d) = %+v excludes point estimate %v", c.k, c.n, iv, p)
		}
	}
	// 0/N must not degenerate to [0,0]; N/N must not degenerate to [1,1].
	if iv := WilsonInterval(0, 10, 0.95); iv.Hi <= 0 {
		t.Fatalf("Wilson(0/10).Hi = %v, want > 0", iv.Hi)
	}
	if iv := WilsonInterval(10, 10, 0.95); iv.Lo >= 1 {
		t.Fatalf("Wilson(10/10).Lo = %v, want < 1", iv.Lo)
	}
	// N=1 stays sane.
	if iv := WilsonInterval(1, 1, 0.95); iv.Lo <= 0 || iv.Hi != 1 {
		t.Fatalf("Wilson(1/1) = %+v", iv)
	}
	if iv := WilsonInterval(0, 0, 0.95); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("Wilson(0/0) = %+v, want [0,1]", iv)
	}
}

func TestWilsonKnownValue(t *testing.T) {
	// Wilson 95% for 8/10: center (p + z^2/2n)/(1+z^2/n) with z=1.959964;
	// the standard published value is roughly [0.490, 0.943].
	iv := WilsonInterval(8, 10, 0.95)
	if math.Abs(iv.Lo-0.4901625) > 2e-3 || math.Abs(iv.Hi-0.9433178) > 2e-3 {
		t.Fatalf("Wilson(8/10, 95%%) = %+v, want ~[0.490, 0.943]", iv)
	}
}

func TestClopperPearsonEdgeCases(t *testing.T) {
	// k=0: Lo must be exactly 0, Hi = 1-(alpha/2)^(1/n).
	iv := ClopperPearson(0, 10, 0.95)
	if iv.Lo != 0 {
		t.Fatalf("CP(0/10).Lo = %v, want 0", iv.Lo)
	}
	wantHi := 1 - math.Pow(0.025, 1.0/10)
	if math.Abs(iv.Hi-wantHi) > 1e-9 {
		t.Fatalf("CP(0/10).Hi = %v, want %v", iv.Hi, wantHi)
	}
	// k=n: Hi must be exactly 1, Lo = (alpha/2)^(1/n).
	iv = ClopperPearson(10, 10, 0.95)
	if iv.Hi != 1 {
		t.Fatalf("CP(10/10).Hi = %v, want 1", iv.Hi)
	}
	wantLo := math.Pow(0.025, 1.0/10)
	if math.Abs(iv.Lo-wantLo) > 1e-9 {
		t.Fatalf("CP(10/10).Lo = %v, want %v", iv.Lo, wantLo)
	}
	// N=1 single success: [0.025, 1].
	iv = ClopperPearson(1, 1, 0.95)
	if iv.Hi != 1 || math.Abs(iv.Lo-0.025) > 1e-9 {
		t.Fatalf("CP(1/1) = %+v, want [0.025, 1]", iv)
	}
	// N=1 single failure: [0, 0.975].
	iv = ClopperPearson(0, 1, 0.95)
	if iv.Lo != 0 || math.Abs(iv.Hi-0.975) > 1e-9 {
		t.Fatalf("CP(0/1) = %+v, want [0, 0.975]", iv)
	}
	if iv := ClopperPearson(0, 0, 0.95); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("CP(0/0) = %+v, want [0,1]", iv)
	}
}

func TestClopperPearsonKnownValue(t *testing.T) {
	// Published exact 95% interval for 8/10: [0.44390, 0.97479].
	iv := ClopperPearson(8, 10, 0.95)
	if math.Abs(iv.Lo-0.44390) > 1e-4 || math.Abs(iv.Hi-0.97479) > 1e-4 {
		t.Fatalf("CP(8/10, 95%%) = %+v, want ~[0.44390, 0.97479]", iv)
	}
}

func TestClopperPearsonInversion(t *testing.T) {
	// The bounds are defined by tail-probability equations; check the
	// quantile inversion satisfies them directly:
	//   I_Lo(k, n-k+1) = alpha/2 and I_Hi(k+1, n-k) = 1 - alpha/2.
	const alpha = 0.05
	for _, n := range []int64{1, 2, 5, 10, 50, 200} {
		for k := int64(0); k <= n; k += maxI64(1, n/5) {
			iv := ClopperPearson(k, n, 1-alpha)
			if iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
				t.Fatalf("CP(%d/%d) = %+v out of order", k, n, iv)
			}
			p := float64(k) / float64(n)
			if p < iv.Lo-1e-9 || p > iv.Hi+1e-9 {
				t.Fatalf("CP(%d/%d) = %+v excludes point estimate %v", k, n, iv, p)
			}
			if k > 0 {
				got := regIncBeta(float64(k), float64(n-k+1), iv.Lo)
				if math.Abs(got-alpha/2) > 1e-9 {
					t.Fatalf("CP(%d/%d).Lo inversion: I_Lo = %v, want %v", k, n, got, alpha/2)
				}
			}
			if k < n {
				got := regIncBeta(float64(k+1), float64(n-k), iv.Hi)
				if math.Abs(got-(1-alpha/2)) > 1e-9 {
					t.Fatalf("CP(%d/%d).Hi inversion: I_Hi = %v, want %v", k, n, got, 1-alpha/2)
				}
			}
		}
	}
}

func TestRegIncBetaSanity(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.6, 0.9} {
		lhs := regIncBeta(3, 7, x)
		rhs := 1 - regIncBeta(7, 3, 1-x)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Fatalf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(2.5, 4.5, x)
		if v < prev-1e-15 {
			t.Fatalf("I_x(2.5,4.5) not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestNormalQuantile(t *testing.T) {
	// Standard z values.
	cases := map[float64]float64{
		0.975: 1.959963985,
		0.5:   0,
		0.025: -1.959963985,
		0.995: 2.575829304,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 1e-6 {
			t.Fatalf("normalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
