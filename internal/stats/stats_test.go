package stats

import (
	"math"
	"testing"

	"flov/internal/noc"
)

func pkt(created, injected, ejected int64, activeHops, flovHops, linkHops, size int) *noc.Packet {
	return &noc.Packet{
		CreatedAt: created, InjectedAt: injected, EjectedAt: ejected,
		ActiveHops: activeHops, FLOVHops: flovHops, LinkHops: linkHops, Size: size,
	}
}

func TestCollectorAverages(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	c.Record(pkt(0, 2, 30, 4, 0, 3, 4))
	c.Record(pkt(10, 11, 50, 6, 2, 5, 4))
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.AvgLatency(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("avg latency = %v", got)
	}
	if got := c.AvgNetworkLatency(); math.Abs(got-33.5) > 1e-9 {
		t.Fatalf("avg net latency = %v", got)
	}
	if got := c.AvgHops(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("avg hops = %v", got)
	}
	if c.MaxLatency() != 40 {
		t.Fatalf("max latency = %d", c.MaxLatency())
	}
}

func TestWarmupExclusion(t *testing.T) {
	c := NewCollector(100, 0, 3, 1)
	c.Record(pkt(50, 51, 90, 2, 0, 1, 4)) // warmup packet
	c.Record(pkt(150, 151, 190, 2, 0, 1, 4))
	if c.Count() != 1 {
		t.Fatalf("warmup packet counted: %d", c.Count())
	}
}

func TestBreakdownMath(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	// 4 active routers (12 cyc), 2 FLOV hops (2 cyc), 5 links, size 4
	// (3 ser cyc): minimum 22; total 30 => contention 8.
	c.Record(pkt(0, 0, 30, 4, 2, 5, 4))
	b := c.LatencyBreakdown()
	if b.Router != 12 || b.FLOV != 2 || b.Link != 5 || b.Serialization != 3 {
		t.Fatalf("breakdown: %+v", b)
	}
	if math.Abs(b.Contention-8) > 1e-9 {
		t.Fatalf("contention = %v", b.Contention)
	}
	if math.Abs(b.Total()-30) > 1e-9 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestBreakdownClampsNegativeContention(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	c.Record(pkt(0, 0, 5, 4, 0, 5, 4)) // impossible fast packet
	if b := c.LatencyBreakdown(); b.Contention < 0 {
		t.Fatalf("contention must clamp at 0, got %v", b.Contention)
	}
}

func TestEscapeFraction(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	p := pkt(0, 0, 10, 1, 0, 0, 1)
	p.Escape = true
	c.Record(p)
	c.Record(pkt(0, 0, 10, 1, 0, 0, 1))
	if got := c.EscapeFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("escape fraction = %v", got)
	}
}

func TestTimelineBins(t *testing.T) {
	c := NewCollector(0, 100, 3, 1)
	c.Record(pkt(0, 0, 50, 1, 0, 0, 1))      // bin 0, lat 50
	c.Record(pkt(0, 0, 150, 1, 0, 0, 1))     // bin 1, lat 150
	c.Record(pkt(100, 100, 180, 1, 0, 0, 1)) // bin 1, lat 80
	bins := c.Timeline()
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 1 || math.Abs(bins[0].AvgLat-50) > 1e-9 {
		t.Fatalf("bin 0: %+v", bins[0])
	}
	if bins[1].Count != 2 || math.Abs(bins[1].AvgLat-115) > 1e-9 {
		t.Fatalf("bin 1: %+v", bins[1])
	}
	if bins[1].Start != 100 {
		t.Fatalf("bin 1 start = %d", bins[1].Start)
	}
}

func TestTimelineDisabled(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	c.Record(pkt(0, 0, 50, 1, 0, 0, 1))
	if len(c.Timeline()) != 0 {
		t.Fatal("timeline recorded with bin size 0")
	}
}

func TestFlitAccounting(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	c.NoteInjectedFlits(10)
	c.NoteEjectedFlits(4)
	if c.InFlightFlits() != 6 {
		t.Fatalf("in flight = %d", c.InFlightFlits())
	}
	if c.EjectedTotal() != 4 {
		t.Fatalf("ejected total = %d", c.EjectedTotal())
	}
	// Warmup traffic excluded via the snapshot argument.
	if rate := c.AcceptedFlitRate(100, 2, 2); math.Abs(rate-0.01) > 1e-9 {
		t.Fatalf("windowed rate = %v", rate)
	}
	if rate := c.AcceptedFlitRate(100, 2, 0); math.Abs(rate-0.02) > 1e-9 {
		t.Fatalf("accepted rate = %v", rate)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	if c.AvgLatency() != 0 || c.EscapeFraction() != 0 || c.AvgHops() != 0 {
		t.Fatal("empty collector must report zeros")
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	// 99 packets at latency 10, one at 1000.
	for i := 0; i < 99; i++ {
		c.Record(pkt(0, 0, 10, 1, 0, 0, 1))
	}
	c.Record(pkt(0, 0, 1000, 1, 0, 0, 1))
	p50 := c.Percentile(50)
	if p50 < 10 || p50 > 16 {
		t.Fatalf("p50 = %d, want a tight power-of-two bound on 10", p50)
	}
	if c.Percentile(100) != 1000 {
		t.Fatalf("p100 = %d", c.Percentile(100))
	}
	if got := c.Percentile(99); got > 16 {
		t.Fatalf("p99 = %d, should still be in the bulk bucket", got)
	}
	h := c.Histogram()
	var total int64
	for _, n := range h {
		total += n
	}
	if total != 100 {
		t.Fatalf("histogram holds %d packets", total)
	}
}

func TestPercentileEmpty(t *testing.T) {
	c := NewCollector(0, 0, 3, 1)
	if c.Percentile(99) != 0 {
		t.Fatal("empty collector percentile must be 0")
	}
}
