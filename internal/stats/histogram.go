package stats

import (
	"math"
	"sync"
)

// Histogram is a concurrency-safe power-of-two histogram for coarse
// value distributions (service latencies, per-point wall times). It
// shares the bucketing scheme of Collector's latency histogram: bucket
// i counts observations in [2^i, 2^(i+1)). The zero value is ready to
// use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets []int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := bucketOf(v)
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Max:     h.max,
		Buckets: append([]int64(nil), h.buckets...),
	}
}

// HistogramSnapshot is an immutable view of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []int64 // entry i counts observations in [2^i, 2^(i+1))
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile returns an upper bound on the p-th percentile observation
// (p in [0,100]), at power-of-two bucket resolution.
func (s HistogramSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, n := range s.Buckets {
		cum += n
		if cum >= target {
			hi := int64(1) << (uint(b) + 1)
			if hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}
