package stats

// CollectorState is the serializable accumulator state of a Collector.
// The window parameters (MeasureStart, BinSize, per-hop costs) are
// derived from the config and rebuilt by the caller.
type CollectorState struct {
	Count         int64
	SumTotal      int64
	SumNet        int64
	SumRouterCyc  int64
	SumLinkCyc    int64
	SumSerCyc     int64
	SumFLOVCyc    int64
	SumHops       int64
	EscapeCount   int64
	MaxLatency    int64
	Histo         []int64
	EjectedFlits  int64
	InjectedFlits int64
	CreatedPkts   int64 `json:",omitempty"`
	LostPkts      int64 `json:",omitempty"`
	DroppedFlits  int64 `json:",omitempty"`
	Bins          []TimeBinState
}

// TimeBinState is the serializable form of one timeline bin (AvgLat is
// derived by Timeline()).
type TimeBinState struct {
	Start  int64
	Count  int64
	SumLat int64
}

// CaptureState copies the collector's accumulators.
func (c *Collector) CaptureState() CollectorState {
	s := CollectorState{
		Count: c.count, SumTotal: c.sumTotal, SumNet: c.sumNet,
		SumRouterCyc: c.sumRouterCyc, SumLinkCyc: c.sumLinkCyc,
		SumSerCyc: c.sumSerCyc, SumFLOVCyc: c.sumFLOVCyc,
		SumHops: c.sumHops, EscapeCount: c.escapeCount,
		MaxLatency:   c.maxLatency,
		Histo:        append([]int64(nil), c.histo...),
		EjectedFlits: c.ejectedFlits, InjectedFlits: c.injectedFlits,
		CreatedPkts: c.createdPkts, LostPkts: c.lostPkts, DroppedFlits: c.droppedFlits,
	}
	for _, b := range c.bins {
		s.Bins = append(s.Bins, TimeBinState{Start: b.Start, Count: b.Count, SumLat: b.sumLat})
	}
	return s
}

// RestoreState overwrites the collector's accumulators.
func (c *Collector) RestoreState(s CollectorState) {
	c.count = s.Count
	c.sumTotal = s.SumTotal
	c.sumNet = s.SumNet
	c.sumRouterCyc = s.SumRouterCyc
	c.sumLinkCyc = s.SumLinkCyc
	c.sumSerCyc = s.SumSerCyc
	c.sumFLOVCyc = s.SumFLOVCyc
	c.sumHops = s.SumHops
	c.escapeCount = s.EscapeCount
	c.maxLatency = s.MaxLatency
	c.histo = append(c.histo[:0], s.Histo...)
	c.ejectedFlits = s.EjectedFlits
	c.injectedFlits = s.InjectedFlits
	c.createdPkts = s.CreatedPkts
	c.lostPkts = s.LostPkts
	c.droppedFlits = s.DroppedFlits
	c.bins = c.bins[:0]
	for _, b := range s.Bins {
		c.bins = append(c.bins, TimeBin{Start: b.Start, Count: b.Count, sumLat: b.SumLat})
	}
}
