package traffic

import (
	"testing"
	"testing/quick"

	"flov/internal/sim"
	"flov/internal/topology"
)

func mesh8(t testing.TB) topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestParsePattern(t *testing.T) {
	cases := map[string]Pattern{
		"uniform": Uniform, "UR": Uniform, "tornado": Tornado,
		"transpose": Transpose, "bitcomp": BitComplement,
		"neighbor": Neighbor, "hotspot": Hotspot,
	}
	for s, want := range cases {
		got, err := ParsePattern(s)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePattern("wat"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestPatternsEnumerates checks Patterns covers the enum exactly: every
// entry round-trips through String/ParsePattern, entries are unique,
// and the list stays in declaration order starting at the zero value.
func TestPatternsEnumerates(t *testing.T) {
	ps := Patterns()
	if len(ps) == 0 || ps[0] != Uniform {
		t.Fatalf("Patterns() = %v, want a list starting at Uniform", ps)
	}
	for i, p := range ps {
		if int(p) != i {
			t.Errorf("Patterns()[%d] = %v, want declaration order", i, p)
		}
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	// A new constant appended to the enum must be added to Patterns():
	// the value one past the end must not have a real String name.
	next := Pattern(len(ps))
	if _, err := ParsePattern(next.String()); err == nil {
		t.Errorf("Pattern(%d) parses (%q) but is missing from Patterns()", len(ps), next.String())
	}
}

func TestUniformCoversActiveSet(t *testing.T) {
	m := mesh8(t)
	g := NewGenerator(Uniform, m, nil)
	g.SetActive(allActive(m.N()))
	rng := sim.NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 20000; i++ {
		d := g.Dest(0, rng)
		if d == 0 || d < 0 {
			t.Fatal("uniform returned self or none")
		}
		seen[d] = true
	}
	if len(seen) != m.N()-1 {
		t.Fatalf("uniform covered %d/%d destinations", len(seen), m.N()-1)
	}
}

func TestUniformRespectsGatedCores(t *testing.T) {
	m := mesh8(t)
	g := NewGenerator(Uniform, m, nil)
	act := allActive(m.N())
	for i := 10; i < 40; i++ {
		act[i] = false
	}
	g.SetActive(act)
	rng := sim.NewRNG(4)
	for i := 0; i < 5000; i++ {
		d := g.Dest(0, rng)
		if d >= 10 && d < 40 {
			t.Fatalf("uniform targeted gated core %d", d)
		}
	}
}

func TestTornadoFormula(t *testing.T) {
	m := mesh8(t)
	g := NewGenerator(Tornado, m, nil)
	g.SetActive(allActive(m.N()))
	rng := sim.NewRNG(5)
	// From (2,3): (2 + 4 - 1) mod 8 = 5, same row.
	if d := g.Dest(m.ID(2, 3), rng); d != m.ID(5, 3) {
		t.Fatalf("tornado dest = %d", d)
	}
}

func TestTornadoSkipsGatedPartner(t *testing.T) {
	m := mesh8(t)
	g := NewGenerator(Tornado, m, nil)
	act := allActive(m.N())
	act[m.ID(5, 3)] = false
	g.SetActive(act)
	if d := g.Dest(m.ID(2, 3), sim.NewRNG(1)); d != -1 {
		t.Fatalf("tornado should skip gated partner, got %d", d)
	}
}

func TestTransposeAndBitComplement(t *testing.T) {
	m := mesh8(t)
	rng := sim.NewRNG(6)
	tr := NewGenerator(Transpose, m, nil)
	tr.SetActive(allActive(m.N()))
	if d := tr.Dest(m.ID(2, 5), rng); d != m.ID(5, 2) {
		t.Fatalf("transpose dest = %d", d)
	}
	bc := NewGenerator(BitComplement, m, nil)
	bc.SetActive(allActive(m.N()))
	if d := bc.Dest(m.ID(2, 5), rng); d != m.ID(5, 2) {
		t.Fatalf("bitcomp dest = %d", d)
	}
	if d := bc.Dest(m.ID(0, 0), rng); d != m.ID(7, 7) {
		t.Fatalf("bitcomp corner dest = %d", d)
	}
}

func TestNeighborPattern(t *testing.T) {
	m := mesh8(t)
	g := NewGenerator(Neighbor, m, nil)
	g.SetActive(allActive(m.N()))
	if d := g.Dest(m.ID(7, 0), sim.NewRNG(1)); d != m.ID(0, 0) {
		t.Fatalf("neighbor wraps: got %d", d)
	}
}

func TestHotspotTargetsOnlyHotspots(t *testing.T) {
	m := mesh8(t)
	hs := []int{m.ID(0, 0), m.ID(7, 7)}
	g := NewGenerator(Hotspot, m, hs)
	g.SetActive(allActive(m.N()))
	rng := sim.NewRNG(8)
	for i := 0; i < 1000; i++ {
		d := g.Dest(5, rng)
		if d != hs[0] && d != hs[1] {
			t.Fatalf("hotspot dest = %d", d)
		}
	}
}

// Property: any generated destination is active and differs from src.
func TestDestAlwaysValid(t *testing.T) {
	m := mesh8(t)
	rng := sim.NewRNG(9)
	patterns := []Pattern{Uniform, Tornado, Transpose, BitComplement, Neighbor}
	err := quick.Check(func(srcRaw uint8, gateBits uint64) bool {
		src := int(srcRaw) % m.N()
		act := make([]bool, m.N())
		for i := range act {
			act[i] = gateBits&(1<<(uint(i)%64)) == 0
		}
		act[src] = true
		for _, p := range patterns {
			g := NewGenerator(p, m, nil)
			g.SetActive(act)
			d := g.Dest(src, rng)
			if d == -1 {
				continue
			}
			if d == src || !act[d] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectorRate(t *testing.T) {
	inj := NewInjector(0.08, 4, sim.NewRNG(10)) // 0.02 packets/cycle
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if inj.ShouldInject() {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.018 || rate > 0.022 {
		t.Fatalf("injector rate %.4f, want ~0.02", rate)
	}
}
