// Package traffic implements the synthetic workload generators used in
// the paper's evaluation (uniform random and tornado) plus the other
// standard NoC patterns (transpose, bit-complement, neighbor, hotspot)
// for wider testing. Traffic is only generated between powered-on cores:
// gated cores neither inject nor receive, matching the paper's setup where
// the OS consolidates work onto active cores.
package traffic

import (
	"fmt"
	"strings"

	"flov/internal/sim"
	"flov/internal/topology"
)

// Pattern selects a destination distribution.
type Pattern int

// Supported synthetic patterns.
const (
	Uniform Pattern = iota
	Tornado
	Transpose
	BitComplement
	Neighbor
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Tornado:
		return "tornado"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomp"
	case Neighbor:
		return "neighbor"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists every supported pattern in canonical order (the order
// Pattern constants are declared). CLIs use it for help text and the
// design-space explorer for its pattern axis; extending the enum
// without extending this list fails the traffic tests.
func Patterns() []Pattern {
	return []Pattern{Uniform, Tornado, Transpose, BitComplement, Neighbor, Hotspot}
}

// ParsePattern converts a case-insensitive name into a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch strings.ToLower(s) {
	case "uniform", "ur", "uniform_random":
		return Uniform, nil
	case "tornado":
		return Tornado, nil
	case "transpose":
		return Transpose, nil
	case "bitcomp", "bitcomplement", "bit-complement":
		return BitComplement, nil
	case "neighbor", "neighbour":
		return Neighbor, nil
	case "hotspot":
		return Hotspot, nil
	}
	return Uniform, fmt.Errorf("traffic: unknown pattern %q", s)
}

// Generator draws destinations for one pattern over a mesh, restricted to
// the currently active cores.
type Generator struct {
	Pattern  Pattern       //flovsnap:skip immutable generator config
	Mesh     topology.Mesh //flovsnap:skip immutable generator config
	Hotspots []int         // hotspot destinations (Hotspot pattern only) //flovsnap:skip immutable generator config

	activeList []int // cached list of active node ids
	active     []bool
}

// NewGenerator builds a generator. For Hotspot, hotspots must be non-empty.
func NewGenerator(p Pattern, m topology.Mesh, hotspots []int) *Generator {
	return &Generator{Pattern: p, Mesh: m, Hotspots: hotspots}
}

// SetActive installs the current active-core mask (copied).
func (g *Generator) SetActive(active []bool) {
	g.active = append(g.active[:0], active...)
	g.activeList = g.activeList[:0]
	for i, on := range active {
		if on {
			g.activeList = append(g.activeList, i)
		}
	}
}

// isActive reports whether node id may receive traffic.
func (g *Generator) isActive(id int) bool {
	return id >= 0 && id < len(g.active) && g.active[id]
}

// Dest returns a destination for a packet injected at src, or -1 when the
// pattern's partner for src is unavailable (gated) and no packet should
// be generated this cycle.
func (g *Generator) Dest(src int, rng *sim.RNG) int {
	m := g.Mesh
	switch g.Pattern {
	case Uniform:
		if len(g.activeList) < 2 {
			return -1
		}
		for i := 0; i < 64; i++ {
			d := g.activeList[rng.Intn(len(g.activeList))]
			if d != src {
				return d
			}
		}
		return -1
	case Tornado:
		// Half-mesh shift along the X dimension within the row.
		x, y := m.XY(src)
		dx := (x + m.Width/2 - 1) % m.Width
		d := m.ID(dx, y)
		if d == src || !g.isActive(d) {
			return -1
		}
		return d
	case Transpose:
		x, y := m.XY(src)
		d := m.ID(y%m.Width, x%m.Height)
		if d == src || !g.isActive(d) {
			return -1
		}
		return d
	case BitComplement:
		x, y := m.XY(src)
		d := m.ID(m.Width-1-x, m.Height-1-y)
		if d == src || !g.isActive(d) {
			return -1
		}
		return d
	case Neighbor:
		x, y := m.XY(src)
		d := m.ID((x+1)%m.Width, y)
		if d == src || !g.isActive(d) {
			return -1
		}
		return d
	case Hotspot:
		if len(g.Hotspots) == 0 {
			return -1
		}
		for i := 0; i < 64; i++ {
			d := g.Hotspots[rng.Intn(len(g.Hotspots))]
			if d != src && g.isActive(d) {
				return d
			}
		}
		return -1
	}
	return -1
}

// Injector decides, per cycle and per node, whether to inject a packet:
// a Bernoulli process calibrated so the offered load equals rate flits
// per cycle per active node.
type Injector struct {
	RateFlits  float64 // offered load in flits/cycle/node //flovsnap:skip immutable injector config; rng is captured via RNGState
	PacketSize int     //flovsnap:skip immutable injector config; rng is captured via RNGState
	rng        *sim.RNG
}

// NewInjector builds an injector with its own RNG stream.
func NewInjector(rate float64, packetSize int, rng *sim.RNG) *Injector {
	return &Injector{RateFlits: rate, PacketSize: packetSize, rng: rng}
}

// ShouldInject reports whether a new packet is generated this cycle.
func (inj *Injector) ShouldInject() bool {
	return inj.rng.Bernoulli(inj.RateFlits / float64(inj.PacketSize))
}

// RNGState returns the injector's stream position (checkpointing).
func (inj *Injector) RNGState() uint64 { return inj.rng.State() }

// SetRNGState restores the injector's stream position.
func (inj *Injector) SetRNGState(s uint64) { inj.rng.SetState(s) }
