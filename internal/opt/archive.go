package opt

import (
	"sort"

	"flov/internal/network"
	"flov/internal/sweep"
)

// Point is one archived candidate: its genome, the job it decodes to,
// the full simulation results and the minimized objective scores.
type Point struct {
	// Gen is the generation the point was first evaluated in.
	Gen int `json:"gen"`
	// Genome indexes the space's value lists, one gene per dimension.
	Genome []int `json:"genome"`
	// Hash is the candidate's sweep job hash (its cache identity).
	Hash string `json:"hash"`
	// Scores are the minimized objective values, in spec order.
	Scores []float64 `json:"scores"`
	// Job is the decoded simulation point.
	Job sweep.Job `json:"job"`
	// Res is the finished simulation's full result set.
	Res network.Results `json:"res"`
}

// Dominates reports whether score vector a Pareto-dominates b: no worse
// on every objective and strictly better on at least one. Both vectors
// minimize and must have equal length.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// Archive is the running non-dominated set. The zero value is ready to
// use. Insertion order does not affect the final front: a point enters
// only if nothing present dominates it, and evicts everything it
// dominates.
type Archive struct {
	pts []Point
}

// Add offers a point to the archive. It returns false (and leaves the
// archive unchanged) when an existing point dominates the candidate or
// shares its genome; otherwise the candidate enters and every point it
// dominates is pruned.
func (ar *Archive) Add(p Point) bool {
	for _, q := range ar.pts {
		if sameGenome(q.Genome, p.Genome) || Dominates(q.Scores, p.Scores) {
			return false
		}
	}
	kept := ar.pts[:0]
	for _, q := range ar.pts {
		if !Dominates(p.Scores, q.Scores) {
			kept = append(kept, q)
		}
	}
	ar.pts = append(kept, p)
	return true
}

// Len is the current front size.
func (ar *Archive) Len() int { return len(ar.pts) }

// Front returns the archived points sorted canonically: by score vector
// lexicographically, genome as the tie-break. The order is a pure
// function of the set, so fronts compare byte-for-byte across runs.
func (ar *Archive) Front() []Point {
	front := make([]Point, len(ar.pts))
	copy(front, ar.pts)
	sort.Slice(front, func(i, j int) bool {
		return pointLess(front[i], front[j])
	})
	return front
}

// pointLess orders points by scores then genome, without ever testing
// floats for equality: each key falls through only when neither side is
// strictly smaller.
func pointLess(a, b Point) bool {
	for k := range a.Scores {
		if a.Scores[k] < b.Scores[k] {
			return true
		}
		if b.Scores[k] < a.Scores[k] {
			return false
		}
	}
	for k := range a.Genome {
		if a.Genome[k] != b.Genome[k] {
			return a.Genome[k] < b.Genome[k]
		}
	}
	return false
}

func sameGenome(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
