package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"flov/internal/network"
	"flov/internal/render"
	"flov/internal/sim"
	"flov/internal/sweep"
)

// Stream labels separating the strategy's ask and tell RNG draws; a
// fresh stream is derived per (spec seed, label, generation) so the two
// phases can never alias each other's randomness.
const (
	askLabel  = 0x666c6f762d61736b // "flov-ask"
	tellLabel = 0x666c6f762d746c6c // "flov-tll"
)

// Options configures a Run's execution environment (everything that is
// not part of the search identity: worker count, caching, persistence,
// progress). None of it may change the front a spec produces.
type Options struct {
	// Workers is the sweep.Engine pool size (<= 0 means GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes candidate results on disk; re-runs
	// of an archived spec then simulate nothing.
	Cache *sweep.Cache
	// WarmStart enables snapshot forking for candidates sharing a
	// warmup prefix (needs Cache).
	WarmStart bool
	// RunDir, when set, persists every evaluated candidate to
	// <dir>/evals.ndjson as it completes; with Resume, rows already
	// durable there are replayed instead of re-simulated, exactly like
	// flovsweep -run-dir/-resume.
	RunDir string
	// Resume replays durable rows from RunDir.
	Resume bool
	// Progress, when non-nil, receives one Event per finished
	// generation.
	Progress func(Event)
}

// Event summarizes one finished generation.
type Event struct {
	// Gen is the zero-based generation index; Generations the total.
	Gen         int `json:"gen"`
	Generations int `json:"generations"`
	// Asked is the number of candidates the strategy proposed.
	Asked int `json:"asked"`
	// Simulated counts candidates that went through the engine
	// (including disk-cache hits); Reused counts candidates answered
	// from the in-memory memo or replayed run-dir rows.
	Simulated int `json:"simulated"`
	Reused    int `json:"reused"`
	// CacheHits counts engine evaluations served from the disk cache.
	CacheHits int `json:"cache_hits"`
	// Infeasible counts failed evaluations (penalty-scored).
	Infeasible int `json:"infeasible"`
	// Front is the archive size after absorbing the generation.
	Front int `json:"front"`
}

// Outcome is a finished run: the Pareto front plus evaluation
// accounting.
type Outcome struct {
	Objectives []Objective `json:"objectives"`
	Strategy   string      `json:"strategy"`
	Seed       uint64      `json:"seed"`
	// SpaceSize is the full grid cardinality the search sampled from.
	SpaceSize int `json:"space_size"`
	// Generations actually completed (less than the spec's count only
	// on cancellation).
	Generations int `json:"generations"`
	Asked       int `json:"asked"`
	Simulated   int `json:"simulated"`
	Reused      int `json:"reused"`
	CacheHits   int `json:"cache_hits"`
	Infeasible  int `json:"infeasible"`
	// Front is the final non-dominated set in canonical order.
	Front []Point `json:"front"`
}

// eval is one candidate's evaluation outcome.
type eval struct {
	scores   []float64
	feasible bool
	hash     string
	res      network.Results
	err      string
}

// run holds the per-run search state. Its propose and absorb methods
// are the deterministic halves of a generation — everything except the
// engine call — and are registered as flovlint reach roots: nothing
// reachable from them may touch wall-clock time, math/rand or
// order-sensitive map iteration.
type run struct {
	spec    Spec
	sp      space
	objs    []Objective
	strat   Strategy
	archive Archive
	// memo reuses scores for genomes re-proposed in later generations
	// without re-hashing or re-running them.
	memo map[string]eval
}

// propose derives the generation's ask stream and collects the
// strategy's candidates, clamped into the space (a strategy bug must
// not panic the decoder).
func (r *run) propose(gen int) [][]int {
	rng := sim.NewRNG(sim.DeriveSeed(r.spec.Seed, r.spec.Seed, askLabel, gen))
	genomes := r.strat.Ask(rng, gen, r.spec.Population)
	sizes := r.sp.sizes()
	for _, g := range genomes {
		for i := range g {
			if i >= len(sizes) {
				break
			}
			if g[i] < 0 {
				g[i] = 0
			}
			if g[i] >= sizes[i] {
				g[i] = sizes[i] - 1
			}
		}
	}
	return genomes
}

// absorb archives the generation's feasible points and feeds the scores
// back to the strategy under the tell stream.
func (r *run) absorb(gen int, genomes [][]int, evals []eval) {
	scores := make([][]float64, len(genomes))
	for i, e := range evals {
		scores[i] = e.scores
		if e.feasible {
			r.archive.Add(Point{
				Gen:    gen,
				Genome: genomes[i],
				Hash:   e.hash,
				Scores: e.scores,
				Job:    r.sp.job(r.spec, genomes[i]),
				Res:    e.res,
			})
		}
	}
	rng := sim.NewRNG(sim.DeriveSeed(r.spec.Seed, r.spec.Seed, tellLabel, gen))
	r.strat.Tell(rng, gen, genomes, scores)
}

// score converts an engine result into an eval.
func (r *run) score(j sweep.Job, res sweep.Result) eval {
	e := eval{hash: j.Hash()}
	if res.Err != "" {
		e.err = res.Err
		e.scores = penaltyScores(len(r.objs))
		return e
	}
	e.feasible = true
	e.res = res.Res
	e.scores = make([]float64, len(r.objs))
	for i, o := range r.objs {
		e.scores[i] = o.value(j, res.Res)
	}
	return e
}

func penaltyScores(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = infeasible
	}
	return s
}

// genomeKey renders a genome as a stable map key.
func genomeKey(g []int) string {
	var b strings.Builder
	for i, v := range g {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Run executes the optimizer: Generations rounds of propose → evaluate
// (through sweep.Engine) → absorb. The returned Outcome is a pure
// function of the spec; Options only change where results come from
// (cache, run-dir replay) and how fast. On context cancellation the
// partial outcome so far is returned together with the context error.
func Run(ctx context.Context, spec Spec, opts Options) (Outcome, error) {
	spec = spec.withDefaults()
	sp, err := spec.Space.resolve()
	if err != nil {
		return Outcome{}, err
	}
	objs, err := parseObjectives(spec.Objectives)
	if err != nil {
		return Outcome{}, err
	}
	strat, err := NewStrategy(spec.Strategy, sp.sizes())
	if err != nil {
		return Outcome{}, err
	}

	durable := map[string]network.Results{}
	var rec *evalRecorder
	if opts.RunDir != "" {
		if err := os.MkdirAll(opts.RunDir, 0o755); err != nil {
			return Outcome{}, err
		}
		path := filepath.Join(opts.RunDir, "evals.ndjson")
		if opts.Resume {
			durable = loadEvalRows(path)
		}
		if rec, err = newEvalRecorder(path, opts.Resume); err != nil {
			return Outcome{}, err
		}
		defer func() {
			// The recorder is append-per-row; Close only releases the fd,
			// so a close error cannot lose rows already durable.
			_ = rec.Close()
		}()
	}

	engine := &sweep.Engine{Workers: opts.Workers, Cache: opts.Cache, WarmStart: opts.WarmStart}
	r := &run{spec: spec, sp: sp, objs: objs, strat: strat, memo: map[string]eval{}}
	out := Outcome{
		Objectives: objs,
		Strategy:   strat.Name(),
		Seed:       spec.Seed,
		SpaceSize:  sp.points(),
	}

	for gen := 0; gen < spec.Generations; gen++ {
		if ctx.Err() != nil {
			out.Front = r.archive.Front()
			return out, ctx.Err()
		}
		genomes := r.propose(gen)
		ev := Event{Gen: gen, Generations: spec.Generations, Asked: len(genomes)}

		evals := make([]eval, len(genomes))
		// firstAt maps a genome key proposed earlier in this generation
		// to its index, so duplicates evaluate once.
		firstAt := map[string]int{}
		var pending []sweep.Job
		var pendingIdx []int
		var dupIdx [][2]int // [duplicate index, original index]
		for i, g := range genomes {
			key := genomeKey(g)
			if e, ok := r.memo[key]; ok {
				evals[i] = e
				ev.Reused++
				continue
			}
			if j, ok := firstAt[key]; ok {
				dupIdx = append(dupIdx, [2]int{i, j})
				continue
			}
			firstAt[key] = i
			job := sp.job(spec, g)
			if res, ok := durable[job.Hash()]; ok {
				e := r.score(job, sweep.Result{Job: job, Res: res})
				evals[i] = e
				r.memo[key] = e
				ev.Reused++
				continue
			}
			pending = append(pending, job)
			pendingIdx = append(pendingIdx, i)
		}

		results := engine.Run(ctx, pending)
		if ctx.Err() != nil {
			out.Front = r.archive.Front()
			return out, ctx.Err()
		}
		for k, idx := range pendingIdx {
			res := results[k]
			e := r.score(res.Job, res)
			evals[idx] = e
			r.memo[genomeKey(genomes[idx])] = e
			ev.Simulated++
			if res.CacheHit {
				ev.CacheHits++
			}
			if !e.feasible {
				ev.Infeasible++
			}
			if rec != nil && e.feasible {
				rec.record(gen, genomes[idx], e.hash, e.res)
			}
		}
		for _, d := range dupIdx {
			evals[d[0]] = evals[d[1]]
			ev.Reused++
		}

		r.absorb(gen, genomes, evals)
		out.Generations = gen + 1
		out.Asked += ev.Asked
		out.Simulated += ev.Simulated
		out.Reused += ev.Reused
		out.CacheHits += ev.CacheHits
		out.Infeasible += ev.Infeasible
		ev.Front = r.archive.Len()
		if opts.Progress != nil {
			opts.Progress(ev)
		}
	}
	out.Front = r.archive.Front()
	return out, nil
}

// evalRow is the durable NDJSON form of one finished evaluation. The
// full Results are persisted (not just the scores) so a resumed run can
// re-score rows under a changed objective list.
type evalRow struct {
	Gen    int             `json:"gen"`
	Genome []int           `json:"genome"`
	Hash   string          `json:"hash"`
	Res    network.Results `json:"res"`
}

// evalRecorder appends finished evaluations to evals.ndjson. Failed
// candidates are not persisted: a resume should retry them.
type evalRecorder struct {
	f   *os.File
	enc *json.Encoder
}

func newEvalRecorder(path string, appendMode bool) (*evalRecorder, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if appendMode {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &evalRecorder{f: f, enc: json.NewEncoder(f)}, nil
}

// record persists one row; like sweep cache fills it is best-effort — a
// full disk must not kill the search producing the rows.
func (r *evalRecorder) record(gen int, genome []int, hash string, res network.Results) {
	_ = r.enc.Encode(evalRow{Gen: gen, Genome: genome, Hash: hash, Res: res})
}

func (r *evalRecorder) Close() error { return r.f.Close() }

// loadEvalRows reads durable rows keyed by job hash. Unparseable lines
// (a torn tail from a crash mid-write) are skipped; their candidates
// re-simulate.
func loadEvalRows(path string) map[string]network.Results {
	data, err := os.ReadFile(path)
	if err != nil {
		return map[string]network.Results{}
	}
	rows := map[string]network.Results{}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var row evalRow
		if err := json.Unmarshal([]byte(line), &row); err != nil || row.Hash == "" {
			continue
		}
		rows[row.Hash] = row.Res
	}
	return rows
}

// FrontCSV renders the front as CSV: one row per point, the decoded
// design parameters first, then the objective scores. Floats print
// shortest-form, so equal fronts render byte-identically.
func (o Outcome) FrontCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("gen,width,height,vcs,buffers,mechanism,wakeup,gated_frac,rate,pattern")
	for _, obj := range o.Objectives {
		b.WriteByte(',')
		b.WriteString(obj.String())
	}
	b.WriteByte('\n')
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range o.Front {
		j := p.Job
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%s,%d,%s,%s,%s",
			p.Gen, j.Config.Width, j.Config.Height, j.Config.VCsPerVNet,
			j.Config.BufferDepth, j.Mechanism, j.Config.WakeupLatency,
			f(j.Frac), f(j.Rate), j.Pattern)
		for _, s := range p.Scores {
			b.WriteByte(',')
			b.WriteString(f(s))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FrontJSON renders the full outcome (front with jobs and results
// included) as indented JSON.
func (o Outcome) FrontJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(o)
}

// FrontPlot renders the front as an ASCII scatter of the first two
// objectives (x: objective 0, y: objective 1; both minimize, so the
// front hugs the lower-left corner).
func (o Outcome) FrontPlot(w, h int) string {
	pts := make([]render.XY, 0, len(o.Front))
	for _, p := range o.Front {
		pts = append(pts, render.XY{X: p.Scores[0], Y: p.Scores[1]})
	}
	plot := render.Scatter(w, h, []render.Series{{Glyph: '*', Pts: pts}})
	return fmt.Sprintf("front (%d points)  x: %s  y: %s\n%s",
		len(o.Front), o.Objectives[0], o.Objectives[1], plot)
}
