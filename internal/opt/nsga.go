package opt

import (
	"math"
	"sort"

	"flov/internal/sim"
)

// nsga2 is an NSGA-II-style evolutionary strategy: binary tournament
// selection on (non-domination rank, crowding distance), uniform
// crossover and per-gene mutation, with (mu+lambda) survivor selection
// over the merged parent+offspring pool. Determinism comes from the
// driver-supplied RNG streams and from breaking every sort tie on the
// genome, never on float equality.
type nsga2 struct {
	sizes []int
	// pop is the surviving parent pool, rebuilt by each Tell.
	pop []indiv
	// cap is the steady-state population size, fixed by the first Tell.
	cap int
}

// indiv is one scored genome with its selection keys.
type indiv struct {
	genome []int
	scores []float64
	rank   int
	crowd  float64
}

func (n *nsga2) Name() string { return "nsga2" }

// Ask samples the grid uniformly on the first generation and breeds
// offspring from the current pool afterwards.
func (n *nsga2) Ask(rng *sim.RNG, gen, count int) [][]int {
	genomes := make([][]int, count)
	for i := range genomes {
		if len(n.pop) == 0 {
			genomes[i] = randomGenome(rng, n.sizes)
			continue
		}
		p1 := n.tournament(rng)
		p2 := n.tournament(rng)
		child := make([]int, len(n.sizes))
		for k := range child {
			if rng.Intn(2) == 0 {
				child[k] = p1.genome[k]
			} else {
				child[k] = p2.genome[k]
			}
		}
		mutate(rng, n.sizes, child, -1)
		genomes[i] = child
	}
	return genomes
}

// tournament picks the better of two uniform draws: lower rank wins,
// then larger crowding distance, then the earlier pool index (a stable
// deterministic tie-break).
func (n *nsga2) tournament(rng *sim.RNG) indiv {
	i := rng.Intn(len(n.pop))
	j := rng.Intn(len(n.pop))
	a, b := n.pop[i], n.pop[j]
	switch {
	case a.rank < b.rank:
		return a
	case b.rank < a.rank:
		return b
	case a.crowd > b.crowd:
		return a
	case b.crowd > a.crowd:
		return b
	case i <= j:
		return a
	default:
		return b
	}
}

// Tell merges the evaluated offspring into the pool and keeps the best
// cap individuals by (rank, crowding).
func (n *nsga2) Tell(rng *sim.RNG, gen int, genomes [][]int, scores [][]float64) {
	if n.cap == 0 {
		n.cap = len(genomes)
	}
	merged := make([]indiv, 0, len(n.pop)+len(genomes))
	merged = append(merged, n.pop...)
	for i, g := range genomes {
		merged = append(merged, indiv{genome: g, scores: scores[i]})
	}
	merged = dedupIndivs(merged)
	rankAndCrowd(merged)
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.crowd > b.crowd {
			return true
		}
		if b.crowd > a.crowd {
			return false
		}
		return genomeLess(a.genome, b.genome)
	})
	if len(merged) > n.cap {
		merged = merged[:n.cap]
	}
	n.pop = merged
}

// dedupIndivs drops repeated genomes, keeping the first occurrence (the
// established pool member over the fresh duplicate).
func dedupIndivs(pool []indiv) []indiv {
	seen := make(map[string]bool, len(pool))
	out := pool[:0]
	for _, in := range pool {
		k := genomeKey(in.genome)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, in)
	}
	return out
}

// rankAndCrowd assigns non-domination ranks (fast non-dominated sort)
// and per-front crowding distances in place.
func rankAndCrowd(pool []indiv) {
	n := len(pool)
	domCount := make([]int, n)    // how many dominate i
	dominated := make([][]int, n) // whom i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(pool[i].scores, pool[j].scores):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case Dominates(pool[j].scores, pool[i].scores):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pool[i].rank = 0
			front = append(front, i)
		}
	}
	for rank := 0; len(front) > 0; rank++ {
		crowding(pool, front)
		var next []int
		for _, i := range front {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pool[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		front = next
	}
}

// crowding computes crowding distances for one front: per objective,
// boundary points get +Inf and interior points accumulate the
// normalized gap between their neighbors.
func crowding(pool []indiv, front []int) {
	for _, i := range front {
		pool[i].crowd = 0
	}
	if len(front) < 3 {
		for _, i := range front {
			pool[i].crowd = math.Inf(1)
		}
		return
	}
	order := make([]int, len(front))
	for m := range pool[front[0]].scores {
		copy(order, front)
		sort.SliceStable(order, func(a, b int) bool {
			if pool[order[a]].scores[m] < pool[order[b]].scores[m] {
				return true
			}
			if pool[order[b]].scores[m] < pool[order[a]].scores[m] {
				return false
			}
			return genomeLess(pool[order[a]].genome, pool[order[b]].genome)
		})
		lo := pool[order[0]].scores[m]
		hi := pool[order[len(order)-1]].scores[m]
		pool[order[0]].crowd = math.Inf(1)
		pool[order[len(order)-1]].crowd = math.Inf(1)
		if hi-lo <= 0 {
			continue
		}
		for k := 1; k < len(order)-1; k++ {
			gap := (pool[order[k+1]].scores[m] - pool[order[k-1]].scores[m]) / (hi - lo)
			pool[order[k]].crowd += gap
		}
	}
}

// genomeLess orders genomes lexicographically.
func genomeLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
