package opt

import (
	"fmt"
	"strings"

	"flov/internal/sim"
)

// Strategy is the pluggable search loop. The driver calls Ask for a
// generation's candidates, evaluates them, then calls Tell with the
// scores. All randomness comes from the rng argument — a fresh stream
// derived from (spec seed, generation, ask/tell label) — so a strategy
// holds no generator state and the whole search is a pure function of
// the spec.
//
// Genomes are index vectors into the space's value lists; strategies
// are constructed with the per-dimension sizes and must stay in range.
type Strategy interface {
	// Name is the symbolic strategy name ("nsga2", "anneal", "random").
	Name() string
	// Ask proposes n candidate genomes for generation gen.
	Ask(rng *sim.RNG, gen, n int) [][]int
	// Tell reports the minimized score vectors for Ask's genomes, index
	// aligned. Infeasible candidates carry the infeasible sentinel on
	// every objective.
	Tell(rng *sim.RNG, gen int, genomes [][]int, scores [][]float64)
}

// Strategies lists the available strategy names.
func Strategies() []string { return []string{"nsga2", "anneal", "random"} }

// NewStrategy constructs a strategy by name for a space with the given
// per-dimension sizes.
func NewStrategy(name string, sizes []int) (Strategy, error) {
	switch strings.ToLower(name) {
	case "", "nsga2", "nsga":
		return &nsga2{sizes: sizes}, nil
	case "anneal", "sa":
		return &anneal{sizes: sizes}, nil
	case "random", "random-grid":
		return &randomGrid{sizes: sizes}, nil
	}
	return nil, fmt.Errorf("opt: unknown strategy %q (want one of %s)",
		name, strings.Join(Strategies(), ", "))
}

// randomGrid is the baseline strategy: every generation is a fresh
// uniform sample of the grid. It learns nothing from Tell, which makes
// it the control any smarter strategy has to beat.
type randomGrid struct {
	sizes []int
}

func (r *randomGrid) Name() string { return "random" }

func (r *randomGrid) Ask(rng *sim.RNG, gen, n int) [][]int {
	genomes := make([][]int, n)
	for i := range genomes {
		genomes[i] = randomGenome(rng, r.sizes)
	}
	return genomes
}

func (r *randomGrid) Tell(rng *sim.RNG, gen int, genomes [][]int, scores [][]float64) {}

// randomGenome draws one uniform genome.
func randomGenome(rng *sim.RNG, sizes []int) []int {
	g := make([]int, len(sizes))
	for i, s := range sizes {
		g[i] = rng.Intn(s)
	}
	return g
}

// mutate resamples each gene with probability 1/len(g). At least the
// caller-chosen forced gene always resamples (pass -1 to disable), so a
// proposal never degenerates to its parent on small genomes.
func mutate(rng *sim.RNG, sizes, g []int, forced int) {
	p := 1.0 / float64(len(g))
	for i, s := range sizes {
		if i == forced || rng.Float64() < p {
			g[i] = rng.Intn(s)
		}
	}
}
