package opt

import "testing"

func pt(genome []int, scores ...float64) Point {
	return Point{Genome: genome, Scores: scores}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: neither dominates
		{[]float64{1, 3}, []float64{2, 2}, false}, // trade-off
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestArchiveDominancePruning(t *testing.T) {
	var ar Archive
	if !ar.Add(pt([]int{0}, 5, 5)) {
		t.Fatal("first point rejected")
	}
	// A dominated candidate must not enter.
	if ar.Add(pt([]int{1}, 6, 6)) {
		t.Fatal("dominated point entered the archive")
	}
	// A dominating candidate evicts what it dominates.
	if !ar.Add(pt([]int{2}, 4, 4)) {
		t.Fatal("dominating point rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("archive kept %d points after eviction, want 1", ar.Len())
	}
	// A trade-off point coexists.
	if !ar.Add(pt([]int{3}, 1, 9)) {
		t.Fatal("trade-off point rejected")
	}
	if ar.Len() != 2 {
		t.Fatalf("archive kept %d points, want 2", ar.Len())
	}
	// A duplicate genome is rejected even with different scores.
	if ar.Add(pt([]int{3}, 0, 0)) {
		t.Fatal("duplicate genome entered the archive")
	}
}

func TestArchiveFrontOrderIsCanonical(t *testing.T) {
	points := []Point{
		pt([]int{2}, 3, 1),
		pt([]int{0}, 1, 3),
		pt([]int{1}, 2, 2),
	}
	// Insert in two different orders; the front must come out identical.
	var a, b Archive
	for _, p := range points {
		a.Add(p)
	}
	for i := len(points) - 1; i >= 0; i-- {
		b.Add(points[i])
	}
	fa, fb := a.Front(), b.Front()
	if len(fa) != 3 || len(fb) != 3 {
		t.Fatalf("front sizes %d/%d, want 3", len(fa), len(fb))
	}
	for i := range fa {
		if !sameGenome(fa[i].Genome, fb[i].Genome) {
			t.Fatalf("front order differs at %d: %v vs %v", i, fa[i].Genome, fb[i].Genome)
		}
	}
	if fa[0].Scores[0] >= fa[1].Scores[0] || fa[1].Scores[0] >= fa[2].Scores[0] {
		t.Fatalf("front not sorted by first score: %v", fa)
	}
}
