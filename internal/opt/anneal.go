package opt

import (
	"math"

	"flov/internal/sim"
)

// anneal is a multi-chain simulated-annealing strategy: Population
// independent chains each hold a current genome; every generation each
// chain proposes a one-gene-forced mutation of its current point and
// accepts it if the (relative, summed over objectives) score change is
// an improvement, or with Boltzmann probability exp(-delta/T) under a
// geometric cooling schedule otherwise. Chains never interact, so the
// strategy explores Population basins in parallel.
type anneal struct {
	sizes []int
	// chains holds each chain's current genome and scores; empty until
	// the first Tell.
	chains []indiv
}

// coolingRate is the geometric temperature decay per generation.
const coolingRate = 0.85

func (a *anneal) Name() string { return "anneal" }

// Ask proposes one neighbor per chain (uniform samples before the first
// Tell seeds the chains).
func (a *anneal) Ask(rng *sim.RNG, gen, n int) [][]int {
	genomes := make([][]int, n)
	for i := range genomes {
		if i >= len(a.chains) {
			genomes[i] = randomGenome(rng, a.sizes)
			continue
		}
		g := make([]int, len(a.sizes))
		copy(g, a.chains[i].genome)
		mutate(rng, a.sizes, g, rng.Intn(len(g)))
		genomes[i] = g
	}
	return genomes
}

// Tell applies the Metropolis acceptance rule chain by chain.
func (a *anneal) Tell(rng *sim.RNG, gen int, genomes [][]int, scores [][]float64) {
	temp := math.Pow(coolingRate, float64(gen))
	for i, g := range genomes {
		cand := indiv{genome: g, scores: scores[i]}
		if i >= len(a.chains) {
			a.chains = append(a.chains, cand)
			continue
		}
		delta := relativeDelta(scores[i], a.chains[i].scores)
		// Always draw, so the rng stream position does not depend on the
		// accept/reject history (keeps chains independent of each other's
		// outcomes under the shared stream).
		u := rng.Float64()
		if delta <= 0 || u < math.Exp(-delta/temp) {
			a.chains[i] = cand
		}
	}
}

// relativeDelta sums the per-objective relative change from old to new;
// negative means the proposal improves on balance. Scales by |old| so
// objectives with different units weigh comparably.
func relativeDelta(newScores, oldScores []float64) float64 {
	var delta float64
	for i := range newScores {
		scale := math.Abs(oldScores[i])
		if scale < 1e-12 {
			scale = 1e-12
		}
		delta += (newScores[i] - oldScores[i]) / scale
	}
	return delta
}
