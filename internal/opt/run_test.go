package opt

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"flov/internal/sweep"
)

// tinySpec is the shared fast search: a 4x4 mesh, short runs, a mixed
// space small enough that three generations finish in well under a
// second but large enough that the strategies actually search.
func tinySpec(strategy string) Spec {
	return Spec{
		Space: Space{
			Widths: []int{4}, Heights: []int{4},
			VCs: []int{1, 2}, Buffers: []int{4, 6},
			Mechanisms: []string{"baseline", "gflov"},
			GatedFracs: []float64{0, 0.5},
			Rates:      []float64{0.05},
		},
		Strategy:    strategy,
		Generations: 3,
		Population:  6,
		Seed:        7,
		Cycles:      1200,
		Warmup:      300,
	}
}

func mustRun(t *testing.T, spec Spec, opts Options) Outcome {
	t.Helper()
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunDeterministic runs every strategy twice from scratch and
// demands byte-identical CSV and JSON fronts — the invariant the CI
// smoke job also checks across two separate processes.
func TestRunDeterministic(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			a := mustRun(t, tinySpec(strategy), Options{})
			b := mustRun(t, tinySpec(strategy), Options{})
			var csvA, csvB, jsonA, jsonB bytes.Buffer
			if err := a.FrontCSV(&csvA); err != nil {
				t.Fatal(err)
			}
			if err := b.FrontCSV(&csvB); err != nil {
				t.Fatal(err)
			}
			if err := a.FrontJSON(&jsonA); err != nil {
				t.Fatal(err)
			}
			if err := b.FrontJSON(&jsonB); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
				t.Errorf("CSV fronts differ:\n%s\nvs\n%s", csvA.String(), csvB.String())
			}
			if !bytes.Equal(jsonA.Bytes(), jsonB.Bytes()) {
				t.Error("JSON fronts differ")
			}
			if len(a.Front) == 0 {
				t.Error("empty front")
			}
			if a.Asked != 18 { // 3 generations x population 6
				t.Errorf("asked %d candidates, want 18", a.Asked)
			}
			for _, p := range a.Front {
				if p.Res.Packets == 0 {
					t.Errorf("front point %v carries no results", p.Genome)
				}
				if len(p.Scores) != 2 {
					t.Errorf("front point %v has %d scores", p.Genome, len(p.Scores))
				}
			}
		})
	}
}

// TestRunCacheHitsOnRerun re-runs a spec against the same cache and
// checks that every engine evaluation is served from disk.
func TestRunCacheHitsOnRerun(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := mustRun(t, tinySpec("nsga2"), Options{Cache: cache})
	if first.Simulated == 0 {
		t.Fatal("first run simulated nothing")
	}
	if first.CacheHits != 0 {
		t.Fatalf("first run hit the fresh cache %d times", first.CacheHits)
	}
	second := mustRun(t, tinySpec("nsga2"), Options{Cache: cache})
	if second.CacheHits != second.Simulated {
		t.Fatalf("re-run: %d of %d engine evaluations cache-hit, want all",
			second.CacheHits, second.Simulated)
	}
	if second.Simulated != first.Simulated {
		t.Fatalf("re-run evaluated %d points, first run %d — search not deterministic",
			second.Simulated, first.Simulated)
	}
}

// TestRunResume interrupts nothing but replays a finished run-dir and
// checks the resume simulates zero points yet reproduces the front.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("anneal")
	first := mustRun(t, spec, Options{RunDir: dir})
	if first.Simulated == 0 {
		t.Fatal("first run simulated nothing")
	}

	// A torn tail (crash mid-append) must not poison the replay.
	path := filepath.Join(dir, "evals.ndjson")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"gen": 99, "genome": [0], "hash": "tru`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resumed := mustRun(t, spec, Options{RunDir: dir, Resume: true})
	if resumed.Simulated != 0 {
		t.Fatalf("resume simulated %d points, want 0 (all rows durable)", resumed.Simulated)
	}
	var a, b bytes.Buffer
	if err := first.FrontCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.FrontCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("resumed front differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunEmitsEvents(t *testing.T) {
	var events []Event
	spec := tinySpec("random")
	out := mustRun(t, spec, Options{Progress: func(ev Event) { events = append(events, ev) }})
	if len(events) != spec.Generations {
		t.Fatalf("got %d events, want %d", len(events), spec.Generations)
	}
	for i, ev := range events {
		if ev.Gen != i || ev.Generations != spec.Generations {
			t.Errorf("event %d misnumbered: %+v", i, ev)
		}
		if ev.Asked != spec.Population {
			t.Errorf("event %d asked %d, want %d", i, ev.Asked, spec.Population)
		}
		if ev.Simulated+ev.Reused != ev.Asked {
			t.Errorf("event %d: simulated %d + reused %d != asked %d",
				i, ev.Simulated, ev.Reused, ev.Asked)
		}
	}
	if events[len(events)-1].Front != len(out.Front) {
		t.Errorf("last event front %d != outcome front %d",
			events[len(events)-1].Front, len(out.Front))
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, tinySpec("nsga2"), Options{})
	if err == nil {
		t.Fatal("canceled run reported no error")
	}
	if out.Generations != 0 {
		t.Fatalf("canceled run claims %d generations", out.Generations)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Space: Space{Widths: []int{1}}},
		{Objectives: []string{"energy_per_flit"}},
		{Strategy: "nope"},
	}
	for i, s := range bad {
		if _, err := Run(context.Background(), s, Options{}); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestFrontPlotRenders(t *testing.T) {
	out := mustRun(t, tinySpec("random"), Options{})
	plot := out.FrontPlot(40, 10)
	if plot == "" || !bytes.Contains([]byte(plot), []byte("energy_per_flit")) {
		t.Fatalf("plot missing axis label:\n%s", plot)
	}
	a, b := out.FrontPlot(40, 10), out.FrontPlot(40, 10)
	if a != b {
		t.Fatal("plot not deterministic")
	}
}

// BenchmarkOptimize is the committed-baseline benchmark for the
// optimizer loop: a full tiny search, uncached, dominated by the
// candidate simulations it schedules.
func BenchmarkOptimize(b *testing.B) {
	spec := tinySpec("nsga2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), spec, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
