// Package opt is the automated design-space explorer: a deterministic
// multi-objective optimizer that searches the FLOV testbed parameter
// space (mesh size, VC/buffer counts, gating mechanism, wakeup latency,
// gated fraction, injection rate/pattern) for Pareto-optimal
// configurations under configurable objectives (energy per flit, mean
// and p99 packet latency, accepted throughput).
//
// The pieces compose:
//
//   - Space enumerates the candidate values per dimension and decodes a
//     genome (one index per dimension) into a sweep.Job;
//   - Objective scores a finished point; all objectives minimize, with
//     throughput negated so "higher is better" still minimizes;
//   - Archive keeps the non-dominated set with dominance pruning;
//   - Strategy is the pluggable search loop (NSGA-II, simulated
//     annealing, random baseline), fed by seeded sim.RNG streams only;
//   - Run drives generations through sweep.Engine, so every candidate
//     is a content-addressed Job that hits the on-disk cache and
//     warm-start forking for free.
//
// Everything is a pure function of the Spec: the same spec and seed
// produce byte-identical fronts across processes, which is what makes
// resumable runs (run-dir row replay) and cached re-runs sound.
package opt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"flov/internal/config"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/sweep"
	"flov/internal/traffic"
)

// Objective is one axis of the multi-objective score. Every objective
// is minimized; see value for the exact definition.
type Objective int

// The supported objectives.
const (
	// EnergyPerFlit is total energy over the measurement window divided
	// by delivered flits (pJ/flit).
	EnergyPerFlit Objective = iota
	// MeanLatency is the average packet latency in cycles.
	MeanLatency
	// P99Latency is the 99th-percentile packet latency upper bound.
	P99Latency
	// Throughput is the negated accepted throughput (flits/cycle/node):
	// minimizing the negation maximizes throughput.
	Throughput
)

// Objectives lists all objectives in canonical order.
func Objectives() []Objective {
	return []Objective{EnergyPerFlit, MeanLatency, P99Latency, Throughput}
}

// String names the objective as used in specs, CSV headers and JSON.
func (o Objective) String() string {
	switch o {
	case EnergyPerFlit:
		return "energy_per_flit"
	case MeanLatency:
		return "mean_latency"
	case P99Latency:
		return "p99_latency"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective converts a case-insensitive name to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(s) {
	case "energy_per_flit", "energy":
		return EnergyPerFlit, nil
	case "mean_latency", "latency":
		return MeanLatency, nil
	case "p99_latency", "p99":
		return P99Latency, nil
	case "throughput", "tput":
		return Throughput, nil
	}
	return EnergyPerFlit, fmt.Errorf("opt: unknown objective %q", s)
}

// MarshalJSON renders the symbolic name.
func (o Objective) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON parses the symbolic name.
func (o *Objective) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseObjective(s)
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// infeasible is the score assigned to every objective of a candidate
// whose simulation failed; it dominates nothing and is dominated by any
// real point, so failures fall out of the archive naturally. It is a
// finite value (not +Inf) so score rows stay JSON-encodable.
const infeasible = 1e300

// value scores a finished point on this objective. j supplies the
// workload parameters Results alone do not carry (packet size).
func (o Objective) value(j sweep.Job, res network.Results) float64 {
	switch o {
	case EnergyPerFlit:
		flits := float64(res.Packets) * float64(j.Config.PacketSize)
		if flits < 1 {
			return infeasible
		}
		return res.TotalEnergyPJ / flits
	case MeanLatency:
		return res.AvgLatency
	case P99Latency:
		return float64(res.P99Latency)
	case Throughput:
		return -res.ThroughputFpc
	default:
		return infeasible
	}
}

// parseObjectives resolves the spec's objective names, rejecting
// duplicates (a repeated axis would double-count in dominance).
func parseObjectives(names []string) ([]Objective, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("opt: need at least two objectives for a Pareto front, got %d", len(names))
	}
	objs := make([]Objective, 0, len(names))
	for _, name := range names {
		o, err := ParseObjective(name)
		if err != nil {
			return nil, err
		}
		for _, prev := range objs {
			if prev == o {
				return nil, fmt.Errorf("opt: duplicate objective %q", o)
			}
		}
		objs = append(objs, o)
	}
	return objs, nil
}

// Space lists the candidate values per design dimension. Empty lists
// take the defaults documented on each field. The genome dimension
// order is fixed: width, height, VCs, buffers, mechanism, wakeup
// latency, gated fraction, rate, pattern.
type Space struct {
	// Widths and Heights are the mesh dimensions (default {8} each).
	Widths  []int `json:"widths,omitempty"`
	Heights []int `json:"heights,omitempty"`
	// VCs is regular VCs per vnet (default {3}).
	VCs []int `json:"vcs,omitempty"`
	// Buffers is flits per VC input buffer (default {6}); every value
	// must fit a whole packet so all candidates validate.
	Buffers []int `json:"buffers,omitempty"`
	// Mechanisms are the gating policies under search (default all
	// four; "all" expands likewise).
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Wakeups is the wakeup latency in cycles (default {10}).
	Wakeups []int `json:"wakeup_latencies,omitempty"`
	// GatedFracs selects the random gated-router mask density
	// (default {0, 0.25, 0.5}).
	GatedFracs []float64 `json:"gated_fractions,omitempty"`
	// Rates is offered load in flits/cycle/node (default {0.02, 0.06}).
	Rates []float64 `json:"rates,omitempty"`
	// Patterns are synthetic traffic patterns (default {"uniform"}).
	Patterns []string `json:"patterns,omitempty"`
}

// space is the resolved, validated form of Space.
type space struct {
	widths, heights, vcs, buffers, wakeups []int
	mechs                                  []config.Mechanism
	fracs, rates                           []float64
	patterns                               []traffic.Pattern
}

// dims is the genome length: one gene per design dimension.
const dims = 9

// resolve validates the space and fills defaults, guaranteeing that
// every decodable genome yields a config.Validate-clean job.
func (s Space) resolve() (space, error) {
	sp := space{
		widths:  defaultInts(s.Widths, 8),
		heights: defaultInts(s.Heights, 8),
		vcs:     defaultInts(s.VCs, 3),
		buffers: defaultInts(s.Buffers, 6),
		wakeups: defaultInts(s.Wakeups, 10),
		fracs:   s.GatedFracs,
		rates:   s.Rates,
	}
	if len(sp.fracs) == 0 {
		sp.fracs = []float64{0, 0.25, 0.5}
	}
	if len(sp.rates) == 0 {
		sp.rates = []float64{0.02, 0.06}
	}
	for _, w := range sp.widths {
		if w < 2 {
			return space{}, fmt.Errorf("opt: mesh width must be >= 2, got %d", w)
		}
	}
	for _, h := range sp.heights {
		if h < 2 {
			return space{}, fmt.Errorf("opt: mesh height must be >= 2, got %d", h)
		}
	}
	for _, v := range sp.vcs {
		if v < 1 {
			return space{}, fmt.Errorf("opt: need at least one VC per vnet, got %d", v)
		}
	}
	minBuf := config.Default().PacketSize
	for _, b := range sp.buffers {
		if b < minBuf {
			return space{}, fmt.Errorf("opt: buffer depth %d cannot hold a %d-flit packet", b, minBuf)
		}
	}
	for _, w := range sp.wakeups {
		if w < 0 {
			return space{}, fmt.Errorf("opt: wakeup latency must be >= 0, got %d", w)
		}
	}
	for _, f := range sp.fracs {
		if f < 0 || f > 1 {
			return space{}, fmt.Errorf("opt: gated fraction must be in [0,1], got %g", f)
		}
	}
	for _, r := range sp.rates {
		if r <= 0 {
			return space{}, fmt.Errorf("opt: injection rate must be positive, got %g", r)
		}
	}

	mechNames := s.Mechanisms
	if len(mechNames) == 0 || (len(mechNames) == 1 && mechNames[0] == "all") {
		sp.mechs = config.Mechanisms()
	} else {
		for _, name := range mechNames {
			m, err := config.ParseMechanism(name)
			if err != nil {
				return space{}, err
			}
			sp.mechs = append(sp.mechs, m)
		}
	}
	patNames := s.Patterns
	if len(patNames) == 0 {
		patNames = []string{"uniform"}
	}
	for _, name := range patNames {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			return space{}, err
		}
		sp.patterns = append(sp.patterns, p)
	}
	return sp, nil
}

// defaultInts substitutes a single-value default for an empty list.
func defaultInts(vs []int, def int) []int {
	if len(vs) == 0 {
		return []int{def}
	}
	return vs
}

// sizes returns the per-dimension cardinalities in genome order.
func (sp space) sizes() []int {
	return []int{
		len(sp.widths), len(sp.heights), len(sp.vcs), len(sp.buffers),
		len(sp.mechs), len(sp.wakeups), len(sp.fracs), len(sp.rates),
		len(sp.patterns),
	}
}

// points is the full grid size (for reporting; the optimizer never
// enumerates it).
func (sp space) points() int {
	n := 1
	for _, s := range sp.sizes() {
		n *= s
	}
	return n
}

// job decodes a genome into the sweep.Job it identifies. The mapping is
// pure, so a genome's job hash is its cache identity.
func (sp space) job(spec Spec, g []int) sweep.Job {
	cfg := config.Default()
	cfg.Width = sp.widths[g[0]]
	cfg.Height = sp.heights[g[1]]
	cfg.VCsPerVNet = sp.vcs[g[2]]
	cfg.BufferDepth = sp.buffers[g[3]]
	cfg.Mechanism = sp.mechs[g[4]]
	cfg.WakeupLatency = sp.wakeups[g[5]]
	if spec.Cycles > 0 {
		cfg.TotalCycles = spec.Cycles
	}
	if spec.Warmup > 0 {
		cfg.WarmupCycles = spec.Warmup
	}
	cfg.Seed = spec.Seed
	return sweep.Job{
		Kind:      sweep.Synthetic,
		Config:    cfg,
		Pattern:   sp.patterns[g[8]],
		Rate:      sp.rates[g[7]],
		Frac:      sp.fracs[g[6]],
		Mechanism: cfg.Mechanism,
		// Same derivation as flov.Build and sweep.Spec, so an optimizer
		// candidate shares its cache identity with the equivalent
		// flovsim/flovsweep point.
		MaskSeed: sim.MaskSeed(cfg.Seed),
	}
}

// Spec is the declarative optimizer input: the search space, the
// objectives, the strategy and its budget. Zero fields take defaults
// (filled by withDefaults), so a minimal spec is just a Space.
type Spec struct {
	Space Space `json:"space"`
	// Objectives names at least two score axes (default energy_per_flit
	// and mean_latency).
	Objectives []string `json:"objectives,omitempty"`
	// Strategy selects the search loop: nsga2 (default), anneal, random.
	Strategy string `json:"strategy,omitempty"`
	// Generations is the number of ask/evaluate/tell rounds (default 8).
	Generations int `json:"generations,omitempty"`
	// Population is candidates per generation (default 16).
	Population int `json:"population,omitempty"`
	// Seed drives every random draw: the strategy streams, the
	// simulator and the gated-mask draw (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Cycles/Warmup override the Table I simulation length per
	// candidate (0 = default).
	Cycles int64 `json:"cycles,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`
}

// withDefaults fills unset knobs.
func (s Spec) withDefaults() Spec {
	if len(s.Objectives) == 0 {
		s.Objectives = []string{EnergyPerFlit.String(), MeanLatency.String()}
	}
	if s.Strategy == "" {
		s.Strategy = "nsga2"
	}
	if s.Generations <= 0 {
		s.Generations = 8
	}
	if s.Population <= 0 {
		s.Population = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// LoadSpec reads a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return ParseSpec(data)
}

// ParseSpec decodes a JSON spec document, rejecting unknown fields so
// a typoed knob fails loudly instead of silently taking its default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("opt: parse spec: %w", err)
	}
	return s, nil
}
