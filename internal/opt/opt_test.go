package opt

import (
	"strings"
	"testing"

	"flov/internal/network"
	"flov/internal/sweep"
)

func TestObjectiveRoundTrip(t *testing.T) {
	for _, o := range Objectives() {
		got, err := ParseObjective(o.String())
		if err != nil {
			t.Fatalf("ParseObjective(%q): %v", o, err)
		}
		if got != o {
			t.Fatalf("round trip %v -> %q -> %v", o, o.String(), got)
		}
	}
	if _, err := ParseObjective("nope"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestObjectiveValues(t *testing.T) {
	j := sweep.Job{}
	j.Config.PacketSize = 4
	res := network.Results{
		TotalEnergyPJ: 800, Packets: 100,
		AvgLatency: 25, P99Latency: 64, ThroughputFpc: 0.5,
	}
	if got := EnergyPerFlit.value(j, res); got != 2 { // 800 pJ / 400 flits
		t.Fatalf("energy per flit = %v, want 2", got)
	}
	if got := Throughput.value(j, res); got != -0.5 {
		t.Fatalf("throughput score = %v, want -0.5 (negated)", got)
	}
	// Zero delivered flits must score infeasible, not divide by zero.
	if got := EnergyPerFlit.value(j, network.Results{}); got < infeasible {
		t.Fatalf("zero-flit energy score = %v, want the infeasible sentinel", got)
	}
}

func TestParseObjectivesRejectsDegenerate(t *testing.T) {
	if _, err := parseObjectives([]string{"energy_per_flit"}); err == nil {
		t.Fatal("single objective accepted; a front needs two")
	}
	if _, err := parseObjectives([]string{"latency", "mean_latency"}); err == nil {
		t.Fatal("duplicate objective accepted")
	}
	if _, err := parseObjectives([]string{"energy", "p99", "tput"}); err != nil {
		t.Fatalf("aliases rejected: %v", err)
	}
}

func TestSpaceResolveValidation(t *testing.T) {
	bad := []Space{
		{Widths: []int{1}},
		{Heights: []int{0}},
		{VCs: []int{0}},
		{Buffers: []int{2}}, // cannot hold a 4-flit packet
		{Wakeups: []int{-1}},
		{GatedFracs: []float64{1.5}},
		{Rates: []float64{0}},
		{Mechanisms: []string{"nope"}},
		{Patterns: []string{"nope"}},
	}
	for i, s := range bad {
		if _, err := s.resolve(); err == nil {
			t.Errorf("bad space %d accepted: %+v", i, s)
		}
	}
}

// TestEveryGenomeDecodesValid walks the full corner set of a mixed
// space and checks that each decoded job passes config validation — the
// invariant that lets the optimizer skip per-candidate error handling.
func TestEveryGenomeDecodesValid(t *testing.T) {
	spec := Spec{Space: Space{
		Widths: []int{2, 8}, Heights: []int{2, 8},
		VCs: []int{1, 4}, Buffers: []int{4, 8},
		Wakeups: []int{0, 20}, GatedFracs: []float64{0, 1},
		Rates: []float64{0.01, 0.2},
	}}.withDefaults()
	sp, err := spec.Space.resolve()
	if err != nil {
		t.Fatal(err)
	}
	sizes := sp.sizes()
	if len(sizes) != dims {
		t.Fatalf("got %d dims, want %d", len(sizes), dims)
	}
	// Enumerate the whole grid (2^7 * 4 * 1 corners here).
	g := make([]int, dims)
	var walk func(d int)
	walk = func(d int) {
		if d == dims {
			j := sp.job(spec, g)
			if err := j.Config.Validate(); err != nil {
				t.Fatalf("genome %v decodes invalid config: %v", g, err)
			}
			if j.MaskSeed == j.Config.Seed {
				t.Fatalf("mask seed not derived from config seed")
			}
			return
		}
		for v := 0; v < sizes[d]; v++ {
			g[d] = v
			walk(d + 1)
		}
		g[d] = 0
	}
	walk(0)
	if sp.points() != 512 {
		t.Fatalf("space size %d, want 512", sp.points())
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"generatons": 3}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	s, err := ParseSpec([]byte(`{"space": {"widths": [4]}, "strategy": "anneal"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy != "anneal" || len(s.Space.Widths) != 1 {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
}

func TestNewStrategyNames(t *testing.T) {
	sizes := []int{2, 2, 2, 2, 2, 2, 2, 2, 2}
	for _, name := range Strategies() {
		s, err := NewStrategy(name, sizes)
		if err != nil {
			t.Fatalf("NewStrategy(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewStrategy("hillclimb", sizes); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if s, err := NewStrategy("", sizes); err != nil || s.Name() != "nsga2" {
		t.Fatalf("empty name should default to nsga2, got %v, %v", s, err)
	}
}

func TestGenomeKey(t *testing.T) {
	if k := genomeKey([]int{1, 0, 12}); k != "1,0,12" {
		t.Fatalf("genomeKey = %q", k)
	}
	if k := genomeKey(nil); k != "" {
		t.Fatalf("empty genomeKey = %q", k)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.Generations != 8 || s.Population != 16 || s.Seed != 1 || s.Strategy != "nsga2" {
		t.Fatalf("defaults wrong: %+v", s)
	}
	if strings.Join(s.Objectives, " ") != "energy_per_flit mean_latency" {
		t.Fatalf("default objectives: %v", s.Objectives)
	}
}
