package experiments

import (
	"context"

	"flov/internal/config"
	"flov/internal/sweep"
	"flov/internal/traffic"
)

// ScalingSizes are the mesh sizes for the scalability study. The paper
// motivates FLOV for "100s and 1000s of cores" and criticizes NoRD's
// bypass ring for not scaling; this experiment shows how each mechanism's
// latency and power behave as the mesh grows.
var ScalingSizes = [][2]int{{4, 4}, {8, 8}, {12, 12}, {16, 16}}

// ScalingRow is one mesh-size x mechanism measurement.
type ScalingRow struct {
	Width, Height int
	Mechanism     string
	AvgLatency    float64
	StaticPowerW  float64
	TotalPowerW   float64
	GatedRouters  int
	Routers       int
	Undelivered   int64
	// Err marks a failed point; measurements are zero.
	Err string
}

// ScalingSweep runs uniform random traffic at 0.02 flits/cycle/node with
// half the cores gated across growing mesh sizes.
func ScalingSweep(o Options) ([]ScalingRow, error) {
	var jobs []sweep.Job
	for _, sz := range ScalingSizes {
		for _, m := range config.Mechanisms() {
			cfg := config.Default()
			cfg.Width, cfg.Height = sz[0], sz[1]
			cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
			cfg.Seed = o.Seed + 1
			jobs = append(jobs, o.jobWithConfig(cfg, traffic.Uniform, 0.02, 0.5, m))
		}
	}
	results := o.engine().Run(context.Background(), jobs)
	rows := make([]ScalingRow, len(results))
	for i, res := range results {
		r := rowFromResult(res)
		rows[i] = ScalingRow{
			Width:        res.Job.Config.Width,
			Height:       res.Job.Config.Height,
			Mechanism:    r.Mechanism,
			AvgLatency:   r.AvgLatency,
			StaticPowerW: r.StaticPowerW,
			TotalPowerW:  r.TotalPowerW,
			GatedRouters: r.GatedRouters,
			Routers:      res.Job.Config.N(),
			Undelivered:  r.Undelivered,
			Err:          r.Err,
		}
	}
	return rows, nil
}
