package experiments

import (
	"flov/internal/config"
	"flov/internal/traffic"
)

// ScalingSizes are the mesh sizes for the scalability study. The paper
// motivates FLOV for "100s and 1000s of cores" and criticizes NoRD's
// bypass ring for not scaling; this experiment shows how each mechanism's
// latency and power behave as the mesh grows.
var ScalingSizes = [][2]int{{4, 4}, {8, 8}, {12, 12}, {16, 16}}

// ScalingRow is one mesh-size x mechanism measurement.
type ScalingRow struct {
	Width, Height int
	Mechanism     string
	AvgLatency    float64
	StaticPowerW  float64
	TotalPowerW   float64
	GatedRouters  int
	Routers       int
	Undelivered   int64
}

// ScalingSweep runs uniform random traffic at 0.02 flits/cycle/node with
// half the cores gated across growing mesh sizes.
func ScalingSweep(o Options) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, sz := range ScalingSizes {
		for _, m := range config.Mechanisms() {
			cfg := config.Default()
			cfg.Width, cfg.Height = sz[0], sz[1]
			cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
			cfg.Seed = o.Seed + 1
			r, err := runWithConfig(cfg, traffic.Uniform, 0.02, 0.5, m, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScalingRow{
				Width: sz[0], Height: sz[1],
				Mechanism:    m.String(),
				AvgLatency:   r.AvgLatency,
				StaticPowerW: r.StaticPowerW,
				TotalPowerW:  r.TotalPowerW,
				GatedRouters: r.GatedRouters,
				Routers:      sz[0] * sz[1],
				Undelivered:  r.Undelivered,
			})
		}
	}
	return rows, nil
}
