// Package experiments drives every evaluation experiment of the paper —
// one function per figure/table — and returns structured rows that
// cmd/figures renders as CSV/ASCII and bench_test.go reports as metrics.
//
// All experiments hold the gated-core set fixed across mechanisms (same
// seed), so differences are attributable to the mechanism alone.
package experiments

import (
	"context"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/sweep"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// Options control experiment scale and execution.
type Options struct {
	// Quick shrinks cycle counts ~5x for smoke runs and -short tests.
	Quick bool
	// Seed for gated-set draws (identical across mechanisms).
	Seed uint64
	// Engine runs the sweep points; nil means a default parallel engine
	// (GOMAXPROCS workers, no cache). cmd/figures wires in caching and
	// progress reporting here.
	Engine *sweep.Engine
}

// engine returns the configured engine or a default parallel one.
func (o Options) engine() *sweep.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return &sweep.Engine{}
}

// cycles returns (warmup, total) for synthetic runs.
func (o Options) cycles() (int64, int64) {
	if o.Quick {
		return 2_000, 20_000
	}
	return 10_000, 100_000
}

// DefaultFractions is the gated-core sweep of Figs. 6, 7, 8 and 9.
var DefaultFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// DefaultRates are the two injection rates of Figs. 6 and 7.
var DefaultRates = []float64{0.02, 0.08}

// SweepRow is one point of the Fig. 6/7/8/9 sweeps.
type SweepRow struct {
	Pattern   string
	Rate      float64
	Frac      float64
	Mechanism string

	AvgLatency     float64
	StaticPowerW   float64
	DynamicPowerW  float64
	TotalPowerW    float64
	Breakdown      stats.Breakdown
	GatedRouters   int
	Packets        int64
	Undelivered    int64
	EscapeFraction float64

	// Err marks a failed point (simulator error or panic). The row keeps
	// its identifying fields so figures can report what was skipped; the
	// measurements are zero.
	Err string
}

// job builds the sweep job for one synthetic point with the standard
// experiment config (o.cycles scale, seed derivation shared with the
// sequential reference path below).
func (o Options) job(pattern traffic.Pattern, rate, frac float64, mech config.Mechanism) sweep.Job {
	cfg := config.Default()
	cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
	cfg.Seed = o.Seed + 1
	return o.jobWithConfig(cfg, pattern, rate, frac, mech)
}

// jobWithConfig builds a job around an explicit config (ablation sweeps
// tweak individual knobs).
func (o Options) jobWithConfig(cfg config.Config, pattern traffic.Pattern, rate, frac float64, mech config.Mechanism) sweep.Job {
	cfg.Mechanism = mech
	return sweep.Job{
		Kind:      sweep.Synthetic,
		Config:    cfg,
		Pattern:   pattern,
		Rate:      rate,
		Frac:      frac,
		Mechanism: mech,
		MaskSeed:  o.Seed ^ 0x5eed,
	}
}

// runJobs fans the jobs through the engine and converts results to rows.
// Individual point failures become error-carrying rows, not a sweep
// abort.
func runJobs(o Options, jobs []sweep.Job) []SweepRow {
	results := o.engine().Run(context.Background(), jobs)
	rows := make([]SweepRow, len(results))
	for i, r := range results {
		rows[i] = rowFromResult(r)
	}
	return rows
}

// rowFromResult flattens one engine result into a SweepRow.
func rowFromResult(r sweep.Result) SweepRow {
	row := SweepRow{
		Pattern:   r.Job.Pattern.String(),
		Rate:      r.Job.Rate,
		Frac:      r.Job.Frac,
		Mechanism: r.Job.Mechanism.String(),
		Err:       r.Err,
	}
	if r.Err != "" {
		return row
	}
	res := r.Res
	row.AvgLatency = res.AvgLatency
	row.StaticPowerW = res.StaticPowerW
	row.DynamicPowerW = res.DynamicPowerW
	row.TotalPowerW = res.TotalPowerW
	row.Breakdown = res.Breakdown
	row.GatedRouters = res.GatedRouters
	row.Packets = res.Packets
	row.Undelivered = res.Undelivered
	row.EscapeFraction = res.EscapeFrac
	return row
}

// buildAndRun assembles one synthetic configuration and runs it in the
// calling goroutine. It is the sequential reference implementation the
// engine path is tested against (and what the shape tests use for
// single points).
func buildAndRun(pattern traffic.Pattern, rate, frac float64, mech config.Mechanism, o Options) (SweepRow, error) {
	cfg := config.Default()
	cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
	cfg.Seed = o.Seed + 1
	return runWithConfig(cfg, pattern, rate, frac, mech, o)
}

// runWithConfig runs one synthetic experiment sequentially with an
// explicit config.
func runWithConfig(cfg config.Config, pattern traffic.Pattern, rate, frac float64, mech config.Mechanism, o Options) (SweepRow, error) {
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return SweepRow{}, err
	}
	mask := gating.FractionGated(mesh, frac, nil, sim.NewRNG(o.Seed^0x5eed))
	gen := traffic.NewGenerator(pattern, mesh, nil)
	m, err := sweep.NewMechanism(mech)
	if err != nil {
		return SweepRow{}, err
	}
	n, err := network.New(cfg, m, gating.Static(mask), gen, rate)
	if err != nil {
		return SweepRow{}, err
	}
	res := n.Run()
	return SweepRow{
		Pattern:        pattern.String(),
		Rate:           rate,
		Frac:           frac,
		Mechanism:      mech.String(),
		AvgLatency:     res.AvgLatency,
		StaticPowerW:   res.StaticPowerW,
		DynamicPowerW:  res.DynamicPowerW,
		TotalPowerW:    res.TotalPowerW,
		Breakdown:      res.Breakdown,
		GatedRouters:   res.GatedRouters,
		Packets:        res.Packets,
		Undelivered:    res.Undelivered,
		EscapeFraction: res.EscapeFrac,
	}, nil
}

// LatencyPowerSweep reproduces Fig. 6 (uniform) or Fig. 7 (tornado): the
// full rate x fraction x mechanism grid with latency, dynamic and total
// power, fanned out across the engine's worker pool.
func LatencyPowerSweep(pattern traffic.Pattern, o Options) ([]SweepRow, error) {
	var jobs []sweep.Job
	for _, rate := range DefaultRates {
		for _, frac := range DefaultFractions {
			for _, m := range config.Mechanisms() {
				jobs = append(jobs, o.job(pattern, rate, frac, m))
			}
		}
	}
	return runJobs(o, jobs), nil
}

// BreakdownSweep reproduces Fig. 8 (a)/(b): the latency decomposition at
// 0.02 flits/cycle/node across the gated-core sweep.
func BreakdownSweep(pattern traffic.Pattern, o Options) ([]SweepRow, error) {
	var jobs []sweep.Job
	for _, frac := range DefaultFractions {
		for _, m := range config.Mechanisms() {
			jobs = append(jobs, o.job(pattern, 0.02, frac, m))
		}
	}
	return runJobs(o, jobs), nil
}

// StaticPowerSweep reproduces Fig. 9: static power vs gated fraction per
// mechanism. Static power is workload independent for FLOV (the paper's
// observation), so a light uniform load suffices to settle power states.
func StaticPowerSweep(o Options) ([]SweepRow, error) {
	var jobs []sweep.Job
	for _, frac := range DefaultFractions {
		for _, m := range config.Mechanisms() {
			jobs = append(jobs, o.job(traffic.Uniform, 0.02, frac, m))
		}
	}
	return runJobs(o, jobs), nil
}
