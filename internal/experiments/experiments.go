// Package experiments drives every evaluation experiment of the paper —
// one function per figure/table — and returns structured rows that
// cmd/figures renders as CSV/ASCII and bench_test.go reports as metrics.
//
// All experiments hold the gated-core set fixed across mechanisms (same
// seed), so differences are attributable to the mechanism alone.
package experiments

import (
	"fmt"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/rp"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// Options control experiment scale.
type Options struct {
	// Quick shrinks cycle counts ~5x for smoke runs and -short tests.
	Quick bool
	// Seed for gated-set draws (identical across mechanisms).
	Seed uint64
}

// cycles returns (warmup, total) for synthetic runs.
func (o Options) cycles() (int64, int64) {
	if o.Quick {
		return 2_000, 20_000
	}
	return 10_000, 100_000
}

// DefaultFractions is the gated-core sweep of Figs. 6, 7, 8 and 9.
var DefaultFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// DefaultRates are the two injection rates of Figs. 6 and 7.
var DefaultRates = []float64{0.02, 0.08}

// SweepRow is one point of the Fig. 6/7/8/9 sweeps.
type SweepRow struct {
	Pattern   string
	Rate      float64
	Frac      float64
	Mechanism string

	AvgLatency     float64
	StaticPowerW   float64
	DynamicPowerW  float64
	TotalPowerW    float64
	Breakdown      stats.Breakdown
	GatedRouters   int
	Packets        int64
	Undelivered    int64
	EscapeFraction float64
}

// buildAndRun assembles one synthetic configuration and runs it.
func buildAndRun(pattern traffic.Pattern, rate, frac float64, mech config.Mechanism, o Options) (SweepRow, error) {
	cfg := config.Default()
	cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
	cfg.Seed = o.Seed + 1
	return runWithConfig(cfg, pattern, rate, frac, mech, o)
}

// runWithConfig runs one synthetic experiment with an explicit config
// (ablation sweeps tweak individual knobs).
func runWithConfig(cfg config.Config, pattern traffic.Pattern, rate, frac float64, mech config.Mechanism, o Options) (SweepRow, error) {
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return SweepRow{}, err
	}
	mask := gating.FractionGated(mesh, frac, nil, sim.NewRNG(o.Seed^0x5eed))
	gen := traffic.NewGenerator(pattern, mesh, nil)
	m, err := newMech(mech)
	if err != nil {
		return SweepRow{}, err
	}
	n, err := network.New(cfg, m, gating.Static(mask), gen, rate)
	if err != nil {
		return SweepRow{}, err
	}
	res := n.Run()
	return SweepRow{
		Pattern:        pattern.String(),
		Rate:           rate,
		Frac:           frac,
		Mechanism:      mech.String(),
		AvgLatency:     res.AvgLatency,
		StaticPowerW:   res.StaticPowerW,
		DynamicPowerW:  res.DynamicPowerW,
		TotalPowerW:    res.TotalPowerW,
		Breakdown:      res.Breakdown,
		GatedRouters:   res.GatedRouters,
		Packets:        res.Packets,
		Undelivered:    res.Undelivered,
		EscapeFraction: res.EscapeFrac,
	}, nil
}

// newMech instantiates the controller for a mechanism.
func newMech(m config.Mechanism) (network.Mechanism, error) {
	switch m {
	case config.Baseline:
		return network.NewBaseline(), nil
	case config.RP:
		return rp.New(), nil
	case config.RFLOV:
		return core.NewRFLOV(), nil
	case config.GFLOV:
		return core.NewGFLOV(), nil
	}
	return nil, fmt.Errorf("experiments: unknown mechanism %v", m)
}

// LatencyPowerSweep reproduces Fig. 6 (uniform) or Fig. 7 (tornado): the
// full rate x fraction x mechanism grid with latency, dynamic and total
// power.
func LatencyPowerSweep(pattern traffic.Pattern, o Options) ([]SweepRow, error) {
	var rows []SweepRow
	for _, rate := range DefaultRates {
		for _, frac := range DefaultFractions {
			for _, m := range config.Mechanisms() {
				r, err := buildAndRun(pattern, rate, frac, m, o)
				if err != nil {
					return nil, err
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// BreakdownSweep reproduces Fig. 8 (a)/(b): the latency decomposition at
// 0.02 flits/cycle/node across the gated-core sweep.
func BreakdownSweep(pattern traffic.Pattern, o Options) ([]SweepRow, error) {
	var rows []SweepRow
	for _, frac := range DefaultFractions {
		for _, m := range config.Mechanisms() {
			r, err := buildAndRun(pattern, 0.02, frac, m, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// StaticPowerSweep reproduces Fig. 9: static power vs gated fraction per
// mechanism. Static power is workload independent for FLOV (the paper's
// observation), so a light uniform load suffices to settle power states.
func StaticPowerSweep(o Options) ([]SweepRow, error) {
	var rows []SweepRow
	for _, frac := range DefaultFractions {
		for _, m := range config.Mechanisms() {
			r, err := buildAndRun(traffic.Uniform, 0.02, frac, m, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}
