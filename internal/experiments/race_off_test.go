//go:build !race

package experiments

// raceDetectorOn is false in ordinary test builds; see race_on_test.go.
const raceDetectorOn = false
