package experiments

import (
	"testing"

	"flov/internal/traffic"
)

func TestAblationParamsNamed(t *testing.T) {
	for p := AblationParam(0); p <= AblTransitionTimeout; p++ {
		if DefaultAblationValues(p) == nil {
			t.Errorf("%v has no default sweep", p)
		}
	}
}

// Ablation shape: a larger idle threshold gates routers less aggressively,
// so static power must not decrease as the threshold grows.
func TestAblationIdleThresholdShape(t *testing.T) {
	rows, err := Ablate(AblIdleThreshold, []int{2, 512}, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[1].StaticW < rows[0].StaticW-1e-9 {
		t.Errorf("static power dropped with a lazier idle threshold: %.3f -> %.3f",
			rows[0].StaticW, rows[1].StaticW)
	}
}

// Zero wakeup latency must not break the protocol.
func TestAblationZeroWakeup(t *testing.T) {
	rows, err := Ablate(AblWakeupLatency, []int{0}, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AvgLatency <= 0 {
		t.Fatal("no traffic measured")
	}
}

// Saturation: latency grows (weakly) with offered load for the baseline.
func TestSaturationMonotoneBaseline(t *testing.T) {
	if testing.Short() || raceDetectorOn {
		t.Skip("saturation sweep")
	}
	rows, err := SaturationSweep(traffic.Uniform, 0.0, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, r := range rows {
		if r.Mechanism != "Baseline" {
			continue
		}
		if r.AvgLatency+15 < prev { // generous slack for noise
			t.Errorf("latency dropped sharply with load: %.1f after %.1f at rate %.2f",
				r.AvgLatency, prev, r.Rate)
		}
		if r.AvgLatency > prev {
			prev = r.AvgLatency
		}
	}
	if prev < 30 {
		t.Errorf("baseline never saturated above zero-load latency: %.1f", prev)
	}
}

// Under churn, the transition machinery actually runs: transitions are
// counted, and a lazier idle threshold produces fewer sleep transitions.
func TestChurnAblationIdleThreshold(t *testing.T) {
	rows, err := AblateUnderChurn(AblIdleThreshold, []int{2, 512}, 1500, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sleeps == 0 || rows[0].Wakes == 0 {
		t.Fatalf("no transitions under churn: %+v", rows[0])
	}
	if rows[1].Sleeps > rows[0].Sleeps {
		t.Errorf("lazier idle threshold slept more: %d vs %d", rows[1].Sleeps, rows[0].Sleeps)
	}
}

// A tighter transition timeout aborts more under churn but must never
// lose packets (AblateUnderChurn fails on undelivered flits).
func TestChurnAblationTransitionTimeout(t *testing.T) {
	rows, err := AblateUnderChurn(AblTransitionTimeout, []int{64, 1024}, 800, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Sleeps == 0 {
			t.Fatalf("no transitions: %+v", r)
		}
	}
}
