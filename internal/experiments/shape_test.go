package experiments

import (
	"testing"

	"flov/internal/config"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// The tests in this file assert the qualitative shapes the paper reports
// — who wins, and roughly where — on reduced-scale runs.

var shapeOpts = Options{Quick: true, Seed: 42}

func row(t *testing.T, p traffic.Pattern, rate, frac float64, m config.Mechanism) SweepRow {
	t.Helper()
	r, err := buildAndRun(p, rate, frac, m, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%s: %d undelivered flits", r.Mechanism, r.Undelivered)
	}
	return r
}

// Paper Fig. 6(a): FLOV latency beats RP at moderate gated fractions.
func TestShapeFLOVLatencyBeatsRP(t *testing.T) {
	for _, frac := range []float64{0.3, 0.5} {
		rp := row(t, traffic.Uniform, 0.02, frac, config.RP)
		gf := row(t, traffic.Uniform, 0.02, frac, config.GFLOV)
		rf := row(t, traffic.Uniform, 0.02, frac, config.RFLOV)
		if gf.AvgLatency >= rp.AvgLatency {
			t.Errorf("frac %.1f: gFLOV latency %.1f >= RP %.1f", frac, gf.AvgLatency, rp.AvgLatency)
		}
		if rf.AvgLatency >= rp.AvgLatency {
			t.Errorf("frac %.1f: rFLOV latency %.1f >= RP %.1f", frac, rf.AvgLatency, rp.AvgLatency)
		}
	}
}

// Paper Fig. 9: gFLOV static power is lowest; the gap to RP widens with
// the gated fraction; rFLOV saturates above RP at high fractions.
func TestShapeStaticPowerOrdering(t *testing.T) {
	base := row(t, traffic.Uniform, 0.02, 0.6, config.Baseline)
	rp := row(t, traffic.Uniform, 0.02, 0.6, config.RP)
	gf := row(t, traffic.Uniform, 0.02, 0.6, config.GFLOV)
	rf := row(t, traffic.Uniform, 0.02, 0.6, config.RFLOV)
	if !(gf.StaticPowerW < rp.StaticPowerW && rp.StaticPowerW < base.StaticPowerW) {
		t.Errorf("static ordering violated: gFLOV %.3f RP %.3f base %.3f",
			gf.StaticPowerW, rp.StaticPowerW, base.StaticPowerW)
	}
	if rf.StaticPowerW <= rp.StaticPowerW {
		t.Errorf("rFLOV (%.3f) should saturate above RP (%.3f) at 60%% gated",
			rf.StaticPowerW, rp.StaticPowerW)
	}
}

// Paper Fig. 7: under Tornado, FLOV beats even the Baseline because
// same-row traffic rides 1-cycle FLOV latches instead of 3-cycle routers.
func TestShapeTornadoFLOVBeatsBaseline(t *testing.T) {
	base := row(t, traffic.Tornado, 0.02, 0.5, config.Baseline)
	gf := row(t, traffic.Tornado, 0.02, 0.5, config.GFLOV)
	if gf.AvgLatency >= base.AvgLatency {
		t.Errorf("tornado: gFLOV %.1f >= baseline %.1f", gf.AvgLatency, base.AvgLatency)
	}
	if gf.Breakdown.FLOV == 0 {
		t.Error("tornado at 50% gating should traverse FLOV links")
	}
}

// Paper Fig. 8: gFLOV accumulates FLOV latency as gating grows while its
// router latency drops relative to rFLOV.
func TestShapeBreakdownFLOVGrows(t *testing.T) {
	lo := row(t, traffic.Uniform, 0.02, 0.2, config.GFLOV)
	hi := row(t, traffic.Uniform, 0.02, 0.7, config.GFLOV)
	if hi.Breakdown.FLOV <= lo.Breakdown.FLOV {
		t.Errorf("FLOV latency should grow with gating: %.2f -> %.2f",
			lo.Breakdown.FLOV, hi.Breakdown.FLOV)
	}
	rf := row(t, traffic.Uniform, 0.02, 0.7, config.RFLOV)
	if rf.Breakdown.Router <= hi.Breakdown.Router {
		t.Errorf("rFLOV router latency (%.1f) should exceed gFLOV (%.1f) at 70%% (fewer FLOV hops)",
			rf.Breakdown.Router, hi.Breakdown.Router)
	}
}

// Paper Fig. 6(b): RP burns more dynamic power than FLOV (detours pay the
// full router pipeline at every hop).
func TestShapeRPDynamicPowerHigher(t *testing.T) {
	rp := row(t, traffic.Uniform, 0.08, 0.5, config.RP)
	gf := row(t, traffic.Uniform, 0.08, 0.5, config.GFLOV)
	if gf.DynamicPowerW >= rp.DynamicPowerW {
		t.Errorf("dynamic power: gFLOV %.3f >= RP %.3f", gf.DynamicPowerW, rp.DynamicPowerW)
	}
}

// Paper Fig. 10: RP's reconfiguration stalls produce latency spikes that
// gFLOV does not have.
func TestShapeReconfigSpike(t *testing.T) {
	rows, err := ReconfigTimeline([]config.Mechanism{config.RP, config.GFLOV}, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	rpPeak := PeakTimelineLatency(rows, "RP", 1000)
	gfPeak := PeakTimelineLatency(rows, "gFLOV", 1000)
	if rpPeak < 3*gfPeak {
		t.Errorf("RP peak %.1f not spiking vs gFLOV peak %.1f", rpPeak, gfPeak)
	}
}

// Full-system headline: every reduction must point the paper's way.
func TestShapeParsecHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-benchmark full-system sweep")
	}
	prof := mustProfile(t, "bodytrack")
	prof.QuotaPerCore = 40
	prof.Phases = 2
	base, err := RunParsecBenchmark(prof, config.Baseline, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunParsecBenchmark(prof, config.RP, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := RunParsecBenchmark(prof, config.GFLOV, shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if gf.StaticPJ >= base.StaticPJ || gf.StaticPJ >= rp.StaticPJ {
		t.Errorf("gFLOV static %.0f vs base %.0f, RP %.0f", gf.StaticPJ, base.StaticPJ, rp.StaticPJ)
	}
	if gf.TotalPJ >= rp.TotalPJ {
		t.Errorf("gFLOV total %.0f >= RP %.0f", gf.TotalPJ, rp.TotalPJ)
	}
	if float64(gf.RuntimeCyc) > 1.15*float64(base.RuntimeCyc) {
		t.Errorf("gFLOV runtime %.2fx baseline", float64(gf.RuntimeCyc)/float64(base.RuntimeCyc))
	}
}

func mustProfile(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, ok := trace.ProfileByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	return p
}

// Scaling: RP's latency penalty must grow with mesh size while gFLOV's
// stays bounded — the distributed-vs-centralized scaling argument.
func TestShapeScaling(t *testing.T) {
	if testing.Short() || raceDetectorOn {
		t.Skip("multi-size sweep")
	}
	rows, err := ScalingSweep(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(w int, mech string) float64 {
		var base, m float64
		for _, r := range rows {
			if r.Width != w {
				continue
			}
			if r.Mechanism == "Baseline" {
				base = r.AvgLatency
			}
			if r.Mechanism == mech {
				m = r.AvgLatency
			}
		}
		return m / base
	}
	if ratio(16, "RP") <= ratio(4, "RP") {
		t.Errorf("RP penalty should grow with size: 4x4 %.2fx vs 16x16 %.2fx",
			ratio(4, "RP"), ratio(16, "RP"))
	}
	if ratio(16, "gFLOV") >= ratio(16, "RP") {
		t.Errorf("gFLOV (%.2fx) should scale better than RP (%.2fx) at 16x16",
			ratio(16, "gFLOV"), ratio(16, "RP"))
	}
}
