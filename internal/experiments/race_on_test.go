//go:build race

package experiments

// raceDetectorOn reports that this test binary was built with -race.
// The race detector slows the simulator roughly 5x, so the heaviest
// full-grid sweeps skip under it to keep the package inside go test's
// default 10-minute budget; the race jobs still run every protocol,
// equivalence and engine-concurrency test.
const raceDetectorOn = true
