package experiments

import (
	"context"
	"fmt"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/sweep"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// SaturationRates is the offered-load sweep for the latency-vs-load curve
// (the standard NoC characterization the paper's Figs. 6/7 sample at two
// points).
var SaturationRates = []float64{0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.26, 0.30}

// SaturationSweep measures average latency against offered load for every
// mechanism at a fixed gated fraction, producing the classic saturation
// curve. Runs past saturation are reported as-is (latency explodes and
// some flits may remain undelivered at the drain deadline — that IS the
// signal).
func SaturationSweep(pattern traffic.Pattern, frac float64, o Options) ([]SweepRow, error) {
	var jobs []sweep.Job
	for _, rate := range SaturationRates {
		for _, m := range config.Mechanisms() {
			jobs = append(jobs, o.job(pattern, rate, frac, m))
		}
	}
	return runJobs(o, jobs), nil
}

// AblationParam selects a design knob to sweep (the design choices
// DESIGN.md calls out).
type AblationParam int

// Ablatable parameters.
const (
	// AblEscapeTimeout sweeps the Duato-recovery threshold: too small and
	// packets needlessly serialize into the single escape VC; too large
	// and transient blocking lingers.
	AblEscapeTimeout AblationParam = iota
	// AblWakeupLatency sweeps the circuit wakeup cost (Table I: 10).
	AblWakeupLatency
	// AblIdleThreshold sweeps how long a gated-core router waits before
	// draining: small = aggressive gating (more transitions), large =
	// conservative (less static saving).
	AblIdleThreshold
	// AblBufferDepth sweeps input VC buffer depth.
	AblBufferDepth
	// AblTransitionTimeout sweeps the liveness abort threshold.
	AblTransitionTimeout
)

// String names the parameter.
func (p AblationParam) String() string {
	switch p {
	case AblEscapeTimeout:
		return "escape-timeout"
	case AblWakeupLatency:
		return "wakeup-latency"
	case AblIdleThreshold:
		return "idle-threshold"
	case AblBufferDepth:
		return "buffer-depth"
	case AblTransitionTimeout:
		return "transition-timeout"
	default:
		return fmt.Sprintf("AblationParam(%d)", int(p))
	}
}

// DefaultAblationValues returns a sensible sweep per parameter.
func DefaultAblationValues(p AblationParam) []int {
	switch p {
	case AblEscapeTimeout:
		return []int{16, 64, 256}
	case AblWakeupLatency:
		return []int{0, 10, 40, 100}
	case AblIdleThreshold:
		return []int{2, 8, 64, 512}
	case AblBufferDepth:
		return []int{4, 6, 10}
	case AblTransitionTimeout:
		return []int{64, 256, 1024}
	default:
		return nil
	}
}

// AblationRow is one point of an ablation sweep.
type AblationRow struct {
	Param      string
	Value      int
	Mechanism  string
	AvgLatency float64
	StaticW    float64
	TotalW     float64
	GatedRout  int
	// Err marks a failed point; measurements are zero.
	Err string
}

// ablatedConfig applies one knob value to a standard experiment config.
func ablatedConfig(p AblationParam, v int, o Options) config.Config {
	cfg := config.Default()
	cfg.WarmupCycles, cfg.TotalCycles = o.cycles()
	cfg.Seed = o.Seed + 1
	switch p {
	case AblEscapeTimeout:
		cfg.EscapeTimeout = v
	case AblWakeupLatency:
		cfg.WakeupLatency = v
	case AblIdleThreshold:
		cfg.IdleThreshold = v
	case AblBufferDepth:
		cfg.BufferDepth = v
	case AblTransitionTimeout:
		cfg.TransitionTimeout = v
	}
	return cfg
}

// Ablate sweeps one design knob for gFLOV under uniform random traffic at
// 0.02 flits/cycle/node with half the cores gated — the configuration the
// paper's qualitative arguments are about.
func Ablate(p AblationParam, values []int, o Options) ([]AblationRow, error) {
	if values == nil {
		values = DefaultAblationValues(p)
	}
	jobs := make([]sweep.Job, len(values))
	for i, v := range values {
		jobs[i] = o.jobWithConfig(ablatedConfig(p, v, o), traffic.Uniform, 0.02, 0.5, config.GFLOV)
	}
	results := o.engine().Run(context.Background(), jobs)
	rows := make([]AblationRow, len(results))
	for i, res := range results {
		r := rowFromResult(res)
		rows[i] = AblationRow{
			Param:      p.String(),
			Value:      values[i],
			Mechanism:  r.Mechanism,
			AvgLatency: r.AvgLatency,
			StaticW:    r.StaticPowerW,
			TotalW:     r.TotalPowerW,
			GatedRout:  r.GatedRouters,
			Err:        r.Err,
		}
	}
	return rows, nil
}

// ChurnAblationRow measures a protocol constant under gating churn —
// where the transition machinery is actually exercised (under a static
// mask these constants are invisible; see EXPERIMENTS.md).
type ChurnAblationRow struct {
	Param       string
	Value       int
	AvgLatency  float64
	TotalPowerW float64
	Sleeps      int64
	Wakes       int64
	Aborts      int64
}

// AblateUnderChurn sweeps a design knob for gFLOV while the gated set is
// re-drawn every `period` cycles (an OS aggressively consolidating
// threads), reporting transition counts alongside latency and power.
func AblateUnderChurn(p AblationParam, values []int, period int64, o Options) ([]ChurnAblationRow, error) {
	if values == nil {
		values = DefaultAblationValues(p)
	}
	var rows []ChurnAblationRow
	for _, v := range values {
		cfg := ablatedConfig(p, v, o)
		mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(o.Seed ^ 0xca12)
		var events []gating.Event
		for at := int64(0); at < cfg.TotalCycles; at += period {
			events = append(events, gating.Event{
				At:    at,
				Gated: gating.FractionGated(mesh, 0.3+0.4*rng.Float64(), nil, rng.Fork(uint64(at)+1)),
			})
		}
		sched, err := gating.New(cfg.N(), events)
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
		mech := core.NewGFLOV()
		n, err := network.New(cfg, mech, sched, gen, 0.02)
		if err != nil {
			return nil, err
		}
		res := n.Run()
		if res.Undelivered != 0 {
			return nil, fmt.Errorf("experiments: churn ablation %v=%d left %d flits undelivered", p, v, res.Undelivered)
		}
		sleeps, wakes, aborts := mech.SleepStats()
		rows = append(rows, ChurnAblationRow{
			Param: p.String(), Value: v,
			AvgLatency: res.AvgLatency, TotalPowerW: res.TotalPowerW,
			Sleeps: sleeps, Wakes: wakes, Aborts: aborts,
		})
	}
	return rows, nil
}
