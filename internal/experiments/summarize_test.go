package experiments

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	rows := []ParsecRow{
		{Benchmark: "a", Mechanism: "Baseline", StaticPJ: 100, TotalPJ: 120, RuntimeCyc: 1000},
		{Benchmark: "a", Mechanism: "RP", StaticPJ: 80, TotalPJ: 110, RuntimeCyc: 1100},
		{Benchmark: "a", Mechanism: "gFLOV", StaticPJ: 60, TotalPJ: 77, RuntimeCyc: 1010},
		{Benchmark: "b", Mechanism: "Baseline", StaticPJ: 200, TotalPJ: 240, RuntimeCyc: 2000},
		{Benchmark: "b", Mechanism: "RP", StaticPJ: 150, TotalPJ: 220, RuntimeCyc: 2300},
		{Benchmark: "b", Mechanism: "gFLOV", StaticPJ: 100, TotalPJ: 132, RuntimeCyc: 2040},
	}
	h := Summarize(rows)
	if h.Benchmarks != 2 {
		t.Fatalf("benchmarks = %d", h.Benchmarks)
	}
	// a: static vs base 40%, b: 50% -> mean 45.
	if math.Abs(h.StaticVsBaselinePct-45) > 1e-9 {
		t.Fatalf("static vs baseline = %v", h.StaticVsBaselinePct)
	}
	// a: runtime +1%, b: +2% -> mean 1.5.
	if math.Abs(h.RuntimeVsBasePct-1.5) > 1e-9 {
		t.Fatalf("runtime = %v", h.RuntimeVsBasePct)
	}
	// a: static vs RP 25%, b: 33.33% -> mean ~29.17.
	if math.Abs(h.StaticVsRPPct-(25+100.0/3)/2) > 1e-6 {
		t.Fatalf("static vs RP = %v", h.StaticVsRPPct)
	}
	// a: total vs RP 30%, b: 40% -> mean 35.
	if math.Abs(h.TotalVsRPPct-35) > 1e-9 {
		t.Fatalf("total vs RP = %v", h.TotalVsRPPct)
	}
}

func TestSummarizeIgnoresIncomplete(t *testing.T) {
	rows := []ParsecRow{
		{Benchmark: "x", Mechanism: "Baseline", StaticPJ: 100, TotalPJ: 120, RuntimeCyc: 1000},
		// no RP / gFLOV rows for "x"
	}
	h := Summarize(rows)
	if h.Benchmarks != 0 {
		t.Fatalf("incomplete benchmark counted: %+v", h)
	}
}
