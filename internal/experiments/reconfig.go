package experiments

import (
	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/sweep"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// TimelineRow is one bin of the Fig. 10 reconfiguration-overhead plot.
type TimelineRow struct {
	Mechanism string
	BinStart  int64
	AvgLat    float64
	Packets   int64
}

// ReconfigTimeline reproduces Fig. 10: uniform random traffic at 0.02
// flits/cycle/node with 10% of cores power-gated; the gated set changes
// at cycles 50,000 and 60,000. RP stalls the whole network during each
// Phase-I reconfiguration (queueing spikes); gFLOV reacts locally and the
// timeline stays flat.
func ReconfigTimeline(mechs []config.Mechanism, o Options) ([]TimelineRow, error) {
	cfg := config.Default()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 100_000
	cfg.TimelineBinSz = 1_000
	change1, change2 := int64(50_000), int64(60_000)
	if o.Quick {
		cfg.TotalCycles = 30_000
		cfg.TimelineBinSz = 500
		change1, change2 = 15_000, 20_000
	}
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(o.Seed ^ 0x716e)
	mask0 := gating.FractionGated(mesh, 0.10, nil, rng.Fork(1))
	mask1 := gating.FractionGated(mesh, 0.10, nil, rng.Fork(2))
	mask2 := gating.FractionGated(mesh, 0.10, nil, rng.Fork(3))
	sched, err := gating.New(cfg.N(), []gating.Event{
		{At: 0, Gated: mask0},
		{At: change1, Gated: mask1},
		{At: change2, Gated: mask2},
	})
	if err != nil {
		return nil, err
	}

	var rows []TimelineRow
	for _, mc := range mechs {
		gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
		m, err := sweep.NewMechanism(mc)
		if err != nil {
			return nil, err
		}
		n, err := network.New(cfg, m, sched, gen, 0.02)
		if err != nil {
			return nil, err
		}
		res := n.Run()
		for _, b := range res.Timeline {
			rows = append(rows, TimelineRow{
				Mechanism: mc.String(),
				BinStart:  b.Start,
				AvgLat:    b.AvgLat,
				Packets:   b.Count,
			})
		}
	}
	return rows, nil
}

// PeakTimelineLatency returns the worst bin average for one mechanism in
// a timeline row set (used by tests asserting the RP spike exists and the
// gFLOV timeline stays flat).
func PeakTimelineLatency(rows []TimelineRow, mech string, fromBin int64) float64 {
	peak := 0.0
	for _, r := range rows {
		if r.Mechanism == mech && r.BinStart >= fromBin && r.Packets > 0 && r.AvgLat > peak {
			peak = r.AvgLat
		}
	}
	return peak
}
