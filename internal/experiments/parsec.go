package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"flov/internal/config"
	"flov/internal/sweep"
	"flov/internal/trace"
)

// ParsecRow is one benchmark x mechanism cell of Figs. 8 (c)/(d): static
// energy and runtime, raw and normalized to Baseline.
type ParsecRow struct {
	Benchmark string
	Mechanism string

	RuntimeCyc int64
	StaticPJ   float64
	DynamicPJ  float64
	TotalPJ    float64

	// Normalized to the same benchmark's Baseline run.
	NormStatic  float64
	NormTotal   float64
	NormRuntime float64

	// Err marks a failed point (or a point whose Baseline reference
	// failed, leaving the norm columns zero).
	Err string
}

// parsecJob builds the engine job for one benchmark x mechanism cell,
// applying the Quick profile reductions.
func parsecJob(prof trace.Profile, mech config.Mechanism, o Options) sweep.Job {
	if o.Quick {
		prof.QuotaPerCore /= 4
		if prof.QuotaPerCore < 10 {
			prof.QuotaPerCore = 10
		}
		if prof.Phases > 2 {
			prof.Phases = 2
		}
	}
	cfg := config.FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	cfg.Seed = o.Seed + 1
	cfg.Mechanism = mech
	return sweep.Job{
		Kind:      sweep.PARSEC,
		Config:    cfg,
		Mechanism: mech,
		Profile:   prof,
		Seed:      o.Seed + 7,
		MaxCycles: 50_000_000,
	}
}

// RunParsecBenchmark runs one benchmark under one mechanism.
func RunParsecBenchmark(prof trace.Profile, mech config.Mechanism, o Options) (trace.Outcome, error) {
	r := parsecJob(prof, mech, o).Run()
	if r.Err != "" {
		return r.Out, errors.New(r.Err)
	}
	return r.Out, nil
}

// ParsecSweep reproduces Figs. 8 (c)/(d): all nine benchmarks under all
// four mechanisms, normalized per benchmark to Baseline. The whole
// benchmark x mechanism grid runs through the engine; each Baseline run
// is simulated once and reused as its benchmark's normalization
// reference.
func ParsecSweep(o Options) ([]ParsecRow, error) {
	profs := trace.Profiles()
	mechs := config.Mechanisms() // mechs[0] is Baseline
	var jobs []sweep.Job
	for _, prof := range profs {
		for _, mech := range mechs {
			jobs = append(jobs, parsecJob(prof, mech, o))
		}
	}
	results := o.engine().Run(context.Background(), jobs)

	var rows []ParsecRow
	for bi, prof := range profs {
		base := results[bi*len(mechs)]
		for mi, mech := range mechs {
			res := results[bi*len(mechs)+mi]
			row := ParsecRow{
				Benchmark: prof.Name,
				Mechanism: mech.String(),
				Err:       res.Err,
			}
			if res.Err == "" {
				out := res.Out
				row.RuntimeCyc = out.RuntimeCyc
				row.StaticPJ = out.StaticPJ
				row.DynamicPJ = out.DynamicPJ
				row.TotalPJ = out.TotalPJ
				switch {
				case base.Err != "":
					row.Err = fmt.Sprintf("baseline reference failed: %s", base.Err)
				case base.Out.StaticPJ <= 0 || base.Out.TotalPJ <= 0 || base.Out.RuntimeCyc == 0:
					row.Err = "baseline reference is degenerate (zero energy or runtime)"
				default:
					row.NormStatic = out.StaticPJ / base.Out.StaticPJ
					row.NormTotal = out.TotalPJ / base.Out.TotalPJ
					row.NormRuntime = float64(out.RuntimeCyc) / float64(base.Out.RuntimeCyc)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Headline aggregates the PARSEC sweep into the paper's abstract claims:
// FLOV (gFLOV) static/total energy reduction versus Baseline and RP, and
// the runtime degradation versus Baseline, averaged across benchmarks.
type Headline struct {
	StaticVsBaselinePct float64 // paper: 43% reduction
	RuntimeVsBasePct    float64 // paper: ~1% degradation
	StaticVsRPPct       float64 // paper: 22% reduction
	TotalVsRPPct        float64 // paper: 18% reduction
	Benchmarks          int
}

// Summarize computes the headline numbers from a ParsecSweep row set.
func Summarize(rows []ParsecRow) Headline {
	type acc struct{ base, rp, gflov ParsecRow }
	byBench := map[string]*acc{}
	for _, r := range rows {
		a := byBench[r.Benchmark]
		if a == nil {
			a = &acc{}
			byBench[r.Benchmark] = a
		}
		switch r.Mechanism {
		case "Baseline":
			a.base = r
		case "RP":
			a.rp = r
		case "gFLOV":
			a.gflov = r
		}
	}
	// Iterate benchmarks in sorted order: float accumulation is not
	// associative, so summing in map order would make the headline
	// numbers differ between runs of the same sweep.
	var names []string
	for name := range byBench {
		names = append(names, name)
	}
	sort.Strings(names)
	var h Headline
	for _, name := range names {
		a := byBench[name]
		if a.base.StaticPJ <= 0 || a.rp.StaticPJ <= 0 || a.gflov.StaticPJ <= 0 {
			continue
		}
		h.Benchmarks++
		h.StaticVsBaselinePct += (1 - a.gflov.StaticPJ/a.base.StaticPJ) * 100
		h.RuntimeVsBasePct += (float64(a.gflov.RuntimeCyc)/float64(a.base.RuntimeCyc) - 1) * 100
		h.StaticVsRPPct += (1 - a.gflov.StaticPJ/a.rp.StaticPJ) * 100
		h.TotalVsRPPct += (1 - a.gflov.TotalPJ/a.rp.TotalPJ) * 100
	}
	if h.Benchmarks > 0 {
		n := float64(h.Benchmarks)
		h.StaticVsBaselinePct /= n
		h.RuntimeVsBasePct /= n
		h.StaticVsRPPct /= n
		h.TotalVsRPPct /= n
	}
	return h
}
