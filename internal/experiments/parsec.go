package experiments

import (
	"fmt"

	"flov/internal/config"
	"flov/internal/network"
	"flov/internal/trace"
)

// ParsecRow is one benchmark x mechanism cell of Figs. 8 (c)/(d): static
// energy and runtime, raw and normalized to Baseline.
type ParsecRow struct {
	Benchmark string
	Mechanism string

	RuntimeCyc int64
	StaticPJ   float64
	DynamicPJ  float64
	TotalPJ    float64

	// Normalized to the same benchmark's Baseline run.
	NormStatic  float64
	NormTotal   float64
	NormRuntime float64
}

// RunParsecBenchmark runs one benchmark under one mechanism.
func RunParsecBenchmark(prof trace.Profile, mech config.Mechanism, o Options) (trace.Outcome, error) {
	if o.Quick {
		prof.QuotaPerCore /= 4
		if prof.QuotaPerCore < 10 {
			prof.QuotaPerCore = 10
		}
		if prof.Phases > 2 {
			prof.Phases = 2
		}
	}
	cfg := config.FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	cfg.Seed = o.Seed + 1
	m, err := newMech(mech)
	if err != nil {
		return trace.Outcome{}, err
	}
	n, err := network.New(cfg, m, nil, nil, 0)
	if err != nil {
		return trace.Outcome{}, err
	}
	out := trace.NewDriver(n, prof, o.Seed+7).Run(50_000_000)
	if !out.Completed {
		return out, fmt.Errorf("experiments: %s/%v did not complete", prof.Name, mech)
	}
	return out, nil
}

// ParsecSweep reproduces Figs. 8 (c)/(d): all nine benchmarks under all
// four mechanisms, normalized per benchmark to Baseline.
func ParsecSweep(o Options) ([]ParsecRow, error) {
	var rows []ParsecRow
	for _, prof := range trace.Profiles() {
		base, err := RunParsecBenchmark(prof, config.Baseline, o)
		if err != nil {
			return nil, err
		}
		for _, mech := range config.Mechanisms() {
			out := base
			if mech != config.Baseline {
				out, err = RunParsecBenchmark(prof, mech, o)
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, ParsecRow{
				Benchmark:   prof.Name,
				Mechanism:   mech.String(),
				RuntimeCyc:  out.RuntimeCyc,
				StaticPJ:    out.StaticPJ,
				DynamicPJ:   out.DynamicPJ,
				TotalPJ:     out.TotalPJ,
				NormStatic:  out.StaticPJ / base.StaticPJ,
				NormTotal:   out.TotalPJ / base.TotalPJ,
				NormRuntime: float64(out.RuntimeCyc) / float64(base.RuntimeCyc),
			})
		}
	}
	return rows, nil
}

// Headline aggregates the PARSEC sweep into the paper's abstract claims:
// FLOV (gFLOV) static/total energy reduction versus Baseline and RP, and
// the runtime degradation versus Baseline, averaged across benchmarks.
type Headline struct {
	StaticVsBaselinePct float64 // paper: 43% reduction
	RuntimeVsBasePct    float64 // paper: ~1% degradation
	StaticVsRPPct       float64 // paper: 22% reduction
	TotalVsRPPct        float64 // paper: 18% reduction
	Benchmarks          int
}

// Summarize computes the headline numbers from a ParsecSweep row set.
func Summarize(rows []ParsecRow) Headline {
	type acc struct{ base, rp, gflov ParsecRow }
	byBench := map[string]*acc{}
	for _, r := range rows {
		a := byBench[r.Benchmark]
		if a == nil {
			a = &acc{}
			byBench[r.Benchmark] = a
		}
		switch r.Mechanism {
		case "Baseline":
			a.base = r
		case "RP":
			a.rp = r
		case "gFLOV":
			a.gflov = r
		}
	}
	var h Headline
	for _, a := range byBench {
		if a.base.StaticPJ == 0 || a.rp.StaticPJ == 0 || a.gflov.StaticPJ == 0 {
			continue
		}
		h.Benchmarks++
		h.StaticVsBaselinePct += (1 - a.gflov.StaticPJ/a.base.StaticPJ) * 100
		h.RuntimeVsBasePct += (float64(a.gflov.RuntimeCyc)/float64(a.base.RuntimeCyc) - 1) * 100
		h.StaticVsRPPct += (1 - a.gflov.StaticPJ/a.rp.StaticPJ) * 100
		h.TotalVsRPPct += (1 - a.gflov.TotalPJ/a.rp.TotalPJ) * 100
	}
	if h.Benchmarks > 0 {
		n := float64(h.Benchmarks)
		h.StaticVsBaselinePct /= n
		h.RuntimeVsBasePct /= n
		h.StaticVsRPPct /= n
		h.TotalVsRPPct /= n
	}
	return h
}
