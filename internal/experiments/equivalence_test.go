package experiments

import (
	"reflect"
	"testing"

	"flov/internal/config"
	"flov/internal/sweep"
	"flov/internal/traffic"
)

// TestEngineRowsMatchSequentialReference pins the engine rewiring to the
// original sequential implementation: the same grid, fanned out across
// the worker pool, must produce rows identical in order and value to
// running buildAndRun point by point.
func TestEngineRowsMatchSequentialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sweep grid twice")
	}
	o := Options{Quick: true, Seed: 42, Engine: &sweep.Engine{Workers: 8}}

	// Reduced grid in LatencyPowerSweep order: rate x frac x mechanism.
	rates := []float64{0.02}
	fracs := []float64{0, 0.5}

	var jobs []sweep.Job
	var want []SweepRow
	for _, rate := range rates {
		for _, frac := range fracs {
			for _, m := range config.Mechanisms() {
				jobs = append(jobs, o.job(traffic.Uniform, rate, frac, m))
				row, err := buildAndRun(traffic.Uniform, rate, frac, m, o)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, row)
			}
		}
	}

	got := runJobs(o, jobs)
	if len(got) != len(want) {
		t.Fatalf("engine returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("row %d differs:\n  engine:     %+v\n  sequential: %+v", i, got[i], want[i])
		}
	}
}
