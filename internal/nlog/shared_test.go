package nlog

import (
	"fmt"
	"sync"
	"testing"
)

// TestSharedConcurrentAdd pins that Shared serializes concurrent
// recorders (meaningful under -race) and keeps the ring bounded.
func TestSharedConcurrentAdd(t *testing.T) {
	s := NewShared(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Addf(int64(i), KService, -1, "g%d event %d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if s.Total() != 400 {
		t.Fatalf("Total = %d, want 400", s.Total())
	}
	if n := len(s.Events()); n != 16 {
		t.Fatalf("retained %d events, want 16", n)
	}
	if n := len(s.Tail(4)); n != 4 {
		t.Fatalf("Tail(4) returned %d events", n)
	}
}

func TestServiceKindString(t *testing.T) {
	if got := fmt.Sprint(KService); got != "service" {
		t.Fatalf("KService.String() = %q", got)
	}
}
