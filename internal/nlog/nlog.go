// Package nlog is a lightweight bounded event log for simulator
// introspection: power-state transitions, handshake messages, credit
// events and reconfigurations are recorded into a ring buffer that can be
// dumped when something interesting (or wrong) happens. It exists because
// debugging a distributed power-gating protocol is archaeology — the bug
// is visible long after the cycle that caused it.
package nlog

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KTransition Kind = iota // router power-state change
	KMsg                    // handshake message processed
	KCredit                 // credit consume/return/bulk-rewrite
	KPacket                 // packet injected/delivered
	KReconfig               // Router Parking reconfiguration
	KGating                 // core-gating mask change
	KService                // serving-layer lifecycle (flovd job queue, drain)
	KFault                  // fault injection/heal, classified packet drops
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KTransition:
		return "trans"
	case KMsg:
		return "msg"
	case KCredit:
		return "credit"
	case KPacket:
		return "pkt"
	case KReconfig:
		return "reconfig"
	case KGating:
		return "gating"
	case KService:
		return "service"
	case KFault:
		return "fault"
	default:
		return "?"
	}
}

// Event is one recorded occurrence.
type Event struct {
	Cycle  int64
	Kind   Kind
	Router int // -1 when not router-specific
	Note   string
}

// String renders one line.
func (e Event) String() string {
	if e.Router >= 0 {
		return fmt.Sprintf("cyc %8d  %-8s r%-3d %s", e.Cycle, e.Kind, e.Router, e.Note)
	}
	return fmt.Sprintf("cyc %8d  %-8s      %s", e.Cycle, e.Kind, e.Note)
}

// Log is a bounded ring of events. The zero value is unusable; use New.
// Not safe for concurrent use (the simulator is single-threaded).
type Log struct {
	buf     []Event
	next    int
	wrapped bool
	enabled [numKinds]bool
	count   int64
}

// New returns a log holding the most recent capacity events, recording
// every kind. Use Only to restrict.
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	l := &Log{buf: make([]Event, 0, capacity)}
	for k := range l.enabled {
		l.enabled[k] = true
	}
	return l
}

// Only restricts recording to the given kinds (chainable).
func (l *Log) Only(kinds ...Kind) *Log {
	for k := range l.enabled {
		l.enabled[k] = false
	}
	for _, k := range kinds {
		l.enabled[k] = true
	}
	return l
}

// Add records an event (dropping the oldest when full).
func (l *Log) Add(cycle int64, kind Kind, router int, note string) {
	if !l.enabled[kind] {
		return
	}
	l.count++
	e := Event{Cycle: cycle, Kind: kind, Router: router, Note: note}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % cap(l.buf)
	l.wrapped = true
}

// Addf records a formatted event. Prefer Add with a prebuilt string on
// hot paths; Addf allocates.
func (l *Log) Addf(cycle int64, kind Kind, router int, format string, args ...any) {
	if !l.enabled[kind] {
		return
	}
	l.Add(cycle, kind, router, fmt.Sprintf(format, args...)) //flovlint:allow hotalloc -- formatting only runs when tracing is enabled
}

// Total returns how many events were recorded (including evicted ones).
func (l *Log) Total() int64 { return l.count }

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if !l.wrapped {
		return append([]Event(nil), l.buf...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Tail returns the newest n retained events, oldest first.
func (l *Log) Tail(n int) []Event {
	evs := l.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// WriteTo dumps the retained events, one per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// FilterRouter returns the retained events touching router id.
func (l *Log) FilterRouter(id int) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Router == id {
			out = append(out, e)
		}
	}
	return out
}
