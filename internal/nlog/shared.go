package nlog

import (
	"io"
	"sync"
)

// Shared is a mutex-guarded Log for concurrent recorders. The simulator
// itself is single-threaded and uses Log directly; the serving layer
// (flovd) records from handler and runner goroutines and needs the
// lock. The Cycle field carries whatever monotonic ordinal the caller
// chooses (flovd stamps unix milliseconds).
type Shared struct {
	mu  sync.Mutex
	log *Log
}

// NewShared returns a concurrent ring holding the most recent capacity
// events.
func NewShared(capacity int) *Shared {
	return &Shared{log: New(capacity)}
}

// Add records an event (dropping the oldest when full).
func (s *Shared) Add(cycle int64, kind Kind, router int, note string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Add(cycle, kind, router, note)
}

// Addf records a formatted event.
func (s *Shared) Addf(cycle int64, kind Kind, router int, format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Addf(cycle, kind, router, format, args...)
}

// Total returns how many events were recorded (including evicted ones).
func (s *Shared) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Total()
}

// Events returns the retained events, oldest first.
func (s *Shared) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Events()
}

// Tail returns the newest n retained events, oldest first.
func (s *Shared) Tail(n int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Tail(n)
}

// WriteTo dumps the retained events, one per line.
func (s *Shared) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.WriteTo(w)
}
