package nlog

import (
	"strings"
	"testing"
)

func TestLogBasics(t *testing.T) {
	l := New(10)
	l.Add(1, KTransition, 5, "Active->Draining")
	l.Add(2, KMsg, 6, "DrainReq from 5")
	evs := l.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Router != 6 {
		t.Fatalf("events: %v", evs)
	}
	if l.Total() != 2 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestLogRingEviction(t *testing.T) {
	l := New(3)
	for i := int64(0); i < 10; i++ {
		l.Add(i, KCredit, int(i), "x")
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	if evs[0].Cycle != 7 || evs[2].Cycle != 9 {
		t.Fatalf("wrong window: %v", evs)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestLogOnlyFilter(t *testing.T) {
	l := New(10).Only(KTransition)
	l.Add(1, KTransition, 0, "a")
	l.Add(2, KCredit, 0, "b")
	l.Add(3, KMsg, 0, "c")
	if len(l.Events()) != 1 {
		t.Fatalf("filter failed: %v", l.Events())
	}
}

func TestLogTail(t *testing.T) {
	l := New(10)
	for i := int64(0); i < 5; i++ {
		l.Add(i, KPacket, 0, "p")
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Cycle != 3 {
		t.Fatalf("tail: %v", tail)
	}
}

func TestLogFilterRouter(t *testing.T) {
	l := New(10)
	l.Add(1, KTransition, 3, "a")
	l.Add(2, KTransition, 4, "b")
	l.Add(3, KMsg, 3, "c")
	got := l.FilterRouter(3)
	if len(got) != 2 {
		t.Fatalf("router filter: %v", got)
	}
}

func TestLogWriteTo(t *testing.T) {
	l := New(4)
	l.Add(12, KReconfig, -1, "phase I start")
	l.Addf(13, KGating, -1, "mask changed: %d gated", 7)
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "phase I start") || !strings.Contains(out, "mask changed: 7 gated") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "reconfig") {
		t.Fatal("kind name missing")
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestTinyCapacity(t *testing.T) {
	l := New(0) // clamps to 1
	l.Add(1, KMsg, 0, "a")
	l.Add(2, KMsg, 0, "b")
	evs := l.Events()
	if len(evs) != 1 || evs[0].Cycle != 2 {
		t.Fatalf("tiny ring: %v", evs)
	}
}
