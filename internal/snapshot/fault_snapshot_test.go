package snapshot

import (
	"bytes"
	"testing"

	"flov/internal/config"
	"flov/internal/fault"
)

// faultScenario exercises every injector state class across the snapshot
// boundary: a permanent router kill (component labels), a transient link
// fault in flight at the capture point, and rate-driven faults (RNG
// stream position).
func faultScenario() fault.Spec {
	return fault.Spec{
		Seed:            13,
		LinkRate:        2e-4,
		TransientCycles: 400,
		Schedule: []fault.Event{
			{At: 200, Kind: "router", Node: 5},
			{At: 700, Kind: "link", Node: 9, Dir: "E", Transient: 600},
		},
		DropTimeout: 300,
	}
}

// TestRoundTripWithFaults: snapshot a fault-injection run mid-flight —
// after a permanent kill, with a transient fault still pending heal —
// restore into a fresh network with the same spec attached, and finish
// both. The final results must be byte-identical, fault counters and
// drop classifications included.
func TestRoundTripWithFaults(t *testing.T) {
	for _, mech := range []config.Mechanism{config.Baseline, config.GFLOV} {
		for _, mid := range []int64{250, 900} {
			cfg := testConfig()
			a := buildSynthetic(t, cfg, mech)
			if err := a.AttachFaults(faultScenario()); err != nil {
				t.Fatal(err)
			}
			a.RunTo(mid)
			var buf bytes.Buffer
			if err := Save(&buf, a, nil); err != nil {
				t.Fatalf("%s mid=%d: save: %v", mech, mid, err)
			}

			b := buildSynthetic(t, cfg, mech)
			if err := b.AttachFaults(faultScenario()); err != nil {
				t.Fatal(err)
			}
			if err := Restore(bytes.NewReader(buf.Bytes()), b, nil); err != nil {
				t.Fatalf("%s mid=%d: restore: %v", mech, mid, err)
			}

			ra := resultsJSON(t, a.Run())
			rb := resultsJSON(t, b.Run())
			if !bytes.Equal(ra, rb) {
				t.Fatalf("%s snapshot at %d with faults: final results differ\nuninterrupted: %.400s\nrestored:      %.400s",
					mech, mid, ra, rb)
			}
		}
	}
}

// TestRestoreFaultSpecMismatch: a fault-run snapshot refuses to restore
// into a network without faults attached, or with a different spec — the
// schedule is part of the run's identity.
func TestRestoreFaultSpecMismatch(t *testing.T) {
	cfg := testConfig()
	a := buildSynthetic(t, cfg, config.Baseline)
	if err := a.AttachFaults(faultScenario()); err != nil {
		t.Fatal(err)
	}
	a.RunTo(400)
	var buf bytes.Buffer
	if err := Save(&buf, a, nil); err != nil {
		t.Fatal(err)
	}

	plain := buildSynthetic(t, cfg, config.Baseline)
	if err := Restore(bytes.NewReader(buf.Bytes()), plain, nil); err == nil {
		t.Fatal("fault-run snapshot restored into a fault-free network")
	}

	other := buildSynthetic(t, cfg, config.Baseline)
	spec := faultScenario()
	spec.LinkRate = 9e-4
	if err := other.AttachFaults(spec); err != nil {
		t.Fatal(err)
	}
	if err := Restore(bytes.NewReader(buf.Bytes()), other, nil); err == nil {
		t.Fatal("snapshot restored under a different fault spec")
	}

	// And the reverse: a fault-free snapshot must not restore into a
	// network that has an injector attached.
	clean := buildSynthetic(t, cfg, config.Baseline)
	clean.RunTo(400)
	buf.Reset()
	if err := Save(&buf, clean, nil); err != nil {
		t.Fatal(err)
	}
	faulted := buildSynthetic(t, cfg, config.Baseline)
	if err := faulted.AttachFaults(faultScenario()); err != nil {
		t.Fatal(err)
	}
	if err := Restore(bytes.NewReader(buf.Bytes()), faulted, nil); err == nil {
		t.Fatal("fault-free snapshot restored into a faulted network")
	}
}
