package snapshot

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/rp"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// testConfig is a small, fast synthetic testbed: a 4x4 mesh with a short
// measurement window, enough traffic to exercise buffers, links, escape
// VCs and the gating protocols.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 300
	cfg.TotalCycles = 2500
	cfg.DrainCycles = 8000
	return cfg
}

// buildSynthetic assembles one synthetic network the way the sweep
// engine does: static mask from a seeded draw, uniform traffic.
func buildSynthetic(t *testing.T, cfg config.Config, mech config.Mechanism) *network.Network {
	t.Helper()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	mask := gating.FractionGated(mesh, 0.4, nil, sim.NewRNG(11))
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	m, err := newMech(mech)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(cfg, m, gating.Static(mask), gen, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newMech(m config.Mechanism) (network.Mechanism, error) {
	switch m {
	case config.RP:
		return rp.New(), nil
	case config.RFLOV:
		return core.NewRFLOV(), nil
	case config.GFLOV:
		return core.NewGFLOV(), nil
	default:
		return network.NewBaseline(), nil
	}
}

// resultsJSON renders run results canonically for byte comparison.
func resultsJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRoundTripMidRun pins the core property: snapshot at an arbitrary
// mid-run cycle, restore into a freshly built network, run to the end —
// the final statistics are byte-identical to the uninterrupted run, for
// every mechanism and at several snapshot points (before, at and after
// the warmup boundary).
func TestRoundTripMidRun(t *testing.T) {
	for _, mech := range []config.Mechanism{config.Baseline, config.RP, config.RFLOV, config.GFLOV} {
		for _, mid := range []int64{1, 300, 777} {
			t.Run(mech.String()+"/"+string(rune('0'+mid%10)), func(t *testing.T) {
				cfg := testConfig()
				a := buildSynthetic(t, cfg, mech)
				a.RunTo(mid)
				var buf bytes.Buffer
				if err := Save(&buf, a, nil); err != nil {
					t.Fatalf("save at cycle %d: %v", mid, err)
				}

				b := buildSynthetic(t, cfg, mech)
				if err := Restore(bytes.NewReader(buf.Bytes()), b, nil); err != nil {
					t.Fatalf("restore at cycle %d: %v", mid, err)
				}
				if d, err := Diff(a, b, nil, nil); err != nil {
					t.Fatal(err)
				} else if d != "" {
					t.Fatalf("restored network diverges immediately: %s", d)
				}

				// a continues uninterrupted; b continues from the restore.
				ra := resultsJSON(t, a.Run())
				rb := resultsJSON(t, b.Run())
				if !bytes.Equal(ra, rb) {
					t.Fatalf("mech %s snapshot at %d: final results differ\nuninterrupted: %s\nrestored:      %s",
						mech, mid, ra, rb)
				}
			})
		}
	}
}

// TestRoundTripPARSEC does the same for a closed-loop full-system run:
// the driver's MSHR windows, pending replies and phase cursor must
// survive the round trip too.
func TestRoundTripPARSEC(t *testing.T) {
	cfg := config.FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 30
	prof, ok := trace.ProfileByName("bodytrack")
	if !ok {
		t.Fatal("bodytrack profile missing")
	}
	prof.QuotaPerCore = 30
	prof.Phases = 2

	build := func() (*network.Network, *trace.Driver) {
		n, err := network.New(cfg, core.NewGFLOV(), nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return n, trace.NewDriver(n, prof, 7)
	}

	na, da := build()
	const mid, max = 2000, 2_000_000
	da.RunUntil(mid)
	var buf bytes.Buffer
	if err := Save(&buf, na, da); err != nil {
		t.Fatal(err)
	}

	nb, db := build()
	if err := Restore(bytes.NewReader(buf.Bytes()), nb, db); err != nil {
		t.Fatal(err)
	}
	if d, err := Diff(na, nb, da, db); err != nil {
		t.Fatal(err)
	} else if d != "" {
		t.Fatalf("restored driver state diverges immediately: %s", d)
	}

	da.RunUntil(max)
	db.RunUntil(max)
	oa := resultsJSON(t, da.Outcome())
	ob := resultsJSON(t, db.Outcome())
	if !bytes.Equal(oa, ob) {
		t.Fatalf("outcomes differ\nuninterrupted: %s\nrestored:      %s", oa, ob)
	}
	if !da.Finished() {
		t.Fatal("benchmark did not complete")
	}
}

// TestRestoreWarmDifferentWindow pins warm-start soundness: a snapshot
// taken at the warmup boundary of one run seeds a run with a different
// measurement window, and the result is byte-identical to running that
// window cold.
func TestRestoreWarmDifferentWindow(t *testing.T) {
	donorCfg := testConfig()
	donor := buildSynthetic(t, donorCfg, config.GFLOV)
	donor.RunTo(donorCfg.WarmupCycles)
	var buf bytes.Buffer
	if err := Save(&buf, donor, nil); err != nil {
		t.Fatal(err)
	}

	target := testConfig()
	target.TotalCycles = 3100 // different window than the donor's 2500

	warm := buildSynthetic(t, target, config.GFLOV)
	if err := RestoreWarm(bytes.NewReader(buf.Bytes()), warm); err != nil {
		t.Fatal(err)
	}
	cold := buildSynthetic(t, target, config.GFLOV)

	rw := resultsJSON(t, warm.Run())
	rc := resultsJSON(t, cold.Run())
	if !bytes.Equal(rw, rc) {
		t.Fatalf("warm-started run differs from cold run\nwarm: %s\ncold: %s", rw, rc)
	}
}

// TestRestoreRejectsMismatchedTarget ensures a snapshot never lands on a
// network built differently.
func TestRestoreRejectsMismatchedTarget(t *testing.T) {
	cfg := testConfig()
	a := buildSynthetic(t, cfg, config.Baseline)
	a.RunTo(100)
	var buf bytes.Buffer
	if err := Save(&buf, a, nil); err != nil {
		t.Fatal(err)
	}

	other := testConfig()
	other.TotalCycles = 4000
	if err := Restore(bytes.NewReader(buf.Bytes()), buildSynthetic(t, other, config.Baseline), nil); err == nil {
		t.Fatal("restore accepted a snapshot with a different config")
	}
	if err := Restore(bytes.NewReader(buf.Bytes()), buildSynthetic(t, cfg, config.GFLOV), nil); err == nil {
		t.Fatal("restore accepted a snapshot from a different mechanism")
	}
}

// TestCorruptionRejected covers the integrity paths: truncation, bit
// flips, bad magic, container-format and schema version mismatches all
// produce diagnostics, never a silently loaded snapshot.
func TestCorruptionRejected(t *testing.T) {
	cfg := testConfig()
	n := buildSynthetic(t, cfg, config.GFLOV)
	n.RunTo(500)
	var buf bytes.Buffer
	if err := Save(&buf, n, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	load := func(data []byte) error {
		_, err := Load(bytes.NewReader(data))
		return err
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{4, len(good) / 2, len(good) - 3} {
			if err := load(good[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for _, pos := range []int{40, len(good) / 2, len(good) - 10} {
			bad := append([]byte(nil), good...)
			bad[pos] ^= 0x40
			if err := load(bad); err == nil {
				t.Fatalf("bit flip at %d silently loaded", pos)
			}
		}
	})
	t.Run("badmagic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if err := load(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("formatversion", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 0xee // u32le container format lives right after the magic
		if err := load(bad); !errors.Is(err, ErrSchema) {
			t.Fatalf("got %v, want ErrSchema", err)
		}
	})
	t.Run("schemaversion", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		// The schema string follows the 4-byte format: uvarint length,
		// then the bytes themselves. Corrupt its first character.
		bad[13] ^= 0x20
		if err := load(bad); !errors.Is(err, ErrSchema) {
			t.Fatalf("got %v, want ErrSchema", err)
		}
	})
}

// TestDiffPinpointsFirstMismatch checks the divergence checker names the
// exact field path, not just "states differ".
func TestDiffPinpointsFirstMismatch(t *testing.T) {
	cfg := testConfig()
	a := buildSynthetic(t, cfg, config.Baseline)
	b := buildSynthetic(t, cfg, config.Baseline)
	a.RunTo(50)
	b.RunTo(50)
	if d, err := Diff(a, b, nil, nil); err != nil || d != "" {
		t.Fatalf("identical runs diff as %q (err %v)", d, err)
	}
	b.Step()
	if d, err := Diff(a, b, nil, nil); err != nil {
		t.Fatal(err)
	} else if d == "" {
		t.Fatal("networks one cycle apart reported identical")
	}

	// A controlled single-field mutation must be named exactly.
	sa, err := Capture(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Capture(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Net.Routers[3].Traversals++
	if d := DiffStates(sa, sb); d == "" || !strings.HasPrefix(d, "Net.Routers[3].Traversals") {
		t.Fatalf("first mismatch should be Net.Routers[3].Traversals, got %q", d)
	}
}

// TestInvariantsAfterRestore drives the full invariant checker on every
// cycle of a restored network: conservation of flits and credits must
// hold from the very first post-restore cycle.
func TestInvariantsAfterRestore(t *testing.T) {
	for _, mech := range []config.Mechanism{config.RP, config.GFLOV} {
		cfg := testConfig()
		a := buildSynthetic(t, cfg, mech)
		a.RunTo(700)
		var buf bytes.Buffer
		if err := Save(&buf, a, nil); err != nil {
			t.Fatal(err)
		}
		b := buildSynthetic(t, cfg, mech)
		if err := Restore(bytes.NewReader(buf.Bytes()), b, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			b.CheckInvariants()
			b.Step()
		}
	}
}

// snapChildEnv flips TestEquivalenceAcrossProcesses into its child role:
// restore the snapshot named by FLOV_SNAP_IN in a fresh process, run to
// completion, write the final results JSON to FLOV_SNAP_OUT.
const (
	snapChildIn  = "FLOV_SNAP_IN"
	snapChildOut = "FLOV_SNAP_OUT"
)

// TestEquivalenceAcrossProcesses proves a snapshot is self-contained: a
// fresh process (fresh ASLR, fresh map seeds) restores the file and
// produces byte-identical final statistics to the uninterrupted run in
// this process.
func TestEquivalenceAcrossProcesses(t *testing.T) {
	cfg := testConfig()
	if in := os.Getenv(snapChildIn); in != "" {
		f, err := os.Open(in)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n := buildSynthetic(t, cfg, config.GFLOV)
		if err := Restore(f, n, nil); err != nil {
			t.Fatalf("child restore: %v", err)
		}
		if err := os.WriteFile(os.Getenv(snapChildOut), resultsJSON(t, n.Run()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	if testing.Short() {
		t.Skip("skipping child go test invocation in -short mode")
	}

	a := buildSynthetic(t, cfg, config.GFLOV)
	a.RunTo(900)
	dir := t.TempDir()
	snapFile := filepath.Join(dir, "mid.snap")
	f, err := os.Create(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := resultsJSON(t, a.Run())

	outFile := filepath.Join(dir, "results.json")
	cmd := exec.Command("go", "test", "-count=1", "-run", "^TestEquivalenceAcrossProcesses$", ".")
	cmd.Env = append(os.Environ(), snapChildIn+"="+snapFile, snapChildOut+"="+outFile)
	if combined, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child go test: %v\n%s", err, combined)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("fresh-process restore diverged\nparent: %s\nchild:  %s", want, got)
	}
}
