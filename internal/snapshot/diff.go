package snapshot

import (
	"fmt"
	"math"
	"reflect"

	"flov/internal/network"
	"flov/internal/trace"
)

// Diff captures two live simulations and compares them field by field,
// returning the path and values of the first mismatch, or "" when the
// states are identical. It is the debugging companion to Restore: when a
// restored run diverges from an uninterrupted one, Diff pinpoints the
// first state element that differs instead of leaving only diverging
// end-of-run statistics.
func Diff(na, nb *network.Network, da, db *trace.Driver) (string, error) {
	sa, err := Capture(na, da)
	if err != nil {
		return "", fmt.Errorf("snapshot: capturing first network: %w", err)
	}
	sb, err := Capture(nb, db)
	if err != nil {
		return "", fmt.Errorf("snapshot: capturing second network: %w", err)
	}
	return DiffStates(sa, sb), nil
}

// DiffStates compares two captured states, returning the first mismatch
// path (e.g. "Net.Routers[3].In[2][1].Flits[0].VC: 1 != 2") or "".
func DiffStates(a, b *State) string {
	return firstDiff("", reflect.ValueOf(*a), reflect.ValueOf(*b))
}

// firstDiff walks two values of identical type in lockstep and reports
// the first leaf that differs. Floats compare by bit pattern: a
// checkpoint round-trip must be exact, not approximately equal.
func firstDiff(path string, a, b reflect.Value) string {
	switch a.Kind() {
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			return fmt.Sprintf("%s: %v != %v", path, a.Bool(), b.Bool())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			return fmt.Sprintf("%s: %d != %d", path, a.Int(), b.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if a.Uint() != b.Uint() {
			return fmt.Sprintf("%s: %d != %d", path, a.Uint(), b.Uint())
		}
	case reflect.Float64:
		if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
			return fmt.Sprintf("%s: %v != %v", path, a.Float(), b.Float())
		}
	case reflect.String:
		if a.String() != b.String() {
			return fmt.Sprintf("%s: %q != %q", path, a.String(), b.String())
		}
	case reflect.Slice:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: length %d != %d", path, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := firstDiff(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i)); d != "" {
				return d
			}
		}
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: presence %v != %v", path, !a.IsNil(), !b.IsNil())
		}
		if !a.IsNil() {
			return firstDiff(path, a.Elem(), b.Elem())
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			name := t.Field(i).Name
			p := name
			if path != "" {
				p = path + "." + name
			}
			if d := firstDiff(p, a.Field(i), b.Field(i)); d != "" {
				return d
			}
		}
	default:
		return fmt.Sprintf("%s: uncomparable kind %s", path, a.Kind())
	}
	return ""
}
