// Package snapshot implements deterministic simulation checkpoints: a
// versioned, self-describing binary encoding of the complete mutable
// state of a network.Network (and optionally a trace.Driver), with
// Save/Restore entry points, strict validation, and a field-by-field
// divergence checker for debugging. The format is pure stdlib:
// little-endian fixed-width floats, varint integers, length-prefixed
// strings and slices, and CRC-trailered named sections.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// encode serializes v (a struct, or pointer to one) into deterministic
// bytes: struct fields in declared order, integers as varints, floats as
// 8-byte little-endian IEEE bits, slices and strings length-prefixed.
// Maps, interfaces, channels and functions are rejected — snapshot state
// structs must be plain data so the encoding is canonical.
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeValue(&buf, reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeValue(buf *bytes.Buffer, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		buf.WriteByte(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutVarint(tmp[:], v.Int())])
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v.Uint())])
	case reflect.Float64:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float()))
		buf.Write(tmp[:])
	case reflect.String:
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v.Len()))])
		buf.WriteString(v.String())
	case reflect.Slice:
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v.Len()))])
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(buf, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		if v.IsNil() {
			buf.WriteByte(0)
			return nil
		}
		buf.WriteByte(1)
		return encodeValue(buf, v.Elem())
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return fmt.Errorf("snapshot: cannot encode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if err := encodeValue(buf, v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("snapshot: cannot encode kind %s (%s)", v.Kind(), v.Type())
	}
	return nil
}

// decoder tracks position in a payload so slice lengths can be sanity-
// checked against the bytes actually remaining (a corrupted length never
// allocates unbounded memory).
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) remaining() int { return len(d.data) - d.pos }

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("snapshot: truncated payload at offset %d", d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: malformed varint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *decoder) varint() (int64, error) {
	i, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: malformed varint at offset %d", d.pos)
	}
	d.pos += n
	return i, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("snapshot: truncated payload at offset %d (want %d bytes, have %d)",
			d.pos, n, d.remaining())
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// decode deserializes data into out (a pointer to a struct) and requires
// the payload to be fully consumed.
func decode(data []byte, out any) error {
	v := reflect.ValueOf(out)
	if v.Kind() != reflect.Ptr || v.IsNil() {
		return fmt.Errorf("snapshot: decode target must be a non-nil pointer")
	}
	d := &decoder{data: data}
	if err := decodeValue(d, v.Elem()); err != nil {
		return err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("snapshot: %d trailing bytes after decoded payload", d.remaining())
	}
	return nil
}

func decodeValue(d *decoder, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := d.byte()
		if err != nil {
			return err
		}
		v.SetBool(b != 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		i, err := d.varint()
		if err != nil {
			return err
		}
		if v.OverflowInt(i) {
			return fmt.Errorf("snapshot: value %d overflows %s", i, v.Type())
		}
		v.SetInt(i)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		if v.OverflowUint(u) {
			return fmt.Errorf("snapshot: value %d overflows %s", u, v.Type())
		}
		v.SetUint(u)
	case reflect.Float64:
		b, err := d.take(8)
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case reflect.String:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		b, err := d.take(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
	case reflect.Slice:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		// Every element occupies at least one byte, so a length beyond the
		// remaining payload is corruption, not a big slice.
		if n > uint64(d.remaining()) {
			return fmt.Errorf("snapshot: slice length %d exceeds remaining payload (%d bytes)", n, d.remaining())
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := decodeValue(d, s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Ptr:
		present, err := d.byte()
		if err != nil {
			return err
		}
		if present == 0 {
			v.SetZero()
			return nil
		}
		p := reflect.New(v.Type().Elem())
		if err := decodeValue(d, p.Elem()); err != nil {
			return err
		}
		v.Set(p)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return fmt.Errorf("snapshot: cannot decode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if err := decodeValue(d, v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("snapshot: cannot decode kind %s (%s)", v.Kind(), v.Type())
	}
	return nil
}
