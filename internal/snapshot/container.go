package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// SchemaVersion names the state schema carried by a snapshot. It must be
// bumped whenever any serialized state struct changes shape, so stale
// snapshots (and warm-start cache entries keyed on it) are rejected
// instead of silently misread.
const SchemaVersion = "flov-snap-v2"

// magic identifies a FLOV snapshot container.
const magic = "FLOVSNAP"

// formatVersion is the container layout version (header + CRC-trailered
// named sections), independent of the state schema inside.
const formatVersion uint32 = 1

// ErrCorrupt marks integrity failures: truncation, bad magic, CRC
// mismatches. Use errors.Is to test for it.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrSchema marks version mismatches: the file is intact but written by
// an incompatible schema or container format.
var ErrSchema = errors.New("snapshot: incompatible version")

// section is one named, CRC-trailered payload.
type section struct {
	name    string
	payload []byte
}

// writeContainer writes the header and all sections to w.
//
// Layout: "FLOVSNAP" | u32le format | uvarint schema-len | schema |
// repeated { uvarint name-len | name | uvarint payload-len | payload |
// u32le CRC32(payload) } until EOF.
func writeContainer(w io.Writer, sections []section) error {
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, formatVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(SchemaVersion)))
	hdr = append(hdr, SchemaVersion...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	for _, s := range sections {
		var rec []byte
		rec = binary.AppendUvarint(rec, uint64(len(s.name)))
		rec = append(rec, s.name...)
		rec = binary.AppendUvarint(rec, uint64(len(s.payload)))
		rec = append(rec, s.payload...)
		rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(s.payload))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("snapshot: writing section %q: %w", s.name, err)
		}
	}
	return nil
}

// readContainer reads and verifies the whole container from r. Every
// section's CRC is checked before any payload is decoded, so a
// truncated or bit-flipped file is always rejected with a diagnostic
// and never partially applied.
func readContainer(r io.Reader) (map[string][]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading container: %w", err)
	}
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: file too short (%d bytes) to hold a snapshot header", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (not a FLOV snapshot)", ErrCorrupt, string(data[:len(magic)]))
	}
	d := &decoder{data: data, pos: len(magic)}
	verBytes, err := d.take(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ver := binary.LittleEndian.Uint32(verBytes); ver != formatVersion {
		return nil, fmt.Errorf("%w: container format %d, this build reads format %d", ErrSchema, ver, formatVersion)
	}
	schema, err := readString(d)
	if err != nil {
		return nil, fmt.Errorf("%w: reading schema: %v", ErrCorrupt, err)
	}
	if schema != SchemaVersion {
		return nil, fmt.Errorf("%w: snapshot schema %q, this build reads %q", ErrSchema, schema, SchemaVersion)
	}
	sections := make(map[string][]byte)
	for d.remaining() > 0 {
		name, err := readString(d)
		if err != nil {
			return nil, fmt.Errorf("%w: reading section name: %v", ErrCorrupt, err)
		}
		plen, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: section %q length: %v", ErrCorrupt, name, err)
		}
		payload, err := d.take(int(plen))
		if err != nil {
			return nil, fmt.Errorf("%w: section %q truncated: %v", ErrCorrupt, name, err)
		}
		crcBytes, err := d.take(4)
		if err != nil {
			return nil, fmt.Errorf("%w: section %q missing CRC trailer: %v", ErrCorrupt, name, err)
		}
		want := binary.LittleEndian.Uint32(crcBytes)
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("%w: section %q CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, name, want, got)
		}
		if _, dup := sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		sections[name] = payload
	}
	return sections, nil
}

func readString(d *decoder) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
