package snapshot

import (
	"fmt"
	"io"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/network"
	"flov/internal/noc"
	"flov/internal/router"
	"flov/internal/rp"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/trace"
)

// Meta identifies what a snapshot was taken from: the full configuration
// plus the mechanism and workload shape. Restore refuses to apply a
// snapshot onto a network built differently.
type Meta struct {
	Cfg       config.Config
	Mechanism string
	HasGen    bool
	HasDriver bool
}

// QueuedFlit is one in-flight flit on a link pipeline.
type QueuedFlit struct {
	Ready int64
	F     noc.FlitState
}

// FlitQueueState is the contents of one flit Delay queue.
type FlitQueueState struct {
	Items []QueuedFlit
}

// QueuedSignal is one in-flight credit or control message. The payload
// is concretely a core.Msg: the simulator's only non-credit control
// traffic is the FLOV handshake protocol.
type QueuedSignal struct {
	Ready    int64
	IsCredit bool
	VC       int
	HasMsg   bool
	Msg      core.Msg
}

// CtrlQueueState is the contents of one control Delay queue.
type CtrlQueueState struct {
	Items []QueuedSignal
}

// channelState holds every link pipeline, in the canonical enumeration
// order (see eachFlitQueue/eachCtrlQueue).
type channelState struct {
	Flits []FlitQueueState
	Ctrls []CtrlQueueState
}

// State is the complete mutable state of one simulation: packets, the
// network proper, the link pipelines, mechanism protocol state and (for
// closed-loop runs) the trace driver.
type State struct {
	Meta    Meta
	Packets []noc.PacketState
	Net     network.State
	Chans   channelState
	FLOV    *core.State
	RP      *rp.State
	Driver  *trace.DriverState
}

// eachFlitQueue visits every flit Delay queue exactly once, in a fixed
// order: inter-router links by (router id, direction), then each node's
// injection and ejection channels. Capture and restore both use this
// enumeration, so queue identity is positional.
func eachFlitQueue(n *network.Network, fn func(q *sim.Delay[*noc.Flit])) {
	for id := 0; id < n.Cfg.N(); id++ {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			if n.Mesh.Neighbor(id, d) < 0 {
				continue
			}
			fn(n.Routers[id].Ports[d].OutFlit)
		}
	}
	for id := 0; id < n.Cfg.N(); id++ {
		fn(n.Routers[id].Ports[topology.Local].InFlit)
		fn(n.Routers[id].Ports[topology.Local].OutFlit)
	}
}

// eachCtrlQueue visits every control Delay queue exactly once, mirroring
// eachFlitQueue's order.
func eachCtrlQueue(n *network.Network, fn func(q *sim.Delay[router.Signal])) {
	for id := 0; id < n.Cfg.N(); id++ {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			if n.Mesh.Neighbor(id, d) < 0 {
				continue
			}
			fn(n.Routers[id].Ports[d].InCtrl)
		}
	}
	for id := 0; id < n.Cfg.N(); id++ {
		fn(n.Routers[id].Ports[topology.Local].OutCtrl)
		fn(n.Routers[id].Ports[topology.Local].InCtrl)
	}
}

// Capture assembles the full state of a live simulation. d may be nil
// for synthetic (open-loop) runs.
func Capture(n *network.Network, d *trace.Driver) (*State, error) {
	t := noc.NewPacketTable()
	st := &State{
		Meta: Meta{
			Cfg:       n.Cfg,
			Mechanism: n.Mech.Name(),
			HasGen:    n.Gen != nil,
			HasDriver: d != nil,
		},
		Net: n.CaptureState(t),
	}

	var chanErr error
	eachFlitQueue(n, func(q *sim.Delay[*noc.Flit]) {
		var fq FlitQueueState
		for _, it := range q.Queued() {
			fq.Items = append(fq.Items, QueuedFlit{Ready: it.Ready, F: noc.CaptureFlit(t, it.V)})
		}
		st.Chans.Flits = append(st.Chans.Flits, fq)
	})
	eachCtrlQueue(n, func(q *sim.Delay[router.Signal]) {
		var cq CtrlQueueState
		for _, it := range q.Queued() {
			qs := QueuedSignal{Ready: it.Ready, IsCredit: it.V.IsCredit, VC: it.V.VC}
			if it.V.Msg != nil {
				m, ok := it.V.Msg.(core.Msg)
				if !ok {
					chanErr = fmt.Errorf("snapshot: control queue carries unsupported payload %T", it.V.Msg)
					return
				}
				qs.HasMsg = true
				qs.Msg = m
				qs.Msg.Counts = append([]int(nil), m.Counts...)
			}
			cq.Items = append(cq.Items, qs)
		}
		st.Chans.Ctrls = append(st.Chans.Ctrls, cq)
	})
	if chanErr != nil {
		return nil, chanErr
	}

	switch mech := n.Mech.(type) {
	case *core.Mechanism:
		fs := mech.CaptureState(t)
		st.FLOV = &fs
	case *rp.Mechanism:
		rs := mech.CaptureState()
		st.RP = &rs
	case *network.BaselineMech:
		// No mechanism state.
	default:
		return nil, fmt.Errorf("snapshot: unsupported mechanism %T", n.Mech)
	}

	if d != nil {
		ds := d.CaptureState()
		st.Driver = &ds
	}

	// The packet table is complete only after every site has been walked.
	for _, p := range t.List {
		st.Packets = append(st.Packets, noc.CapturePacket(p))
	}
	return st, nil
}

// Save captures the simulation and writes the snapshot container to w.
// d may be nil for synthetic runs.
func Save(w io.Writer, n *network.Network, d *trace.Driver) error {
	st, err := Capture(n, d)
	if err != nil {
		return err
	}
	secs := []section{}
	add := func(name string, v any) {
		if err != nil {
			return
		}
		var payload []byte
		payload, err = encode(v)
		secs = append(secs, section{name: name, payload: payload})
	}
	add("meta", st.Meta)
	add("packets", st.Packets)
	add("net", st.Net)
	add("chans", st.Chans)
	if st.FLOV != nil {
		add("flov", *st.FLOV)
	}
	if st.RP != nil {
		add("rp", *st.RP)
	}
	if st.Driver != nil {
		add("driver", *st.Driver)
	}
	if err != nil {
		return err
	}
	return writeContainer(w, secs)
}

// Load reads and decodes a snapshot container without applying it.
func Load(r io.Reader) (*State, error) {
	sections, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	st := &State{}
	need := func(name string, out any) error {
		payload, ok := sections[name]
		if !ok {
			return fmt.Errorf("%w: missing required section %q", ErrCorrupt, name)
		}
		if err := decode(payload, out); err != nil {
			return fmt.Errorf("%w: section %q: %v", ErrCorrupt, name, err)
		}
		return nil
	}
	if err := need("meta", &st.Meta); err != nil {
		return nil, err
	}
	if err := need("packets", &st.Packets); err != nil {
		return nil, err
	}
	if err := need("net", &st.Net); err != nil {
		return nil, err
	}
	if err := need("chans", &st.Chans); err != nil {
		return nil, err
	}
	if payload, ok := sections["flov"]; ok {
		st.FLOV = &core.State{}
		if err := decode(payload, st.FLOV); err != nil {
			return nil, fmt.Errorf("%w: section %q: %v", ErrCorrupt, "flov", err)
		}
	}
	if payload, ok := sections["rp"]; ok {
		st.RP = &rp.State{}
		if err := decode(payload, st.RP); err != nil {
			return nil, fmt.Errorf("%w: section %q: %v", ErrCorrupt, "rp", err)
		}
	}
	if payload, ok := sections["driver"]; ok {
		st.Driver = &trace.DriverState{}
		if err := decode(payload, st.Driver); err != nil {
			return nil, fmt.Errorf("%w: section %q: %v", ErrCorrupt, "driver", err)
		}
	}
	return st, nil
}

// validateRefs checks every packet-table index in the state before any
// of it is applied, so a malformed snapshot can never index out of
// range mid-restore.
func (st *State) validateRefs() error {
	np := len(st.Packets)
	check := func(site string, idx int) error {
		if idx < 0 || idx >= np {
			return fmt.Errorf("%w: %s references packet %d of %d", ErrCorrupt, site, idx, np)
		}
		return nil
	}
	for ri, r := range st.Net.Routers {
		for p, vcs := range r.In {
			for v, vc := range vcs {
				if len(vc.Flits) != len(vc.Arrived) {
					return fmt.Errorf("%w: router %d port %d vc %d: %d flits but %d arrival stamps",
						ErrCorrupt, ri, p, v, len(vc.Flits), len(vc.Arrived))
				}
				for _, f := range vc.Flits {
					if err := check(fmt.Sprintf("router %d input buffer", ri), f.Pkt); err != nil {
						return err
					}
				}
			}
		}
	}
	for ni, s := range st.Net.NIs {
		for _, q := range s.Queues {
			for _, ref := range q {
				if err := check(fmt.Sprintf("ni %d source queue", ni), ref); err != nil {
					return err
				}
			}
		}
		for _, tx := range s.Sending {
			if tx.Present {
				if err := check(fmt.Sprintf("ni %d in-flight train", ni), tx.Pkt); err != nil {
					return err
				}
			}
		}
	}
	for qi, fq := range st.Chans.Flits {
		for _, it := range fq.Items {
			if err := check(fmt.Sprintf("flit queue %d", qi), it.F.Pkt); err != nil {
				return err
			}
		}
	}
	if st.FLOV != nil {
		for ri, r := range st.FLOV.Routers {
			for _, f := range r.Latch {
				if err := check(fmt.Sprintf("flov router %d latch", ri), f.Pkt); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// countQueues returns how many flit and control queues the network has
// under the canonical enumeration.
func countQueues(n *network.Network) (flits, ctrls int) {
	links := 0
	for id := 0; id < n.Cfg.N(); id++ {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			if n.Mesh.Neighbor(id, d) >= 0 {
				links++
			}
		}
	}
	return links + 2*n.Cfg.N(), links + 2*n.Cfg.N()
}

// apply overlays a validated state onto a freshly built simulation.
func (st *State) apply(n *network.Network, d *trace.Driver) error {
	if err := st.validateRefs(); err != nil {
		return err
	}
	wantFlits, wantCtrls := countQueues(n)
	if len(st.Chans.Flits) != wantFlits || len(st.Chans.Ctrls) != wantCtrls {
		return fmt.Errorf("%w: snapshot has %d flit / %d ctrl queues, network has %d / %d",
			ErrCorrupt, len(st.Chans.Flits), len(st.Chans.Ctrls), wantFlits, wantCtrls)
	}

	pkts := make([]*noc.Packet, len(st.Packets))
	for i, ps := range st.Packets {
		pkts[i] = ps.Materialize()
	}

	if err := n.RestoreState(st.Net, pkts); err != nil {
		return err
	}

	qi := 0
	eachFlitQueue(n, func(q *sim.Delay[*noc.Flit]) {
		items := make([]sim.Queued[*noc.Flit], 0, len(st.Chans.Flits[qi].Items))
		for _, it := range st.Chans.Flits[qi].Items {
			items = append(items, sim.Queued[*noc.Flit]{Ready: it.Ready, V: it.F.Materialize(pkts)})
		}
		q.SetQueued(items)
		qi++
	})
	qi = 0
	eachCtrlQueue(n, func(q *sim.Delay[router.Signal]) {
		items := make([]sim.Queued[router.Signal], 0, len(st.Chans.Ctrls[qi].Items))
		for _, it := range st.Chans.Ctrls[qi].Items {
			sig := router.Signal{IsCredit: it.IsCredit, VC: it.VC}
			if it.HasMsg {
				sig.Msg = it.Msg
			}
			items = append(items, sim.Queued[router.Signal]{Ready: it.Ready, V: sig})
		}
		q.SetQueued(items)
		qi++
	})

	switch mech := n.Mech.(type) {
	case *core.Mechanism:
		if st.FLOV == nil {
			return fmt.Errorf("%w: FLOV network but snapshot has no flov section", ErrCorrupt)
		}
		if err := mech.RestoreState(*st.FLOV, pkts); err != nil {
			return err
		}
	case *rp.Mechanism:
		if st.RP == nil {
			return fmt.Errorf("%w: RP network but snapshot has no rp section", ErrCorrupt)
		}
		if err := mech.RestoreState(*st.RP); err != nil {
			return err
		}
	case *network.BaselineMech:
		// No mechanism state.
	default:
		return fmt.Errorf("snapshot: unsupported mechanism %T", n.Mech)
	}

	if d != nil {
		if st.Driver == nil {
			return fmt.Errorf("%w: closed-loop run but snapshot has no driver section", ErrCorrupt)
		}
		if err := d.RestoreState(*st.Driver); err != nil {
			return err
		}
	}
	return nil
}

// validateMeta rejects a snapshot taken from a differently built
// simulation. warm relaxes the run-length fields so a warmup snapshot
// can seed runs with different measurement windows.
func (st *State) validateMeta(n *network.Network, d *trace.Driver, warm bool) error {
	a, b := st.Meta.Cfg, n.Cfg
	if warm {
		a.TotalCycles, b.TotalCycles = 0, 0
		a.DrainCycles, b.DrainCycles = 0, 0
	}
	if a != b {
		return fmt.Errorf("snapshot: configuration mismatch: snapshot taken from %+v, restoring onto %+v", st.Meta.Cfg, n.Cfg)
	}
	if st.Meta.Mechanism != n.Mech.Name() {
		return fmt.Errorf("snapshot: mechanism mismatch: snapshot is %q, network is %q", st.Meta.Mechanism, n.Mech.Name())
	}
	if st.Meta.HasGen != (n.Gen != nil) {
		return fmt.Errorf("snapshot: workload mismatch: snapshot HasGen=%v, network=%v", st.Meta.HasGen, n.Gen != nil)
	}
	if st.Meta.HasDriver != (d != nil) {
		return fmt.Errorf("snapshot: workload mismatch: snapshot HasDriver=%v, restore given driver=%v", st.Meta.HasDriver, d != nil)
	}
	return nil
}

// Restore reads a snapshot from r and applies it to a freshly built
// simulation with the same configuration, mechanism and workload. d must
// be non-nil exactly when the snapshot was taken from a closed-loop run.
// On any error the snapshot is rejected with a diagnostic; the network
// must then be considered unusable (rebuild it) since a late failure may
// have partially applied state.
func Restore(r io.Reader, n *network.Network, d *trace.Driver) error {
	st, err := Load(r)
	if err != nil {
		return err
	}
	if err := st.validateMeta(n, d, false); err != nil {
		return err
	}
	return st.apply(n, d)
}

// RestoreWarm applies a post-warmup snapshot onto a network whose config
// may differ in TotalCycles/DrainCycles only: the warm-start path for
// sweep forking, where many measurement windows share one warmed-up
// prefix. Generation stop is re-derived from the receiver's config
// (the donor's was keyed to its own run length).
func RestoreWarm(r io.Reader, n *network.Network) error {
	st, err := Load(r)
	if err != nil {
		return err
	}
	if err := st.validateMeta(n, nil, true); err != nil {
		return err
	}
	if err := st.apply(n, nil); err != nil {
		return err
	}
	n.StopGeneration(n.Cfg.TotalCycles)
	return nil
}
