package service

import (
	"context"
	"sync"
)

// feed is a per-job append-only event sequence with blocking readers: a
// late subscriber replays the buffer from the start, then follows live
// appends until the feed closes. Buffering the full sequence is what
// makes streams resumable and lets any number of watchers attach; job
// counts are bounded by retention, so memory is too.
type feed struct {
	mu     sync.Mutex
	events []StreamEvent
	closed bool
	wake   chan struct{} // closed and replaced on every append
}

func newFeed() *feed { return &feed{wake: make(chan struct{})} }

// append adds an event and wakes blocked readers. Appends after close
// are dropped (the terminal summary is the last event by construction).
func (f *feed) append(e StreamEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.events = append(f.events, e)
	close(f.wake)
	f.wake = make(chan struct{})
}

// close ends the sequence; blocked readers drain and stop.
func (f *feed) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		close(f.wake)
	}
}

// next returns event i, blocking until it exists. ok is false when the
// feed closed before event i; err reports ctx cancellation.
func (f *feed) next(ctx context.Context, i int) (StreamEvent, bool, error) {
	for {
		f.mu.Lock()
		if i < len(f.events) {
			e := f.events[i]
			f.mu.Unlock()
			return e, true, nil
		}
		if f.closed {
			f.mu.Unlock()
			return StreamEvent{}, false, nil
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return StreamEvent{}, false, ctx.Err()
		}
	}
}

// len returns the number of buffered events.
func (f *feed) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.events)
}
