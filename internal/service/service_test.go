package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flov/internal/fault"
	"flov/internal/sweep"
)

// testSpec is a small real grid: len(rates) baseline points on a 4x4
// mesh, cheap enough to simulate in a unit test.
func testSpec(rates ...float64) sweep.Spec {
	return sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      rates,
		GatedFracs: []float64{0.5},
		Mechanisms: []string{"baseline"},
		Width:      4, Height: 4,
		Cycles: 4_000, Warmup: 500,
		Seed: 7,
	}
}

func mustPoints(t *testing.T, spec sweep.Spec) []sweep.Job {
	t.Helper()
	points, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// newTestServer builds a Server plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSpec(t *testing.T, url string, spec sweep.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if st.State == StateDone || st.State == StateCanceled {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestEndToEndMatchesDirectEngine is the headline acceptance test: a
// spec submitted over HTTP yields byte-identical result rows to a
// direct engine run, and an immediate resubmission is answered entirely
// from the shared cache, observable on /metrics.
func TestEndToEndMatchesDirectEngine(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache})

	spec := testSpec(0.02, 0.05)
	resp := postSpec(t, ts.URL+"/v1/sweeps", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.Points != 2 {
		t.Fatalf("Points = %d, want 2", st.Points)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Errors != 0 {
		t.Fatalf("final status: %+v", final)
	}

	rresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rresp.Body.Close() }()
	served, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Direct run with a fresh engine, no cache: the reference rows.
	direct := (&sweep.Engine{}).Run(context.Background(), mustPoints(t, spec))
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(served); !bytes.Equal(got, want) {
		t.Fatalf("served rows differ from direct engine run:\nserved: %.200s\ndirect: %.200s", got, want)
	}

	// Resubmission: all points served from the cache.
	hitsBefore := metricValue(t, ts.URL, "flovd_cache_hits_total")
	resp2 := postSpec(t, ts.URL+"/v1/sweeps", spec)
	st2 := decodeStatus(t, resp2)
	if st2.ID == st.ID {
		t.Fatal("finished job was deduped; resubmission must be a fresh job")
	}
	final2 := waitDone(t, ts.URL, st2.ID)
	if final2.CacheHits != 2 {
		t.Fatalf("resubmission CacheHits = %d, want 2", final2.CacheHits)
	}
	if got := metricValue(t, ts.URL, "flovd_cache_hits_total"); got != hitsBefore+2 {
		t.Fatalf("flovd_cache_hits_total = %d, want %d", got, hitsBefore+2)
	}
	if cached := metricValue(t, ts.URL, "flovd_points_cached_total"); cached != 2 {
		t.Fatalf("flovd_points_cached_total = %d, want 2", cached)
	}
}

// blockingRunner returns a runPoint hook whose points block until
// released per-rate, plus the release function.
func blockingRunner() (func(sweep.Job) sweep.Result, func(rate float64)) {
	mu := sync.Mutex{}
	gates := map[float64]chan struct{}{}
	gate := func(rate float64) chan struct{} {
		mu.Lock()
		defer mu.Unlock()
		ch, ok := gates[rate]
		if !ok {
			ch = make(chan struct{})
			gates[rate] = ch
		}
		return ch
	}
	run := func(j sweep.Job) sweep.Result {
		<-gate(j.Rate)
		return sweep.Result{Job: j}
	}
	release := func(rate float64) { close(gate(rate)) }
	return run, release
}

// TestStreamingIncremental pins that NDJSON progress events arrive
// while later points are still executing — not buffered until the job
// completes.
func TestStreamingIncremental(t *testing.T) {
	run, release := blockingRunner()
	_, ts := newTestServer(t, Config{Workers: 1, runPoint: run})

	spec := testSpec(0.01, 0.02, 0.03)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	next := func() StreamEvent {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		return ev
	}

	if ev := next(); ev.Type != EventAccepted || ev.Total != 3 {
		t.Fatalf("first event = %+v, want accepted/3", ev)
	}
	// Workers=1 runs points in order. Release only the first point: its
	// start+point events must arrive while points 2 and 3 are blocked.
	release(0.01)
	sawFirstPoint := false
	for i := 0; i < 2; i++ {
		ev := next()
		if ev.Type == EventPoint {
			if ev.Index != 0 {
				t.Fatalf("point event for index %d before release", ev.Index)
			}
			sawFirstPoint = true
		}
	}
	if !sawFirstPoint {
		t.Fatal("no point event arrived while later points were still blocked")
	}

	release(0.02)
	release(0.03)
	var last StreamEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Type != EventSummary || last.State != StateDone {
		t.Fatalf("terminal event = %+v, want done summary", last)
	}
}

// TestStreamCancelFreesQueueSlot: cancelling the streaming submitter of
// a queued job cancels the job and frees its admission slot for the
// next submission.
func TestStreamCancelFreesQueueSlot(t *testing.T) {
	run, release := blockingRunner()
	s, ts := newTestServer(t, Config{QueueDepth: 1, Runners: 1, Workers: 1, runPoint: run})

	// Job A occupies the single runner (owned: survives its client).
	specA := testSpec(0.01)
	respA := postSpec(t, ts.URL+"/v1/sweeps", specA)
	stA := decodeStatus(t, respA)
	waitState(t, s, stA.ID, StateRunning)

	// Job B fills the single queue slot via the streaming path.
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	bodyB, err := json.Marshal(testSpec(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := http.NewRequestWithContext(ctxB, http.MethodPost, ts.URL+"/v1/sweeps/run", bytes.NewReader(bodyB))
	if err != nil {
		t.Fatal(err)
	}
	respB, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = respB.Body.Close() }()
	// Read the accepted event so we know B is admitted.
	scB := bufio.NewScanner(respB.Body)
	if !scB.Scan() {
		t.Fatalf("no accepted event: %v", scB.Err())
	}
	var evB StreamEvent
	if err := json.Unmarshal(scB.Bytes(), &evB); err != nil {
		t.Fatal(err)
	}

	// Queue full: a third submission is rejected with 429.
	respC := postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.03))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After hint")
	}
	_ = respC.Body.Close()

	// Cancel B's stream: the job cancels and the slot frees.
	cancelB()
	waitState(t, s, evB.ID, StateCanceled)

	respC2 := postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.03))
	stC := decodeStatus(t, respC2)
	if respC2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit: HTTP %d, want 202", respC2.StatusCode)
	}

	release(0.01)
	release(0.03)
	waitDone(t, ts.URL, stA.ID)
	waitDone(t, ts.URL, stC.ID)
	if rejected := metricValue(t, ts.URL, "flovd_jobs_rejected_total"); rejected != 1 {
		t.Fatalf("flovd_jobs_rejected_total = %d, want 1", rejected)
	}
	if canceled := metricValue(t, ts.URL, "flovd_jobs_canceled_total"); canceled != 1 {
		t.Fatalf("flovd_jobs_canceled_total = %d, want 1", canceled)
	}
}

// waitState polls the in-process job table for a state.
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j := s.lookup(id); j != nil {
			j.mu.Lock()
			got := j.state
			j.mu.Unlock()
			if got == state {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, state)
}

// TestDedupInflight: an identical spec submitted while the first is in
// flight attaches to it instead of enqueueing a second job.
func TestDedupInflight(t *testing.T) {
	run, release := blockingRunner()
	_, ts := newTestServer(t, Config{Workers: 1, runPoint: run})

	spec := testSpec(0.04)
	st1 := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", spec))
	st2 := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", spec))
	if st2.ID != st1.ID || !st2.Deduped {
		t.Fatalf("second submission not deduped: %+v vs %+v", st2, st1)
	}
	if accepted := metricValue(t, ts.URL, "flovd_jobs_accepted_total"); accepted != 1 {
		t.Fatalf("flovd_jobs_accepted_total = %d, want 1", accepted)
	}
	if deduped := metricValue(t, ts.URL, "flovd_jobs_deduped_total"); deduped != 1 {
		t.Fatalf("flovd_jobs_deduped_total = %d, want 1", deduped)
	}
	release(0.04)
	waitDone(t, ts.URL, st1.ID)
}

// TestGracefulDrain: draining rejects new submissions with 503,
// completes queued and running jobs, and leaks no goroutines. The
// forced variant (expired grace) cancels in-flight work through the
// engine's context path.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	run, release := blockingRunner()
	s := New(Config{QueueDepth: 4, Runners: 1, Workers: 1, runPoint: run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stA := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.01)))
	stB := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.02)))
	waitState(t, s, stA.ID, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining: health flips and submissions bounce with 503.
	waitDraining(t, s)
	resp := postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.05))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	_ = resp.Body.Close()
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", hresp.StatusCode)
	}
	_ = hresp.Body.Close()

	// Unblock: both jobs must complete, then Drain returns cleanly.
	release(0.01)
	release(0.02)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range []string{stA.ID, stB.ID} {
		st := waitDone(t, ts.URL, id)
		if st.State != StateDone {
			t.Fatalf("job %s state = %s after clean drain", id, st.State)
		}
	}

	ts.Close()
	// All runner goroutines must be gone (retry: HTTP teardown lags).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, got)
	}
}

// TestForcedDrainCancelsInFlight: when the drain grace expires, queued
// jobs cancel via the engine's context path instead of hanging forever.
func TestForcedDrainCancelsInFlight(t *testing.T) {
	run, release := blockingRunner()
	s := New(Config{QueueDepth: 4, Runners: 1, Workers: 1, runPoint: run})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// A blocks the runner; B sits in the queue.
	stA := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.01)))
	stB := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.02)))
	waitState(t, s, stA.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	// The grace expires; A's running point must still complete on its
	// own (simulation points are not preempted), so release it after
	// the cancellation fires. B's gate opens too: cancellation races
	// point scheduling by design, so its single point may or may not
	// start — either way the job must finish as canceled.
	time.Sleep(100 * time.Millisecond)
	release(0.01)
	release(0.02)
	if err := <-drained; err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}

	if st := waitDone(t, ts.URL, stB.ID); st.State != StateCanceled {
		t.Fatalf("queued job state = %s after forced drain, want canceled", st.State)
	}
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Draining() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never started draining")
}

// TestPointPanicIsolation: a panicking point becomes an error row and a
// failed-job metric; the daemon and the job's siblings are unharmed.
func TestPointPanicIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, runPoint: func(j sweep.Job) sweep.Result {
		if j.Rate == 0.02 {
			panic("injected point panic")
		}
		return sweep.Result{Job: j}
	}})
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.01, 0.02, 0.03)))
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Errors != 1 {
		t.Fatalf("final = %+v, want done with 1 error", final)
	}
	if failed := metricValue(t, ts.URL, "flovd_jobs_failed_total"); failed != 1 {
		t.Fatalf("flovd_jobs_failed_total = %d, want 1", failed)
	}
	if pfailed := metricValue(t, ts.URL, "flovd_points_failed_total"); pfailed != 1 {
		t.Fatalf("flovd_points_failed_total = %d, want 1", pfailed)
	}
}

// TestFaultMetrics: a fault-scenario spec submitted through the daemon
// is observable on /metrics — injected faults and classified drops from
// a real run, and the violated-trial counter when a fault point errors.
func TestFaultMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := testSpec(0.02)
	spec.Faults = &fault.Spec{
		Seed: 11,
		// Kill an interior router for good early on and classify stuck
		// packets quickly so drops land inside the short test run.
		Schedule:    []fault.Event{{At: 600, Kind: "router", Node: 5}},
		DropTimeout: 200,
	}
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", spec))
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Errors != 0 {
		t.Fatalf("final = %+v, want done with 0 errors", final)
	}
	if got := metricValue(t, ts.URL, "flovd_faults_injected_total"); got == 0 {
		t.Fatal("flovd_faults_injected_total = 0 after a scheduled fault fired")
	}
	if got := metricValue(t, ts.URL, "flovd_packets_dropped_total"); got == 0 {
		t.Fatal("flovd_packets_dropped_total = 0 after a permanent router kill")
	}
	if got := metricValue(t, ts.URL, "flovd_trials_violated_total"); got != 0 {
		t.Fatalf("flovd_trials_violated_total = %d on a clean run, want 0", got)
	}
}

// TestFaultTrialViolatedMetric: a fault-scenario point that errors bumps
// flovd_trials_violated_total; the same failure on a fault-free point
// does not.
func TestFaultTrialViolatedMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{runPoint: func(j sweep.Job) sweep.Result {
		return sweep.Result{Job: j, Err: "oracle: flit conservation violated"}
	}})
	plain := testSpec(0.02)
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", plain))
	waitDone(t, ts.URL, st.ID)
	if got := metricValue(t, ts.URL, "flovd_trials_violated_total"); got != 0 {
		t.Fatalf("flovd_trials_violated_total = %d after fault-free error, want 0", got)
	}

	faulty := testSpec(0.02)
	faulty.Faults = &fault.Spec{Seed: 3, LinkRate: 1e-4}
	st = decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", faulty))
	waitDone(t, ts.URL, st.ID)
	if got := metricValue(t, ts.URL, "flovd_trials_violated_total"); got != 1 {
		t.Fatalf("flovd_trials_violated_total = %d after fault-scenario error, want 1", got)
	}
}

// TestHandlerPanicRecovered: a panicking handler answers 500 and bumps
// the panic counter instead of killing the daemon.
func TestHandlerPanicRecovered(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic: HTTP %d, want 500", rec.Code)
	}
	if got := metricValue(t, ts.URL, "flovd_handler_panics_total"); got != 1 {
		t.Fatalf("flovd_handler_panics_total = %d, want 1", got)
	}
}

// TestBadSpecRejected: parse and expansion failures answer 400.
func TestBadSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: HTTP %d, want 400", resp.StatusCode)
	}
	_ = resp.Body.Close()

	bad := testSpec(0.02)
	bad.Mechanisms = []string{"warp-drive"}
	resp2 := postSpec(t, ts.URL+"/v1/sweeps", bad)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mechanism: HTTP %d, want 400", resp2.StatusCode)
	}
	_ = resp2.Body.Close()
}

// TestDebugEventsTail: the ring records the lifecycle and /debug/events
// serves it.
func TestDebugEventsTail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.02)))
	waitDone(t, ts.URL, st.ID)
	resp, err := http.Get(ts.URL + "/debug/events?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"accepted " + st.ID, "start " + st.ID, "finish " + st.ID} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("/debug/events missing %q:\n%s", want, data)
		}
	}
}

// TestJobTimeout: a job exceeding the ceiling cancels through the
// engine's context path and reports why.
func TestJobTimeout(t *testing.T) {
	run, release := blockingRunner()
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond, runPoint: run})
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", testSpec(0.01, 0.02)))
	waitState(t, s, st.ID, StateRunning)
	time.Sleep(100 * time.Millisecond) // let the ceiling expire
	release(0.01)
	release(0.02)
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateCanceled || !strings.Contains(final.Err, "timeout") {
		t.Fatalf("final = %+v, want canceled with timeout note", final)
	}
}
