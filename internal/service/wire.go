package service

import (
	"flov/internal/sweep"
)

// Job lifecycle states as reported by the API.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
)

// Stream event types, in the order a stream emits them: one "accepted",
// then interleaved "start"/"point" events as workers progress — possibly
// punctuated by "preempted"/"resumed" pairs when the daemon time-slices
// jobs — then a single terminal "summary".
const (
	EventAccepted  = "accepted"
	EventStart     = "start"
	EventPoint     = "point"
	EventSummary   = "summary"
	EventPreempted = "preempted"
	EventResumed   = "resumed"
)

// Point statuses on "point" events.
const (
	PointDone   = "done"
	PointCached = "cached"
	PointError  = "error"
)

// StreamEvent is one NDJSON line of a job stream: progress and per-point
// results as they complete, terminated by a summary.
type StreamEvent struct {
	Type string `json:"type"`

	// Point progress (start/point events).
	Index     int     `json:"index,omitempty"`
	Total     int     `json:"total,omitempty"`
	Desc      string  `json:"desc,omitempty"`
	Status    string  `json:"status,omitempty"`  // done|cached|error
	WallMS    float64 `json:"wall_ms,omitempty"` // point execution time
	SimCycles int64   `json:"sim_cycles,omitempty"`
	Err       string  `json:"err,omitempty"`

	// Result is the finished row for point events.
	Result *sweep.Result `json:"result,omitempty"`

	// Terminal summary (and the initial accepted event's job identity).
	ID    string       `json:"id,omitempty"`
	State string       `json:"state,omitempty"`
	Stats *sweep.Stats `json:"stats,omitempty"`

	// Remaining is the number of unfinished points on preempted/resumed
	// events (the rest are already durable in the job's result set).
	Remaining int `json:"remaining,omitempty"`
}

// JobStatus is the poll/submit response body.
type JobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Points    int     `json:"points"`
	Done      int     `json:"done"`
	CacheHits int     `json:"cache_hits"`
	Errors    int     `json:"errors"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	Err       string  `json:"err,omitempty"`
	// Deduped marks a submission that attached to an already in-flight
	// identical job instead of enqueueing a new one.
	Deduped bool `json:"deduped,omitempty"`
	// Resumes counts how many times the job was preempted at a slice
	// boundary and requeued with checkpointed state.
	Resumes int `json:"resumes,omitempty"`
}

// ErrorBody is the JSON error payload for non-2xx API responses.
type ErrorBody struct {
	Error string `json:"error"`
}
