package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"flov/internal/sweep"
)

// maxSpecBytes bounds a submitted spec body; real specs are a few
// hundred bytes, so 1 MiB is generous and still DoS-safe.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/sweeps            submit a spec, return immediately (202)
//	POST /v1/sweeps/run        submit a spec and stream NDJSON until done
//	POST /v1/opt/run           run a design-space search, stream generations
//	GET  /v1/sweeps/{id}       job status
//	GET  /v1/sweeps/{id}/stream  NDJSON replay + live follow of a job
//	GET  /v1/sweeps/{id}/results result rows of a finished job
//	GET  /metrics              Prometheus counters and histograms
//	GET  /debug/events         tail of the service event ring
//	GET  /healthz              liveness (503 while draining)
//
// Every route runs behind a panic-isolating middleware: a crashing
// handler answers 500 (when headers are still writable) and the daemon
// keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("POST /v1/sweeps/run", s.handleRun)
	mux.HandleFunc("POST /v1/opt/run", s.handleOptRun)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: handler panics become 500s
// and a ring event instead of a dead daemon.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				s.log("handler panic on %s %s: %v", r.Method, r.URL.Path, p)
				s.log("%s", firstLines(string(buf), 6))
				// Headers may already be gone on a streaming route; the
				// write error is then the client's signal.
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// firstLines truncates s to its first n lines (panic stacks on the ring).
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The response is committed; an encode error here means the client
	// went away, which the next read on that connection reports anyway.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorBody{Error: msg})
}

// readSpec parses and expands the request body into a point list.
func readSpec(r *http.Request) ([]sweep.Job, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("spec larger than %d bytes", maxSpecBytes)
	}
	var spec sweep.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("parse spec: %w", err)
	}
	points, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("spec expands to zero jobs")
	}
	return points, nil
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError answers a failed admission. Throttled submissions
// (429, queue full) carry a Retry-After hint — a queue slot frees as
// soon as any running job finishes, so a short whole-second wait is the
// honest signal — which the service client's bounded-backoff retry
// honors.
func writeSubmitError(w http.ResponseWriter, err error) {
	status := submitStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, err.Error())
}

// handleSubmit is the fire-and-forget path: admit and answer 202 with
// the job id; the job runs to completion server-side.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	points, err := readSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, deduped, err := s.submit(points, true)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	st := j.status()
	st.Deduped = deduped
	writeJSON(w, http.StatusAccepted, st)
}

// handleRun is the interactive path: admit, then stream the job's feed
// as NDJSON until the summary. Closing the connection before completion
// drops this submitter's reference; when no other submitter or owner
// remains, the job cancels and its queue slot frees.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	points, err := readSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, _, err := s.submit(points, false)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	defer s.release(j)
	s.streamFeed(w, r, j)
}

// handleStream replays and follows an existing job's feed. Watchers
// hold no reference: disconnecting a watcher never cancels the job.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.streamFeed(w, r, j)
}

// streamFeed writes the feed as NDJSON, flushing per event so progress
// is visible while points are still simulating.
func (s *Server) streamFeed(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		ev, ok, err := j.feed.next(r.Context(), i)
		if err != nil || !ok {
			return // client gone, or feed complete
		}
		if err := enc.Encode(ev); err != nil {
			return // connection lost mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.mu.Lock()
	state := j.state
	results := j.results
	j.mu.Unlock()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, results)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: "+j.status().Err)
	default:
		writeError(w, http.StatusConflict, "job not finished: "+state)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth, running, draining := len(s.queued), s.running, s.draining
	s.mu.Unlock()
	var b strings.Builder
	s.metrics.render(&b, depth, running, draining, s.cfg.Cache)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Committed response: a failed write means the scraper disconnected.
	_, _ = io.WriteString(w, b.String())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	for _, e := range s.events.Tail(n) {
		// The ring's cycle slot carries unix milliseconds here.
		fmt.Fprintf(&b, "%s  %s\n", time.UnixMilli(e.Cycle).UTC().Format("2006-01-02T15:04:05.000Z"), e.Note)
	}
	_, _ = io.WriteString(w, b.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}
