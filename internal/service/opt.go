package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"flov/internal/opt"
)

// OptStreamLine is one NDJSON line of the POST /v1/opt/run stream:
// "generation" lines carry per-round progress, a final "done" line
// carries the full outcome (Pareto front included), and an "error"
// line reports a search that failed after streaming began.
type OptStreamLine struct {
	Type    string       `json:"type"`
	Event   *opt.Event   `json:"event,omitempty"`
	Outcome *opt.Outcome `json:"outcome,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// handleOptRun runs a design-space search synchronously, streaming one
// NDJSON line per finished generation and a final outcome line. The
// search executes through the daemon's sweep engine configuration, so
// candidate evaluations share the result cache with sweep jobs. Closing
// the connection cancels the search via the request context.
func (s *Server) handleOptRun(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	if len(data) > maxSpecBytes {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("spec larger than %d bytes", maxSpecBytes))
		return
	}
	spec, err := opt.ParseSpec(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// The response commits on the first generation event; spec-level
	// errors (bad space, unknown strategy) surface before any event
	// fires and still get a clean 400.
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	started := false
	emit := func(line OptStreamLine) {
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		// A failed write means the client went away; the request context
		// then cancels the search.
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	s.metrics.optRuns.Add(1)
	outcome, err := opt.Run(r.Context(), spec, opt.Options{
		Workers: s.cfg.Workers,
		Cache:   s.cfg.Cache,
		Progress: func(ev opt.Event) {
			s.metrics.optGenerations.Add(1)
			s.metrics.optEvaluations.Add(int64(ev.Simulated + ev.Reused))
			s.log("opt gen %d/%d: %d simulated, front=%d", ev.Gen+1, ev.Generations, ev.Simulated, ev.Front)
			line := ev
			emit(OptStreamLine{Type: "generation", Event: &line})
		},
	})
	if err != nil {
		s.metrics.optFailed.Add(1)
		if !started {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		emit(OptStreamLine{Type: "error", Error: err.Error()})
		return
	}
	s.log("opt done: %d generations, %d simulated, front=%d",
		outcome.Generations, outcome.Simulated, len(outcome.Front))
	emit(OptStreamLine{Type: "done", Outcome: &outcome})
}
