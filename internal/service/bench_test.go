package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"flov/internal/service"
	"flov/internal/service/client"
	"flov/internal/sweep"
)

// BenchmarkServeSweep measures the serving path itself: submit a spec
// over HTTP, stream every point event, collect the rows. The cache is
// warmed before the timer starts, so iterations measure queueing, HTTP,
// and NDJSON overhead on top of cache reads — the steady state of a
// dashboard hammering a long-lived flovd — not simulation time.
func BenchmarkServeSweep(b *testing.B) {
	cache, err := sweep.NewCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := service.New(service.Config{Cache: cache})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)

	spec := sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      []float64{0.01, 0.02},
		GatedFracs: []float64{0, 0.5},
		Mechanisms: []string{"baseline", "gflov"},
		Width:      4, Height: 4,
		Cycles: 4_000, Warmup: 500,
		Seed: 7,
	}
	points, err := spec.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.Run(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := c.Run(context.Background(), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(points)*b.N)/b.Elapsed().Seconds(), "points/s")
}
