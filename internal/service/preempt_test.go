package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"flov/internal/sweep"
)

// longSpec is testSpec with windows long enough that a millisecond-scale
// slice expires while points are mid-simulation.
func longSpec(rates ...float64) sweep.Spec {
	spec := testSpec(rates...)
	spec.Cycles = 60_000
	spec.Warmup = 500
	return spec
}

// readStream replays a finished job's NDJSON feed.
func readStream(t *testing.T, base, id string) []StreamEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestPreemptedJobMatchesUnpreempted is the preemption acceptance test:
// a job sliced into many checkpoint/requeue/resume rounds delivers
// exactly the row set an unpreempted run delivers, and the lifecycle is
// observable on the stream and /metrics.
func TestPreemptedJobMatchesUnpreempted(t *testing.T) {
	spec := longSpec(0.02, 0.04, 0.06)
	points := mustPoints(t, spec)
	direct := (&sweep.Engine{}).Run(context.Background(), points)
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{
		Runners:  1,
		Workers:  1,
		JobSlice: 5 * time.Millisecond,
	})

	resp := postSpec(t, ts.URL+"/v1/sweeps", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Errors != 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.Done != len(points) {
		t.Fatalf("Done = %d, want %d", final.Done, len(points))
	}
	if final.Resumes < 1 {
		t.Fatalf("job was never preempted (Resumes = %d); slice too long for the workload?", final.Resumes)
	}

	rresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rresp.Body.Close() }()
	served, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(served); !bytes.Equal(got, want) {
		t.Fatalf("preempted job rows differ from unpreempted run:\nserved: %.300s\ndirect: %.300s", got, want)
	}

	// Stream: preempted/resumed pairs, and each point exactly once with
	// its original index despite running across different slices.
	events := readStream(t, ts.URL, st.ID)
	preempted, resumed := 0, 0
	seen := make(map[int]int)
	for _, ev := range events {
		switch ev.Type {
		case EventPreempted:
			preempted++
			if ev.Remaining < 1 || ev.Remaining > len(points) {
				t.Fatalf("preempted event Remaining = %d", ev.Remaining)
			}
		case EventResumed:
			resumed++
		case EventPoint:
			seen[ev.Index]++
		}
	}
	if preempted < 1 || preempted != resumed {
		t.Fatalf("stream: %d preempted vs %d resumed events", preempted, resumed)
	}
	if preempted != final.Resumes {
		t.Fatalf("stream shows %d preemptions, status shows %d", preempted, final.Resumes)
	}
	for i := range points {
		if seen[i] != 1 {
			t.Fatalf("point %d emitted %d times on the stream (want exactly 1); seen=%v", i, seen[i], seen)
		}
	}

	// Metrics: lifecycle counters agree with the observed stream.
	if got := metricValue(t, ts.URL, "flovd_jobs_preempted_total"); got != int64(preempted) {
		t.Fatalf("flovd_jobs_preempted_total = %d, want %d", got, preempted)
	}
	if got := metricValue(t, ts.URL, "flovd_jobs_resumed_total"); got != int64(resumed) {
		t.Fatalf("flovd_jobs_resumed_total = %d, want %d", got, resumed)
	}
	// Snapshot counts depend on where slices land; the counter must at
	// least exist and never exceed one per pause opportunity.
	snaps := metricValue(t, ts.URL, "flovd_points_snapshotted_total")
	if snaps < 0 || snaps > int64(preempted*len(points)) {
		t.Fatalf("flovd_points_snapshotted_total = %d implausible for %d preemptions", snaps, preempted)
	}
}

// TestSlicedShortJobNeverPreempts: a job that fits inside one slice must
// finish exactly as without slicing — no spurious pauses.
func TestSlicedShortJobNeverPreempts(t *testing.T) {
	spec := testSpec(0.02)
	_, ts := newTestServer(t, Config{JobSlice: 30 * time.Second})
	resp := postSpec(t, ts.URL+"/v1/sweeps", spec)
	st := decodeStatus(t, resp)
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Resumes != 0 {
		t.Fatalf("short job under a long slice: %+v", final)
	}
	if got := metricValue(t, ts.URL, "flovd_jobs_preempted_total"); got != 0 {
		t.Fatalf("flovd_jobs_preempted_total = %d, want 0", got)
	}
}

// TestTimeoutIsAbsoluteAcrossPreemption pins the deadline fix: the job
// deadline is set once at admission, so a sliced job that is preempted
// and requeued many times still cancels when the original JobTimeout
// elapses. Under the old per-slice clock each resume restarted the
// budget, and a job whose slices were all shorter than JobTimeout could
// never time out at all.
func TestTimeoutIsAbsoluteAcrossPreemption(t *testing.T) {
	// ~300ms of simulation per point serially: total wall time is far
	// beyond the 300ms deadline, while each 25ms slice is far below it.
	_, ts := newTestServer(t, Config{
		Workers:    1,
		Runners:    1,
		JobSlice:   25 * time.Millisecond,
		JobTimeout: 300 * time.Millisecond,
	})
	st := decodeStatus(t, postSpec(t, ts.URL+"/v1/sweeps", longSpec(0.05, 0.1, 0.15, 0.2)))
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %q, want canceled (per-slice clock would run to done)", final.State)
	}
	if !strings.Contains(final.Err, "timeout") {
		t.Fatalf("failure note = %q, want timeout", final.Err)
	}
}
