package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"flov/internal/opt"
)

// tinyOptSpec mirrors the opt package's fast test search.
func tinyOptSpec() opt.Spec {
	return opt.Spec{
		Space: opt.Space{
			Widths: []int{4}, Heights: []int{4},
			VCs: []int{1}, Buffers: []int{4},
			Mechanisms: []string{"baseline", "gflov"},
			GatedFracs: []float64{0, 0.5},
			Rates:      []float64{0.05},
		},
		Generations: 2,
		Population:  4,
		Seed:        7,
		Cycles:      1200,
		Warmup:      300,
	}
}

func postOpt(t *testing.T, url string, spec opt.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/opt/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestOptRunStreamsGenerationsAndOutcome(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postOpt(t, ts.URL, tinyOptSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var gens int
	var done *OptStreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line OptStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "generation":
			if line.Event == nil || line.Event.Gen != gens {
				t.Fatalf("generation line out of order: %+v", line.Event)
			}
			gens++
		case "done":
			cp := line
			done = &cp
		default:
			t.Fatalf("unexpected line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if gens != 2 {
		t.Fatalf("streamed %d generation lines, want 2", gens)
	}
	if done == nil || done.Outcome == nil {
		t.Fatal("stream ended without a done line")
	}
	if len(done.Outcome.Front) == 0 {
		t.Fatal("done outcome carries an empty front")
	}
	if done.Outcome.Generations != 2 {
		t.Fatalf("outcome generations %d, want 2", done.Outcome.Generations)
	}

	// The optimizer counters must have moved.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mresp.Body.Close() }()
	metricsBody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flovd_opt_runs_total 1",
		"flovd_opt_generations_total 2",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestOptRunRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"malformed json": `{`,
		"unknown field":  `{"generatons": 2}`,
		"bad space":      `{"space": {"widths": [1]}}`,
		"bad strategy":   `{"strategy": "nope"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/opt/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

func TestOptRunRefusedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postOpt(t, ts.URL, tinyOptSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", resp.StatusCode)
	}
}
