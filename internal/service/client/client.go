// Package client is the Go client for a running flovd daemon. It is
// used by `flovsweep -server` and by end-to-end tests; the wire types
// live in the service package so client and server cannot drift.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"flov/internal/service"
	"flov/internal/sweep"
)

// Client talks to one flovd base URL. The zero HTTP client is replaced
// with a default whose transport has no overall timeout: streams are
// long-lived by design, per-call lifetimes come from the context.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g. "http://host:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// apiError decodes a non-2xx response into an error carrying the
// server's message and status code.
func apiError(resp *http.Response) error {
	defer func() { _ = resp.Body.Close() }()
	var body service.ErrorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err == nil && json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("flovd: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("flovd: HTTP %d", resp.StatusCode)
}

func (c *Client) postSpec(ctx context.Context, path string, spec sweep.Spec) (*http.Response, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.http.Do(req)
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit enqueues a spec fire-and-forget and returns its job status
// (ID, queue state, dedup flag). The job runs server-side regardless of
// this client's lifetime.
func (c *Client) Submit(ctx context.Context, spec sweep.Spec) (service.JobStatus, error) {
	resp, err := c.postSpec(ctx, "/v1/sweeps", spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, fmt.Errorf("client: decode submit response: %w", err)
	}
	return st, nil
}

// Status polls a job.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.getJSON(ctx, "/v1/sweeps/"+id, &st)
	return st, err
}

// Results fetches the result rows of a finished job.
func (c *Client) Results(ctx context.Context, id string) ([]sweep.Result, error) {
	var rows []sweep.Result
	if err := c.getJSON(ctx, "/v1/sweeps/"+id+"/results", &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Metrics fetches the raw /metrics exposition (tests and diagnostics).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Run submits a spec on the streaming path and follows it to
// completion, returning one result per point in job order plus the
// server's summary stats. onEvent, when non-nil, sees every stream
// event as it arrives (progress tickers). Cancelling ctx tears the
// stream down; if no other submitter shares the job, the server cancels
// it and frees its queue slot.
//
// Per-invocation fields the result JSON intentionally omits (CacheHit,
// Wall) are restored from the stream's progress metadata, so callers
// see the same rows a local engine run would produce.
func (c *Client) Run(ctx context.Context, spec sweep.Spec, onEvent func(service.StreamEvent)) ([]sweep.Result, sweep.Stats, error) {
	resp, err := c.postSpec(ctx, "/v1/sweeps/run", spec)
	if err != nil {
		return nil, sweep.Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, sweep.Stats{}, apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()

	var (
		results []sweep.Result
		stats   sweep.Stats
		state   string
		failure string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, sweep.Stats{}, fmt.Errorf("client: bad stream line: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Type {
		case service.EventAccepted:
			results = make([]sweep.Result, ev.Total)
		case service.EventPoint:
			if ev.Result != nil && ev.Index < len(results) {
				r := *ev.Result
				r.CacheHit = ev.Status == service.PointCached
				r.Wall = time.Duration(ev.WallMS * float64(time.Millisecond))
				results[ev.Index] = r
			}
		case service.EventSummary:
			state = ev.State
			failure = ev.Err
			if ev.Stats != nil {
				stats = *ev.Stats
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, sweep.Stats{}, fmt.Errorf("client: stream: %w", err)
	}
	switch state {
	case service.StateDone:
		return results, stats, nil
	case service.StateCanceled:
		return nil, sweep.Stats{}, fmt.Errorf("flovd: job canceled: %s", failure)
	default:
		return nil, sweep.Stats{}, fmt.Errorf("flovd: stream ended without a summary")
	}
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == service.StateDone || st.State == service.StateCanceled {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
