// Package client is the Go client for a running flovd daemon. It is
// used by `flovsweep -server` and by end-to-end tests; the wire types
// live in the service package so client and server cannot drift.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flov/internal/service"
	"flov/internal/sweep"
)

// Client talks to one flovd base URL. The zero HTTP client is replaced
// with a default whose transport has no overall timeout: streams are
// long-lived by design, per-call lifetimes come from the context.
type Client struct {
	base string
	http *http.Client
	// Retry tunes transient-failure handling; the zero value uses the
	// defaults documented on RetryPolicy.
	Retry RetryPolicy
}

// RetryPolicy bounds the client's automatic retry of throttled (429)
// and server-failure (5xx) responses. Waits honor the server's
// Retry-After header when present — flovd emits it on 429 — and
// otherwise back off exponentially with jitter, so a herd of throttled
// clients does not re-arrive in lockstep.
type RetryPolicy struct {
	// Attempts is the total number of tries per request. <= 0 means 4;
	// 1 disables retry.
	Attempts int
	// BaseDelay seeds the exponential backoff. <= 0 means 200ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff wait (Retry-After may exceed it).
	// <= 0 means 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.Attempts > 0 {
		return p.Attempts
	}
	return 4
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 200 * time.Millisecond
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 5 * time.Second
}

// New returns a client for the daemon at base (e.g. "http://host:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// retryable reports whether a status is worth re-trying: throttling and
// server-side failures. Everything 4xx-but-429 is the caller's bug.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryAfter parses a response's Retry-After header (whole seconds; the
// HTTP-date form is ignored as no flov server emits it).
func retryAfter(resp *http.Response) time.Duration {
	s, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || s < 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}

// backoff computes the jittered exponential wait for a retry attempt
// (0-based): a random value in [d/2, d] where d doubles per attempt up
// to the cap.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.baseDelay() << attempt
	if max := p.maxDelay(); d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// doRetry issues a request built by mk, retrying 429/5xx responses up
// to the policy's attempt budget. mk is called per attempt because a
// request body is consumed by the transport. The final response (or
// transport error) is returned as-is, so callers' status handling is
// unchanged when retries are exhausted.
func (c *Client) doRetry(ctx context.Context, mk func() (*http.Request, error)) (*http.Response, error) {
	attempts := c.Retry.attempts()
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err // transport errors are not retried: the request may have executed
		}
		if !retryable(resp.StatusCode) || attempt >= attempts-1 {
			return resp, nil
		}
		wait := retryAfter(resp)
		if wait == 0 {
			wait = c.Retry.backoff(attempt)
		}
		// Drain so the connection can be reused across the wait.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// apiError decodes a non-2xx response into an error carrying the
// server's message and status code.
func apiError(resp *http.Response) error {
	defer func() { _ = resp.Body.Close() }()
	var body service.ErrorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err == nil && json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("flovd: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("flovd: HTTP %d", resp.StatusCode)
}

func (c *Client) postSpec(ctx context.Context, path string, spec sweep.Spec) (*http.Response, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode spec: %w", err)
	}
	return c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit enqueues a spec fire-and-forget and returns its job status
// (ID, queue state, dedup flag). The job runs server-side regardless of
// this client's lifetime.
func (c *Client) Submit(ctx context.Context, spec sweep.Spec) (service.JobStatus, error) {
	resp, err := c.postSpec(ctx, "/v1/sweeps", spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, fmt.Errorf("client: decode submit response: %w", err)
	}
	return st, nil
}

// Status polls a job.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.getJSON(ctx, "/v1/sweeps/"+id, &st)
	return st, err
}

// Results fetches the result rows of a finished job.
func (c *Client) Results(ctx context.Context, id string) ([]sweep.Result, error) {
	var rows []sweep.Result
	if err := c.getJSON(ctx, "/v1/sweeps/"+id+"/results", &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Metrics fetches the raw /metrics exposition (tests and diagnostics).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Run submits a spec on the streaming path and follows it to
// completion, returning one result per point in job order plus the
// server's summary stats. onEvent, when non-nil, sees every stream
// event as it arrives (progress tickers). Cancelling ctx tears the
// stream down; if no other submitter shares the job, the server cancels
// it and frees its queue slot.
//
// Per-invocation fields the result JSON intentionally omits (CacheHit,
// Wall) are restored from the stream's progress metadata, so callers
// see the same rows a local engine run would produce.
func (c *Client) Run(ctx context.Context, spec sweep.Spec, onEvent func(service.StreamEvent)) ([]sweep.Result, sweep.Stats, error) {
	resp, err := c.postSpec(ctx, "/v1/sweeps/run", spec)
	if err != nil {
		return nil, sweep.Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, sweep.Stats{}, apiError(resp)
	}
	defer func() { _ = resp.Body.Close() }()

	var (
		results []sweep.Result
		stats   sweep.Stats
		state   string
		failure string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, sweep.Stats{}, fmt.Errorf("client: bad stream line: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Type {
		case service.EventAccepted:
			results = make([]sweep.Result, ev.Total)
		case service.EventPoint:
			if ev.Result != nil && ev.Index < len(results) {
				r := *ev.Result
				r.CacheHit = ev.Status == service.PointCached
				r.Wall = time.Duration(ev.WallMS * float64(time.Millisecond))
				results[ev.Index] = r
			}
		case service.EventSummary:
			state = ev.State
			failure = ev.Err
			if ev.Stats != nil {
				stats = *ev.Stats
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, sweep.Stats{}, fmt.Errorf("client: stream: %w", err)
	}
	switch state {
	case service.StateDone:
		return results, stats, nil
	case service.StateCanceled:
		return nil, sweep.Stats{}, fmt.Errorf("flovd: job canceled: %s", failure)
	default:
		return nil, sweep.Stats{}, fmt.Errorf("flovd: stream ended without a summary")
	}
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == service.StateDone || st.State == service.StateCanceled {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
