package client_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"flov/internal/service"
	"flov/internal/service/client"
	"flov/internal/sweep"
)

// testSpec mirrors the serving-layer tests: a tiny 4x4 baseline point
// per rate, fast enough to simulate in milliseconds.
func testSpec(rates ...float64) sweep.Spec {
	return sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      rates,
		GatedFracs: []float64{0.5},
		Mechanisms: []string{"baseline"},
		Width:      4, Height: 4,
		Cycles: 4_000, Warmup: 500,
		Seed: 7,
	}
}

// newServer stands up a full daemon (service + HTTP front end) and a
// client pointed at it.
func newServer(t *testing.T, cfg service.Config) (*client.Client, *service.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return client.New(ts.URL), s
}

// stripTransient zeroes the per-invocation fields (wall time, cache
// provenance) so rows from different runs compare equal.
func stripTransient(rows []sweep.Result) []sweep.Result {
	out := make([]sweep.Result, len(rows))
	for i, r := range rows {
		r.Wall = 0
		r.CacheHit = false
		out[i] = r
	}
	return out
}

// TestRunMatchesDirectEngine checks the client's streaming Run path
// returns the same rows (and restored CacheHit metadata) a local engine
// run would produce.
func TestRunMatchesDirectEngine(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newServer(t, service.Config{Cache: cache})
	spec := testSpec(0.01, 0.02)

	points, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	direct := (&sweep.Engine{}).Run(context.Background(), points)

	var events int
	served, stats, err := c.Run(context.Background(), spec, func(service.StreamEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTransient(served), stripTransient(direct)) {
		t.Fatalf("served rows differ from direct engine run:\nserved %+v\ndirect %+v", served, direct)
	}
	for i, r := range served {
		if r.CacheHit {
			t.Errorf("point %d: CacheHit on a cold cache", i)
		}
	}
	// accepted + per-point start/done + summary, at minimum.
	if events < 2*len(points)+2 {
		t.Errorf("onEvent saw %d events, want at least %d", events, 2*len(points)+2)
	}
	if stats.Jobs != len(points) || stats.Errors != 0 {
		t.Errorf("stats = %+v, want %d jobs, 0 errors", stats, len(points))
	}

	// A second Run is answered from the shared cache, and the client
	// restores the CacheHit flag the result JSON omits.
	again, _, err := c.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTransient(again), stripTransient(direct)) {
		t.Fatal("cached rows differ from the original run")
	}
	for i, r := range again {
		if !r.CacheHit {
			t.Errorf("point %d: CacheHit not restored on the cached rerun", i)
		}
	}
}

// TestSubmitStatusResults drives the async path: fire-and-forget
// submit, poll to completion, fetch rows.
func TestSubmitStatusResults(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	ctx := context.Background()

	st, err := c.Submit(ctx, testSpec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Deduped {
		t.Fatalf("submit status = %+v, want fresh job with an ID", st)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.Done != 1 || final.Errors != 0 {
		t.Fatalf("final status = %+v, want done with 1 point", final)
	}
	rows, err := c.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("results = %+v, want one clean row", rows)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "flovd_jobs_accepted_total") {
		t.Error("metrics exposition missing flovd_jobs_accepted_total")
	}
}

// TestRunContextCancel checks client-side cancellation surfaces as an
// error instead of a hang.
func TestRunContextCancel(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	spec := testSpec(0.01)
	// Slow enough that cancel wins the race, small enough that the
	// non-preempted in-flight point doesn't stall test teardown.
	spec.Cycles = 150_000

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Run(ctx, spec, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after context cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

// TestUnknownJobErrors checks API errors carry the server's message and
// status code.
func TestUnknownJobErrors(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	if _, err := c.Status(context.Background(), "no-such-job"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Status(unknown) = %v, want an HTTP 404 error", err)
	}
	if _, err := c.Results(context.Background(), "no-such-job"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Results(unknown) = %v, want an HTTP 404 error", err)
	}
}
