package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flov/internal/service"
	"flov/internal/service/client"
	"flov/internal/sweep"
)

// testSpec mirrors the serving-layer tests: a tiny 4x4 baseline point
// per rate, fast enough to simulate in milliseconds.
func testSpec(rates ...float64) sweep.Spec {
	return sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      rates,
		GatedFracs: []float64{0.5},
		Mechanisms: []string{"baseline"},
		Width:      4, Height: 4,
		Cycles: 4_000, Warmup: 500,
		Seed: 7,
	}
}

// newServer stands up a full daemon (service + HTTP front end) and a
// client pointed at it.
func newServer(t *testing.T, cfg service.Config) (*client.Client, *service.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return client.New(ts.URL), s
}

// stripTransient zeroes the per-invocation fields (wall time, cache
// provenance) so rows from different runs compare equal.
func stripTransient(rows []sweep.Result) []sweep.Result {
	out := make([]sweep.Result, len(rows))
	for i, r := range rows {
		r.Wall = 0
		r.CacheHit = false
		out[i] = r
	}
	return out
}

// TestRunMatchesDirectEngine checks the client's streaming Run path
// returns the same rows (and restored CacheHit metadata) a local engine
// run would produce.
func TestRunMatchesDirectEngine(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newServer(t, service.Config{Cache: cache})
	spec := testSpec(0.01, 0.02)

	points, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	direct := (&sweep.Engine{}).Run(context.Background(), points)

	var events int
	served, stats, err := c.Run(context.Background(), spec, func(service.StreamEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTransient(served), stripTransient(direct)) {
		t.Fatalf("served rows differ from direct engine run:\nserved %+v\ndirect %+v", served, direct)
	}
	for i, r := range served {
		if r.CacheHit {
			t.Errorf("point %d: CacheHit on a cold cache", i)
		}
	}
	// accepted + per-point start/done + summary, at minimum.
	if events < 2*len(points)+2 {
		t.Errorf("onEvent saw %d events, want at least %d", events, 2*len(points)+2)
	}
	if stats.Jobs != len(points) || stats.Errors != 0 {
		t.Errorf("stats = %+v, want %d jobs, 0 errors", stats, len(points))
	}

	// A second Run is answered from the shared cache, and the client
	// restores the CacheHit flag the result JSON omits.
	again, _, err := c.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTransient(again), stripTransient(direct)) {
		t.Fatal("cached rows differ from the original run")
	}
	for i, r := range again {
		if !r.CacheHit {
			t.Errorf("point %d: CacheHit not restored on the cached rerun", i)
		}
	}
}

// TestSubmitStatusResults drives the async path: fire-and-forget
// submit, poll to completion, fetch rows.
func TestSubmitStatusResults(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	ctx := context.Background()

	st, err := c.Submit(ctx, testSpec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Deduped {
		t.Fatalf("submit status = %+v, want fresh job with an ID", st)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.Done != 1 || final.Errors != 0 {
		t.Fatalf("final status = %+v, want done with 1 point", final)
	}
	rows, err := c.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("results = %+v, want one clean row", rows)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "flovd_jobs_accepted_total") {
		t.Error("metrics exposition missing flovd_jobs_accepted_total")
	}
}

// TestRunContextCancel checks client-side cancellation surfaces as an
// error instead of a hang.
func TestRunContextCancel(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	spec := testSpec(0.01)
	// Slow enough that cancel wins the race, small enough that the
	// non-preempted in-flight point doesn't stall test teardown.
	spec.Cycles = 150_000

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Run(ctx, spec, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after context cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

// TestUnknownJobErrors checks API errors carry the server's message and
// status code.
func TestUnknownJobErrors(t *testing.T) {
	c, _ := newServer(t, service.Config{})
	if _, err := c.Status(context.Background(), "no-such-job"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Status(unknown) = %v, want an HTTP 404 error", err)
	}
	if _, err := c.Results(context.Background(), "no-such-job"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Results(unknown) = %v, want an HTTP 404 error", err)
	}
}

// throttleServer answers 429 (with the given Retry-After header) for
// the first n requests, then proxies to the real daemon handler.
func throttleServer(t *testing.T, n int, retryAfter string, next http.Handler) (*httptest.Server, *int32) {
	t.Helper()
	var seen int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(atomic.AddInt32(&seen, 1)) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		next.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &seen
}

// TestSubmitRetriesThrottled: a 429 with Retry-After is retried within
// the attempt budget and the submission eventually lands.
func TestSubmitRetriesThrottled(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	t.Cleanup(func() { s.Close() })
	srv, seen := throttleServer(t, 2, "0", s.Handler())

	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond}
	st, err := c.Submit(context.Background(), testSpec(0.01))
	if err != nil {
		t.Fatalf("submit with retries: %v", err)
	}
	if st.ID == "" {
		t.Fatal("no job id")
	}
	if got := atomic.LoadInt32(seen); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two throttled + one admitted)", got)
	}
}

// TestSubmitRetryExhausted: when every attempt is throttled the final
// 429 surfaces as an error after exactly Attempts tries.
func TestSubmitRetryExhausted(t *testing.T) {
	srv, seen := throttleServer(t, 1<<30, "0", nil)
	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}
	_, err := c.Submit(context.Background(), testSpec(0.01))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want surfaced 429", err)
	}
	if got := atomic.LoadInt32(seen); got != 3 {
		t.Fatalf("server saw %d requests, want exactly the attempt budget (3)", got)
	}
}

// TestRetryHonorsRetryAfter: the server's whole-second hint is waited
// out rather than the (much shorter) backoff schedule.
func TestRetryHonorsRetryAfter(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	t.Cleanup(func() { s.Close() })
	srv, _ := throttleServer(t, 1, "1", s.Handler())

	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond}
	start := time.Now()
	if _, err := c.Submit(context.Background(), testSpec(0.01)); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s per Retry-After", wait)
	}
}

// TestRetryAbortsOnContextCancel: a canceled context ends the wait
// immediately instead of sleeping out the backoff.
func TestRetryAbortsOnContextCancel(t *testing.T) {
	srv, _ := throttleServer(t, 1<<30, "30", nil)
	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{Attempts: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, testSpec(0.01))
	if err == nil {
		t.Fatal("submit succeeded against a permanently throttled server")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context cancellation did not interrupt the retry wait")
	}
}

// TestNoRetryOnClientError: 4xx other than 429 fails immediately.
func TestNoRetryOnClientError(t *testing.T) {
	var seen int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&seen, 1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad spec"}`))
	}))
	t.Cleanup(srv.Close)
	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond}
	if _, err := c.Submit(context.Background(), testSpec(0.01)); err == nil {
		t.Fatal("want error")
	}
	if got := atomic.LoadInt32(&seen); got != 1 {
		t.Fatalf("client retried a 400 (%d requests)", got)
	}
}
