package service

import (
	"fmt"
	"strings"
	"sync/atomic"

	"flov/internal/stats"
	"flov/internal/sweep"
)

// metrics is the daemon's counter/histogram set, exported in Prometheus
// text format by the /metrics handler. Counters are monotonic over the
// process lifetime.
type metrics struct {
	jobsAccepted  atomic.Int64
	jobsRejected  atomic.Int64 // admission refusals (queue full)
	jobsDeduped   atomic.Int64 // submissions attached to an in-flight twin
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64 // completed with >= 1 error-carrying point
	jobsCanceled  atomic.Int64
	jobsPreempted atomic.Int64 // slice expiries that requeued a job
	jobsResumed   atomic.Int64 // preempted jobs picked back up

	pointsDone        atomic.Int64
	pointsCached      atomic.Int64
	pointsFailed      atomic.Int64
	pointsSnapshotted atomic.Int64 // mid-run checkpoints taken for preemption

	// Fault-scenario observability (points whose job carries a fault spec).
	faultsInjected atomic.Int64 // faults injected across finished points
	packetsDropped atomic.Int64 // packets classified as lost across finished points
	trialsViolated atomic.Int64 // fault-scenario points that tripped a correctness oracle

	// Design-space optimizer observability (POST /v1/opt/run).
	optRuns        atomic.Int64 // searches started
	optGenerations atomic.Int64 // generations completed across searches
	optEvaluations atomic.Int64 // candidates scored (simulated + reused)
	optFailed      atomic.Int64 // searches that ended in an error

	panics atomic.Int64 // handler panics caught by the recovery middleware

	jobWallMS   stats.Histogram // submit-to-finish latency per job
	pointWallMS stats.Histogram // execution time per simulated point
}

// render writes the Prometheus exposition. Gauges (queue depth, running
// jobs) and cache counters come from the caller, which owns those.
func (m *metrics) render(b *strings.Builder, queueDepth, running int, draining bool, cache *sweep.Cache) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("flovd_jobs_accepted_total", "jobs admitted to the queue", m.jobsAccepted.Load())
	counter("flovd_jobs_rejected_total", "submissions refused because the queue was full", m.jobsRejected.Load())
	counter("flovd_jobs_deduped_total", "submissions attached to an identical in-flight job", m.jobsDeduped.Load())
	counter("flovd_jobs_completed_total", "jobs run to completion", m.jobsCompleted.Load())
	counter("flovd_jobs_failed_total", "completed jobs with at least one failed point", m.jobsFailed.Load())
	counter("flovd_jobs_canceled_total", "jobs canceled before completion", m.jobsCanceled.Load())
	counter("flovd_jobs_preempted_total", "jobs checkpointed and requeued at a slice boundary", m.jobsPreempted.Load())
	counter("flovd_jobs_resumed_total", "preempted jobs resumed from their checkpoints", m.jobsResumed.Load())
	counter("flovd_points_done_total", "points simulated to completion", m.pointsDone.Load())
	counter("flovd_points_cached_total", "points served from the result cache", m.pointsCached.Load())
	counter("flovd_points_failed_total", "points that errored or panicked", m.pointsFailed.Load())
	counter("flovd_points_snapshotted_total", "mid-run point checkpoints taken for preemption", m.pointsSnapshotted.Load())
	counter("flovd_faults_injected_total", "faults injected across finished fault-scenario points", m.faultsInjected.Load())
	counter("flovd_packets_dropped_total", "packets classified as lost across finished points", m.packetsDropped.Load())
	counter("flovd_trials_violated_total", "fault-scenario points that tripped a correctness oracle", m.trialsViolated.Load())
	counter("flovd_opt_runs_total", "design-space searches started", m.optRuns.Load())
	counter("flovd_opt_generations_total", "optimizer generations completed", m.optGenerations.Load())
	counter("flovd_opt_evaluations_total", "optimizer candidates scored", m.optEvaluations.Load())
	counter("flovd_opt_failed_total", "design-space searches that ended in an error", m.optFailed.Load())
	counter("flovd_handler_panics_total", "HTTP handler panics recovered", m.panics.Load())
	if cache != nil {
		hits, misses, writes := cache.Counters()
		counter("flovd_cache_hits_total", "result-cache lookups served from disk", hits)
		counter("flovd_cache_misses_total", "result-cache lookups that missed", misses)
		counter("flovd_cache_writes_total", "result-cache entries written", writes)
	}
	gauge("flovd_queue_depth", "jobs queued and not yet running", int64(queueDepth))
	gauge("flovd_jobs_running", "jobs currently executing", int64(running))
	var d int64
	if draining {
		d = 1
	}
	gauge("flovd_draining", "1 while the daemon refuses new work and drains", d)
	histogram(b, "flovd_job_wall_milliseconds", "submit-to-finish job latency", m.jobWallMS.Snapshot())
	histogram(b, "flovd_point_wall_milliseconds", "per-point execution time", m.pointWallMS.Snapshot())
}

// histogram renders a stats.Histogram snapshot as a Prometheus summary:
// coarse power-of-two quantile upper bounds plus exact sum and count.
func histogram(b *strings.Builder, name, help string, s stats.HistogramSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []float64{50, 90, 99} {
		fmt.Fprintf(b, "%s{quantile=\"0.%.0f\"} %d\n", name, q, s.Percentile(q))
	}
	fmt.Fprintf(b, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
}
