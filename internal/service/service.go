// Package service is flovd's serving layer: a bounded job queue with
// admission control and in-flight dedup, runner goroutines that execute
// sweep specs through the existing sweep.Engine (sharing its on-disk
// result cache), per-job NDJSON event streams, and an observability
// surface (/metrics counters and histograms, /debug/events ring).
//
// The layering is strict: the simulator core knows nothing about the
// service, and the service knows nothing about routers — it only speaks
// sweep.Spec in and sweep.Result out. Everything wall-clock lives here
// and in cmd/; simulation packages stay on cycle time (flovlint pins
// that).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flov/internal/nlog"
	"flov/internal/sweep"
)

// Config parameterizes a Server. The zero value is usable: defaults are
// filled in by New.
type Config struct {
	// QueueDepth bounds jobs admitted but not yet running; submissions
	// beyond it are rejected with 429 rather than buffered without
	// bound. Default 16.
	QueueDepth int
	// Runners is the number of concurrently executing jobs. Points
	// within a job already fan out across Workers, so the default of 1
	// keeps a single job's latency minimal; raise it when jobs are
	// small and arrival rate is high.
	Runners int
	// Workers is the sweep.Engine pool size per job (<= 0 means
	// GOMAXPROCS).
	Workers int
	// JobTimeout bounds one job's wall-clock lifetime from admission;
	// 0 means no limit. The deadline is absolute — preemption and
	// requeueing do not restart it — and on expiry the engine's context
	// path cancels unstarted points and the job reports canceled.
	JobTimeout time.Duration
	// JobSlice, when positive, makes execution preemptible: a job that
	// runs longer than one slice is checkpointed (points in flight
	// snapshot their simulation state), requeued behind waiting jobs,
	// and later resumed exactly where it stopped. Long sweeps stop
	// monopolizing the runner pool while short jobs wait. 0 disables
	// time-slicing.
	JobSlice time.Duration
	// RetainJobs is how many finished jobs stay queryable (status,
	// results, stream replay) before eviction, oldest first. Default 64.
	RetainJobs int
	// Cache, when non-nil, is the shared content-addressed result
	// store; resubmitted specs are answered from it without simulation.
	Cache *sweep.Cache
	// EventLog capacity for the /debug/events ring. Default 512.
	EventLogSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// runPoint substitutes the per-point runner (tests block points on
	// demand to observe streaming and cancellation mid-flight).
	runPoint func(sweep.Job) sweep.Result
}

// Submission errors mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull rejects a submission when QueueDepth jobs are
	// already waiting (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects a submission during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not admitting jobs")
)

// job is one admitted sweep: the expanded point list, its live event
// feed, and bookkeeping for dedup, cancellation and retention.
type job struct {
	id       string
	specHash string
	points   []sweep.Job
	feed     *feed

	ctx    context.Context
	cancel context.CancelFunc

	// deadline is the job's absolute completion deadline (zero = none),
	// fixed once at admission. Absolute, not a per-slice duration: a
	// preempted job that requeues must not have its clock restarted, or
	// a JobTimeout shorter than the sum of slices would never fire.
	deadline time.Time

	mu        sync.Mutex
	state     string
	owned     bool // a fire-and-forget submission pinned it: never auto-cancel
	refs      int  // attached streaming submitters; 0 + !owned => abandon
	submitted time.Time
	results   []sweep.Result
	stats     sweep.Stats
	done      int // finished points so far
	cacheHits int
	errors    int
	failure   string // job-level failure note (timeout, drain)

	// Preemption bookkeeping: finished rows accumulate across slices
	// (index-aligned with points), snapshots hold the checkpoints of
	// points paused mid-simulation, elapsed sums per-slice wall time.
	finished  []sweep.Result
	havePoint []bool
	snapshots [][]byte
	elapsed   time.Duration
	resumes   int

	doneCh chan struct{} // closed when the job reaches a terminal state
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Points:    len(j.points),
		Done:      j.done,
		CacheHits: j.cacheHits,
		Errors:    j.errors,
		Err:       j.failure,
		Resumes:   j.resumes,
	}
	if j.state == StateDone || j.state == StateCanceled {
		st.WallMS = float64(j.stats.Wall) / float64(time.Millisecond)
	}
	return st
}

// Server owns the queue, the runners and the metrics. Create with New,
// serve via Handler, stop via Drain or Close.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queued   []*job          // FIFO; admission bounds its length
	running  int             // jobs currently executing
	inflight map[string]*job // spec hash -> queued or running job (dedup)
	jobs     map[string]*job // id -> any retained job
	retained []string        // finished job ids, oldest first (eviction order)
	seq      int64
	stopping bool // runners exit once the queue empties
	draining bool // submissions rejected

	wg      sync.WaitGroup
	metrics metrics
	events  *nlog.Shared
	start   time.Time
}

// New builds a Server and starts its runner pool.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 64
	}
	if cfg.EventLogSize <= 0 {
		cfg.EventLogSize = 512
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		inflight:   make(map[string]*job),
		jobs:       make(map[string]*job),
		events:     nlog.NewShared(cfg.EventLogSize),
		start:      time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	s.log("flovd up: queue=%d runners=%d workers=%d", cfg.QueueDepth, cfg.Runners, cfg.Workers)
	return s
}

// log records a service event on the debug ring, stamped with unix
// milliseconds in the ring's cycle slot.
func (s *Server) log(format string, args ...any) {
	s.events.Addf(time.Now().UnixMilli(), nlog.KService, -1, format, args...)
}

// specHash is the dedup identity of a submission: the hash of its
// expanded point hashes, so two spellings of the same grid coincide.
func specHash(points []sweep.Job) string {
	h := sha256.New()
	for _, p := range points {
		// hash.Hash.Write never returns an error.
		_, _ = fmt.Fprintf(h, "%s\n", p.Hash())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// submit admits a spec's expanded points. owned marks fire-and-forget
// submissions that must run to completion regardless of client
// lifetime; !owned submissions hold a reference that release() drops.
// Identical in-flight jobs are shared (deduped=true) instead of
// enqueued twice.
func (s *Server) submit(points []sweep.Job, owned bool) (j *job, deduped bool, err error) {
	h := specHash(points)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if twin := s.inflight[h]; twin != nil {
		twin.mu.Lock()
		twin.owned = twin.owned || owned
		if !owned {
			twin.refs++
		}
		twin.mu.Unlock()
		s.metrics.jobsDeduped.Add(1)
		s.log("dedup %s onto %s (%d points)", h[:12], twin.id, len(points))
		return twin, true, nil
	}
	if len(s.queued) >= s.cfg.QueueDepth {
		s.metrics.jobsRejected.Add(1)
		s.log("rejected submission (%d points): queue full at %d", len(points), len(s.queued))
		return nil, false, ErrQueueFull
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	refs := 1
	if owned {
		refs = 0
	}
	j = &job{
		id:        fmt.Sprintf("%s-%d", h[:12], s.seq),
		specHash:  h,
		points:    points,
		feed:      newFeed(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		owned:     owned,
		refs:      refs,
		submitted: time.Now(),
		finished:  make([]sweep.Result, len(points)),
		havePoint: make([]bool, len(points)),
		snapshots: make([][]byte, len(points)),
		doneCh:    make(chan struct{}),
	}
	if s.cfg.JobTimeout > 0 {
		j.deadline = time.Now().Add(s.cfg.JobTimeout)
	}
	j.feed.append(StreamEvent{Type: EventAccepted, ID: j.id, Total: len(points), State: StateQueued})
	s.inflight[h] = j
	s.jobs[j.id] = j
	s.queued = append(s.queued, j)
	s.metrics.jobsAccepted.Add(1)
	s.log("accepted %s: %d points, queue depth %d", j.id, len(points), len(s.queued))
	s.cond.Signal()
	return j, false, nil
}

// release drops a streaming submitter's reference. When the last one
// disconnects from a job nobody owns, the job cancels: a queued job
// leaves the queue immediately (freeing its admission slot), a running
// one stops through the engine's context path.
func (s *Server) release(j *job) {
	j.mu.Lock()
	j.refs--
	abandoned := j.refs <= 0 && !j.owned && (j.state == StateQueued || j.state == StateRunning)
	j.mu.Unlock()
	if abandoned {
		s.cancelJob(j, "abandoned by client")
	}
}

// cancelJob cancels a queued or running job. Queued jobs finalize here;
// running jobs finalize in execute when the engine returns.
func (s *Server) cancelJob(j *job, reason string) {
	j.cancel()
	s.mu.Lock()
	wasQueued := false
	for i, q := range s.queued {
		if q == j {
			s.queued = append(s.queued[:i:i], s.queued[i+1:]...)
			wasQueued = true
			break
		}
	}
	if s.inflight[j.specHash] == j {
		delete(s.inflight, j.specHash)
	}
	s.mu.Unlock()
	if wasQueued {
		s.finalize(j, nil, sweep.Stats{}, StateCanceled, reason)
	}
	s.log("cancel %s: %s", j.id, reason)
}

// runner drains the queue until stopped.
func (s *Server) runner() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.queued) == 0 && !s.stopping {
			s.cond.Wait()
		}
		if len(s.queued) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queued[0]
		s.queued = s.queued[1:]
		s.running++
		s.mu.Unlock()
		s.execute(j)
		s.mu.Lock()
		s.running--
	}
}

// execute runs one slice of a job through the engine. Without a
// JobSlice the slice is the whole job. With one, a slice that expires
// preempts the engine: in-flight points checkpoint their simulation
// state, and the job requeues behind waiting work to resume later; only
// when every point has a durable row does the job finalize.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued, popped anyway
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	resumed := j.resumes > 0
	// Pending points: those without a durable result from earlier slices.
	var idx []int
	for i := range j.points {
		if !j.havePoint[i] {
			idx = append(idx, i)
		}
	}
	pts := make([]sweep.Job, len(idx))
	snaps := make([][]byte, len(idx))
	for k, i := range idx {
		pts[k] = j.points[i]
		snaps[k] = j.snapshots[i]
	}
	j.mu.Unlock()

	if resumed {
		j.feed.append(StreamEvent{Type: EventResumed, ID: j.id, Total: len(j.points), Remaining: len(idx)})
		s.metrics.jobsResumed.Add(1)
		s.log("resume %s (%d of %d points remaining)", j.id, len(idx), len(j.points))
	} else {
		s.log("start %s (%d points)", j.id, len(j.points))
	}

	ctx := j.ctx
	cancel := func() {}
	if !j.deadline.IsZero() {
		// The absolute admission-time deadline, not a fresh JobTimeout:
		// every slice of a preempted job runs against the same clock.
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
	}
	engine := &sweep.Engine{
		Workers:  s.cfg.Workers,
		Cache:    s.cfg.Cache,
		Progress: remapFan{fan: progressFan{s: s, j: j}, idx: idx, total: len(j.points)},
		RunJob:   s.cfg.runPoint,
	}
	var sliceExpired atomic.Bool
	if s.cfg.JobSlice > 0 {
		engine.Pause = sliceExpired.Load
		engine.Snapshots = snaps
		timer := time.AfterFunc(s.cfg.JobSlice, func() { sliceExpired.Store(true) })
		defer timer.Stop()
	}
	start := time.Now()
	results := engine.Run(ctx, pts)
	wall := time.Since(start)
	timedOut := ctx.Err() != nil && j.ctx.Err() == nil
	cancel()

	// Merge this slice's outcomes into the job's durable row set.
	paused := 0
	j.mu.Lock()
	for k, r := range results {
		i := idx[k]
		if r.Paused {
			paused++
			if r.Snapshot != nil {
				j.snapshots[i] = r.Snapshot
			}
			continue
		}
		j.finished[i] = r
		j.havePoint[i] = true
		j.snapshots[i] = nil
	}
	j.elapsed += wall
	elapsed := j.elapsed
	j.mu.Unlock()

	if paused > 0 && !timedOut && j.ctx.Err() == nil {
		// Slice expired mid-job: requeue behind waiting work and yield
		// the runner. The job stays in-flight for dedup purposes.
		j.mu.Lock()
		j.state = StateQueued
		j.resumes++
		j.mu.Unlock()
		j.feed.append(StreamEvent{Type: EventPreempted, ID: j.id, Total: len(j.points), Remaining: paused})
		s.metrics.jobsPreempted.Add(1)
		s.mu.Lock()
		s.queued = append(s.queued, j)
		s.cond.Signal()
		s.mu.Unlock()
		s.log("preempt %s after %v: %d points remaining", j.id, wall.Round(time.Millisecond), paused)
		return
	}

	// Terminal: assemble the full row set in original point order. Points
	// still paused (timeout/cancel hit before they finished) report
	// canceled like never-started points do.
	j.mu.Lock()
	full := make([]sweep.Result, len(j.points))
	for i := range j.points {
		if j.havePoint[i] {
			full[i] = j.finished[i]
		} else {
			full[i] = sweep.Result{Job: j.points[i], Err: context.Canceled.Error()}
		}
	}
	j.mu.Unlock()

	st := sweep.Summarize(full, elapsed)
	state := StateDone
	reason := ""
	switch {
	case timedOut:
		state, reason = StateCanceled, fmt.Sprintf("job timeout %v exceeded", s.cfg.JobTimeout)
	case j.ctx.Err() != nil:
		state, reason = StateCanceled, "canceled"
	}

	s.mu.Lock()
	if s.inflight[j.specHash] == j {
		delete(s.inflight, j.specHash)
	}
	s.mu.Unlock()
	s.finalize(j, full, st, state, reason)
	s.log("finish %s: %s, %s", j.id, state, st)
}

// finalize records the terminal state exactly once: results, metrics,
// the summary event, retention.
func (s *Server) finalize(j *job, results []sweep.Result, st sweep.Stats, state, reason string) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.results = results
	j.stats = st
	j.failure = reason
	wallMS := time.Since(j.submitted).Milliseconds()
	close(j.doneCh)
	j.mu.Unlock()

	statsCopy := st
	j.feed.append(StreamEvent{Type: EventSummary, ID: j.id, State: state, Err: reason, Stats: &statsCopy})
	j.feed.close()

	s.metrics.jobWallMS.Observe(wallMS)
	switch {
	case state == StateCanceled:
		s.metrics.jobsCanceled.Add(1)
	default:
		s.metrics.jobsCompleted.Add(1)
		if st.Errors > 0 {
			s.metrics.jobsFailed.Add(1)
		}
	}

	s.mu.Lock()
	s.retained = append(s.retained, j.id)
	for len(s.retained) > s.cfg.RetainJobs {
		delete(s.jobs, s.retained[0])
		s.retained = s.retained[1:]
	}
	s.mu.Unlock()
}

// remapFan translates a slice-local engine event (indexed into the
// pending sublist) back into the job's original point numbering before
// fanning it out, so streamed rows carry stable indices across
// preemption rounds.
type remapFan struct {
	fan   progressFan
	idx   []int // engine index -> original point index
	total int
}

// Event implements sweep.Progress.
func (r remapFan) Event(ev sweep.Event) {
	ev.Index = r.idx[ev.Index]
	ev.Total = r.total
	r.fan.Event(ev)
}

// progressFan adapts the engine's Progress callbacks onto the job's
// feed and the server-wide point counters. It is called from engine
// worker goroutines.
type progressFan struct {
	s *Server
	j *job
}

// Event implements sweep.Progress.
func (p progressFan) Event(ev sweep.Event) {
	p.j.noteEvent(ev)
	p.s.notePoint(ev)
}

// noteEvent translates one engine event into the job's stream and its
// progress counters.
func (j *job) noteEvent(ev sweep.Event) {
	e := StreamEvent{
		Index:     ev.Index,
		Total:     ev.Total,
		Desc:      ev.Job.Desc(),
		WallMS:    float64(ev.Wall) / float64(time.Millisecond),
		SimCycles: ev.SimCycles,
		Result:    ev.Result,
	}
	switch ev.Type {
	case sweep.JobStart:
		e.Type = EventStart
		e.WallMS = 0
	case sweep.JobDone:
		e.Type, e.Status = EventPoint, PointDone
	case sweep.JobCacheHit:
		e.Type, e.Status = EventPoint, PointCached
	case sweep.JobError:
		e.Type, e.Status, e.Err = EventPoint, PointError, ev.Err
	case sweep.CacheWriteError:
		// Not a point outcome; surface on the ring, not the stream.
		return
	case sweep.JobPaused:
		// Point checkpointed for preemption: the job-level "preempted"
		// event covers it; per-point pause lines would only be noise.
		return
	default:
		return
	}
	if e.Type == EventPoint {
		j.mu.Lock()
		j.done++
		switch ev.Type {
		case sweep.JobCacheHit:
			j.cacheHits++
		case sweep.JobError:
			j.errors++
		default:
			// JobDone counts only toward done; JobStart and
			// CacheWriteError cannot reach here (not EventPoint).
		}
		j.mu.Unlock()
	}
	j.feed.append(e)
}

// notePoint updates server-wide point metrics; called by the server's
// wrapping observer so jobProgress stays job-scoped.
func (s *Server) notePoint(ev sweep.Event) {
	switch ev.Type {
	case sweep.JobStart:
		// Starts are not point outcomes; nothing to count.
	case sweep.JobDone:
		s.metrics.pointsDone.Add(1)
		s.metrics.pointWallMS.Observe(ev.Wall.Milliseconds())
		s.noteFaults(ev)
	case sweep.JobCacheHit:
		s.metrics.pointsCached.Add(1)
		s.noteFaults(ev)
	case sweep.JobError:
		s.metrics.pointsFailed.Add(1)
		s.metrics.pointWallMS.Observe(ev.Wall.Milliseconds())
		if ev.Job.Faults != nil {
			s.metrics.trialsViolated.Add(1)
		}
	case sweep.CacheWriteError:
		s.log("cache write failed for %s: %s", ev.Job.Desc(), ev.Err)
	case sweep.JobPaused:
		s.metrics.pointsSnapshotted.Add(1)
	}
}

// noteFaults folds a finished point's reliability counters into the
// server-wide metrics. Fault-free points report zeros for both, so the
// counters move only when a fault spec was attached and actually fired.
func (s *Server) noteFaults(ev sweep.Event) {
	if ev.Result == nil {
		return
	}
	if n := ev.Result.Res.FaultsInjected; n > 0 {
		s.metrics.faultsInjected.Add(n)
	}
	if n := ev.Result.Res.LostPkts; n > 0 {
		s.metrics.packetsDropped.Add(n)
	}
}

// lookup returns a retained or in-flight job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Drain stops admitting work and waits for queued and running jobs to
// finish. If ctx expires first, in-flight work is canceled through the
// engine's context path and Drain waits for the runners to exit, so no
// goroutines leak either way. The server is not reusable afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.stopping = true
	s.cond.Broadcast()
	queued, running := len(s.queued), s.running
	s.mu.Unlock()
	s.log("draining: %d queued, %d running", queued, running)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log("drained cleanly")
		return nil
	case <-ctx.Done():
		s.baseCancel()
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		<-done
		s.log("drain grace expired; in-flight jobs canceled")
		return ctx.Err()
	}
}

// Close cancels everything immediately and waits for the runners.
func (s *Server) Close() {
	s.baseCancel()
	s.mu.Lock()
	s.draining = true
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
