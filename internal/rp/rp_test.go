package rp

import (
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/routing"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

func buildRP(t *testing.T, frac float64, rate float64, total int64, pattern traffic.Pattern) (*network.Network, *Mechanism) {
	t.Helper()
	cfg := config.Default()
	cfg.TotalCycles = total
	cfg.WarmupCycles = total / 10
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	mask := gating.FractionGated(mesh, frac, nil, sim.NewRNG(7))
	sched := gating.Static(mask)
	gen := traffic.NewGenerator(pattern, mesh, nil)
	mech := New()
	n, err := network.New(cfg, mech, sched, gen, rate)
	if err != nil {
		t.Fatal(err)
	}
	return n, mech
}

func TestRPUniformDelivers(t *testing.T) {
	for _, frac := range []float64{0.0, 0.2, 0.5, 0.8} {
		n, mech := buildRP(t, frac, 0.02, 30000, traffic.Uniform)
		res := n.Run()
		if res.Packets == 0 {
			t.Fatalf("frac=%.1f: no packets delivered", frac)
		}
		if res.Undelivered != 0 {
			t.Fatalf("frac=%.1f: %d undelivered flits (%s)", frac, res.Undelivered, res)
		}
		if frac >= 0.2 && res.GatedRouters == 0 {
			t.Fatalf("frac=%.1f: RP parked no routers", frac)
		}
		t.Logf("frac=%.1f: %s reconfigs=%d", frac, res, mech.Reconfigs())
	}
}

// Parking must preserve connectivity of the active subgraph.
func TestRPConnectivityInvariant(t *testing.T) {
	n, mech := buildRP(t, 0.6, 0.02, 20000, traffic.Uniform)
	_ = n.Run()
	active := make([]bool, n.Cfg.N())
	for i := range active {
		active[i] = mech.RouterOn(i)
	}
	if !routing.Connected(n.Mesh, active) {
		t.Fatal("active-router subgraph disconnected after parking")
	}
	// Every active core's router must be on.
	for i, g := range n.GatedMask() {
		if !g && !mech.RouterOn(i) {
			t.Fatalf("router %d parked while its core is active", i)
		}
	}
}

// RP parks fewer routers than there are gated cores when connectivity
// requires connector routers.
func TestRPParksSubsetOfGated(t *testing.T) {
	n, mech := buildRP(t, 0.7, 0.02, 20000, traffic.Uniform)
	_ = n.Run()
	gatedCores := gating.CountGated(n.GatedMask())
	parked := len(mech.ParkedIDs())
	if parked > gatedCores {
		t.Fatalf("parked %d > gated cores %d", parked, gatedCores)
	}
	t.Logf("gated cores %d, parked routers %d", gatedCores, parked)
}
