// Package rp implements the Router Parking baseline (Samih et al.,
// HPCA 2013) as described in the FLOV paper's evaluation: a centralized
// Fabric Manager (FM) that, on every core power-state change, stalls all
// new packet injections, recomputes which routers to park and the routing
// tables over the remaining active subgraph, distributes the tables
// (Phase I, >700 cycles), and only then resumes the network.
//
// The aggressive parking policy is modeled (park every gated-core router
// whose removal keeps the active subgraph connected), which the paper
// uses for its workload-independent static power comparison (Fig. 9).
// Routing tables are shortest-path next hops constrained to up*/down*
// legality on a BFS spanning tree rooted at the FM, so table routing is
// deadlock-free; detours around parked regions appear exactly where
// parking forces them.
package rp

import (
	"sort"

	"flov/internal/network"
	"flov/internal/nlog"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/routing"
	"flov/internal/topology"
)

// Mechanism is the Router Parking scheme plugged into a network.Network.
type Mechanism struct {
	net    *network.Network
	ledger *power.Ledger //flovsnap:skip wiring installed by network.New

	fmNode int // router hosting the fabric manager (and up*/down* root)

	parked []bool
	table  *routing.Table

	// Reconfiguration state (Phase I).
	reconfiguring bool
	reconfigReady int64  // cycle Phase I completes
	pendingGated  []bool // core mask to apply at the end of Phase I

	// faultPermSeen is the last fault.Injector.PermanentVersion the FM
	// reconfigured for; transient faults never trigger reconfiguration.
	faultPermSeen int64

	reconfigs  int64
	stallStart int64
}

// forcedApplyGrace bounds how long a reconfiguration waits for the
// network to empty once permanent faults exist: flits wedged in dead
// hardware would otherwise stall Phase I forever. Only fault-injection
// runs ever take this path.
const forcedApplyGrace = 2048

// New returns a Router Parking mechanism with the fabric manager at node
// 0 (the south-west corner, a memory-controller node in the full-system
// configuration).
func New() *Mechanism { return &Mechanism{fmNode: 0} }

// Name implements network.Mechanism.
func (m *Mechanism) Name() string { return "RP" }

// Attach installs table routing on every router, with all routers active.
func (m *Mechanism) Attach(n *network.Network) {
	m.net = n
	m.ledger = n.Ledger
	m.parked = make([]bool, n.Cfg.N())
	allActive := make([]bool, n.Cfg.N())
	for i := range allActive {
		allActive[i] = true
	}
	t, err := routing.BuildUpDownTable(n.Mesh, allActive, m.fmNode)
	if err != nil {
		panic("rp: initial table: " + err.Error())
	}
	m.table = t
	for id, r := range n.Routers {
		cur := id
		r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
			d := m.table.NextHop(cur, pkt.Dst)
			if d == routing.NoRouteDir {
				// Without faults this cannot occur: traffic only targets
				// active cores, whose routers are never parked. Permanent
				// faults can cut a destination off, in which case the
				// network's fault filter classifies the packet.
				return routing.Decision{NoRoute: true}
			}
			return routing.Decision{Dir: d}
		}
	}
}

// OnGatingChange starts (or restarts) a reconfiguration epoch: Phase I
// stalls every injection while the FM recomputes and distributes state.
func (m *Mechanism) OnGatingChange(now int64, gated []bool) {
	m.pendingGated = append([]bool(nil), gated...) //flovlint:allow hotalloc -- pending mask copy happens only on gating-change events
	activeRouters := 0
	for _, p := range m.parked {
		if !p {
			activeRouters++
		}
	}
	phase1 := int64(m.net.Cfg.RPPhase1Base + m.net.Cfg.RPPhase1PerNode*activeRouters)
	if !m.reconfiguring {
		m.stallStart = now
	}
	m.reconfiguring = true
	m.reconfigReady = now + phase1
	m.reconfigs++
	if m.net.Trace != nil {
		m.net.Trace.Addf(now, nlog.KReconfig, -1, "FM Phase I begins: network stalled for >= %d cycles", phase1) //flovlint:allow hotalloc -- opt-in reconfiguration tracing
	}
	// Table distribution traffic: one control message per active router.
	m.ledger.AddDyn(power.CatHandshake, activeRouters)
}

// TickRouters advances active routers and progresses reconfiguration.
func (m *Mechanism) TickRouters(now int64) {
	for id, r := range m.net.Routers {
		if !m.parked[id] {
			r.Tick(now)
		}
	}
	if m.reconfiguring && now >= m.reconfigReady &&
		(m.networkEmpty() || (m.net.FaultsEver() && now >= m.reconfigReady+forcedApplyGrace)) {
		m.applyReconfiguration(now)
	}
}

// OnFaultChange implements network.FaultAware: when the set of permanent
// faults grows, the FM must rebuild its tables around the dead hardware —
// modeled as a fresh reconfiguration epoch over the current core mask.
// Transient faults heal on their own and are ignored.
func (m *Mechanism) OnFaultChange(now int64) {
	inj := m.net.Faults
	if inj == nil {
		return
	}
	if v := inj.PermanentVersion(); v != m.faultPermSeen {
		m.faultPermSeen = v
		m.OnGatingChange(now, m.pendingGated)
	}
}

// networkEmpty reports whether no flits remain in flight (stalled
// injections guarantee this converges).
func (m *Mechanism) networkEmpty() bool {
	return m.net.Stats.InFlightFlits() == 0
}

// applyReconfiguration commits the new parked set and routing tables and
// releases the injection stall.
func (m *Mechanism) applyReconfiguration(now int64) {
	newParked := m.computeParkedSet(m.pendingGated)
	active := make([]bool, len(newParked)) //flovlint:allow hotalloc -- reconfiguration is event-driven, not per-cycle work
	for i, p := range newParked {
		active[i] = !p && !m.routerDead(i)
	}
	t, err := routing.BuildUpDownTableLinks(m.net.Mesh, active, m.fmNode, m.linkOK())
	if err != nil {
		// Table construction can only fail under faults (e.g. the FM node
		// itself died permanently). Keep the old table — surviving routes
		// still work and unroutable packets are classified by the fault
		// filter — instead of bringing the run down.
		if m.net.Trace != nil {
			m.net.Trace.Addf(now, nlog.KReconfig, -1, "FM reconfiguration kept old table: %v", err)
		}
		m.reconfiguring = false
		return
	}
	// Power-gating transitions for every router changing state.
	for i := range newParked {
		if newParked[i] != m.parked[i] {
			m.ledger.AddDyn(power.CatGating, 1)
		}
	}
	m.table = t
	m.parked = newParked
	m.reconfiguring = false
	if m.net.Trace != nil {
		on, gated := m.RouterPowerCounts()
		m.net.Trace.Addf(now, nlog.KReconfig, -1,
			"FM reconfiguration applied after %d stalled cycles: %d parked, %d active",
			now-m.stallStart, gated, on) //flovlint:allow hotalloc -- opt-in reconfiguration tracing
	}
}

// computeParkedSet greedily parks gated-core routers while keeping the
// active subgraph connected (the aggressive policy): candidates in id
// order, each parked only if the remaining active routers stay one
// component.
func (m *Mechanism) computeParkedSet(gated []bool) []bool {
	n := m.net.Cfg.N()
	parked := make([]bool, n) //flovlint:allow hotalloc -- reconfiguration is event-driven, not per-cycle work
	active := make([]bool, n) //flovlint:allow hotalloc -- reconfiguration is event-driven, not per-cycle work
	for i := 0; i < n; i++ {
		active[i] = !m.routerDead(i)
	}
	linkOK := m.linkOK()
	// The FM is centralized and sees all pending traffic: a router whose
	// node still has packets queued toward it must not be parked, or the
	// packets would become unroutable.
	hasPending := make([]bool, n) //flovlint:allow hotalloc -- reconfiguration is event-driven, not per-cycle work
	for _, ni := range m.net.NIs {
		ni.EachPending(func(p *noc.Packet) { hasPending[p.Dst] = true })
	}
	var candidates []int
	for i := 0; i < n; i++ {
		if gated[i] && i != m.fmNode && !hasPending[i] {
			candidates = append(candidates, i) //flovlint:allow hotalloc -- reconfiguration is event-driven, not per-cycle work
		}
	}
	sort.Ints(candidates)
	for _, c := range candidates {
		if !active[c] {
			continue // already permanently dead; not "parked", just gone
		}
		active[c] = false
		if routing.ConnectedLinks(m.net.Mesh, active, linkOK) {
			parked[c] = true
		} else {
			active[c] = true
		}
	}
	return parked
}

// routerDead reports whether router id has failed permanently (always
// false without an attached fault injector).
func (m *Mechanism) routerDead(id int) bool {
	return m.net.Faults != nil && m.net.Faults.RouterPermanentlyDown(id)
}

// linkOK returns the usable-link predicate for table construction: nil
// (all links) without faults, otherwise links not permanently dead.
// Transient faults are deliberately included as usable — they heal, and
// rebuilding 700-cycle-stall tables around them would thrash.
func (m *Mechanism) linkOK() func(u int, d topology.Direction) bool {
	inj := m.net.Faults
	if inj == nil || !inj.HasPermanent() {
		return nil
	}
	return func(u int, d topology.Direction) bool { return !inj.LinkPermanentlyDown(u, d) } //flovlint:allow hotalloc -- fault-aware link filter built once per reconfiguration
}

// CanInject stalls all injections during Phase I (the paper: "the network
// has to stall and no new injections are allowed").
func (m *Mechanism) CanInject(node int) bool { return !m.reconfiguring }

// RouterPowerCounts: parked routers burn residual leakage.
func (m *Mechanism) RouterPowerCounts() (on, gated int) {
	for _, p := range m.parked {
		if p {
			gated++
		} else {
			on++
		}
	}
	return on, gated
}

// RouterOn reports whether router id is unparked.
func (m *Mechanism) RouterOn(id int) bool { return !m.parked[id] }

// FLOVCapable is false: RP routers have no FLOV latches or HSC overhead.
func (m *Mechanism) FLOVCapable() bool { return false }

// Quiescent reports whether no reconfiguration is pending.
func (m *Mechanism) Quiescent() bool { return !m.reconfiguring }

// Reconfigs returns how many reconfiguration epochs have run.
func (m *Mechanism) Reconfigs() int64 { return m.reconfigs }

// ParkedIDs lists currently parked routers.
func (m *Mechanism) ParkedIDs() []int {
	var ids []int
	for id, p := range m.parked {
		if p {
			ids = append(ids, id)
		}
	}
	return ids
}

var _ network.Mechanism = (*Mechanism)(nil)
