package rp

import (
	"fmt"

	"flov/internal/routing"
)

// State is the serializable mutable state of the Router Parking
// mechanism. The routing table is derived state: it is rebuilt from the
// parked set on restore, so snapshots stay small and the table never has
// to be serialized.
type State struct {
	Parked        []bool
	Reconfiguring bool
	ReconfigReady int64
	PendingGated  []bool
	Reconfigs     int64
	StallStart    int64
}

// CaptureState copies the mechanism's mutable state.
func (m *Mechanism) CaptureState() State {
	return State{
		Parked:        append([]bool(nil), m.parked...),
		Reconfiguring: m.reconfiguring,
		ReconfigReady: m.reconfigReady,
		PendingGated:  append([]bool(nil), m.pendingGated...),
		Reconfigs:     m.reconfigs,
		StallStart:    m.stallStart,
	}
}

// RestoreState overwrites the mechanism's mutable state and rebuilds the
// up*/down* routing table for the restored parked set. The router route
// closures installed by Attach read m.table through the receiver, so
// swapping the pointer re-routes every router at once.
func (m *Mechanism) RestoreState(s State) error {
	n := m.net.Cfg.N()
	if len(s.Parked) != n {
		return fmt.Errorf("rp: snapshot parked set covers %d nodes, network has %d", len(s.Parked), n)
	}
	if len(s.PendingGated) != 0 && len(s.PendingGated) != n {
		return fmt.Errorf("rp: snapshot pending mask covers %d nodes, network has %d", len(s.PendingGated), n)
	}
	active := make([]bool, n)
	for i, p := range s.Parked {
		active[i] = !p && !m.routerDead(i)
	}
	t, err := routing.BuildUpDownTableLinks(m.net.Mesh, active, m.fmNode, m.linkOK())
	if err != nil {
		return fmt.Errorf("rp: rebuilding table from snapshot: %w", err)
	}
	m.parked = append(m.parked[:0], s.Parked...)
	m.table = t
	m.reconfiguring = s.Reconfiguring
	m.reconfigReady = s.ReconfigReady
	m.pendingGated = append([]bool(nil), s.PendingGated...)
	m.reconfigs = s.Reconfigs
	m.stallStart = s.StallStart
	// Derived from the (already restored) fault injector, not serialized.
	if m.net.Faults != nil {
		m.faultPermSeen = m.net.Faults.PermanentVersion()
	}
	return nil
}
