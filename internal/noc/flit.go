// Package noc defines the primitive on-chip-network data types shared by
// every mechanism in the simulator: packets, flits, credits, virtual
// channel state machines and per-VC input buffers.
package noc

import "fmt"

// FlitType classifies a flit's position inside its packet.
type FlitType uint8

// Flit types. A single-flit packet is HeadTail.
const (
	Head FlitType = iota
	Body
	Tail
	HeadTail
)

// String returns a one-letter name (H, B, T, S for single-flit).
func (t FlitType) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "S"
	default:
		return fmt.Sprintf("FlitType(%d)", int(t))
	}
}

// IsHead reports whether the flit carries routing information.
func (t FlitType) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes its packet (releases VCs).
func (t FlitType) IsTail() bool { return t == Tail || t == HeadTail }

// Packet is the unit of end-to-end communication. Flits of one packet
// share a pointer to it; latency accounting accumulates here.
type Packet struct {
	ID   uint64
	Src  int // source node id
	Dst  int // destination node id
	VNet int // virtual network
	Size int // number of flits

	// Timestamps (cycles).
	CreatedAt  int64 // enqueued at the source NI queue
	InjectedAt int64 // head flit entered the source router
	EjectedAt  int64 // tail flit consumed at the destination NI

	// Path accounting for the Fig. 8 latency breakdown.
	ActiveHops int  // powered-on routers traversed (full 3-stage pipeline)
	FLOVHops   int  // power-gated routers traversed via FLOV latches
	LinkHops   int  // physical link traversals
	Escape     bool // packet entered the escape subnetwork

	// Watermark for reply generation in the closed-loop driver.
	ReplyTo uint64 // request packet id this packet answers, 0 if none
	Kind    uint8  // workload-defined tag (request/reply/data...)
}

// TotalLatency returns end-to-end latency including source queuing.
func (p *Packet) TotalLatency() int64 { return p.EjectedAt - p.CreatedAt }

// NetworkLatency returns latency from injection into the source router to
// ejection (excludes source queuing).
func (p *Packet) NetworkLatency() int64 { return p.EjectedAt - p.InjectedAt }

// Flit is the unit of flow control. Flits are created once at injection
// and mutated in place as they traverse the network (the VC field tracks
// the downstream VC the flit currently occupies/targets).
type Flit struct {
	Pkt  *Packet
	Type FlitType
	Seq  int // position within the packet, 0-based
	VC   int // VC index in the *downstream* input buffer this flit is headed to
}

// String renders a compact debug representation.
func (f *Flit) String() string {
	return fmt.Sprintf("pkt%d/%s%d vc%d %d->%d", f.Pkt.ID, f.Type, f.Seq, f.VC, f.Pkt.Src, f.Pkt.Dst)
}

// MakePacketFlits builds the flit train for a packet.
func MakePacketFlits(p *Packet) []*Flit {
	flits := make([]*Flit, p.Size) //flovlint:allow hotalloc -- per-packet flit construction; pooling is the cycle-kernel rewrite (ROADMAP)
	for i := 0; i < p.Size; i++ {
		t := Body
		switch {
		case p.Size == 1:
			t = HeadTail
		case i == 0:
			t = Head
		case i == p.Size-1:
			t = Tail
		}
		flits[i] = &Flit{Pkt: p, Type: t, Seq: i}
	}
	return flits
}
