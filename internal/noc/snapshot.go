package noc

import "flov/internal/topology"

// This file holds the serializable state forms of the package's types,
// used by the checkpoint subsystem (internal/snapshot). Flits of one
// packet share a *Packet, so packet identity is preserved across a
// save/restore by registering every live packet in a PacketTable and
// encoding flits as (packet index, type, seq, vc).

// PacketState is the serializable form of a Packet (plain data, no
// pointers).
type PacketState struct {
	ID         uint64
	Src        int
	Dst        int
	VNet       int
	Size       int
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64
	ActiveHops int
	FLOVHops   int
	LinkHops   int
	Escape     bool
	ReplyTo    uint64
	Kind       uint8
}

// CapturePacket copies a live packet into its serializable form.
func CapturePacket(p *Packet) PacketState {
	return PacketState{
		ID: p.ID, Src: p.Src, Dst: p.Dst, VNet: p.VNet, Size: p.Size,
		CreatedAt: p.CreatedAt, InjectedAt: p.InjectedAt, EjectedAt: p.EjectedAt,
		ActiveHops: p.ActiveHops, FLOVHops: p.FLOVHops, LinkHops: p.LinkHops,
		Escape: p.Escape, ReplyTo: p.ReplyTo, Kind: p.Kind,
	}
}

// Materialize rebuilds a live packet from its serializable form.
func (s PacketState) Materialize() *Packet {
	return &Packet{
		ID: s.ID, Src: s.Src, Dst: s.Dst, VNet: s.VNet, Size: s.Size,
		CreatedAt: s.CreatedAt, InjectedAt: s.InjectedAt, EjectedAt: s.EjectedAt,
		ActiveHops: s.ActiveHops, FLOVHops: s.FLOVHops, LinkHops: s.LinkHops,
		Escape: s.Escape, ReplyTo: s.ReplyTo, Kind: s.Kind,
	}
}

// PacketTable assigns dense indices to the unique live packets reached
// during a state capture, in first-seen order. The traversal order is
// deterministic (the capture walks routers, NIs and links in id order),
// so two captures of identical networks yield identical tables.
type PacketTable struct {
	idx  map[*Packet]int
	List []*Packet
}

// NewPacketTable returns an empty table.
func NewPacketTable() *PacketTable {
	return &PacketTable{idx: make(map[*Packet]int)}
}

// Ref returns the packet's index, registering it on first sight.
func (t *PacketTable) Ref(p *Packet) int {
	if i, ok := t.idx[p]; ok {
		return i
	}
	i := len(t.List)
	t.idx[p] = i
	t.List = append(t.List, p)
	return i
}

// FlitState is the serializable form of a Flit: the packet is a table
// index, everything else is copied.
type FlitState struct {
	Pkt  int
	Type FlitType
	Seq  int
	VC   int
}

// CaptureFlit registers the flit's packet and returns the flit's
// serializable form.
func CaptureFlit(t *PacketTable, f *Flit) FlitState {
	return FlitState{Pkt: t.Ref(f.Pkt), Type: f.Type, Seq: f.Seq, VC: f.VC}
}

// Materialize rebuilds a live flit against the restored packet list.
// Each captured flit site materializes its own *Flit: a live flit
// pointer occupies exactly one buffer or queue slot at a time, so
// flit-pointer identity never spans sites.
func (s FlitState) Materialize(pkts []*Packet) *Flit {
	return &Flit{Pkt: pkts[s.Pkt], Type: s.Type, Seq: s.Seq, VC: s.VC}
}

// InputVCState is the serializable form of an InputVC: pipeline state,
// route/allocation results and the buffered flits with their arrival
// cycles. Index and capacity are structural (rebuilt from config).
type InputVCState struct {
	State     VCState
	OutDir    topology.Direction
	OutVC     int
	RCCycle   int64
	VACycle   int64
	WaitSince int64
	Flits     []FlitState
	Arrived   []int64
}

// CaptureState copies the VC's mutable state.
func (v *InputVC) CaptureState(t *PacketTable) InputVCState {
	s := InputVCState{
		State: v.State, OutDir: v.OutDir, OutVC: v.OutVC,
		RCCycle: v.RCCycle, VACycle: v.VACycle, WaitSince: v.WaitSince,
	}
	for _, e := range v.buf {
		s.Flits = append(s.Flits, CaptureFlit(t, e.flit))
		s.Arrived = append(s.Arrived, e.arrived)
	}
	return s
}

// RestoreState overwrites the VC's mutable state from a capture. Index
// and capacity are kept (the receiver was built from the same config).
func (v *InputVC) RestoreState(s InputVCState, pkts []*Packet) {
	v.State = s.State
	v.OutDir = s.OutDir
	v.OutVC = s.OutVC
	v.RCCycle = s.RCCycle
	v.VACycle = s.VACycle
	v.WaitSince = s.WaitSince
	v.buf = v.buf[:0]
	for i, fs := range s.Flits {
		v.buf = append(v.buf, bufEntry{flit: fs.Materialize(pkts), arrived: s.Arrived[i]})
	}
}

// OutputVCSnap is the serializable form of an OutputVCState (the depth
// is structural).
type OutputVCSnap struct {
	Credits   []int
	Allocated []bool
}

// CaptureState copies the credit and allocation vectors.
func (o *OutputVCState) CaptureState() OutputVCSnap {
	return OutputVCSnap{
		Credits:   append([]int(nil), o.Credits...),
		Allocated: append([]bool(nil), o.Allocated...),
	}
}

// RestoreState overwrites the credit and allocation vectors.
func (o *OutputVCState) RestoreState(s OutputVCSnap) {
	copy(o.Credits, s.Credits)
	copy(o.Allocated, s.Allocated)
}
