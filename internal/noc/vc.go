package noc

import (
	"fmt"

	"flov/internal/topology"
)

// VCState is the per-input-VC pipeline state.
type VCState uint8

// Input VC states. A VC is a single-packet resource: it is Idle, then
// owned by one packet through RC -> VA -> SA, then Idle again after the
// tail departs (atomic VC allocation).
const (
	VCIdle VCState = iota
	VCRouting
	VCWaitVC
	VCActive
)

// String names the state for debugging.
func (s VCState) String() string {
	switch s {
	case VCIdle:
		return "Idle"
	case VCRouting:
		return "RC"
	case VCWaitVC:
		return "VA"
	case VCActive:
		return "SA"
	default:
		return fmt.Sprintf("VCState(%d)", int(s))
	}
}

// bufEntry is a buffered flit with its arrival cycle (used to model the
// router pipeline depth: a flit may not traverse the switch before
// arrival + (stages-1)).
type bufEntry struct {
	flit    *Flit
	arrived int64
}

// InputVC is one virtual-channel input buffer plus its pipeline state.
type InputVC struct {
	Index int     // VC index within the input port //flovsnap:skip structural index fixed at construction
	State VCState // pipeline state

	// Route/allocation results (valid once past the respective stage).
	OutDir topology.Direction // output port chosen by RC
	OutVC  int                // downstream VC granted by VA

	// Stage timestamps used to enforce the 3-cycle pipeline.
	RCCycle int64 // cycle RC completed for the current packet
	VACycle int64 // cycle VA completed

	// WaitSince is the cycle the current head flit last made progress;
	// used by the escape-VC timeout (deadlock recovery).
	WaitSince int64

	buf      []bufEntry
	capacity int //flovsnap:skip structural buffer depth from config
}

// NewInputVC returns an empty input VC with the given buffer capacity.
func NewInputVC(index, capacity int) *InputVC {
	return &InputVC{Index: index, State: VCIdle, capacity: capacity, OutVC: -1}
}

// Capacity returns the buffer depth in flits.
func (v *InputVC) Capacity() int { return v.capacity }

// Len returns the number of buffered flits.
func (v *InputVC) Len() int { return len(v.buf) }

// Empty reports whether no flits are buffered.
func (v *InputVC) Empty() bool { return len(v.buf) == 0 }

// Full reports whether the buffer has no free slot.
func (v *InputVC) Full() bool { return len(v.buf) >= v.capacity }

// Push buffers an arriving flit. It panics on overflow — an overflow means
// the credit protocol was violated, which is a simulator bug worth failing
// loudly on.
func (v *InputVC) Push(f *Flit, now int64) {
	if v.Full() {
		panic(fmt.Sprintf("noc: input VC %d overflow (credit protocol violation) on %s", v.Index, f))
	}
	v.buf = append(v.buf, bufEntry{flit: f, arrived: now})
}

// Front returns the flit at the head of the buffer without removing it,
// or nil if empty.
func (v *InputVC) Front() *Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0].flit
}

// At returns the i-th buffered flit (0 = front) without removing it; used
// by the fault-drop path to check a whole packet is resident. Call only
// with i < Len().
func (v *InputVC) At(i int) *Flit { return v.buf[i].flit }

// FrontArrived returns the arrival cycle of the front flit; call only when
// non-empty.
func (v *InputVC) FrontArrived() int64 { return v.buf[0].arrived }

// Pop removes and returns the front flit; call only when non-empty.
func (v *InputVC) Pop() *Flit {
	f := v.buf[0].flit
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	return f
}

// Reset returns the VC to Idle, clearing route and allocation state. The
// buffer must already be empty.
func (v *InputVC) Reset() {
	if len(v.buf) != 0 {
		panic("noc: resetting non-empty input VC")
	}
	v.State = VCIdle
	v.OutVC = -1
	v.OutDir = 0
	v.RCCycle = 0
	v.VACycle = 0
	v.WaitSince = 0
}

// OutputVCState tracks the downstream VCs reachable through one output
// port: how many credits (free buffer slots) each has, and whether it is
// currently allocated to an in-flight packet.
type OutputVCState struct {
	Credits   []int  // free slots per downstream VC
	Allocated []bool // downstream VC currently owned by a packet
	depth     int    //flovsnap:skip structural buffer depth from config
}

// NewOutputVCState returns per-VC credit state with every VC holding
// `depth` credits (full availability) when full is true, or zero credits
// (must await a credit sync) otherwise.
func NewOutputVCState(vcs, depth int, full bool) *OutputVCState {
	o := &OutputVCState{
		Credits:   make([]int, vcs),
		Allocated: make([]bool, vcs),
		depth:     depth,
	}
	if full {
		for i := range o.Credits {
			o.Credits[i] = depth
		}
	}
	return o
}

// Depth returns the downstream buffer depth used for full-credit resets.
func (o *OutputVCState) Depth() int { return o.depth }

// SetFull resets every VC to full credit and unallocated (used when a
// woken downstream router is known to be empty).
func (o *OutputVCState) SetFull() {
	for i := range o.Credits {
		o.Credits[i] = o.depth
		o.Allocated[i] = false
	}
}

// SetZero clears all credits (used while awaiting a credit sync from a new
// logical neighbor).
func (o *OutputVCState) SetZero() {
	for i := range o.Credits {
		o.Credits[i] = 0
		o.Allocated[i] = false
	}
}

// CopyCounts overwrites credit counts from a sync message, leaving
// allocation state untouched.
func (o *OutputVCState) CopyCounts(counts []int) {
	copy(o.Credits, counts)
}

// Return adds one credit for vc. It panics if the count would exceed the
// buffer depth — that indicates double-returned credits.
func (o *OutputVCState) Return(vc int) {
	o.Credits[vc]++
	if o.Credits[vc] > o.depth {
		panic(fmt.Sprintf("noc: credit overflow on vc %d (%d > depth %d)", vc, o.Credits[vc], o.depth))
	}
}

// Consume spends one credit for vc; it panics when none are available
// (switch allocation must check first).
func (o *OutputVCState) Consume(vc int) {
	if o.Credits[vc] <= 0 {
		panic(fmt.Sprintf("noc: consuming credit on empty vc %d", vc))
	}
	o.Credits[vc]--
}
