package noc

import (
	"testing"
	"testing/quick"

	"flov/internal/topology"
)

func TestFlitTypes(t *testing.T) {
	if !Head.IsHead() || !HeadTail.IsHead() || Body.IsHead() || Tail.IsHead() {
		t.Fatal("IsHead wrong")
	}
	if !Tail.IsTail() || !HeadTail.IsTail() || Body.IsTail() || Head.IsTail() {
		t.Fatal("IsTail wrong")
	}
	want := map[FlitType]string{Head: "H", Body: "B", Tail: "T", HeadTail: "S"}
	for ft, s := range want {
		if ft.String() != s {
			t.Errorf("%v.String() = %q", ft, ft.String())
		}
	}
}

func TestMakePacketFlits(t *testing.T) {
	p := &Packet{ID: 1, Size: 4}
	fl := MakePacketFlits(p)
	if len(fl) != 4 {
		t.Fatalf("got %d flits", len(fl))
	}
	if fl[0].Type != Head || fl[1].Type != Body || fl[2].Type != Body || fl[3].Type != Tail {
		t.Fatalf("flit train types wrong: %v %v %v %v", fl[0].Type, fl[1].Type, fl[2].Type, fl[3].Type)
	}
	for i, f := range fl {
		if f.Seq != i || f.Pkt != p {
			t.Fatalf("flit %d mis-built", i)
		}
	}
	single := MakePacketFlits(&Packet{Size: 1})
	if len(single) != 1 || single[0].Type != HeadTail {
		t.Fatal("single-flit packet must be HeadTail")
	}
}

func TestPacketLatencies(t *testing.T) {
	p := &Packet{CreatedAt: 100, InjectedAt: 110, EjectedAt: 150}
	if p.TotalLatency() != 50 || p.NetworkLatency() != 40 {
		t.Fatalf("latencies: total=%d net=%d", p.TotalLatency(), p.NetworkLatency())
	}
}

func TestInputVCFIFO(t *testing.T) {
	v := NewInputVC(0, 6)
	p := &Packet{Size: 3}
	fl := MakePacketFlits(p)
	for i, f := range fl {
		v.Push(f, int64(i))
	}
	if v.Len() != 3 || v.Empty() {
		t.Fatal("buffer accounting wrong")
	}
	if v.FrontArrived() != 0 {
		t.Fatal("front arrival wrong")
	}
	for i := range fl {
		if got := v.Pop(); got != fl[i] {
			t.Fatalf("FIFO order broken at %d", i)
		}
	}
	if !v.Empty() {
		t.Fatal("not empty after popping all")
	}
}

func TestInputVCOverflowPanics(t *testing.T) {
	v := NewInputVC(0, 2)
	p := &Packet{Size: 3}
	fl := MakePacketFlits(p)
	v.Push(fl[0], 0)
	v.Push(fl[1], 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic (credit violation)")
		}
	}()
	v.Push(fl[2], 0)
}

func TestInputVCResetRequiresEmpty(t *testing.T) {
	v := NewInputVC(0, 4)
	v.Push(MakePacketFlits(&Packet{Size: 1})[0], 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic resetting non-empty VC")
		}
	}()
	v.Reset()
}

func TestInputVCReset(t *testing.T) {
	v := NewInputVC(2, 4)
	v.State = VCActive
	v.OutDir = topology.East
	v.OutVC = 3
	v.Reset()
	if v.State != VCIdle || v.OutVC != -1 {
		t.Fatal("Reset incomplete")
	}
}

// Property: interleaved push/pop preserves FIFO order and never exceeds
// capacity bookkeeping.
func TestInputVCFIFOProperty(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		v := NewInputVC(0, 8)
		var next, expect int
		for _, push := range ops {
			if push && !v.Full() {
				f := &Flit{Seq: next, Pkt: &Packet{}}
				next++
				v.Push(f, 0)
			} else if !push && !v.Empty() {
				if v.Pop().Seq != expect {
					return false
				}
				expect++
			}
		}
		return v.Len() == next-expect
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutputVCStateCredits(t *testing.T) {
	o := NewOutputVCState(4, 6, true)
	for vc := 0; vc < 4; vc++ {
		if o.Credits[vc] != 6 {
			t.Fatalf("vc %d not full", vc)
		}
	}
	o.Consume(0)
	o.Consume(0)
	if o.Credits[0] != 4 {
		t.Fatal("consume broken")
	}
	o.Return(0)
	if o.Credits[0] != 5 {
		t.Fatal("return broken")
	}
}

func TestOutputVCStateOverflowPanics(t *testing.T) {
	o := NewOutputVCState(2, 3, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit-overflow panic")
		}
	}()
	o.Return(1)
}

func TestOutputVCStateUnderflowPanics(t *testing.T) {
	o := NewOutputVCState(2, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit-underflow panic")
		}
	}()
	o.Consume(0)
}

func TestOutputVCStateSyncOps(t *testing.T) {
	o := NewOutputVCState(3, 6, true)
	o.Allocated[1] = true
	o.SetZero()
	for vc := 0; vc < 3; vc++ {
		if o.Credits[vc] != 0 || o.Allocated[vc] {
			t.Fatal("SetZero incomplete")
		}
	}
	o.CopyCounts([]int{2, 4, 6})
	if o.Credits[0] != 2 || o.Credits[1] != 4 || o.Credits[2] != 6 {
		t.Fatal("CopyCounts wrong")
	}
	o.SetFull()
	for vc := 0; vc < 3; vc++ {
		if o.Credits[vc] != 6 {
			t.Fatal("SetFull wrong")
		}
	}
}

func TestVCStateString(t *testing.T) {
	want := map[VCState]string{VCIdle: "Idle", VCRouting: "RC", VCWaitVC: "VA", VCActive: "SA"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
