// Package config holds the simulation testbed parameters (Table I of the
// FLOV paper) plus knobs for the mechanisms under comparison. A Config is
// plain data: copy it, tweak it, validate it, hand it to network.Build.
package config

import (
	"fmt"
	"strings"
)

// Mechanism selects the power-gating scheme a network is built with.
type Mechanism int

// The four mechanisms compared throughout the paper's evaluation.
const (
	// Baseline is the plain mesh with no router power-gating and YX routing.
	Baseline Mechanism = iota
	// RP is Router Parking: centralized fabric-manager driven parking.
	RP
	// RFLOV is restricted FLOV: no two adjacent routers gated simultaneously.
	RFLOV
	// GFLOV is generalized FLOV: arbitrary runs of routers may be gated.
	GFLOV
)

// String returns the mechanism name as used in figures and CSV output.
func (m Mechanism) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case RP:
		return "RP"
	case RFLOV:
		return "rFLOV"
	case GFLOV:
		return "gFLOV"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism converts a case-insensitive name to a Mechanism.
func ParseMechanism(s string) (Mechanism, error) {
	switch strings.ToLower(s) {
	case "baseline", "base":
		return Baseline, nil
	case "rp", "routerparking", "router-parking":
		return RP, nil
	case "rflov", "r-flov", "restricted":
		return RFLOV, nil
	case "gflov", "g-flov", "generalized":
		return GFLOV, nil
	}
	return Baseline, fmt.Errorf("config: unknown mechanism %q", s)
}

// Mechanisms lists all four in canonical figure order.
func Mechanisms() []Mechanism { return []Mechanism{Baseline, RP, RFLOV, GFLOV} }

// Config captures every parameter of a simulation run. The zero value is
// not usable; start from Default().
//
//flovsnap:skip immutable run configuration: snapshots restore onto a network freshly built from the same config, and restore validates compatibility
type Config struct {
	// Topology.
	Width  int // mesh width (X dimension)
	Height int // mesh height (Y dimension)

	// Router microarchitecture (Table I).
	BufferDepth    int // flits per VC input buffer
	RouterStages   int // router pipeline depth in cycles (3 in the paper)
	VCsPerVNet     int // regular VCs per virtual network
	EscapePerVNet  int // escape VCs per virtual network (deadlock recovery)
	VNets          int // virtual networks (3 for full-system MESI traffic)
	LinkLatency    int // cycles per inter-router link traversal
	PacketSize     int // flits per packet for synthetic workloads
	EjectionQueues int // reassembly slots at the NI (per VC; informational)

	// Clocking / technology (used by the power model).
	ClockHz float64 // router/link clock (2 GHz in the paper)

	// Power gating (Table I).
	GatingOverheadPJ float64 // energy per power-gating transition (17.7 pJ)
	WakeupLatency    int     // cycles to power a router back on (10)

	// FLOV protocol knobs.
	IdleThreshold  int // cycles a gated-core router waits traffic-free before draining
	EscapeTimeout  int // cycles a head flit may stall before escape re-route
	FLOVHopLatency int // cycles spent in a FLOV output latch (1)

	// TransitionTimeout bounds how long a router may sit in Draining or
	// Wakeup waiting for handshake quiescence before aborting and
	// retrying (liveness under heavy gating churn; see DESIGN.md).
	TransitionTimeout int
	// RetryBackoff is the base delay before a timed-out transition is
	// retried (jittered per router id).
	RetryBackoff int

	// Router Parking knobs.
	RPPhase1Base    int // fixed Phase-I reconfiguration cost in cycles
	RPPhase1PerNode int // additional Phase-I cycles per active router (table distribution)

	// Simulation control.
	WarmupCycles  int64  // cycles before statistics collection starts
	TotalCycles   int64  // total simulated cycles for synthetic runs
	DrainCycles   int64  // extra cycles allowed for in-flight packets to drain
	Seed          uint64 // RNG seed; same seed => bit-identical run
	TimelineBinSz int64  // bin width for latency-timeline stats (Fig. 10)

	// Mechanism under test.
	Mechanism Mechanism
}

// Default returns the paper's Table I configuration: an 8x8 mesh with
// 3-stage routers, 6-flit buffers, 3 regular + 1 escape VC per vnet,
// 1 vnet (synthetic workloads), 4-flit packets, 2 GHz, 17.7 pJ gating
// overhead and a 10-cycle wakeup latency.
func Default() Config {
	return Config{
		Width:             8,
		Height:            8,
		BufferDepth:       6,
		RouterStages:      3,
		VCsPerVNet:        3,
		EscapePerVNet:     1,
		VNets:             1,
		LinkLatency:       1,
		PacketSize:        4,
		EjectionQueues:    4,
		ClockHz:           2e9,
		GatingOverheadPJ:  17.7,
		WakeupLatency:     10,
		IdleThreshold:     8,
		EscapeTimeout:     64,
		FLOVHopLatency:    1,
		TransitionTimeout: 256,
		RetryBackoff:      32,
		RPPhase1Base:      700,
		RPPhase1PerNode:   2,
		WarmupCycles:      10_000,
		TotalCycles:       100_000,
		DrainCycles:       20_000,
		Seed:              1,
		TimelineBinSz:     1_000,
		Mechanism:         Baseline,
	}
}

// FullSystem returns the Table I full-system variant: 3 virtual networks
// as used by the MESI protocol traffic classes.
func FullSystem() Config {
	c := Default()
	c.VNets = 3
	return c
}

// VCsTotal returns the total number of VCs per input port
// (regular + escape, across all vnets).
func (c Config) VCsTotal() int { return c.VNets * (c.VCsPerVNet + c.EscapePerVNet) }

// VCBase returns the index of the first VC of virtual network vnet.
func (c Config) VCBase(vnet int) int { return vnet * (c.VCsPerVNet + c.EscapePerVNet) }

// EscapeVC returns the index of the escape VC of virtual network vnet.
// By convention the escape VC is the last VC of each vnet's block.
func (c Config) EscapeVC(vnet int) int {
	return c.VCBase(vnet) + c.VCsPerVNet + c.EscapePerVNet - 1
}

// IsEscapeVC reports whether global VC index vc is an escape VC.
func (c Config) IsEscapeVC(vc int) bool {
	per := c.VCsPerVNet + c.EscapePerVNet
	return vc%per >= c.VCsPerVNet
}

// VNetOf returns the virtual network a global VC index belongs to.
func (c Config) VNetOf(vc int) int { return vc / (c.VCsPerVNet + c.EscapePerVNet) }

// N returns the number of nodes in the mesh.
func (c Config) N() int { return c.Width * c.Height }

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Width < 2 || c.Height < 2:
		return fmt.Errorf("config: mesh must be at least 2x2, got %dx%d", c.Width, c.Height)
	case c.BufferDepth < 1:
		return fmt.Errorf("config: buffer depth must be >= 1, got %d", c.BufferDepth)
	case c.RouterStages < 1:
		return fmt.Errorf("config: router stages must be >= 1, got %d", c.RouterStages)
	case c.VCsPerVNet < 1:
		return fmt.Errorf("config: need at least one regular VC per vnet, got %d", c.VCsPerVNet)
	case c.EscapePerVNet < 1:
		return fmt.Errorf("config: need at least one escape VC per vnet, got %d", c.EscapePerVNet)
	case c.VNets < 1:
		return fmt.Errorf("config: need at least one vnet, got %d", c.VNets)
	case c.LinkLatency < 1:
		return fmt.Errorf("config: link latency must be >= 1 cycle, got %d", c.LinkLatency)
	case c.PacketSize < 1:
		return fmt.Errorf("config: packet size must be >= 1 flit, got %d", c.PacketSize)
	case c.PacketSize > c.BufferDepth:
		// Wormhole switching with atomic VC reuse requires a whole packet
		// to fit in one VC buffer for the drain handshake to terminate.
		return fmt.Errorf("config: packet size (%d) must fit in a VC buffer (%d)", c.PacketSize, c.BufferDepth)
	case c.WakeupLatency < 0:
		return fmt.Errorf("config: wakeup latency must be >= 0, got %d", c.WakeupLatency)
	case c.IdleThreshold < 1:
		return fmt.Errorf("config: idle threshold must be >= 1, got %d", c.IdleThreshold)
	case c.EscapeTimeout < 1:
		return fmt.Errorf("config: escape timeout must be >= 1, got %d", c.EscapeTimeout)
	case c.TransitionTimeout < 1:
		return fmt.Errorf("config: transition timeout must be >= 1, got %d", c.TransitionTimeout)
	case c.RetryBackoff < 0:
		return fmt.Errorf("config: retry backoff must be >= 0, got %d", c.RetryBackoff)
	case c.FLOVHopLatency < 1:
		return fmt.Errorf("config: FLOV hop latency must be >= 1, got %d", c.FLOVHopLatency)
	case c.WarmupCycles < 0 || c.TotalCycles <= c.WarmupCycles:
		return fmt.Errorf("config: need TotalCycles (%d) > WarmupCycles (%d) >= 0", c.TotalCycles, c.WarmupCycles)
	case c.ClockHz <= 0:
		return fmt.Errorf("config: clock frequency must be positive, got %g", c.ClockHz)
	}
	return nil
}

// TableI renders the configuration in the shape of the paper's Table I.
func (c Config) TableI() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-26s | %s\n", k, v) }
	row("Network Topology", fmt.Sprintf("%dx%d Mesh", c.Width, c.Height))
	row("Input Buffer Depth", fmt.Sprintf("%d flits", c.BufferDepth))
	row("Router", fmt.Sprintf("%d-stage (%d cycles) router", c.RouterStages, c.RouterStages))
	row("Virtual Channel", fmt.Sprintf("%d regular VCs and %d escape VC per vnet, %d vnets",
		c.VCsPerVNet, c.EscapePerVNet, c.VNets))
	row("Packet Size", fmt.Sprintf("%d flits/packet for synthetic workload", c.PacketSize))
	row("Clock Frequency", fmt.Sprintf("%.0f GHz", c.ClockHz/1e9))
	row("Link", fmt.Sprintf("1mm, %d cycle, 16B width", c.LinkLatency))
	row("Power-Gating Parameters", fmt.Sprintf("overhead = %.1fpJ, wakeup latency = %d cycles",
		c.GatingOverheadPJ, c.WakeupLatency))
	row("Baseline Routing", "YX Routing")
	return b.String()
}
