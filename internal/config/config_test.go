package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.Width != 8 || c.Height != 8 {
		t.Error("mesh must be 8x8")
	}
	if c.BufferDepth != 6 {
		t.Error("buffer depth must be 6 flits")
	}
	if c.RouterStages != 3 {
		t.Error("router must be 3-stage")
	}
	if c.VCsPerVNet != 3 || c.EscapePerVNet != 1 {
		t.Error("3 regular + 1 escape VC per vnet")
	}
	if c.PacketSize != 4 {
		t.Error("4 flits/packet")
	}
	if c.ClockHz != 2e9 {
		t.Error("2 GHz clock")
	}
	if c.GatingOverheadPJ != 17.7 {
		t.Error("17.7 pJ gating overhead")
	}
	if c.WakeupLatency != 10 {
		t.Error("10-cycle wakeup latency")
	}
}

func TestFullSystemVNets(t *testing.T) {
	c := FullSystem()
	if c.VNets != 3 {
		t.Fatalf("full system needs 3 vnets, got %d", c.VNets)
	}
	if c.VCsTotal() != 12 {
		t.Fatalf("VCsTotal = %d, want 12", c.VCsTotal())
	}
}

func TestVCHelpers(t *testing.T) {
	c := FullSystem() // 3 vnets x (3 regular + 1 escape)
	if c.VCBase(0) != 0 || c.VCBase(1) != 4 || c.VCBase(2) != 8 {
		t.Fatal("VCBase wrong")
	}
	if c.EscapeVC(0) != 3 || c.EscapeVC(1) != 7 || c.EscapeVC(2) != 11 {
		t.Fatal("EscapeVC wrong")
	}
	for vc := 0; vc < c.VCsTotal(); vc++ {
		wantEscape := vc == 3 || vc == 7 || vc == 11
		if c.IsEscapeVC(vc) != wantEscape {
			t.Errorf("IsEscapeVC(%d) = %v", vc, c.IsEscapeVC(vc))
		}
		if c.VNetOf(vc) != vc/4 {
			t.Errorf("VNetOf(%d) = %d", vc, c.VNetOf(vc))
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"tiny mesh", func(c *Config) { c.Width = 1 }},
		{"no buffers", func(c *Config) { c.BufferDepth = 0 }},
		{"no stages", func(c *Config) { c.RouterStages = 0 }},
		{"no regular VCs", func(c *Config) { c.VCsPerVNet = 0 }},
		{"no escape VCs", func(c *Config) { c.EscapePerVNet = 0 }},
		{"no vnets", func(c *Config) { c.VNets = 0 }},
		{"zero link latency", func(c *Config) { c.LinkLatency = 0 }},
		{"zero packet", func(c *Config) { c.PacketSize = 0 }},
		{"packet exceeds buffer", func(c *Config) { c.PacketSize = 7 }},
		{"negative wakeup", func(c *Config) { c.WakeupLatency = -1 }},
		{"zero idle threshold", func(c *Config) { c.IdleThreshold = 0 }},
		{"zero escape timeout", func(c *Config) { c.EscapeTimeout = 0 }},
		{"zero flov hop", func(c *Config) { c.FLOVHopLatency = 0 }},
		{"warmup >= total", func(c *Config) { c.WarmupCycles = c.TotalCycles }},
		{"zero clock", func(c *Config) { c.ClockHz = 0 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", m.name)
		}
	}
}

func TestParseMechanism(t *testing.T) {
	cases := map[string]Mechanism{
		"baseline": Baseline, "BASE": Baseline,
		"rp": RP, "Router-Parking": RP,
		"rflov": RFLOV, "rFLOV": RFLOV,
		"gflov": GFLOV, "generalized": GFLOV,
	}
	for s, want := range cases {
		got, err := ParseMechanism(s)
		if err != nil || got != want {
			t.Errorf("ParseMechanism(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMechanism("nope"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestMechanismString(t *testing.T) {
	want := map[Mechanism]string{Baseline: "Baseline", RP: "RP", RFLOV: "rFLOV", GFLOV: "gFLOV"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestMechanismsOrder(t *testing.T) {
	ms := Mechanisms()
	if len(ms) != 4 || ms[0] != Baseline || ms[1] != RP || ms[2] != RFLOV || ms[3] != GFLOV {
		t.Fatalf("canonical order broken: %v", ms)
	}
}

func TestTableIRendering(t *testing.T) {
	out := Default().TableI()
	for _, want := range []string{"8x8 Mesh", "6 flits", "3-stage", "17.7pJ", "wakeup latency = 10", "YX Routing", "2 GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}
