package network

import (
	"flov/internal/noc"
	"flov/internal/routing"
	"flov/internal/topology"
)

// BaselineMech is the no-power-gating mechanism: every router is always
// on and packets follow YX dimension-order routing (deadlock-free, so the
// escape machinery never triggers). It is the "Baseline" series of every
// figure.
type BaselineMech struct {
	n *Network
}

// NewBaseline returns the baseline mechanism.
func NewBaseline() *BaselineMech { return &BaselineMech{} }

// Name implements Mechanism.
func (b *BaselineMech) Name() string { return "Baseline" }

// Attach installs YX routing on every router.
func (b *BaselineMech) Attach(n *Network) {
	b.n = n
	for id, r := range n.Routers {
		cur := id
		rr := r
		rr.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
			return routing.Decision{Dir: routing.YX(n.Mesh, cur, pkt.Dst)}
		}
	}
}

// OnGatingChange ignores core gating: baseline routers never power down.
func (b *BaselineMech) OnGatingChange(now int64, gated []bool) {}

// TickRouters advances every router's full pipeline.
func (b *BaselineMech) TickRouters(now int64) {
	for _, r := range b.n.Routers {
		r.Tick(now)
	}
}

// CanInject always allows injection.
func (b *BaselineMech) CanInject(node int) bool { return true }

// RouterPowerCounts reports all routers at full static power.
func (b *BaselineMech) RouterPowerCounts() (on, gated int) { return len(b.n.Routers), 0 }

// RouterOn reports every router as powered.
func (b *BaselineMech) RouterOn(id int) bool { return true }

// FLOVCapable is false: baseline routers carry no FLOV overhead.
func (b *BaselineMech) FLOVCapable() bool { return false }

// Quiescent is always true: the baseline has no protocol state.
func (b *BaselineMech) Quiescent() bool { return true }
