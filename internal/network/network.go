// Package network assembles a complete simulated NoC: routers, links,
// network interfaces, a traffic source, a core-gating schedule, a power
// ledger and one of the four power-gating mechanisms. It owns the main
// cycle loop and produces the Results every figure is built from.
package network

import (
	"fmt"

	"flov/internal/assert"
	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/gating"
	"flov/internal/nlog"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/router"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// Mechanism is a power-gating scheme plugged into a Network. Baseline
// lives in this package; FLOV in internal/core; Router Parking in
// internal/rp.
type Mechanism interface {
	// Name returns the mechanism name for reports.
	Name() string
	// Attach wires the mechanism into a freshly built network (install
	// router hooks, initialize power state). Called exactly once.
	Attach(n *Network)
	// OnGatingChange delivers a new core-gating mask (from the schedule).
	OnGatingChange(now int64, gated []bool)
	// TickRouters advances all routers one cycle, including whatever
	// datapath a power-gated router still runs (FLOV latches).
	TickRouters(now int64)
	// CanInject reports whether node id may inject flits this cycle
	// (Router Parking stalls injection during reconfiguration).
	CanInject(node int) bool
	// RouterPowerCounts returns how many routers currently burn full
	// static power and how many are power-gated (residual leakage).
	RouterPowerCounts() (on, gated int)
	// RouterOn reports whether router id's pipeline is powered on.
	RouterOn(id int) bool
	// FLOVCapable selects the FLOV leakage model (HSC/latch overheads).
	FLOVCapable() bool
	// Quiescent reports whether the mechanism has in-flight protocol
	// work (handshakes, reconfigurations) that should block drain
	// detection at the end of a run.
	Quiescent() bool
}

// Network is one fully wired simulated NoC.
type Network struct {
	Cfg     config.Config
	Mesh    topology.Mesh
	Routers []*router.Router
	NIs     []*NI
	Mech    Mechanism
	Ledger  *power.Ledger
	Stats   *stats.Collector

	// Trace, when enabled, records simulator events into a bounded ring
	// (power transitions, gating changes, reconfigurations, deliveries).
	Trace *nlog.Log //flovsnap:skip opt-in observability ring, not simulation state

	Schedule *gating.Schedule   //flovsnap:skip immutable schedule; progress is captured as schedIdx
	Gen      *traffic.Generator // nil for closed-loop (trace) runs
	InjRate  float64            // offered load, flits/cycle/node //flovsnap:skip immutable run parameter

	// Faults is the optional fault-injection subsystem (AttachFaults);
	// nil for ordinary runs.
	Faults *fault.Injector

	// InjectHook, when set, replaces synthetic generation (closed-loop
	// drivers enqueue packets themselves each cycle).
	InjectHook func(now int64) //flovsnap:skip wiring reinstalled by the closed-loop driver on restore

	rng           *sim.RNG
	faultSpecJSON string // canonical fault spec (snapshot compatibility)
	dropAfter     int64  // fault drop timeout in cycles //flovsnap:skip derived from the fault spec in AttachFaults
	injectors     []*traffic.Injector
	gatedMask     []bool
	activeScratch []bool //flovsnap:skip scratch for activeMask, re-derived from gatedMask
	schedIdx      int
	nextPkt       uint64
	now           int64
	genStop       int64 // cycle after which synthetic generation stops

	// ejectedAtWarmup snapshots the flit counter at the measurement-
	// window start so throughput excludes warmup traffic.
	ejectedAtWarmup int64
}

// New builds a network for cfg with the given mechanism, schedule and
// (optional) synthetic traffic generator. The mechanism is attached and
// the initial gating mask applied before New returns.
func New(cfg config.Config, mech Mechanism, sched *gating.Schedule, gen *traffic.Generator, injRate float64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	if sched != nil && sched.N() != cfg.N() {
		return nil, fmt.Errorf("network: schedule covers %d nodes, config has %d", sched.N(), cfg.N())
	}
	model := power.NewModel(cfg)
	ledger := power.NewLedger(model)
	st := stats.NewCollector(cfg.WarmupCycles, cfg.TimelineBinSz, cfg.RouterStages, cfg.FLOVHopLatency)

	n := &Network{
		Cfg:      cfg,
		Mesh:     mesh,
		Mech:     mech,
		Ledger:   ledger,
		Stats:    st,
		Schedule: sched,
		Gen:      gen,
		InjRate:  injRate,
		rng:      sim.NewRNG(cfg.Seed),
		genStop:  cfg.TotalCycles,
		nextPkt:  1,
	}

	// Routers and NIs.
	n.Routers = make([]*router.Router, cfg.N())
	n.NIs = make([]*NI, cfg.N())
	for id := 0; id < cfg.N(); id++ {
		n.Routers[id] = router.New(id, cfg, mesh, ledger)
		n.NIs[id] = newNI(id, cfg, st)
	}

	// Inter-router channels: for each directed adjacency, one flit queue
	// (latency LinkLatency) and one control queue (latency 1) flowing the
	// opposite way.
	for id := 0; id < cfg.N(); id++ {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			nb := mesh.Neighbor(id, d)
			if nb < 0 {
				continue
			}
			flitQ := sim.NewDelay[*noc.Flit](cfg.LinkLatency)
			ctrlQ := sim.NewDelay[router.Signal](1)
			n.Routers[id].Ports[d].OutFlit = flitQ
			n.Routers[id].Ports[d].InCtrl = ctrlQ
			opp := d.Opposite()
			n.Routers[nb].Ports[opp].InFlit = flitQ
			n.Routers[nb].Ports[opp].OutCtrl = ctrlQ
		}
	}

	// NI <-> router local channels.
	for id := 0; id < cfg.N(); id++ {
		inj := sim.NewDelay[*noc.Flit](1)
		ej := sim.NewDelay[*noc.Flit](1)
		credUp := sim.NewDelay[router.Signal](1)   // router -> NI
		credDown := sim.NewDelay[router.Signal](1) // NI -> router
		r := n.Routers[id]
		r.Ports[topology.Local].InFlit = inj
		r.Ports[topology.Local].OutFlit = ej
		r.Ports[topology.Local].OutCtrl = credUp
		r.Ports[topology.Local].InCtrl = credDown
		n.NIs[id].Connect(inj, ej, credUp, credDown)
		node := id
		n.NIs[id].CanInject = func() bool { return n.Mech.CanInject(node) }
	}

	// Per-node injection processes.
	if gen != nil {
		n.injectors = make([]*traffic.Injector, cfg.N())
		for id := 0; id < cfg.N(); id++ {
			n.injectors[id] = traffic.NewInjector(injRate, cfg.PacketSize, n.rng.Fork(uint64(id)+1))
		}
	}

	// Initial gating mask.
	if sched != nil {
		n.gatedMask = append([]bool(nil), sched.MaskAt(0)...)
	} else {
		n.gatedMask = make([]bool, cfg.N())
	}
	if gen != nil {
		gen.SetActive(n.activeMask())
	}

	mech.Attach(n)
	mech.OnGatingChange(0, n.gatedMask)
	return n, nil
}

// countGated counts set entries in a gating mask.
func countGated(mask []bool) int {
	n := 0
	for _, g := range mask {
		if g {
			n++
		}
	}
	return n
}

// EnableTrace attaches an event log to the network and its NIs. Call
// before running; mechanisms pick it up lazily.
func (n *Network) EnableTrace(l *nlog.Log) {
	n.Trace = l
	for _, ni := range n.NIs {
		ni.Trace = l
	}
}

// activeMask inverts the gating mask into a reused buffer (SetActive
// copies, so handing out the scratch is safe). Valid until the next call.
func (n *Network) activeMask() []bool {
	n.activeScratch = n.activeScratch[:0]
	for _, g := range n.gatedMask {
		n.activeScratch = append(n.activeScratch, !g)
	}
	return n.activeScratch
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// GatedMask returns the current core-gating mask (do not mutate).
func (n *Network) GatedMask() []bool { return n.gatedMask }

// CoreGated reports whether node id's core is currently power-gated.
func (n *Network) CoreGated(id int) bool { return n.gatedMask[id] }

// NewPacket allocates a packet with a fresh id, stamped CreatedAt now.
func (n *Network) NewPacket(src, dst, vnet, size int) *noc.Packet {
	p := &noc.Packet{
		ID:        n.nextPkt,
		Src:       src,
		Dst:       dst,
		VNet:      vnet,
		Size:      size,
		CreatedAt: n.now,
	}
	n.nextPkt++
	n.Stats.NotePacketCreated(n.now)
	return p
}

// Step advances the whole network one cycle.
func (n *Network) Step() {
	now := n.now

	// 1. Core-gating schedule transitions.
	if n.Schedule != nil {
		evs := n.Schedule.Events()
		for n.schedIdx+1 < len(evs) && evs[n.schedIdx+1].At <= now {
			n.schedIdx++
			n.gatedMask = append(n.gatedMask[:0], evs[n.schedIdx].Gated...)
			if n.Gen != nil {
				n.Gen.SetActive(n.activeMask())
			}
			if n.Trace != nil {
				n.Trace.Addf(now, nlog.KGating, -1, "mask changed: %d cores gated", countGated(n.gatedMask)) //flovlint:allow hotalloc -- opt-in tracing of gating-change events
			}
			n.Mech.OnGatingChange(now, n.gatedMask)
		}
	}

	// 2. Fault injection (before traffic generation, so a fault landing
	// at cycle t is visible to everything that runs at t).
	if n.Faults != nil {
		n.stepFaults(now)
	}

	// 3. Traffic generation.
	if n.Gen != nil && now < n.genStop {
		for id := 0; id < n.Cfg.N(); id++ {
			if n.gatedMask[id] || !n.injectors[id].ShouldInject() {
				continue
			}
			dst := n.Gen.Dest(id, n.rng)
			if dst < 0 {
				continue
			}
			n.NIs[id].Enqueue(n.NewPacket(id, dst, 0, n.Cfg.PacketSize))
		}
	}
	if n.InjectHook != nil {
		n.InjectHook(now)
	}

	// 4. Routers (mechanism-specific: gated routers run latch datapaths).
	n.Mech.TickRouters(now)

	// 5. Network interfaces.
	for _, ni := range n.NIs {
		ni.Tick(now)
	}

	// 6. Leakage integration.
	on, gated := n.Mech.RouterPowerCounts()
	n.Ledger.TickStatic(on, gated, n.Mech.FLOVCapable())

	// 7. Runtime invariants (flovdebug builds only; compiled away
	// otherwise).
	if assert.On {
		n.CheckInvariants()
	}

	n.now++
}

// Tick implements sim.Component: one network cycle per kernel tick, so a
// Network can be stepped by a sim.Kernel alongside other components
// (co-simulation with additional models). The network keeps its own cycle
// counter; the kernel's `now` is ignored.
func (n *Network) Tick(int64) { n.Step() }

// StopGeneration ends synthetic traffic generation at the given cycle.
func (n *Network) StopGeneration(at int64) { n.genStop = at }

// SetGatingMask applies a new core-gating mask immediately (closed-loop
// drivers re-shape the active set at phase boundaries instead of using a
// pre-built schedule).
func (n *Network) SetGatingMask(mask []bool) {
	n.gatedMask = append(n.gatedMask[:0], mask...)
	if n.Gen != nil {
		n.Gen.SetActive(n.activeMask())
	}
	n.Mech.OnGatingChange(n.now, n.gatedMask)
}

// Drained reports whether no packets remain anywhere: source queues,
// router buffers, links, or mechanism protocol state.
func (n *Network) Drained() bool {
	if n.Stats.InFlightFlits() != 0 {
		return false
	}
	for _, ni := range n.NIs {
		if ni.Busy() {
			return false
		}
	}
	return n.Mech.Quiescent()
}
