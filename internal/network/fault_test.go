package network

import (
	"encoding/json"
	"testing"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/gating"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// buildTraffic assembles a baseline network with uniform traffic, the
// minimal workload the fault hooks integrate with.
func buildTraffic(t *testing.T, cfg config.Config, rate float64) *Network {
	t.Helper()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	mask := gating.FractionGated(mesh, 0, nil, sim.NewRNG(1))
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	n, err := New(cfg, NewBaseline(), gating.Static(mask), gen, rate)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func faultTestConfig() config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.TotalCycles = 3000
	cfg.WarmupCycles = 300
	return cfg
}

// TestZeroFaultSpecByteIdentity pins the acceptance criterion: attaching
// a zero-rate, empty-schedule fault spec leaves the run byte-identical
// to a network with no fault subsystem at all.
func TestZeroFaultSpecByteIdentity(t *testing.T) {
	cfg := faultTestConfig()
	plain := buildTraffic(t, cfg, 0.05)

	faulted := buildTraffic(t, cfg, 0.05)
	// A non-zero seed must not matter either: the stream is never drawn
	// from when both rates are zero and the schedule is empty.
	if err := faulted.AttachFaults(fault.Spec{Seed: 99}); err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(plain.Run())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(faulted.Run())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("zero fault spec changed the run:\nplain:   %.300s\nfaulted: %.300s", a, b)
	}
	if faulted.FaultsEver() {
		t.Fatal("zero spec reported an injected fault")
	}
}

// TestPermanentRouterFaultAccounting: killing a router mid-run must end
// in complete packet accounting — every measured packet is delivered,
// classified as lost, or still countable in flight. Nothing vanishes and
// nothing hangs (the run loop is bounded by TotalCycles + DrainCycles).
func TestPermanentRouterFaultAccounting(t *testing.T) {
	cfg := faultTestConfig()
	n := buildTraffic(t, cfg, 0.05)
	err := n.AttachFaults(fault.Spec{
		Schedule:    []fault.Event{{At: 500, Kind: "router", Node: 5}},
		DropTimeout: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()

	if res.FaultsInjected < 1 || res.RouterFaults < 1 {
		t.Fatalf("scheduled router kill not recorded: injected=%d router=%d",
			res.FaultsInjected, res.RouterFaults)
	}
	if res.LostPkts == 0 {
		t.Fatal("no packets classified lost with a dead interior router")
	}
	stragglers := res.OfferedPkts - res.Packets - res.LostPkts
	if stragglers < 0 {
		t.Fatalf("accounting over-counts: offered=%d delivered=%d lost=%d",
			res.OfferedPkts, res.Packets, res.LostPkts)
	}
	if res.Packets == 0 {
		t.Fatal("one dead router killed all delivery")
	}
	t.Logf("offered=%d delivered=%d lost=%d stragglers=%d droppedFlits=%d",
		res.OfferedPkts, res.Packets, res.LostPkts, stragglers, res.DroppedFlits)
}

// TestTransientLinkFaultsHealAndDeliver: rate-driven transient link
// faults stall traffic but heal; with no permanent damage nothing may be
// dropped, and the drain must still empty the network.
func TestTransientLinkFaultsHealAndDeliver(t *testing.T) {
	cfg := faultTestConfig()
	cfg.TotalCycles = 4000
	n := buildTraffic(t, cfg, 0.03)
	err := n.AttachFaults(fault.Spec{Seed: 7, LinkRate: 2e-4, TransientCycles: 40})
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	if res.FaultsInjected == 0 || res.LinkFaults == 0 {
		t.Fatalf("rate 2e-4 over %d cycles injected nothing", cfg.TotalCycles)
	}
	if res.LostPkts != 0 {
		t.Fatalf("%d packets dropped with transient-only faults", res.LostPkts)
	}
	if res.Undelivered != 0 {
		t.Fatalf("%d flits still in flight after drain with healed links", res.Undelivered)
	}
	if res.OfferedPkts != res.Packets {
		t.Fatalf("offered %d != delivered %d with transient-only faults", res.OfferedPkts, res.Packets)
	}
}

// TestFaultRunDeterminism: the same spec and seeds give byte-identical
// results across two independently built networks.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := faultTestConfig()
		n := buildTraffic(t, cfg, 0.05)
		err := n.AttachFaults(fault.Spec{
			Seed:     21,
			LinkRate: 1e-4,
			Schedule: []fault.Event{{At: 700, Kind: "link", Node: 9, Dir: "E"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(n.Run())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("fault runs diverge:\na: %.300s\nb: %.300s", a, b)
	}
}

// TestAttachFaultsRejects covers the attachment contract: once only, at
// cycle zero only, valid specs only.
func TestAttachFaultsRejects(t *testing.T) {
	cfg := faultTestConfig()
	n := buildTraffic(t, cfg, 0.02)
	if err := n.AttachFaults(fault.Spec{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachFaults(fault.Spec{}); err == nil {
		t.Fatal("second attach accepted")
	}

	late := buildTraffic(t, cfg, 0.02)
	late.Step()
	if err := late.AttachFaults(fault.Spec{}); err == nil {
		t.Fatal("attach after the first Step accepted")
	}

	bad := buildTraffic(t, cfg, 0.02)
	err := bad.AttachFaults(fault.Spec{Schedule: []fault.Event{{At: 1, Kind: "cosmic", Node: 0}}})
	if err == nil {
		t.Fatal("invalid event kind accepted")
	}
}
