package network

import (
	"testing"

	"flov/internal/config"
	"flov/internal/traffic"
)

// TestBaselineInvariantsEveryCycle drives a baseline network step by
// step with the invariant walk after every cycle, independent of the
// flovdebug build tag. Baseline never rewrites credit counters, so every
// link is held to strict per-VC credit conservation the whole run.
func TestBaselineInvariantsEveryCycle(t *testing.T) {
	const total = 5000
	cfg := config.Default()
	cfg.TotalCycles = total
	cfg.WarmupCycles = total / 10
	mesh := mustMesh(t, cfg)
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	n, err := New(cfg, NewBaseline(), nil, gen, 0.08)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for c := int64(0); c < total; c++ {
		n.Step()
		n.CheckInvariants()
	}
}
