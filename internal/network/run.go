package network

import (
	"fmt"

	"flov/internal/power"
	"flov/internal/stats"
)

// Results summarizes one simulation run — the numbers every figure plots.
type Results struct {
	Mechanism string
	Pattern   string
	InjRate   float64 // offered load (flits/cycle/node)
	GatedPct  float64 // fraction of cores gated (at the end of the run)

	// Latency (cycles).
	AvgLatency    float64
	AvgNetLatency float64
	Breakdown     stats.Breakdown
	MaxLatency    int64
	P99Latency    int64 // upper bound at power-of-two resolution
	AvgHops       float64
	EscapeFrac    float64

	// Power (watts, averaged over the measurement window).
	StaticPowerW  float64
	DynamicPowerW float64
	TotalPowerW   float64

	// Energy (picojoules over the measurement window).
	StaticEnergyPJ  float64
	DynamicEnergyPJ float64
	TotalEnergyPJ   float64

	// Bookkeeping.
	Packets        int64
	Cycles         int64 // measured cycles
	RunCycles      int64 // total simulated cycles including drain
	Undelivered    int64 // flits still in flight when the run ended
	ThroughputFpc  float64
	Timeline       []stats.TimeBin
	GatedRouters   int // routers power-gated at the end of the run
	PoweredRouters int

	// Reliability (fault-injection runs; zero otherwise).
	OfferedPkts    int64 `json:",omitempty"` // measured packets created
	LostPkts       int64 `json:",omitempty"` // classified losses (dropped)
	DroppedFlits   int64 `json:",omitempty"` // flits discarded by drops
	FaultsInjected int64 `json:",omitempty"`
	LinkFaults     int64 `json:",omitempty"`
	RouterFaults   int64 `json:",omitempty"`
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s rate=%.3f gated=%.0f%%: lat=%.1f (net %.1f) Pstat=%.1fmW Pdyn=%.1fmW Ptot=%.1fmW pkts=%d undel=%d",
		r.Mechanism, r.Pattern, r.InjRate, r.GatedPct*100,
		r.AvgLatency, r.AvgNetLatency,
		r.StaticPowerW*1e3, r.DynamicPowerW*1e3, r.TotalPowerW*1e3,
		r.Packets, r.Undelivered)
}

// Run executes the standard synthetic experiment: warmup, measurement,
// then a bounded drain so every measured packet is delivered. It returns
// the collected results. Energy/power cover [WarmupCycles, TotalCycles);
// latency covers packets created in that window.
func (n *Network) Run() Results {
	cfg := n.Cfg

	n.RunTo(cfg.TotalCycles)
	n.Ledger.SetEnabled(false)

	// Drain: no new generation; run until empty or the drain budget ends.
	deadline := cfg.TotalCycles + cfg.DrainCycles
	for n.now < deadline && !n.Drained() {
		n.Step()
	}
	return n.collect()
}

// RunTo advances the synthetic run loop until the cycle counter reaches
// target (capped at TotalCycles), handling the warmup boundary exactly
// like Run: a run advanced in increments — with checkpoints saved in
// between — executes the same cycle sequence as an uninterrupted one.
func (n *Network) RunTo(target int64) {
	if target > n.Cfg.TotalCycles {
		target = n.Cfg.TotalCycles
	}
	for n.now < target {
		if n.now == n.Cfg.WarmupCycles {
			n.Ledger.SetEnabled(true)
			n.ejectedAtWarmup = n.Stats.EjectedTotal()
		}
		n.Step()
	}
}

// RunCycles advances exactly c cycles with energy accounting already in
// whatever state it is; used by closed-loop drivers that manage their own
// phases.
func (n *Network) RunCycles(c int64) {
	for i := int64(0); i < c; i++ {
		n.Step()
	}
}

// Collect builds a Results snapshot at the current cycle.
func (n *Network) Collect() Results { return n.collect() }

func (n *Network) collect() Results {
	on, gated := n.Mech.RouterPowerCounts()
	gatedCores := 0
	for _, g := range n.gatedMask {
		if g {
			gatedCores++
		}
	}
	st := n.Stats
	res := Results{
		Mechanism:       n.Mech.Name(),
		InjRate:         n.InjRate,
		GatedPct:        float64(gatedCores) / float64(n.Cfg.N()),
		AvgLatency:      st.AvgLatency(),
		AvgNetLatency:   st.AvgNetworkLatency(),
		Breakdown:       st.LatencyBreakdown(),
		MaxLatency:      st.MaxLatency(),
		P99Latency:      st.Percentile(99),
		AvgHops:         st.AvgHops(),
		EscapeFrac:      st.EscapeFraction(),
		StaticPowerW:    n.Ledger.StaticPowerW(),
		DynamicPowerW:   n.Ledger.DynamicPowerW(),
		TotalPowerW:     n.Ledger.TotalPowerW(),
		StaticEnergyPJ:  n.Ledger.StaticEnergyPJ(),
		DynamicEnergyPJ: n.Ledger.DynamicEnergyPJ(),
		TotalEnergyPJ:   n.Ledger.TotalEnergyPJ(),
		Packets:         st.Count(),
		Cycles:          n.Ledger.Cycles(),
		RunCycles:       n.now,
		Undelivered:     st.InFlightFlits(),
		Timeline:        st.Timeline(),
		GatedRouters:    gated,
		PoweredRouters:  on,
		OfferedPkts:     st.Created(),
		LostPkts:        st.Lost(),
		DroppedFlits:    st.DroppedFlits(),
	}
	if n.Faults != nil {
		res.FaultsInjected = n.Faults.FaultsInjected()
		res.LinkFaults = n.Faults.LinkFaults()
		res.RouterFaults = n.Faults.RouterFaults()
	}
	if n.Gen != nil {
		res.Pattern = n.Gen.Pattern.String()
	}
	if res.Cycles > 0 {
		res.ThroughputFpc = st.AcceptedFlitRate(n.Cfg.TotalCycles, n.Cfg.N(), n.ejectedAtWarmup)
	}
	return res
}

// LedgerModel exposes the power model (for reporting static budgets).
func (n *Network) LedgerModel() *power.Model { return n.Ledger.Model() }
