package network

import (
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/noc"
	"flov/internal/sim"
	"flov/internal/traffic"
)

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default()
	cfg.BufferDepth = 0
	if _, err := New(cfg, NewBaseline(), nil, nil, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNewRejectsMismatchedSchedule(t *testing.T) {
	cfg := config.Default()
	sched := gating.Static(make([]bool, 5))
	if _, err := New(cfg, NewBaseline(), sched, nil, 0); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestManualInjectionAndDelivery(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 1 << 30
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got *noc.Packet
	n.NIs[63].OnDeliver = func(p *noc.Packet, now int64) { got = p }
	p := n.NewPacket(0, 63, 0, 4)
	n.NIs[0].Enqueue(p)
	for i := 0; i < 200 && got == nil; i++ {
		n.Step()
	}
	if got != p {
		t.Fatal("packet not delivered")
	}
	if p.EjectedAt <= p.InjectedAt || p.InjectedAt < p.CreatedAt {
		t.Fatalf("timestamps inconsistent: %d %d %d", p.CreatedAt, p.InjectedAt, p.EjectedAt)
	}
	// Corner to corner: 14 hops, 15 routers: min ~ 15*3 + 14 + NI + ser.
	if lat := p.TotalLatency(); lat < 60 || lat > 90 {
		t.Fatalf("corner-to-corner latency %d implausible", lat)
	}
	if !n.Drained() {
		t.Fatal("network not drained after delivery")
	}
}

func TestNIMisdeliveryPanics(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt routing: everything ejects immediately at the source.
	p := n.NewPacket(1, 63, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected misdelivery panic")
		}
	}()
	// Deliver the packet to the wrong NI directly.
	f := noc.MakePacketFlits(p)[0]
	n.NIs[0].eject(f, 0)
}

func TestVNetQueuesIndependent(t *testing.T) {
	cfg := config.FullSystem()
	cfg.TotalCycles = 1 << 30
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[uint64]bool{}
	n.NIs[10].OnDeliver = func(p *noc.Packet, now int64) { delivered[p.ID] = true }
	var pkts []*noc.Packet
	for v := 0; v < 3; v++ {
		p := n.NewPacket(0, 10, v, 4)
		pkts = append(pkts, p)
		n.NIs[0].Enqueue(p)
	}
	for i := 0; i < 400 && len(delivered) < 3; i++ {
		n.Step()
	}
	for _, p := range pkts {
		if !delivered[p.ID] {
			t.Fatalf("vnet %d packet not delivered", p.VNet)
		}
	}
}

func TestEnqueueInvalidVNetPanics(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid vnet")
		}
	}()
	n.NIs[0].Enqueue(n.NewPacket(0, 1, 9, 1))
}

func TestCanInjectStallsNewPacketsOnly(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	allow := true
	n.NIs[0].CanInject = func() bool { return allow }
	p1 := n.NewPacket(0, 5, 0, 4)
	n.NIs[0].Enqueue(p1)
	// Let serialization start, then stall.
	for i := 0; i < 3; i++ {
		n.Step()
	}
	allow = false
	p2 := n.NewPacket(0, 6, 0, 4)
	n.NIs[0].Enqueue(p2)
	done := map[uint64]bool{}
	n.NIs[5].OnDeliver = func(p *noc.Packet, now int64) { done[p.ID] = true }
	n.NIs[6].OnDeliver = func(p *noc.Packet, now int64) { done[p.ID] = true }
	for i := 0; i < 300; i++ {
		n.Step()
	}
	if !done[p1.ID] {
		t.Fatal("mid-flight packet must finish during a stall")
	}
	if done[p2.ID] {
		t.Fatal("new packet injected during a stall")
	}
	allow = true
	for i := 0; i < 300 && !done[p2.ID]; i++ {
		n.Step()
	}
	if !done[p2.ID] {
		t.Fatal("stalled packet never delivered after release")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Results {
		cfg := config.Default()
		cfg.TotalCycles = 10_000
		cfg.WarmupCycles = 1_000
		gen := traffic.NewGenerator(traffic.Uniform, mustMesh(t, cfg), nil)
		n, err := New(cfg, NewBaseline(), nil, gen, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return n.Run()
	}
	a, b := run(), run()
	if a.AvgLatency != b.AvgLatency || a.Packets != b.Packets || a.TotalEnergyPJ != b.TotalEnergyPJ {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestWarmupExcludedFromEnergy(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 5_000
	cfg.WarmupCycles = 1_000
	gen := traffic.NewGenerator(traffic.Uniform, mustMesh(t, cfg), nil)
	n, err := New(cfg, NewBaseline(), nil, gen, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	if res.Cycles != cfg.TotalCycles-cfg.WarmupCycles {
		t.Fatalf("measured %d cycles, want %d", res.Cycles, cfg.TotalCycles-cfg.WarmupCycles)
	}
}

func TestSetGatingMask(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, cfg.N())
	mask[7] = true
	n.SetGatingMask(mask)
	if !n.CoreGated(7) || n.CoreGated(8) {
		t.Fatal("SetGatingMask not applied")
	}
}

// A Network is a sim.Component: it can be driven by the kernel.
func TestNetworkUnderKernel(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, NewBaseline(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	k.Register(n)
	delivered := false
	n.NIs[9].OnDeliver = func(p *noc.Packet, now int64) { delivered = true }
	n.NIs[0].Enqueue(n.NewPacket(0, 9, 0, 4))
	k.RunFor(200)
	if !delivered {
		t.Fatal("kernel-driven network did not deliver")
	}
	if n.Now() != 200 {
		t.Fatalf("network cycle = %d", n.Now())
	}
}

func TestPacketIDsMonotonic(t *testing.T) {
	cfg := config.Default()
	n, _ := New(cfg, NewBaseline(), nil, nil, 0)
	a := n.NewPacket(0, 1, 0, 1)
	b := n.NewPacket(0, 1, 0, 1)
	if b.ID != a.ID+1 {
		t.Fatalf("packet ids not monotonic: %d then %d", a.ID, b.ID)
	}
}
