package network

import (
	"fmt"

	"flov/internal/fault"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/router"
	"flov/internal/stats"
)

// TxSnap is the serializable form of one NI's in-flight packet
// serialization. The flit train is rebuilt from the packet (flits with
// index < Next have already been handed to the router and are captured
// at their current site; the NI never touches them again).
type TxSnap struct {
	Present bool
	Pkt     int // packet table index
	Next    int
	VC      int
}

// NIState is the serializable mutable state of one NI.
type NIState struct {
	Queues  [][]int // per-vnet source queues, as packet table indices
	Sending []TxSnap
	Out     noc.OutputVCSnap
	VnetRR  int
}

// CaptureState copies the NI's mutable state.
func (ni *NI) CaptureState(t *noc.PacketTable) NIState {
	s := NIState{Out: ni.out.CaptureState(), VnetRR: ni.vnetRR}
	for _, q := range ni.queues {
		refs := make([]int, 0, len(q))
		for _, p := range q {
			refs = append(refs, t.Ref(p))
		}
		s.Queues = append(s.Queues, refs)
	}
	for _, tx := range ni.sending {
		if tx == nil {
			s.Sending = append(s.Sending, TxSnap{})
			continue
		}
		s.Sending = append(s.Sending, TxSnap{Present: true, Pkt: t.Ref(tx.pkt), Next: tx.next, VC: tx.vc})
	}
	return s
}

// RestoreState overwrites the NI's mutable state. In-flight flit trains
// are rebuilt from the packet; flits already injected (index < next)
// live in router buffers or on links and are restored there, so the
// rebuilt slots below next are never read again.
func (ni *NI) RestoreState(s NIState, pkts []*noc.Packet) error {
	if len(s.Queues) != len(ni.queues) || len(s.Sending) != len(ni.sending) {
		return fmt.Errorf("ni %d: snapshot has %d vnets, NI has %d", ni.ID, len(s.Queues), len(ni.queues))
	}
	if len(s.Out.Credits) != len(ni.out.Credits) {
		return fmt.Errorf("ni %d: snapshot has %d VCs, NI has %d", ni.ID, len(s.Out.Credits), len(ni.out.Credits))
	}
	for v := range ni.queues {
		ni.queues[v] = ni.queues[v][:0]
		for _, ref := range s.Queues[v] {
			ni.queues[v] = append(ni.queues[v], pkts[ref])
		}
	}
	for v := range ni.sending {
		tx := s.Sending[v]
		if !tx.Present {
			ni.sending[v] = nil
			continue
		}
		pkt := pkts[tx.Pkt]
		st := &txState{pkt: pkt, flits: noc.MakePacketFlits(pkt), next: tx.Next, vc: tx.VC}
		for _, f := range st.flits {
			f.VC = tx.VC
		}
		ni.sending[v] = st
	}
	ni.out.RestoreState(s.Out)
	ni.vnetRR = s.VnetRR
	return nil
}

// State is the serializable mutable state of the whole Network: the
// cycle counter and generation bookkeeping, the RNG streams, the gating
// cursor, every router and NI, and the statistics/energy accumulators.
// Link pipelines are captured separately (package snapshot owns channel
// payload encoding because control messages are mechanism-typed).
type State struct {
	Now             int64
	NextPkt         uint64
	SchedIdx        int
	GenStop         int64
	EjectedAtWarmup int64
	RNG             uint64
	InjectorRNGs    []uint64
	GatedMask       []bool
	Routers         []router.State
	NIs             []NIState
	Stats           stats.CollectorState
	Ledger          power.LedgerState
	// Faults carries the injector state of fault-injection runs; FaultSpec
	// is the attached spec in canonical JSON so restoring into a network
	// with a different (or no) spec fails loudly.
	Faults    *fault.State `json:",omitempty"`
	FaultSpec string       `json:",omitempty"`
}

// CaptureState copies the network's mutable state, registering every
// live packet in t.
func (n *Network) CaptureState(t *noc.PacketTable) State {
	s := State{
		Now:             n.now,
		NextPkt:         n.nextPkt,
		SchedIdx:        n.schedIdx,
		GenStop:         n.genStop,
		EjectedAtWarmup: n.ejectedAtWarmup,
		RNG:             n.rng.State(),
		GatedMask:       append([]bool(nil), n.gatedMask...),
		Stats:           n.Stats.CaptureState(),
		Ledger:          n.Ledger.CaptureState(),
	}
	if n.Faults != nil {
		fs := n.Faults.CaptureState()
		s.Faults = &fs
		s.FaultSpec = n.faultSpecJSON
	}
	for _, inj := range n.injectors {
		s.InjectorRNGs = append(s.InjectorRNGs, inj.RNGState())
	}
	for _, r := range n.Routers {
		s.Routers = append(s.Routers, r.CaptureState(t))
	}
	for _, ni := range n.NIs {
		s.NIs = append(s.NIs, ni.CaptureState(t))
	}
	return s
}

// RestoreState overwrites the network's mutable state. The receiver must
// have been built from the same config, mechanism and workload shape
// (package snapshot verifies that before calling). Derived state that
// follows the gating mask (the generator's active list) is rebuilt here;
// mechanism-internal state is restored separately by its own section.
func (n *Network) RestoreState(s State, pkts []*noc.Packet) error {
	if len(s.Routers) != len(n.Routers) || len(s.NIs) != len(n.NIs) {
		return fmt.Errorf("network: snapshot has %d routers, network has %d", len(s.Routers), len(n.Routers))
	}
	if len(s.InjectorRNGs) != len(n.injectors) {
		return fmt.Errorf("network: snapshot has %d injectors, network has %d", len(s.InjectorRNGs), len(n.injectors))
	}
	if len(s.GatedMask) != n.Cfg.N() {
		return fmt.Errorf("network: snapshot gating mask covers %d nodes, config has %d", len(s.GatedMask), n.Cfg.N())
	}
	if (s.Faults != nil) != (n.Faults != nil) {
		return fmt.Errorf("network: snapshot fault state present=%v, network fault injector present=%v",
			s.Faults != nil, n.Faults != nil)
	}
	if n.Faults != nil && s.FaultSpec != n.faultSpecJSON {
		return fmt.Errorf("network: snapshot fault spec %q does not match attached spec %q", s.FaultSpec, n.faultSpecJSON)
	}
	for id, r := range n.Routers {
		if err := r.RestoreState(s.Routers[id], pkts); err != nil {
			return err
		}
	}
	for id, ni := range n.NIs {
		if err := ni.RestoreState(s.NIs[id], pkts); err != nil {
			return err
		}
	}
	n.now = s.Now
	n.nextPkt = s.NextPkt
	n.schedIdx = s.SchedIdx
	n.genStop = s.GenStop
	n.ejectedAtWarmup = s.EjectedAtWarmup
	n.rng.SetState(s.RNG)
	for i, inj := range n.injectors {
		inj.SetRNGState(s.InjectorRNGs[i])
	}
	n.gatedMask = append(n.gatedMask[:0], s.GatedMask...)
	if n.Gen != nil {
		n.Gen.SetActive(n.activeMask())
	}
	n.Stats.RestoreState(s.Stats)
	n.Ledger.RestoreState(s.Ledger)
	if n.Faults != nil {
		if err := n.Faults.RestoreState(*s.Faults); err != nil {
			return err
		}
		// Frozen is derived from the injector; router.State does not carry
		// it.
		for id, r := range n.Routers {
			r.Frozen = !n.Faults.RouterUp(id)
		}
	}
	return nil
}
