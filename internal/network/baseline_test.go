package network

import (
	"testing"

	"flov/internal/config"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// runBaseline builds and runs a baseline network with the given knobs.
func runBaseline(t *testing.T, pattern traffic.Pattern, rate float64, total int64) Results {
	t.Helper()
	cfg := config.Default()
	cfg.TotalCycles = total
	cfg.WarmupCycles = total / 10
	mesh := mustMesh(t, cfg)
	gen := traffic.NewGenerator(pattern, mesh, nil)
	n, err := New(cfg, NewBaseline(), nil, gen, rate)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n.Run()
}

func mustMesh(t *testing.T, cfg config.Config) topology.Mesh {
	t.Helper()
	mm, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	return mm
}

func TestBaselineUniformDelivers(t *testing.T) {
	res := runBaseline(t, traffic.Uniform, 0.05, 20000)
	if res.Packets == 0 {
		t.Fatal("no packets delivered")
	}
	if res.Undelivered != 0 {
		t.Fatalf("undelivered flits: %d", res.Undelivered)
	}
	// 8x8 mesh, avg ~5.33 hops, 3-cycle routers: zero-load ~27 cycles.
	if res.AvgLatency < 10 || res.AvgLatency > 200 {
		t.Fatalf("implausible avg latency %.1f", res.AvgLatency)
	}
	if res.EscapeFrac > 0.01 {
		t.Fatalf("baseline YX should not use escape VCs, got %.3f", res.EscapeFrac)
	}
	t.Logf("%s", res)
}

func TestBaselineTornadoDelivers(t *testing.T) {
	res := runBaseline(t, traffic.Tornado, 0.05, 20000)
	if res.Packets == 0 || res.Undelivered != 0 {
		t.Fatalf("packets=%d undelivered=%d", res.Packets, res.Undelivered)
	}
	t.Logf("%s", res)
}
