package network

import (
	"fmt"

	"flov/internal/config"
	"flov/internal/nlog"
	"flov/internal/noc"
	"flov/internal/router"
	"flov/internal/sim"
	"flov/internal/stats"
)

// NI is the network interface attached to one router's Local port. It
// queues generated packets per virtual network, injects flits under
// credit flow control (one flit per cycle), and reassembles/ejects
// arriving packets.
type NI struct {
	ID  int
	Cfg config.Config //flovsnap:skip immutable run configuration

	// Channel endpoints (the router holds the mirrored ends).
	sendFlit *sim.Delay[*noc.Flit]     // NI -> router local input //flovsnap:skip captured through the router Local port by the snapshot channel enumeration
	recvFlit *sim.Delay[*noc.Flit]     // router local output -> NI //flovsnap:skip captured through the router Local port by the snapshot channel enumeration
	credIn   *sim.Delay[router.Signal] // router -> NI: credits for injection VCs //flovsnap:skip captured through the router Local port by the snapshot channel enumeration
	credOut  *sim.Delay[router.Signal] // NI -> router: credits for ejection buffers //flovsnap:skip captured through the router Local port by the snapshot channel enumeration

	queues  [][]*noc.Packet // per-vnet source queues (unbounded)
	sending []*txState      // per-vnet in-flight injection
	out     *noc.OutputVCState
	vnetRR  int

	// CanInject gates new flit injection (Router Parking reconfiguration
	// stalls). nil means always allowed.
	CanInject func() bool //flovsnap:skip wiring installed by network.New
	// OnDeliver is called when a packet's tail is consumed.
	OnDeliver func(p *noc.Packet, now int64) //flovsnap:skip observer hook, not simulation state

	Stats *stats.Collector //flovsnap:skip aliases the network-level collector, captured once there
	// Trace, when set, records packet deliveries.
	Trace *nlog.Log //flovsnap:skip opt-in observability ring, not simulation state
}

// txState tracks one packet being serialized into the router.
type txState struct {
	pkt   *noc.Packet
	flits []*noc.Flit
	next  int
	vc    int
}

// newNI builds an NI; the caller wires channels via Connect.
func newNI(id int, cfg config.Config, st *stats.Collector) *NI {
	vnets := cfg.VNets
	return &NI{
		ID:      id,
		Cfg:     cfg,
		queues:  make([][]*noc.Packet, vnets),
		sending: make([]*txState, vnets),
		out:     noc.NewOutputVCState(cfg.VCsTotal(), cfg.BufferDepth, true),
		Stats:   st,
	}
}

// OutState exposes the NI's injection credit state (invariant checks).
func (ni *NI) OutState() *noc.OutputVCState { return ni.out }

// Connect wires the NI's four channel endpoints.
func (ni *NI) Connect(send, recv *sim.Delay[*noc.Flit], credIn, credOut *sim.Delay[router.Signal]) {
	ni.sendFlit, ni.recvFlit = send, recv
	ni.credIn, ni.credOut = credIn, credOut
}

// Enqueue appends a generated packet to its vnet's source queue.
func (ni *NI) Enqueue(p *noc.Packet) {
	if p.VNet < 0 || p.VNet >= len(ni.queues) {
		panic(fmt.Sprintf("ni %d: packet %d has invalid vnet %d", ni.ID, p.ID, p.VNet))
	}
	ni.queues[p.VNet] = append(ni.queues[p.VNet], p)
}

// QueueLen returns the number of packets waiting (all vnets), excluding
// the ones currently being serialized.
func (ni *NI) QueueLen() int {
	n := 0
	for _, q := range ni.queues {
		n += len(q)
	}
	return n
}

// Busy reports whether any packet is queued or mid-injection.
func (ni *NI) Busy() bool {
	if ni.QueueLen() > 0 {
		return true
	}
	for _, tx := range ni.sending {
		if tx != nil {
			return true
		}
	}
	return false
}

// DropWhere removes queued packets matching pred (classified fault
// losses), invoking onDrop for each. Packets mid-serialization are left
// alone — their flits are already in the network and are dropped at a
// router once the whole packet is co-resident there.
func (ni *NI) DropWhere(pred func(p *noc.Packet) bool, onDrop func(p *noc.Packet)) {
	for v := range ni.queues {
		kept := ni.queues[v][:0]
		for _, p := range ni.queues[v] {
			if pred(p) {
				onDrop(p)
			} else {
				kept = append(kept, p) //flovlint:allow hotalloc -- drop classification runs only under permanent faults
			}
		}
		// Zero the tail so dropped packets do not linger in the backing
		// array.
		for i := len(kept); i < len(ni.queues[v]); i++ {
			ni.queues[v][i] = nil
		}
		ni.queues[v] = kept
	}
}

// EachPending visits every packet queued or mid-injection at this NI
// (used by Router Parking's fabric manager to avoid parking routers that
// still have traffic headed their way).
func (ni *NI) EachPending(fn func(p *noc.Packet)) {
	for _, q := range ni.queues {
		for _, p := range q {
			fn(p)
		}
	}
	for _, tx := range ni.sending {
		if tx != nil {
			fn(tx.pkt)
		}
	}
}

// Tick processes credits, ejects arrivals, and injects at most one flit.
func (ni *NI) Tick(now int64) {
	ni.credIn.Drain(now, func(s router.Signal) {
		if s.IsCredit {
			ni.out.Return(s.VC)
		}
	})

	ni.recvFlit.Drain(now, func(f *noc.Flit) {
		ni.eject(f, now)
	})

	ni.inject(now)
}

// eject consumes one arriving flit, returning its buffer credit and
// completing the packet on tail.
func (ni *NI) eject(f *noc.Flit, now int64) {
	ni.credOut.Push(now, router.CreditSignal(f.VC))
	ni.Stats.NoteEjectedFlits(1)
	if f.Type.IsTail() {
		p := f.Pkt
		if p.Dst != ni.ID {
			panic(fmt.Sprintf("ni %d: misdelivered packet %d (dst %d)", ni.ID, p.ID, p.Dst))
		}
		p.EjectedAt = now
		if ni.Trace != nil {
			ni.Trace.Addf(now, nlog.KPacket, ni.ID, "delivered pkt%d %d->%d lat=%d", p.ID, p.Src, p.Dst, p.TotalLatency()) //flovlint:allow hotalloc -- opt-in delivery tracing
		}
		ni.Stats.Record(p)
		if ni.OnDeliver != nil {
			ni.OnDeliver(p, now)
		}
	}
}

// inject advances packet serialization: allocate a VC for a queued packet
// when none is active for its vnet, then send one flit if credits allow.
// Round-robin across vnets; one flit per cycle total.
func (ni *NI) inject(now int64) {
	vnets := len(ni.queues)

	// Start new transmissions where a vnet is idle and has queued work.
	// An injection stall (Router Parking Phase I) blocks only new
	// packets; a packet already mid-serialization finishes, so the
	// network can always drain to empty.
	newOK := ni.CanInject == nil || ni.CanInject()
	for v := 0; newOK && v < vnets; v++ {
		if ni.sending[v] != nil || len(ni.queues[v]) == 0 {
			continue
		}
		pkt := ni.queues[v][0]
		vc := ni.allocVC(v)
		if vc < 0 {
			continue
		}
		copy(ni.queues[v], ni.queues[v][1:])
		ni.queues[v] = ni.queues[v][:len(ni.queues[v])-1]
		ni.out.Allocated[vc] = true
		ni.sending[v] = &txState{pkt: pkt, flits: noc.MakePacketFlits(pkt), vc: vc}
	}

	// Send one flit, round-robin across vnets with active transmissions.
	for i := 0; i < vnets; i++ {
		v := (ni.vnetRR + i) % vnets
		tx := ni.sending[v]
		if tx == nil || ni.out.Credits[tx.vc] <= 0 {
			continue
		}
		f := tx.flits[tx.next]
		f.VC = tx.vc
		if f.Type.IsHead() {
			tx.pkt.InjectedAt = now
		}
		ni.out.Consume(tx.vc)
		ni.sendFlit.Push(now, f)
		ni.Stats.NoteInjectedFlits(1)
		tx.next++
		if tx.next == len(tx.flits) {
			ni.out.Allocated[tx.vc] = false
			ni.sending[v] = nil
		}
		ni.vnetRR = (v + 1) % vnets
		return
	}
}

// allocVC picks an unallocated regular VC of vnet v in the router's local
// input port, or -1.
func (ni *NI) allocVC(v int) int {
	base := ni.Cfg.VCBase(v)
	for i := 0; i < ni.Cfg.VCsPerVNet; i++ {
		if !ni.out.Allocated[base+i] {
			return base + i
		}
	}
	return -1
}
