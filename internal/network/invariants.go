package network

import (
	"flov/internal/assert"
	"flov/internal/noc"
	"flov/internal/router"
	"flov/internal/sim"
	"flov/internal/topology"
)

// FlitHolder is implemented by mechanisms whose power-gated datapath
// holds flits outside router buffers and link queues (the FLOV output
// latches), so flit conservation can account for them.
type FlitHolder interface {
	HeldFlits() int
}

// LinkCreditSteady is implemented by mechanisms that rewrite credit
// counters during power transitions (FLOV credit copy-up and sync). It
// reports whether router id's credit state on port d currently tracks
// its physical neighbor one-to-one, which makes strict per-VC credit
// conservation checkable on that link. Mechanisms that never rewrite
// credits (Baseline, Router Parking) fall back to RouterOn.
type LinkCreditSteady interface {
	LinkCreditSteady(id int, d topology.Direction) bool
}

// CheckInvariants walks the whole network and fails loudly (via
// assert.Failf) on any violated structural invariant:
//
//   - every input VC holds at most its buffer depth, and every credit
//     counter lies in [0, depth];
//   - flit conservation: flits injected minus flits ejected equals the
//     flits currently sitting in input buffers, link queues, injection/
//     ejection queues and mechanism latches;
//   - per-VC credit conservation on every steady link: sender credits
//     plus flits in flight plus receiver occupancy plus credits in
//     flight equals the buffer depth.
//
// Step runs it every cycle under the flovdebug build tag; it is
// exported so tests can drive it in ordinary builds too.
func (n *Network) CheckInvariants() {
	n.checkBounds()
	n.checkFlitConservation()
	n.checkCreditConservation()
}

// checkBounds verifies buffer occupancy and credit-counter ranges.
func (n *Network) checkBounds() {
	vcs := n.Cfg.VCsTotal()
	for id, r := range n.Routers {
		for p := topology.Direction(0); p < topology.NumPorts; p++ {
			for vc := 0; vc < vcs; vc++ {
				if ivc := r.InVC(p, vc); ivc.Len() > ivc.Capacity() {
					assert.Failf("router %d port %s vc %d: occupancy %d exceeds depth %d at cycle %d",
						id, p, vc, ivc.Len(), ivc.Capacity(), n.now)
				}
			}
			out := r.Out(p)
			for vc, c := range out.Credits {
				if c < 0 || c > out.Depth() {
					assert.Failf("router %d port %s vc %d: credit counter %d outside [0,%d] at cycle %d",
						id, p, vc, c, out.Depth(), n.now)
				}
			}
		}
	}
	for id, ni := range n.NIs {
		out := ni.OutState()
		for vc, c := range out.Credits {
			if c < 0 || c > out.Depth() {
				assert.Failf("ni %d vc %d: credit counter %d outside [0,%d] at cycle %d",
					id, vc, c, out.Depth(), n.now)
			}
		}
	}
}

// checkFlitConservation matches the stats counters against the flits
// actually present in the network. Every queue is owned by exactly one
// router port: OutFlit covers the ejection queue and every inter-router
// link (each link is one router's output), and the Local InFlit is the
// injection queue.
func (n *Network) checkFlitConservation() {
	vcs := n.Cfg.VCsTotal()
	counted := int64(0)
	for _, r := range n.Routers {
		for p := topology.Direction(0); p < topology.NumPorts; p++ {
			for vc := 0; vc < vcs; vc++ {
				counted += int64(r.InVC(p, vc).Len())
			}
			if q := r.Ports[p].OutFlit; q != nil {
				counted += int64(q.Len())
			}
		}
		if q := r.Ports[topology.Local].InFlit; q != nil {
			counted += int64(q.Len())
		}
	}
	if h, ok := n.Mech.(FlitHolder); ok {
		counted += int64(h.HeldFlits())
	}
	if inFlight := n.Stats.InFlightFlits(); counted != inFlight {
		assert.Failf("flit conservation: stats say %d in flight but %d found in buffers/queues/latches at cycle %d",
			inFlight, counted, n.now)
	}
}

// linkSteady reports whether router id's credit state on port d can be
// held to strict conservation this cycle.
func (n *Network) linkSteady(id int, d topology.Direction) bool {
	if ls, ok := n.Mech.(LinkCreditSteady); ok {
		return ls.LinkCreditSteady(id, d)
	}
	return n.Mech.RouterOn(id)
}

// flitsPerVC tallies queued flits by their (downstream) VC index.
func flitsPerVC(q *sim.Delay[*noc.Flit], vcs int) []int {
	counts := make([]int, vcs)
	if q != nil {
		q.Each(func(f *noc.Flit) { counts[f.VC]++ })
	}
	return counts
}

// creditsPerVC tallies queued credit signals by VC index.
func creditsPerVC(q *sim.Delay[router.Signal], vcs int) []int {
	counts := make([]int, vcs)
	if q != nil {
		q.Each(func(s router.Signal) {
			if s.IsCredit {
				counts[s.VC]++
			}
		})
	}
	return counts
}

// checkCreditConservation verifies, per VC on every steady link, that
// sender credits + flits in flight + receiver buffer occupancy +
// credits in flight equals the buffer depth. Links whose endpoints are
// mid-transition (power-gated, draining credit games, awaiting a
// credit sync) are skipped — their counters deliberately track a
// logical neighbor further away.
func (n *Network) checkCreditConservation() {
	vcs := n.Cfg.VCsTotal()
	for id, r := range n.Routers {
		// Inter-router links: this router is the sender.
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			nb := n.Mesh.Neighbor(id, d)
			if nb < 0 {
				continue
			}
			opp := d.Opposite()
			if !n.linkSteady(id, d) || !n.linkSteady(nb, opp) {
				continue
			}
			out := r.Out(d)
			flits := flitsPerVC(r.Ports[d].OutFlit, vcs)
			creds := creditsPerVC(r.Ports[d].InCtrl, vcs)
			recv := n.Routers[nb]
			for vc := 0; vc < vcs; vc++ {
				sum := out.Credits[vc] + flits[vc] + recv.InVC(opp, vc).Len() + creds[vc]
				if sum != out.Depth() {
					assert.Failf("credit conservation on link %d->%d vc %d: credits %d + in-flight %d + buffered %d + returning %d = %d, want depth %d (cycle %d)",
						id, nb, vc, out.Credits[vc], flits[vc], recv.InVC(opp, vc).Len(), creds[vc], sum, out.Depth(), n.now)
				}
			}
		}

		// Local link, both directions: NI -> router (injection) and
		// router -> NI (ejection).
		if !n.linkSteady(id, topology.Local) {
			continue
		}
		ni := n.NIs[id]
		inj := flitsPerVC(r.Ports[topology.Local].InFlit, vcs)
		injCreds := creditsPerVC(r.Ports[topology.Local].OutCtrl, vcs)
		niOut := ni.OutState()
		for vc := 0; vc < vcs; vc++ {
			sum := niOut.Credits[vc] + inj[vc] + r.InVC(topology.Local, vc).Len() + injCreds[vc]
			if sum != niOut.Depth() {
				assert.Failf("credit conservation on ni %d injection vc %d: credits %d + in-flight %d + buffered %d + returning %d = %d, want depth %d (cycle %d)",
					id, vc, niOut.Credits[vc], inj[vc], r.InVC(topology.Local, vc).Len(), injCreds[vc], sum, niOut.Depth(), n.now)
			}
		}
		ej := flitsPerVC(r.Ports[topology.Local].OutFlit, vcs)
		ejCreds := creditsPerVC(r.Ports[topology.Local].InCtrl, vcs)
		out := r.Out(topology.Local)
		for vc := 0; vc < vcs; vc++ {
			// The NI ejects instantly, so nothing is ever buffered on its
			// side of the link.
			sum := out.Credits[vc] + ej[vc] + ejCreds[vc]
			if sum != out.Depth() {
				assert.Failf("credit conservation on ni %d ejection vc %d: credits %d + in-flight %d + returning %d = %d, want depth %d (cycle %d)",
					id, vc, out.Credits[vc], ej[vc], ejCreds[vc], sum, out.Depth(), n.now)
			}
		}
	}
}
