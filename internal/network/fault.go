package network

import (
	"encoding/json"
	"fmt"

	"flov/internal/fault"
	"flov/internal/nlog"
	"flov/internal/noc"
	"flov/internal/routing"
	"flov/internal/topology"
)

// FaultAware is implemented by mechanisms whose routing state derives
// from link/router health (Router Parking's up*/down* tables). The
// network notifies it after every fault-state change (injection or heal)
// so the mechanism can recompute.
type FaultAware interface {
	OnFaultChange(now int64)
}

// AttachFaults wires a fault-injection spec into the network: it builds
// the injector off its own seeded RNG stream (independent of traffic),
// installs the per-router fault hooks, redirects classified drops into
// the statistics, and gates injection at failed nodes. Call once, before
// the first Step. A zero spec is accepted and leaves every hook inert
// (runs stay byte-identical to a network without faults attached).
func (n *Network) AttachFaults(spec fault.Spec) error {
	if n.Faults != nil {
		return fmt.Errorf("network: faults already attached")
	}
	if n.now != 0 {
		return fmt.Errorf("network: AttachFaults called at cycle %d, want 0", n.now)
	}
	if err := spec.Validate(n.Mesh); err != nil {
		return err
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	n.Faults = fault.NewInjector(spec, n.Mesh)
	n.faultSpecJSON = string(canon)
	n.dropAfter = spec.DropTimeout
	if n.dropAfter <= 0 {
		n.dropAfter = 8 * int64(n.Cfg.EscapeTimeout)
	}
	for id, r := range n.Routers {
		r.Faults = &faultHook{n: n, id: id}
		r.OnDrop = func(pkt *noc.Packet, flits int, now int64) {
			n.Stats.NotePacketLost(pkt, flits)
			if n.Trace != nil {
				n.Trace.Addf(now, nlog.KFault, pkt.Dst, "dropped pkt%d %d->%d (%d flits, undeliverable)",
					pkt.ID, pkt.Src, pkt.Dst, flits)
			}
		}
	}
	for id, ni := range n.NIs {
		node := id
		ni.CanInject = func() bool { return n.Faults.RouterUp(node) && n.Mech.CanInject(node) }
	}
	return nil
}

// FaultsEver reports whether any fault has been injected so far (false
// when no fault spec is attached).
func (n *Network) FaultsEver() bool { return n.Faults != nil && n.Faults.EverFaulted() }

// stepFaults advances the injector one cycle and propagates any state
// change; called from Step before traffic generation so a fault injected
// at cycle t is visible to everything that runs at t.
func (n *Network) stepFaults(now int64) {
	if n.Faults.Tick(now) {
		n.applyFaultChange(now)
	}
	// Source queues are swept on a coarse period: packets to destinations
	// cut off by permanent damage would otherwise sit (and grow) forever.
	if n.Faults.HasPermanent() && now%64 == 0 {
		n.classifyQueued(now)
	}
}

// applyFaultChange re-syncs derived state after the injector's fault set
// changed: router freeze flags, committed-but-unallocated routes (they
// may now point at dead hardware, or a healed link may offer a better
// path), and any mechanism routing tables.
func (n *Network) applyFaultChange(now int64) {
	for id, r := range n.Routers {
		r.Frozen = !n.Faults.RouterUp(id)
	}
	for _, r := range n.Routers {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			r.ReRoute(d)
		}
	}
	if fa, ok := n.Mech.(FaultAware); ok {
		fa.OnFaultChange(now)
	}
	if n.Trace != nil {
		n.Trace.Addf(now, nlog.KFault, -1, "fault state changed: %d link / %d router faults so far",
			n.Faults.LinkFaults(), n.Faults.RouterFaults()) //flovlint:allow hotalloc -- opt-in tracing of fault events
	}
}

// classifyQueued drops source-queued packets whose destination is no
// longer reachable from their source (classified losses with zero
// injected flits).
func (n *Network) classifyQueued(now int64) {
	for _, ni := range n.NIs {
		ni.DropWhere(
			func(p *noc.Packet) bool { return !n.Faults.Reachable(p.Src, p.Dst) },
			func(p *noc.Packet) {
				n.Stats.NotePacketLost(p, 0)
				if n.Trace != nil {
					n.Trace.Addf(now, nlog.KFault, p.Src, "dropped queued pkt%d %d->%d (partitioned)",
						p.ID, p.Src, p.Dst) //flovlint:allow hotalloc -- opt-in tracing of classified drops
				}
			})
	}
}

// faultHook adapts the network's injector to one router's FaultHook; it
// also implements routing.FaultView for the decision filter. Every
// method is a strict no-op until the first fault is injected.
type faultHook struct {
	n  *Network
	id int
}

// FilterRoute implements router.FaultHook.
func (h *faultHook) FilterRoute(inDir topology.Direction, pkt *noc.Packet, dec routing.Decision, waited int64) routing.Decision {
	return routing.ApplyFaults(h.n.Mesh, h.id, pkt.Dst, inDir, pkt.Escape, dec, waited, h)
}

// LinkBlocked implements router.FaultHook.
func (h *faultHook) LinkBlocked(d topology.Direction) bool {
	return h.n.Faults.EverFaulted() && !h.LinkUsable(h.id, d)
}

// Recovering implements router.FaultHook.
func (h *faultHook) Recovering() bool { return h.n.Faults.EverFaulted() }

// StuckDrop implements router.FaultHook: the final liveness net for a
// packet wedged in VC allocation (e.g. behind flits stuck in a dead
// router) — permanent damage exists and the wait exceeds the drop
// timeout.
func (h *faultHook) StuckDrop(pkt *noc.Packet, waited int64) bool {
	return h.n.Faults.HasPermanent() && waited > h.n.dropAfter
}

// LinkUsable implements routing.FaultView: the link is healthy and does
// not lead into a permanently dead router (a transiently frozen neighbor
// still accepts flits into its link queue, bounded by credits).
func (h *faultHook) LinkUsable(node int, d topology.Direction) bool {
	if !h.n.Faults.LinkUp(node, d) {
		return false
	}
	nb := h.n.Mesh.Neighbor(node, d)
	return nb < 0 || !h.n.Faults.RouterPermanentlyDown(nb)
}

// Reachable implements routing.FaultView.
func (h *faultHook) Reachable(a, b int) bool { return h.n.Faults.Reachable(a, b) }

// StuckUndeliverable implements routing.FaultView.
func (h *faultHook) StuckUndeliverable(waited int64) bool {
	return h.n.Faults.HasPermanent() && waited > h.n.dropAfter
}

// Faulted implements routing.FaultView.
func (h *faultHook) Faulted() bool { return h.n.Faults.EverFaulted() }
