package fault

import "fmt"

// State is the serializable mutable state of an Injector. The spec and
// mesh are construction parameters and rebuilt by the caller; component
// labels are derived and recomputed on restore.
type State struct {
	RNG          uint64
	LinkDown     []int64 // node-major, NumLinkDirs entries per node
	RouterDown   []int64
	SchedIdx     int
	Ever         bool
	LinkFaults   int64
	RouterFaults int64
	PermVersion  int64
}

// CaptureState copies the injector's mutable state.
func (inj *Injector) CaptureState() State {
	s := State{
		RNG:          inj.rng.State(),
		RouterDown:   append([]int64(nil), inj.routerDown...),
		SchedIdx:     inj.schedIdx,
		Ever:         inj.ever,
		LinkFaults:   inj.linkFaults,
		RouterFaults: inj.routerFaults,
		PermVersion:  inj.permVersion,
	}
	for _, row := range inj.linkDown {
		s.LinkDown = append(s.LinkDown, row...)
	}
	return s
}

// RestoreState overwrites the injector's mutable state and recomputes the
// derived component labels.
func (inj *Injector) RestoreState(s State) error {
	n := inj.mesh.N()
	if len(s.RouterDown) != n || len(s.LinkDown) != n*len(inj.linkDown[0]) {
		return fmt.Errorf("fault: snapshot covers %d routers / %d link entries, injector has %d / %d",
			len(s.RouterDown), len(s.LinkDown), n, n*len(inj.linkDown[0]))
	}
	inj.rng.SetState(s.RNG)
	copy(inj.routerDown, s.RouterDown)
	per := len(inj.linkDown[0])
	for id := range inj.linkDown {
		copy(inj.linkDown[id], s.LinkDown[id*per:(id+1)*per])
	}
	inj.schedIdx = s.SchedIdx
	inj.ever = s.Ever
	inj.linkFaults = s.LinkFaults
	inj.routerFaults = s.RouterFaults
	inj.comp = nil
	hasPerm := false
scan:
	for id := range inj.routerDown {
		if inj.routerDown[id] == permanentlyDown {
			hasPerm = true
			break
		}
		for _, st := range inj.linkDown[id] {
			if st == permanentlyDown {
				hasPerm = true
				break scan
			}
		}
	}
	if hasPerm {
		inj.recomputeComponents()
	}
	// The version is restored after the recompute so it matches the
	// capture-time value exactly (recomputeComponents increments it).
	inj.permVersion = s.PermVersion
	return nil
}
