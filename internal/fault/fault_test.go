package fault

import (
	"reflect"
	"testing"

	"flov/internal/topology"
)

func mesh4(t *testing.T) topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestZeroSpecNeverTouchesRNG(t *testing.T) {
	m := mesh4(t)
	inj := NewInjector(Spec{Seed: 7}, m)
	before := inj.CaptureState().RNG
	for now := int64(0); now < 10_000; now++ {
		if inj.Tick(now) {
			t.Fatalf("zero spec reported a change at cycle %d", now)
		}
	}
	if got := inj.CaptureState().RNG; got != before {
		t.Fatalf("zero spec advanced the fault RNG: %d -> %d", before, got)
	}
	if inj.EverFaulted() || inj.HasPermanent() || inj.FaultsInjected() != 0 {
		t.Fatal("zero spec injected faults")
	}
}

func TestRateFaultsDeterministic(t *testing.T) {
	m := mesh4(t)
	spec := Spec{Seed: 42, LinkRate: 1e-3, RouterRate: 5e-4, TransientCycles: 37}
	a, b := NewInjector(spec, m), NewInjector(spec, m)
	for now := int64(0); now < 20_000; now++ {
		ca, cb := a.Tick(now), b.Tick(now)
		if ca != cb {
			t.Fatalf("divergent change report at cycle %d", now)
		}
	}
	if !reflect.DeepEqual(a.CaptureState(), b.CaptureState()) {
		t.Fatal("same spec produced different fault state")
	}
	if !a.EverFaulted() || a.FaultsInjected() == 0 {
		t.Fatal("rates injected nothing in 20k cycles")
	}
	if a.HasPermanent() {
		t.Fatal("rate-driven faults must be transient")
	}
}

func TestTransientFaultHeals(t *testing.T) {
	m := mesh4(t)
	inj := NewInjector(Spec{Schedule: []Event{
		{At: 10, Kind: "link", Node: 0, Dir: "E", Transient: 20},
		{At: 10, Kind: "router", Node: 5, Transient: 20},
	}}, m)
	for now := int64(0); now <= 10; now++ {
		inj.Tick(now)
	}
	if inj.LinkUp(0, topology.East) || inj.LinkUp(1, topology.West) {
		t.Fatal("link fault not applied symmetrically")
	}
	if inj.RouterUp(5) {
		t.Fatal("router fault not applied")
	}
	if !inj.Reachable(0, 15) {
		t.Fatal("transient faults must not partition reachability")
	}
	for now := int64(11); now <= 30; now++ {
		inj.Tick(now)
	}
	if !inj.LinkUp(0, topology.East) || !inj.LinkUp(1, topology.West) || !inj.RouterUp(5) {
		t.Fatal("transient faults did not heal")
	}
	if inj.FaultsInjected() != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", inj.FaultsInjected())
	}
}

func TestPermanentFaultPartitions(t *testing.T) {
	m := mesh4(t)
	// Cut node 3 (north-east of the bottom row... id 3 = (3,0)) off: its
	// two links (W from 3, N from 3) fail permanently.
	inj := NewInjector(Spec{Schedule: []Event{
		{At: 5, Kind: "link", Node: 3, Dir: "W"},
		{At: 5, Kind: "link", Node: 3, Dir: "N"},
	}}, m)
	for now := int64(0); now <= 5; now++ {
		inj.Tick(now)
	}
	if !inj.HasPermanent() {
		t.Fatal("permanent faults not registered")
	}
	if inj.Reachable(0, 3) || inj.Reachable(3, 15) {
		t.Fatal("node 3 should be partitioned off")
	}
	if !inj.Reachable(0, 15) || !inj.Reachable(3, 3) {
		t.Fatal("surviving component mislabeled")
	}
	if !inj.LinkPermanentlyDown(3, topology.West) || !inj.LinkPermanentlyDown(2, topology.East) {
		t.Fatal("permanent link state not symmetric")
	}
}

func TestPermanentRouterFaultIsolatesNode(t *testing.T) {
	m := mesh4(t)
	inj := NewInjector(Spec{Schedule: []Event{{At: 0, Kind: "router", Node: 6}}}, m)
	inj.Tick(0)
	if !inj.RouterPermanentlyDown(6) {
		t.Fatal("router 6 should be permanently down")
	}
	if inj.Reachable(6, 6) || inj.Reachable(0, 6) {
		t.Fatal("dead router must be unreachable, even from itself")
	}
	if !inj.Reachable(0, 15) {
		t.Fatal("4x4 mesh minus one interior router must stay connected")
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	m := mesh4(t)
	spec := Spec{Seed: 9, LinkRate: 2e-3, Schedule: []Event{{At: 100, Kind: "link", Node: 5, Dir: "N"}}}
	a := NewInjector(spec, m)
	for now := int64(0); now < 500; now++ {
		a.Tick(now)
	}
	st := a.CaptureState()

	b := NewInjector(spec, m)
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if b.Reachable(0, 5) != a.Reachable(0, 5) || b.HasPermanent() != a.HasPermanent() {
		t.Fatal("derived reachability not rebuilt on restore")
	}
	for now := int64(500); now < 2_000; now++ {
		if a.Tick(now) != b.Tick(now) {
			t.Fatalf("restored injector diverged at cycle %d", now)
		}
	}
	if !reflect.DeepEqual(a.CaptureState(), b.CaptureState()) {
		t.Fatal("restored injector ends in different state")
	}
}

func TestSpecValidate(t *testing.T) {
	m := mesh4(t)
	bad := []Spec{
		{LinkRate: -0.1},
		{RouterRate: 1.5},
		{Schedule: []Event{{At: 5, Kind: "blink", Node: 0}}},
		{Schedule: []Event{{At: 5, Kind: "router", Node: 99}}},
		{Schedule: []Event{{At: 5, Kind: "link", Node: 0, Dir: "W"}}}, // edge: no W link
		{Schedule: []Event{{At: 5, Kind: "link", Node: 0, Dir: "E"}, {At: 1, Kind: "router", Node: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(m); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	good := Spec{Seed: 1, LinkRate: 1e-4, Schedule: []Event{{At: 5, Kind: "link", Node: 0, Dir: "E", Transient: 50}}}
	if err := good.Validate(m); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"link_rate": 0.001, "typo_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := ParseSpec([]byte(`{"seed": 3, "link_rate": 1e-4, "schedule": [{"at": 10, "kind": "router", "node": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 3 || s.LinkRate != 1e-4 || len(s.Schedule) != 1 {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
}
