// Package fault is the deterministic fault-injection subsystem: transient
// and permanent link and router failures driven off a dedicated seeded
// SplitMix64 stream, so fault timing is reproducible and fully independent
// of the traffic RNG. The injector only models *when* components fail and
// heal and what stays mutually reachable; the network decides how packets
// react (reroute, classify as undeliverable, freeze a router pipeline).
//
// Two fault sources compose:
//
//   - rates: every cycle, each healthy link/router fails transiently with
//     the configured per-cycle probability, healing TransientCycles later;
//   - schedule: an explicit event list injects faults at fixed cycles,
//     transient or permanent (the reproducible "kill this link at cycle
//     10k" scenarios the reliability harness sweeps).
//
// Link faults are symmetric: both directions of the physical channel fail
// together. Permanent faults partition the mesh; the injector maintains
// connected-component labels over the surviving subgraph so routing can
// classify packets whose destination is unreachable instead of hanging.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"

	"flov/internal/sim"
	"flov/internal/topology"
)

// DefaultTransientCycles is the heal delay for rate-driven transient
// faults when the spec leaves TransientCycles zero.
const DefaultTransientCycles = 100

// Event is one scheduled fault: at cycle At, the named component fails.
// Transient > 0 heals the fault that many cycles later; 0 is permanent.
type Event struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`          // "link" or "router"
	Node int    `json:"node"`          // router id (link: one endpoint)
	Dir  string `json:"dir,omitempty"` // link only: "N","E","S","W" from Node
	// Transient heals the fault after this many cycles; 0 means permanent.
	Transient int64 `json:"transient,omitempty"`
}

// Spec configures an injector. The zero value injects nothing; a Spec with
// zero rates and an empty schedule attached to a network leaves the run
// byte-identical to one with no fault subsystem at all.
type Spec struct {
	// Seed seeds the dedicated fault RNG stream.
	Seed uint64 `json:"seed,omitempty"`
	// LinkRate is the per-link per-cycle transient failure probability.
	LinkRate float64 `json:"link_rate,omitempty"`
	// RouterRate is the per-router per-cycle transient failure probability.
	RouterRate float64 `json:"router_rate,omitempty"`
	// TransientCycles is how long rate-driven faults last before healing
	// (0 means DefaultTransientCycles).
	TransientCycles int64 `json:"transient_cycles,omitempty"`
	// Schedule lists explicit fault events, applied in order of At.
	Schedule []Event `json:"schedule,omitempty"`
	// DropTimeout is how many cycles a head flit may sit unroutable while
	// permanent faults exist before the network classifies its packet as
	// undeliverable (0 derives 8x the config's escape timeout).
	DropTimeout int64 `json:"drop_timeout,omitempty"`
}

// Zero reports whether the spec can never inject a fault.
func (s Spec) Zero() bool {
	//flovlint:allow floatcmp -- exact literal zero is the "never fires" sentinel
	return s.LinkRate == 0 && s.RouterRate == 0 && len(s.Schedule) == 0
}

// Validate rejects malformed specs against the given mesh.
func (s Spec) Validate(m topology.Mesh) error {
	if s.LinkRate < 0 || s.LinkRate >= 1 || s.RouterRate < 0 || s.RouterRate >= 1 {
		return fmt.Errorf("fault: rates must lie in [0,1), got link=%g router=%g", s.LinkRate, s.RouterRate)
	}
	if s.TransientCycles < 0 || s.DropTimeout < 0 {
		return fmt.Errorf("fault: negative transient_cycles or drop_timeout")
	}
	last := int64(-1)
	for i, ev := range s.Schedule {
		if ev.At < 0 || ev.At < last {
			return fmt.Errorf("fault: schedule[%d] at cycle %d out of order", i, ev.At)
		}
		last = ev.At
		if ev.Node < 0 || ev.Node >= m.N() {
			return fmt.Errorf("fault: schedule[%d] node %d outside mesh", i, ev.Node)
		}
		switch ev.Kind {
		case "router":
		case "link":
			d, err := ParseDir(ev.Dir)
			if err != nil {
				return fmt.Errorf("fault: schedule[%d]: %v", i, err)
			}
			if !m.HasNeighbor(ev.Node, d) {
				return fmt.Errorf("fault: schedule[%d] node %d has no %s link", i, ev.Node, d)
			}
		default:
			return fmt.Errorf("fault: schedule[%d] kind %q (want link or router)", i, ev.Kind)
		}
		if ev.Transient < 0 {
			return fmt.Errorf("fault: schedule[%d] negative transient duration", i)
		}
	}
	return nil
}

// ParseDir parses a link direction name as used in fault specs.
func ParseDir(s string) (topology.Direction, error) {
	switch s {
	case "N", "n", "north":
		return topology.North, nil
	case "E", "e", "east":
		return topology.East, nil
	case "S", "s", "south":
		return topology.South, nil
	case "W", "w", "west":
		return topology.West, nil
	}
	return 0, fmt.Errorf("fault: unknown link direction %q", s) //flovlint:allow hotalloc -- reached only when a fault event fires, never in steady state
}

// ParseSpec decodes a fault spec from JSON, rejecting unknown fields so a
// typo in a spec file fails loudly instead of silently injecting nothing.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fault: parsing spec: %v", err)
	}
	return s, nil
}

// downState encodes one component's health: 0 healthy, permanentlyDown
// permanently failed, any positive value the cycle the fault heals.
const permanentlyDown = int64(-1)

// Injector tracks live fault state for one mesh. It is deterministic:
// state after N ticks is a pure function of the spec and the mesh, and it
// serializes for checkpoints via CaptureState/RestoreState.
type Injector struct {
	spec Spec //flovsnap:skip immutable after NewInjector; the snapshot container carries the canonical spec JSON and rejects mismatches
	mesh topology.Mesh
	rng  *sim.RNG

	transient int64 // resolved heal delay for rate-driven faults //flovsnap:skip derived from the spec in NewInjector

	// linkDown[node][dir] mirrors each physical link under both endpoint
	// entries; routerDown[id] covers whole routers. Encoding: downState.
	linkDown   [][]int64
	routerDown []int64
	schedIdx   int
	ever       bool

	// comp holds connected-component labels of the subgraph surviving all
	// *permanent* faults (-1 for permanently dead routers); nil until the
	// first permanent fault, since without one everything heals eventually
	// and every pair stays mutually reachable.
	comp []int
	// permVersion counts permanent-fault-set changes; consumers (Router
	// Parking) reconfigure only when it moves, ignoring transient churn.
	permVersion int64

	// Counters (fault injection events, not down-cycles).
	linkFaults   int64
	routerFaults int64
}

// NewInjector builds an injector for spec over mesh. The spec must have
// been validated.
func NewInjector(spec Spec, mesh topology.Mesh) *Injector {
	inj := &Injector{
		spec:      spec,
		mesh:      mesh,
		rng:       sim.NewRNG(spec.Seed ^ 0x6661756c74736565), // "faultsee"
		transient: spec.TransientCycles,
	}
	if inj.transient <= 0 {
		inj.transient = DefaultTransientCycles
	}
	n := mesh.N()
	inj.linkDown = make([][]int64, n)
	for i := range inj.linkDown {
		inj.linkDown[i] = make([]int64, topology.NumLinkDirs)
	}
	inj.routerDown = make([]int64, n)
	return inj
}

// Spec returns the injector's configuration.
func (inj *Injector) Spec() Spec { return inj.spec }

// Tick advances fault state to cycle now: heals expired transients,
// applies due scheduled events and draws rate-driven faults. It reports
// whether any component changed health this cycle. With a Zero spec it
// never touches the RNG, keeping zero-fault runs byte-identical to runs
// without an injector.
func (inj *Injector) Tick(now int64) bool {
	changed := false
	permChanged := false

	// Heal expired transients (links via their canonical N/E owner entry).
	for id := range inj.linkDown {
		for _, d := range [2]topology.Direction{topology.North, topology.East} {
			until := inj.linkDown[id][d]
			if until > 0 && now >= until {
				inj.setLink(id, d, 0)
				changed = true
			}
		}
	}
	for id, until := range inj.routerDown {
		if until > 0 && now >= until {
			inj.routerDown[id] = 0
			changed = true
		}
	}

	// Scheduled events.
	for inj.schedIdx < len(inj.spec.Schedule) && inj.spec.Schedule[inj.schedIdx].At <= now {
		ev := inj.spec.Schedule[inj.schedIdx]
		inj.schedIdx++
		state := permanentlyDown
		if ev.Transient > 0 {
			state = now + ev.Transient
		}
		if ev.Kind == "router" {
			if inj.routerDown[ev.Node] == permanentlyDown {
				continue
			}
			inj.routerDown[ev.Node] = state
			inj.routerFaults++
		} else {
			d, err := ParseDir(ev.Dir)
			if err != nil {
				// Validate rejects malformed events before an injector is
				// built; an unparseable direction can never fire.
				continue
			}
			if inj.linkState(ev.Node, d) == permanentlyDown {
				continue
			}
			inj.setLink(ev.Node, d, state)
			inj.linkFaults++
		}
		inj.ever = true
		changed = true
		if state == permanentlyDown {
			permChanged = true
		}
	}

	// Rate-driven transient faults, in fixed component order so the draw
	// sequence (and therefore the whole schedule) is deterministic.
	if inj.spec.LinkRate > 0 {
		for id := 0; id < inj.mesh.N(); id++ {
			for _, d := range [2]topology.Direction{topology.North, topology.East} {
				if !inj.mesh.HasNeighbor(id, d) || inj.linkDown[id][d] != 0 {
					continue
				}
				if inj.rng.Bernoulli(inj.spec.LinkRate) {
					inj.setLink(id, d, now+inj.transient)
					inj.linkFaults++
					inj.ever = true
					changed = true
				}
			}
		}
	}
	if inj.spec.RouterRate > 0 {
		for id := 0; id < inj.mesh.N(); id++ {
			if inj.routerDown[id] != 0 {
				continue
			}
			if inj.rng.Bernoulli(inj.spec.RouterRate) {
				inj.routerDown[id] = now + inj.transient
				inj.routerFaults++
				inj.ever = true
				changed = true
			}
		}
	}

	if permChanged {
		inj.recomputeComponents()
	}
	return changed
}

// setLink writes both mirrored entries of the physical link (id, d).
func (inj *Injector) setLink(id int, d topology.Direction, state int64) {
	nb := inj.mesh.Neighbor(id, d)
	inj.linkDown[id][d] = state
	if nb >= 0 {
		inj.linkDown[nb][d.Opposite()] = state
	}
}

// linkState returns the health entry for link (id, d).
func (inj *Injector) linkState(id int, d topology.Direction) int64 {
	if d < 0 || d >= topology.NumLinkDirs {
		return 0
	}
	return inj.linkDown[id][d]
}

// LinkUp reports whether the link from id in direction d is healthy this
// cycle. Local and edge directions report true (there is no link to fail).
func (inj *Injector) LinkUp(id int, d topology.Direction) bool {
	return inj.linkState(id, d) == 0
}

// RouterUp reports whether router id is healthy this cycle.
func (inj *Injector) RouterUp(id int) bool { return inj.routerDown[id] == 0 }

// RouterPermanentlyDown reports whether router id failed permanently.
func (inj *Injector) RouterPermanentlyDown(id int) bool {
	return inj.routerDown[id] == permanentlyDown
}

// LinkPermanentlyDown reports whether link (id, d) failed permanently.
func (inj *Injector) LinkPermanentlyDown(id int, d topology.Direction) bool {
	return inj.linkState(id, d) == permanentlyDown
}

// EverFaulted reports whether any fault has been injected so far. The
// network gates its fault-recovery heuristics on this so a zero-rate spec
// changes nothing.
func (inj *Injector) EverFaulted() bool { return inj.ever }

// HasPermanent reports whether any permanent fault has been injected.
func (inj *Injector) HasPermanent() bool { return inj.comp != nil }

// Reachable reports whether a packet at router a can ever reach router b
// given the permanent faults injected so far. Transient faults heal and
// power-gated routers wake, so only permanent damage partitions the mesh.
func (inj *Injector) Reachable(a, b int) bool {
	if inj.comp == nil {
		return true
	}
	return inj.comp[a] >= 0 && inj.comp[a] == inj.comp[b]
}

// recomputeComponents relabels connected components of the subgraph that
// survives all permanent faults.
func (inj *Injector) recomputeComponents() {
	inj.permVersion++
	n := inj.mesh.N()
	comp := make([]int, n) //flovlint:allow hotalloc -- recompute runs only when the permanent fault set changes
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]int, 0, n) //flovlint:allow hotalloc -- recompute runs only when the permanent fault set changes
	for start := 0; start < n; start++ {
		if comp[start] >= 0 || inj.routerDown[start] == permanentlyDown {
			continue
		}
		comp[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
				nb := inj.mesh.Neighbor(cur, d)
				if nb < 0 || comp[nb] >= 0 ||
					inj.routerDown[nb] == permanentlyDown ||
					inj.linkDown[cur][d] == permanentlyDown {
					continue
				}
				comp[nb] = next
				queue = append(queue, nb) //flovlint:allow hotalloc -- recompute runs only when the permanent fault set changes
			}
		}
		next++
	}
	inj.comp = comp
}

// PermanentVersion returns a counter that advances whenever the set of
// permanent faults changes (0 while none exist).
func (inj *Injector) PermanentVersion() int64 { return inj.permVersion }

// LinkFaults returns how many link faults have been injected.
func (inj *Injector) LinkFaults() int64 { return inj.linkFaults }

// RouterFaults returns how many router faults have been injected.
func (inj *Injector) RouterFaults() int64 { return inj.routerFaults }

// FaultsInjected returns the total fault events injected so far.
func (inj *Injector) FaultsInjected() int64 { return inj.linkFaults + inj.routerFaults }
