// Package relcheck is the statistical reliability verification harness:
// statistical model checking over the fault-injection subsystem, in the
// spirit of probabilistic NoC verification (arXiv:2108.13148). For every
// (mechanism, fault spec) cell it runs N independently seeded trials
// through the sweep engine, tracks per-packet delivery/loss outcomes,
// computes a binomial confidence interval on the delivery probability
// (Wilson by default, exact Clopper-Pearson on request) plus a
// tail-latency bound, and classifies the cell:
//
//   - HELD: every offered packet was delivered in every trial;
//   - DEGRADED-GRACEFULLY: packets were lost or left in flight, but
//     every loss was explicitly classified and every invariant held —
//     the connectivity guarantee is relaxed to the surviving component;
//   - VIOLATED: a trial tripped a correctness oracle (flovdebug
//     invariant panic, deadlock watchdog, conservation breach) or failed
//     to build; the cell records the failing seed so the trial can be
//     replayed under flovsim.
//
// Every trial is a plain sweep.Job, so the content-addressed result
// cache and the engine's panic isolation apply per trial, and a trial is
// byte-identical across processes for a given spec.
package relcheck

import (
	"context"
	"encoding/json"
	"fmt"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/sweep"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// Spec describes one reliability verification matrix: the cross product
// of Mechanisms and Faults, Trials seeded runs per cell.
type Spec struct {
	// Config is the base testbed configuration. Seed and WarmupCycles are
	// overridden per trial: each trial t runs with Seed = SeedBase + t and
	// no warmup phase, so every created packet is measured and the
	// accounting identity offered = delivered + lost + stragglers is
	// exact.
	Config config.Config

	// Synthetic workload shared by every cell.
	Pattern  traffic.Pattern
	Rate     float64 // offered load (flits/cycle/node)
	Frac     float64 // fraction of cores power-gated
	Protect  []int   // node ids never gated
	Hotspots []int   // hotspot destinations (Hotspot pattern only)

	// Mechanisms are the gating policies under verification (rows).
	Mechanisms []config.Mechanism
	// Faults are the fault scenarios (columns). A zero-rate, empty-
	// schedule spec is the fault-free control column.
	Faults []fault.Spec

	// Trials is the number of seeded runs per cell.
	Trials int
	// SeedBase is the traffic seed of trial 0; trial t uses SeedBase+t.
	SeedBase uint64
	// Confidence is the CI level on delivery probability (0 means 0.95).
	Confidence float64
	// Exact selects the exact Clopper-Pearson interval over Wilson.
	Exact bool
}

// confidence returns the effective CI level.
func (s Spec) confidence() float64 {
	//flovlint:allow floatcmp -- exact zero is the "use the default" sentinel
	if s.Confidence == 0 {
		return 0.95
	}
	return s.Confidence
}

// Validate rejects malformed specs before any trial runs.
func (s Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("relcheck: need at least 1 trial, got %d", s.Trials)
	}
	if len(s.Mechanisms) == 0 {
		return fmt.Errorf("relcheck: no mechanisms to verify")
	}
	if len(s.Faults) == 0 {
		return fmt.Errorf("relcheck: no fault scenarios (use a zero spec for a fault-free control)")
	}
	if c := s.Confidence; c < 0 || c >= 1 {
		return fmt.Errorf("relcheck: confidence %g outside (0,1) (0 means the 0.95 default)", c)
	}
	mesh, err := topology.NewMesh(s.Config.Width, s.Config.Height)
	if err != nil {
		return fmt.Errorf("relcheck: %w", err)
	}
	for i, fs := range s.Faults {
		if err := fs.Validate(mesh); err != nil {
			return fmt.Errorf("relcheck: fault scenario %d: %w", i, err)
		}
	}
	return nil
}

// streamLabel names this package's seed stream in sim.DeriveSeed; the
// value spells "flovrel" and must never change (it is baked into every
// cached trial's identity).
const streamLabel = 0x666c6f7672656c

// trialFaultSeed derives the fault-RNG seed for one trial: the scenario's
// own seed XOR an avalanche of the trial index, so every trial draws an
// independent fault timeline while staying a pure function of the spec.
// The arithmetic lives in sim.DeriveSeed, shared with the optimizer's
// search streams, so the layers cannot drift on seed semantics.
func trialFaultSeed(base, specSeed uint64, trial int) uint64 {
	return sim.DeriveSeed(base, specSeed, streamLabel, trial)
}

// Jobs expands the spec into one sweep job per trial, cell-major in
// (mechanism, fault, trial) order — the order report consumes. The
// derivations are chosen so a trial is replayable under flovsim with the
// recorded seeds alone: Config.Seed doubles as the gated-set seed
// (sim.MaskSeed, flovsim's own -seed derivation) and the fault spec
// embeds its per-trial seed verbatim.
func (s Spec) Jobs() []sweep.Job {
	jobs := make([]sweep.Job, 0, len(s.Mechanisms)*len(s.Faults)*s.Trials)
	for _, mech := range s.Mechanisms {
		for fi := range s.Faults {
			for t := 0; t < s.Trials; t++ {
				cfg := s.Config
				cfg.Mechanism = mech
				cfg.Seed = s.SeedBase + uint64(t)
				cfg.WarmupCycles = 0
				fs := s.Faults[fi]
				fs.Seed = trialFaultSeed(s.SeedBase, fs.Seed, t)
				jobs = append(jobs, sweep.Job{
					Kind:      sweep.Synthetic,
					Config:    cfg,
					Pattern:   s.Pattern,
					Rate:      s.Rate,
					Frac:      s.Frac,
					MaskSeed:  sim.MaskSeed(cfg.Seed),
					Protect:   s.Protect,
					Hotspots:  s.Hotspots,
					Mechanism: mech,
					Faults:    &fs,
				})
			}
		}
	}
	return jobs
}

// Verdict classifies one cell.
type Verdict int

// Cell verdicts, ordered by severity.
const (
	Held Verdict = iota
	Degraded
	Violated
)

// String renders the verdict as printed in the table.
func (v Verdict) String() string {
	switch v {
	case Held:
		return "HELD"
	case Degraded:
		return "DEGRADED-GRACEFULLY"
	case Violated:
		return "VIOLATED"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalJSON renders the symbolic name.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON parses the symbolic name.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "HELD":
		*v = Held
	case "DEGRADED-GRACEFULLY":
		*v = Degraded
	case "VIOLATED":
		*v = Violated
	default:
		return fmt.Errorf("relcheck: unknown verdict %q", s)
	}
	return nil
}

// Trial is the per-packet accounting of one seeded run.
type Trial struct {
	Trial     int    `json:"trial"`
	Seed      uint64 `json:"seed"`       // traffic seed (flovsim -seed)
	FaultSeed uint64 `json:"fault_seed"` // derived fault-RNG seed

	Offered   int64 `json:"offered"`   // packets created
	Delivered int64 `json:"delivered"` // packets ejected at their destination
	Lost      int64 `json:"lost,omitempty"`
	// Stragglers are packets neither delivered nor classified when the
	// drain budget expired — flits wedged mid-transfer into dead hardware.
	Stragglers     int64  `json:"stragglers,omitempty"`
	P99            int64  `json:"p99"` // p99 latency upper bound (cycles)
	FaultsInjected int64  `json:"faults_injected,omitempty"`
	Err            string `json:"err,omitempty"` // oracle trip (panic, build failure)
}

// Cell aggregates the trials of one (mechanism, fault scenario) pair.
type Cell struct {
	Mechanism  string     `json:"mechanism"`
	FaultIndex int        `json:"fault_index"`
	Fault      fault.Spec `json:"fault"`
	Trials     []Trial    `json:"trials"`

	Offered    int64 `json:"offered"`
	Delivered  int64 `json:"delivered"`
	Lost       int64 `json:"lost"`
	Stragglers int64 `json:"stragglers"`

	// DeliveryP is the point estimate Delivered/Offered; CI brackets it
	// at the report's confidence level.
	DeliveryP float64        `json:"delivery_p"`
	CI        stats.Interval `json:"ci"`
	MaxP99    int64          `json:"max_p99"` // worst p99 bound over trials

	Verdict    Verdict `json:"verdict"`
	Violations int     `json:"violations,omitempty"` // trials that tripped an oracle
	FailedSeed uint64  `json:"failed_seed,omitempty"`
	Err        string  `json:"err,omitempty"` // first oracle message
}

// Report is the full verdict matrix of one Run.
type Report struct {
	Trials     int     `json:"trials"`
	Confidence float64 `json:"confidence"`
	Exact      bool    `json:"exact,omitempty"`
	Cells      []Cell  `json:"cells"`
}

// Violated reports whether any cell tripped an oracle.
func (r Report) Violated() bool {
	for _, c := range r.Cells {
		if c.Verdict == Violated {
			return true
		}
	}
	return false
}

// Options configures Run's execution environment.
type Options struct {
	// Workers caps the engine pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes trial results (trials hash like any
	// other sweep job, fault spec included).
	Cache *sweep.Cache
	// Progress, when non-nil, observes per-trial lifecycle events.
	Progress sweep.Progress
}

// Run executes every trial of the matrix across a worker pool and
// aggregates the verdict table. Trial failures (including simulator
// panics — the oracle signal) are isolated per trial and classified;
// the error return covers spec problems and cancellation only.
func Run(ctx context.Context, s Spec, o Options) (Report, error) {
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	e := &sweep.Engine{Workers: o.Workers, Cache: o.Cache, Progress: o.Progress}
	results := e.Run(ctx, s.Jobs())
	if err := ctx.Err(); err != nil {
		return Report{}, fmt.Errorf("relcheck: run canceled: %w", err)
	}
	return s.report(results), nil
}

// report folds engine results (in Jobs order) into the verdict matrix.
func (s Spec) report(results []sweep.Result) Report {
	conf := s.confidence()
	rep := Report{Trials: s.Trials, Confidence: conf, Exact: s.Exact}
	i := 0
	for _, mech := range s.Mechanisms {
		for fi := range s.Faults {
			c := Cell{Mechanism: mech.String(), FaultIndex: fi, Fault: s.Faults[fi]}
			for t := 0; t < s.Trials; t++ {
				r := results[i]
				i++
				tr := Trial{
					Trial:     t,
					Seed:      r.Job.Config.Seed,
					FaultSeed: r.Job.Faults.Seed,
					Err:       r.Err,
				}
				if r.Err == "" {
					res := r.Res
					tr.Offered = res.OfferedPkts
					tr.Delivered = res.Packets
					tr.Lost = res.LostPkts
					// Deliberately unclamped: a negative straggler count
					// means the accounting identity broke, and the verdict
					// logic below treats that as loud degradation, not noise.
					tr.Stragglers = res.OfferedPkts - res.Packets - res.LostPkts
					tr.P99 = res.P99Latency
					tr.FaultsInjected = res.FaultsInjected
					c.Offered += tr.Offered
					c.Delivered += tr.Delivered
					c.Lost += tr.Lost
					c.Stragglers += tr.Stragglers
					if tr.P99 > c.MaxP99 {
						c.MaxP99 = tr.P99
					}
				} else {
					c.Violations++
					if c.Err == "" {
						c.Err = r.Err
						c.FailedSeed = tr.Seed
					}
				}
				c.Trials = append(c.Trials, tr)
			}
			switch {
			case c.Violations > 0:
				c.Verdict = Violated
			case c.Lost > 0 || c.Stragglers != 0:
				c.Verdict = Degraded
			default:
				c.Verdict = Held
			}
			if c.Offered > 0 {
				c.DeliveryP = float64(c.Delivered) / float64(c.Offered)
			}
			if s.Exact {
				c.CI = stats.ClopperPearson(c.Delivered, c.Offered, conf)
			} else {
				c.CI = stats.WilsonInterval(c.Delivered, c.Offered, conf)
			}
			rep.Cells = append(rep.Cells, c)
		}
	}
	return rep
}
