package relcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"flov/internal/snapshot"
	"flov/internal/sweep"
)

// Artifact is the replay bundle written for one VIOLATED cell: the exact
// failing job, the per-trial fault spec as a flovsim -faults file, the
// last checkpoint taken before the oracle tripped, and a ready-to-paste
// flovsim command that reproduces the failure.
type Artifact struct {
	Cell      int       `json:"cell"` // index into Report.Cells
	Mechanism string    `json:"mechanism"`
	Seed      uint64    `json:"seed"`
	Job       sweep.Job `json:"job"` // ground truth for the trial
	Err       string    `json:"err"` // oracle message from the replay
	// Cycle is when the last good checkpoint was taken (0 when the
	// failure predates the first checkpoint; replay then starts cold).
	Cycle     int64  `json:"checkpoint_cycle"`
	Snapshot  string `json:"snapshot,omitempty"` // checkpoint file
	FaultSpec string `json:"fault_spec"`         // flovsim -faults file
	Command   string `json:"command"`            // suggested replay invocation
}

// WriteArtifacts replays the first failing trial of every VIOLATED cell
// in rep (which must come from a Run of the same spec) and writes its
// replay bundle under dir: <prefix>.snap, <prefix>.faults.json and
// <prefix>.replay.json. It returns one Artifact per violated cell.
func WriteArtifacts(dir string, s Spec, rep Report) ([]Artifact, error) {
	jobs := s.Jobs()
	var arts []Artifact
	for ci, c := range rep.Cells {
		if c.Verdict != Violated {
			continue
		}
		ti := -1
		for t, tr := range c.Trials {
			if tr.Err != "" {
				ti = t
				break
			}
		}
		if ti < 0 {
			continue
		}
		idx := ci*s.Trials + ti
		if idx >= len(jobs) {
			return arts, fmt.Errorf("relcheck: report shape does not match spec (cell %d trial %d)", ci, ti)
		}
		if len(arts) == 0 {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		a, err := writeArtifact(dir, ci, c, jobs[idx], s)
		if err != nil {
			return arts, err
		}
		arts = append(arts, a)
	}
	return arts, nil
}

// writeArtifact replays one failing job and persists its bundle.
func writeArtifact(dir string, ci int, c Cell, j sweep.Job, s Spec) (Artifact, error) {
	seed := j.Config.Seed
	prefix := fmt.Sprintf("cell%02d-%s-f%d-seed%d", ci, c.Mechanism, c.FaultIndex, seed)
	a := Artifact{
		Cell:      ci,
		Mechanism: c.Mechanism,
		Seed:      seed,
		Job:       j,
	}

	snap, cycle, msg := replayTrial(j)
	a.Cycle = cycle
	if msg == "" {
		// The replay did not reproduce (e.g. the verdict came from a
		// cached row of an older build); the bundle still carries the job
		// and fault spec so the trial can be re-run by hand.
		msg = "replay completed without tripping the oracle; original error: " + c.Err
	}
	a.Err = msg

	faultsPath := filepath.Join(dir, prefix+".faults.json")
	fj, err := json.MarshalIndent(j.Faults, "", " ")
	if err != nil {
		return a, err
	}
	if err := os.WriteFile(faultsPath, append(fj, '\n'), 0o644); err != nil {
		return a, err
	}
	a.FaultSpec = faultsPath

	if snap != nil {
		snapPath := filepath.Join(dir, prefix+".snap")
		if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
			return a, err
		}
		a.Snapshot = snapPath
	}

	cmd := fmt.Sprintf("flovsim -mech %s -pattern %s -rate %g -gated %g -width %d -height %d -seed %d -warmup 0 -cycles %d -faults %s",
		c.Mechanism, j.Pattern, j.Rate, j.Frac,
		j.Config.Width, j.Config.Height, seed, j.Config.TotalCycles, faultsPath)
	if a.Snapshot != "" {
		cmd += " -restore " + a.Snapshot
	}
	a.Command = cmd

	rj, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return a, err
	}
	if err := os.WriteFile(filepath.Join(dir, prefix+".replay.json"), append(rj, '\n'), 0o644); err != nil {
		return a, err
	}
	return a, nil
}

// replayTrial re-runs one trial with periodic in-memory checkpoints,
// converting an oracle panic into the returned message. The returned
// snapshot is the last checkpoint taken before the failure (nil when it
// tripped before the first checkpoint); cycle is when it was taken.
func replayTrial(j sweep.Job) (snap []byte, cycle int64, msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	n, err := j.BuildSynthetic()
	if err != nil {
		return nil, 0, err.Error()
	}
	every := j.Config.TotalCycles / 16
	if every < 512 {
		every = 512
	}
	for n.Now() < j.Config.TotalCycles {
		next := n.Now() + every
		if next > j.Config.TotalCycles {
			next = j.Config.TotalCycles
		}
		n.RunTo(next)
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, n, nil); err == nil {
			snap, cycle = buf.Bytes(), n.Now()
		}
	}
	// Measurement finished without tripping; the drain phase runs under
	// the same oracles (a deadlock there is still a violation).
	n.Run()
	return snap, cycle, ""
}
