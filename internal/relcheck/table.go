package relcheck

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"flov/internal/fault"
)

// FaultDesc renders a short human-readable label for one fault scenario,
// used as the column key of the verdict table.
func FaultDesc(fs fault.Spec) string {
	if fs.Zero() {
		return "fault-free"
	}
	var parts []string
	if fs.LinkRate > 0 {
		parts = append(parts, fmt.Sprintf("link=%g", fs.LinkRate))
	}
	if fs.RouterRate > 0 {
		parts = append(parts, fmt.Sprintf("router=%g", fs.RouterRate))
	}
	if len(fs.Schedule) > 0 {
		parts = append(parts, fmt.Sprintf("events=%d", len(fs.Schedule)))
	}
	return strings.Join(parts, " ")
}

// Table renders the verdict matrix as an aligned text table, one row per
// (mechanism, fault scenario) cell.
func (r Report) Table() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	// tabwriter only fails when its underlying writer does; a Builder never does.
	_, _ = fmt.Fprintf(w, "mechanism\tfault\tdelivered/offered\tp(deliver) [%g%% CI]\tlost\tstragglers\tp99<=\tverdict\n", r.Confidence*100)
	for _, c := range r.Cells {
		verdict := c.Verdict.String()
		if c.Verdict == Violated {
			verdict = fmt.Sprintf("%s (%d/%d trials, seed %d: %s)",
				verdict, c.Violations, len(c.Trials), c.FailedSeed, firstLine(c.Err))
		}
		_, _ = fmt.Fprintf(w, "%s\t%s\t%d/%d\t%.4f [%.4f, %.4f]\t%d\t%d\t%d\t%s\n",
			c.Mechanism, FaultDesc(c.Fault),
			c.Delivered, c.Offered,
			c.DeliveryP, c.CI.Lo, c.CI.Hi,
			c.Lost, c.Stragglers, c.MaxP99, verdict)
	}
	_ = w.Flush()
	return b.String()
}

// firstLine truncates a multi-line oracle message (panic values carry
// stack traces) to its first line for the table.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
