package relcheck

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/sweep"
	"flov/internal/traffic"
)

// testSpec is a small matrix over a 4x4 mesh: two mechanisms, a
// fault-free control column and a transient-fault column, two trials.
func testSpec() Spec {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.TotalCycles = 2000
	cfg.WarmupCycles = 200 // Jobs must override this to 0
	return Spec{
		Config:     cfg,
		Pattern:    traffic.Uniform,
		Rate:       0.02,
		Frac:       0.5,
		Mechanisms: []config.Mechanism{config.Baseline, config.GFLOV},
		Faults: []fault.Spec{
			{},
			{Seed: 9, LinkRate: 2e-4, TransientCycles: 40},
		},
		Trials:   2,
		SeedBase: 100,
	}
}

// TestJobsDerivation pins the job expansion: cell-major order, per-trial
// seeds, forced zero warmup, and fault seeds that differ per trial but
// are a pure function of the spec.
func TestJobsDerivation(t *testing.T) {
	s := testSpec()
	jobs := s.Jobs()
	if want := len(s.Mechanisms) * len(s.Faults) * s.Trials; len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Config.WarmupCycles != 0 {
			t.Errorf("job %d: warmup %d, want 0", i, j.Config.WarmupCycles)
		}
		if j.Faults == nil {
			t.Fatalf("job %d: no fault spec attached", i)
		}
		trial := i % s.Trials
		if want := s.SeedBase + uint64(trial); j.Config.Seed != want {
			t.Errorf("job %d: seed %d, want %d", i, j.Config.Seed, want)
		}
		if j.MaskSeed != j.Config.Seed^0xabcd {
			t.Errorf("job %d: mask seed not flovsim-compatible", i)
		}
	}
	// Trials of one cell draw distinct fault seeds; the same trial index
	// draws the same fault seed in every cell (scenario seed aside).
	if jobs[0].Faults.Seed == jobs[1].Faults.Seed {
		t.Error("trials 0 and 1 share a fault seed")
	}
	again := s.Jobs()
	for i := range jobs {
		if jobs[i].Hash() != again[i].Hash() {
			t.Errorf("job %d hash changed across derivations", i)
		}
	}
}

// TestVerdictClassification drives report() with hand-built results and
// checks each cell lands on the right verdict.
func TestVerdictClassification(t *testing.T) {
	s := testSpec()
	s.Mechanisms = s.Mechanisms[:1]
	s.Faults = s.Faults[:1]
	s.Trials = 2
	jobs := s.Jobs()

	mk := func(offered, delivered, lost int64, errMsg string) []sweep.Result {
		rs := make([]sweep.Result, len(jobs))
		for i, j := range jobs {
			rs[i] = sweep.Result{Job: j}
			rs[i].Res.OfferedPkts = offered
			rs[i].Res.Packets = delivered
			rs[i].Res.LostPkts = lost
			rs[i].Res.P99Latency = 64
		}
		if errMsg != "" {
			rs[len(rs)-1] = sweep.Result{Job: jobs[len(rs)-1], Err: errMsg}
		}
		return rs
	}

	held := s.report(mk(100, 100, 0, ""))
	if v := held.Cells[0].Verdict; v != Held {
		t.Errorf("all delivered: verdict %v, want HELD", v)
	}
	if p := held.Cells[0].DeliveryP; p != 1 {
		t.Errorf("all delivered: p=%g, want 1", p)
	}
	if ci := held.Cells[0].CI; ci.Hi != 1 || ci.Lo >= 1 || ci.Lo < 0.9 {
		t.Errorf("200/200 Wilson CI %+v implausible", ci)
	}

	degraded := s.report(mk(100, 97, 3, ""))
	if v := degraded.Cells[0].Verdict; v != Degraded {
		t.Errorf("classified losses: verdict %v, want DEGRADED", v)
	}
	if got := degraded.Cells[0].Lost; got != 6 {
		t.Errorf("lost=%d, want 6", got)
	}

	straggling := s.report(mk(100, 98, 0, ""))
	if v := straggling.Cells[0].Verdict; v != Degraded {
		t.Errorf("stragglers: verdict %v, want DEGRADED", v)
	}
	if got := straggling.Cells[0].Stragglers; got != 4 {
		t.Errorf("stragglers=%d, want 4", got)
	}

	violated := s.report(mk(100, 100, 0, "panic: credit conservation"))
	c := violated.Cells[0]
	if c.Verdict != Violated {
		t.Errorf("oracle trip: verdict %v, want VIOLATED", c.Verdict)
	}
	if c.Violations != 1 || c.FailedSeed != s.SeedBase+1 || !strings.Contains(c.Err, "credit") {
		t.Errorf("violation bookkeeping wrong: %+v", c)
	}
	if !violated.Violated() {
		t.Error("Report.Violated() false with a violated cell")
	}
}

// TestRunSmallMatrix runs the real matrix end to end, twice, and checks
// the fault-free control column holds while the whole report stays
// byte-identical across runs (the determinism the cache key relies on).
func TestRunSmallMatrix(t *testing.T) {
	s := testSpec()
	rep, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.FaultIndex == 0 {
			if c.Verdict != Held {
				t.Errorf("%s fault-free control: verdict %v (lost=%d stragglers=%d err=%q)",
					c.Mechanism, c.Verdict, c.Lost, c.Stragglers, c.Err)
			}
			if c.DeliveryP != 1 {
				t.Errorf("%s fault-free control: delivery %g, want 1", c.Mechanism, c.DeliveryP)
			}
		}
		if c.Verdict == Violated {
			t.Errorf("%s under transient faults: VIOLATED: %s", c.Mechanism, c.Err)
		}
		if c.Offered == 0 {
			t.Errorf("%s: no packets offered", c.Mechanism)
		}
		if c.CI.Lo > c.DeliveryP || c.CI.Hi < c.DeliveryP {
			t.Errorf("%s: CI [%g,%g] excludes point estimate %g", c.Mechanism, c.CI.Lo, c.CI.Hi, c.DeliveryP)
		}
	}
	again, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Errorf("same spec, different reports across runs:\n%s\n%s", a, b)
	}
	if tbl := rep.Table(); !strings.Contains(tbl, "HELD") || !strings.Contains(tbl, "fault-free") {
		t.Errorf("table rendering missing expected cells:\n%s", tbl)
	}
}

// TestWriteArtifacts checks the replay bundle of a violated cell: fault
// spec and sidecar land on disk and the suggested command carries the
// seeds needed to reproduce under flovsim.
func TestWriteArtifacts(t *testing.T) {
	s := testSpec()
	s.Mechanisms = s.Mechanisms[:1]
	s.Faults = s.Faults[1:]
	s.Trials = 1
	jobs := s.Jobs()
	results := []sweep.Result{{Job: jobs[0], Err: "panic: injected for test"}}
	rep := s.report(results)
	if !rep.Violated() {
		t.Fatal("fixture report not violated")
	}

	dir := t.TempDir()
	arts, err := WriteArtifacts(dir, s, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(arts))
	}
	a := arts[0]
	if a.Seed != s.SeedBase {
		t.Errorf("artifact seed %d, want %d", a.Seed, s.SeedBase)
	}
	for _, p := range []string{a.FaultSpec, a.Snapshot} {
		if p == "" {
			t.Fatalf("artifact missing a file path: %+v", a)
		}
		if _, err := os.Stat(p); err != nil {
			t.Errorf("artifact file: %v", err)
		}
	}
	if !strings.Contains(a.Command, "-faults ") || !strings.Contains(a.Command, "-restore ") {
		t.Errorf("replay command incomplete: %s", a.Command)
	}
	// The fault-spec file round-trips through the flovsim -faults parser.
	data, err := os.ReadFile(a.FaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fault.ParseSpec(data)
	if err != nil {
		t.Fatalf("artifact fault spec does not parse: %v", err)
	}
	if fs.Seed != a.Job.Faults.Seed {
		t.Errorf("fault spec seed %d, want %d", fs.Seed, a.Job.Faults.Seed)
	}
	// Sidecar exists next to the others.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.replay.json"))
	if len(matches) != 1 {
		t.Errorf("want 1 replay sidecar, found %v", matches)
	}
}
