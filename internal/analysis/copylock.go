package analysis

import (
	"go/ast"
	"go/types"
)

// CopyLockAnalyzer flags copies of values whose type transitively
// contains a synchronization primitive (sync.Mutex, sync.RWMutex,
// sync.WaitGroup, sync.Once, sync.Cond, sync.Pool, sync.Map, or
// atomic value types). A copied lock guards nothing: the copy and the
// original synchronize independently, which under -race shows up as
// intermittent corruption — in this codebase typically a sweep
// Reporter or Engine copied into a goroutine by value.
//
// Checked copy sites: function parameters, results and receivers
// declared by value; assignments from existing values (composite
// literals are fresh and fine); and range clauses that copy elements
// out of containers.
var CopyLockAnalyzer = &Analyzer{
	Name: "copylock",
	Doc:  "forbid by-value copies of lock-containing structs",
	Run:  runCopyLock,
}

// syncTypes are the primitive no-copy types.
var syncTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Pool": true, "sync.Map": true,
	"sync/atomic.Value": true, "sync/atomic.Bool": true,
	"sync/atomic.Int32": true, "sync/atomic.Int64": true,
	"sync/atomic.Uint32": true, "sync/atomic.Uint64": true,
	"sync/atomic.Uintptr": true, "sync/atomic.Pointer": true,
}

// lockPath returns a human-readable path to the first lock found
// inside t ("sweep.Reporter contains sync.Mutex"), or "".
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if syncTypes[full] {
				return full
			}
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}

func runCopyLock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				p.checkFuncSig(n)
			case *ast.AssignStmt:
				p.checkLockAssign(n)
			case *ast.RangeStmt:
				p.checkLockRange(n)
			}
			return true
		})
	}
}

// checkFuncSig flags by-value lock parameters, results and receivers.
func (p *Pass) checkFuncSig(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lp := lockPath(t); lp != "" {
				p.Reportf(field.Pos(), "%s of %s passes %s by value; use a pointer", what, fd.Name.Name, lp)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// checkLockAssign flags assignments that copy an existing lock value.
func (p *Pass) checkLockAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if isFreshValue(rhs) {
			continue
		}
		t := p.TypeOf(rhs)
		if t == nil {
			continue
		}
		if lp := lockPath(t); lp != "" {
			if ident, ok := as.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
				continue
			}
			p.Reportf(as.Pos(), "assignment copies a value containing %s; use a pointer", lp)
		}
	}
}

// checkLockRange flags range clauses whose value variable copies lock
// values out of the container.
func (p *Pass) checkLockRange(rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if ident, ok := rs.Value.(*ast.Ident); ok && ident.Name == "_" {
		return
	}
	t := p.TypeOf(rs.Value)
	if t == nil {
		return
	}
	if lp := lockPath(t); lp != "" {
		p.Reportf(rs.Pos(), "range copies elements containing %s; range over indices or pointers", lp)
	}
}

// isFreshValue reports whether e constructs a brand-new value (a
// composite literal or a conversion of one), which is safe to place
// anywhere.
func isFreshValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.ParenExpr:
		return isFreshValue(v.X)
	}
	return false
}
