// Package benchgate turns `go test -bench -benchmem` output into a
// regression gate: a committed baseline (BENCH_sweep.json at the module
// root) records ns/op, B/op and allocs/op per benchmark, and Compare
// fails when a current run regresses past the configured headroom.
//
// The two metrics are held to very different standards. allocs/op is
// near-deterministic — the same code allocates the same number of times
// — so it is gated tightly (default 10% plus an absolute slack of 2):
// an allocation creeping onto the hot path shows up as 1 -> 2, not as
// noise. ns/op varies wildly across machines and CI load, so its
// default headroom is 4x: the gate catches "accidentally quadratic",
// not a noisy neighbor.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured metrics. AllocsSet distinguishes
// "0 allocs/op" from "run without -benchmem".
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	AllocsSet   bool    `json:"allocs_set"`
}

// Baseline is the committed reference point.
type Baseline struct {
	// Note documents how the numbers were produced (machine, command),
	// for whoever re-records them.
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Limits is the allowed headroom over the baseline.
type Limits struct {
	NsRatio     float64 // current ns/op may be up to NsRatio * baseline
	AllocsRatio float64 // current allocs/op may be up to AllocsRatio * baseline...
	AllocsSlack float64 // ...plus this absolute allowance (covers 0 -> small)
}

// DefaultLimits returns the CI gate headroom.
func DefaultLimits() Limits {
	return Limits{NsRatio: 4.0, AllocsRatio: 1.10, AllocsSlack: 2}
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name     string
	Base     Result
	Current  Result
	NsRatio  float64 // current / base, 0 when base ns/op is 0
	Verdicts []string
}

// Regressed reports whether any limit was exceeded.
func (d *Delta) Regressed() bool { return len(d.Verdicts) > 0 }

// ParseBench extracts benchmark result lines from `go test -bench`
// output. Names are normalized by stripping the trailing -N GOMAXPROCS
// suffix; custom b.ReportMetric units are ignored. Duplicate names
// (e.g. the same benchmark from several -count runs) keep the last
// occurrence.
func ParseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo ... FAIL")
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		known := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				known = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.AllocsSet = true
				known = true
			}
		}
		if !known {
			continue
		}
		out[name] = res
	}
	return out, sc.Err()
}

// Compare checks every baselined benchmark against the current run.
// Benchmarks in the baseline but absent from current are reported via
// missing (the baseline is stale or the run was partial — the caller
// decides whether that fails); benchmarks only in current are ignored
// until someone baselines them.
func Compare(base *Baseline, current map[string]Result, lim Limits) (deltas []Delta, missing []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		d := Delta{Name: name, Base: b, Current: c}
		if b.NsPerOp > 0 {
			d.NsRatio = c.NsPerOp / b.NsPerOp
			if d.NsRatio > lim.NsRatio {
				d.Verdicts = append(d.Verdicts, fmt.Sprintf(
					"ns/op regressed %.2fx (%.0f -> %.0f, limit %.2fx)",
					d.NsRatio, b.NsPerOp, c.NsPerOp, lim.NsRatio))
			}
		}
		if b.AllocsSet && c.AllocsSet {
			allowed := b.AllocsPerOp*lim.AllocsRatio + lim.AllocsSlack
			if c.AllocsPerOp > allowed {
				d.Verdicts = append(d.Verdicts, fmt.Sprintf(
					"allocs/op regressed (%g -> %g, allowed %g)",
					b.AllocsPerOp, c.AllocsPerOp, allowed))
			}
		} else if b.AllocsSet && !c.AllocsSet {
			d.Verdicts = append(d.Verdicts,
				"allocs/op missing from current run: pass -benchmem")
		}
		deltas = append(deltas, d)
	}
	return deltas, missing
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]Result{}
	}
	return &b, nil
}

// Write saves a baseline file, stably ordered by json marshalling of
// the sorted map.
func Write(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Report renders the comparison as the human-readable artifact CI
// uploads: one line per benchmark, verdict lines indented under it.
func Report(deltas []Delta, missing []string) string {
	var sb strings.Builder
	for _, d := range deltas {
		status := "ok"
		if d.Regressed() {
			status = "REGRESSED"
		}
		fmt.Fprintf(&sb, "%-28s %-9s ns/op %.0f -> %.0f", d.Name, status, d.Base.NsPerOp, d.Current.NsPerOp)
		if d.Base.AllocsSet && d.Current.AllocsSet {
			fmt.Fprintf(&sb, "  allocs/op %g -> %g", d.Base.AllocsPerOp, d.Current.AllocsPerOp)
		}
		sb.WriteByte('\n')
		for _, v := range d.Verdicts {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
	}
	for _, name := range missing {
		fmt.Fprintf(&sb, "%-28s MISSING   baselined but not in this run (stale entry or partial -bench?)\n", name)
	}
	return sb.String()
}
