package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: flov
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStep 	    2000	     16110 ns/op	      55 B/op	       1 allocs/op
BenchmarkSweepSequential-8   	       2	 600103562 ns/op	        13.09 Mcyc/s	 8160952 B/op	   95690 allocs/op
BenchmarkSweepParallel-8     	       3	 400918200 ns/op	        19.33 Mcyc/s	 8163229 B/op	   95712 allocs/op
BenchmarkTable1Config-8      	  150000	      8012 ns/op
PASS
ok  	flov	4.523s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("want 4 benchmarks, got %d: %v", len(got), got)
	}
	step := got["BenchmarkStep"]
	if step.NsPerOp != 16110 || step.BytesPerOp != 55 || step.AllocsPerOp != 1 || !step.AllocsSet {
		t.Errorf("BenchmarkStep parsed wrong: %+v", step)
	}
	// The -8 GOMAXPROCS suffix is stripped; the custom Mcyc/s metric is
	// skipped without derailing the B/op and allocs/op columns after it.
	seq := got["BenchmarkSweepSequential"]
	if seq.AllocsPerOp != 95690 || seq.BytesPerOp != 8160952 {
		t.Errorf("suffix/custom-metric handling broke: %+v", seq)
	}
	// No -benchmem on Table1Config: ns/op only, AllocsSet false.
	if cfg := got["BenchmarkTable1Config"]; cfg.AllocsSet || cfg.NsPerOp != 8012 {
		t.Errorf("benchmem-less line parsed wrong: %+v", cfg)
	}
}

// base returns a two-benchmark baseline: a zero-alloc kernel and an
// allocating sweep.
func base() *Baseline {
	return &Baseline{Benchmarks: map[string]Result{
		"BenchmarkStep":  {NsPerOp: 16000, AllocsPerOp: 1, AllocsSet: true},
		"BenchmarkSweep": {NsPerOp: 1e8, AllocsPerOp: 100000, AllocsSet: true},
	}}
}

func TestCompareCatchesAllocRegression(t *testing.T) {
	current := map[string]Result{
		// +3 allocs/op on a 1-alloc baseline: past ratio 1.10 + slack 2.
		"BenchmarkStep":  {NsPerOp: 16500, AllocsPerOp: 4, AllocsSet: true},
		"BenchmarkSweep": {NsPerOp: 1.2e8, AllocsPerOp: 100100, AllocsSet: true},
	}
	deltas, missing := Compare(base(), current, DefaultLimits())
	if len(missing) != 0 {
		t.Fatalf("nothing should be missing: %v", missing)
	}
	if len(deltas) != 2 {
		t.Fatalf("want 2 deltas, got %d", len(deltas))
	}
	var step, sweep *Delta
	for i := range deltas {
		switch deltas[i].Name {
		case "BenchmarkStep":
			step = &deltas[i]
		case "BenchmarkSweep":
			sweep = &deltas[i]
		}
	}
	if !step.Regressed() || !strings.Contains(step.Verdicts[0], "allocs/op regressed") {
		t.Errorf("1 -> 4 allocs/op must regress, got %+v", step.Verdicts)
	}
	// 100000 -> 100100 is within the 10% ratio; 1.2x ns/op is within 4x.
	if sweep.Regressed() {
		t.Errorf("sweep within headroom should pass, got %+v", sweep.Verdicts)
	}
}

func TestCompareCatchesTimeRegression(t *testing.T) {
	current := map[string]Result{
		"BenchmarkStep":  {NsPerOp: 16000 * 5, AllocsPerOp: 1, AllocsSet: true},
		"BenchmarkSweep": {NsPerOp: 1e8, AllocsPerOp: 100000, AllocsSet: true},
	}
	deltas, _ := Compare(base(), current, DefaultLimits())
	for _, d := range deltas {
		if d.Name == "BenchmarkStep" {
			if !d.Regressed() || !strings.Contains(d.Verdicts[0], "ns/op regressed") {
				t.Fatalf("5x ns/op must regress past the 4x limit, got %+v", d.Verdicts)
			}
			return
		}
	}
	t.Fatal("BenchmarkStep delta missing")
}

func TestCompareImprovementAndMissing(t *testing.T) {
	current := map[string]Result{
		// Faster and leaner: never a failure.
		"BenchmarkStep": {NsPerOp: 9000, AllocsPerOp: 0, AllocsSet: true},
		// A benchmark not in the baseline is ignored.
		"BenchmarkNew": {NsPerOp: 5, AllocsPerOp: 0, AllocsSet: true},
	}
	deltas, missing := Compare(base(), current, DefaultLimits())
	for _, d := range deltas {
		if d.Regressed() {
			t.Errorf("improvement flagged as regression: %+v", d)
		}
	}
	if len(missing) != 1 || missing[0] != "BenchmarkSweep" {
		t.Errorf("want BenchmarkSweep reported missing, got %v", missing)
	}
}

func TestCompareDemandsBenchmem(t *testing.T) {
	current := map[string]Result{
		"BenchmarkStep":  {NsPerOp: 16000},
		"BenchmarkSweep": {NsPerOp: 1e8},
	}
	deltas, _ := Compare(base(), current, DefaultLimits())
	for _, d := range deltas {
		if !d.Regressed() || !strings.Contains(d.Verdicts[0], "-benchmem") {
			t.Errorf("baselined allocs with no current allocs must fail, got %+v", d.Verdicts)
		}
	}
}

func TestBaselineRoundTripAndReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	want := base()
	want.Note = "recorded on CI runner X"
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != want.Note || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", got)
	}
	if got.Benchmarks["BenchmarkStep"] != want.Benchmarks["BenchmarkStep"] {
		t.Errorf("result mangled: %+v", got.Benchmarks["BenchmarkStep"])
	}

	deltas, missing := Compare(got, map[string]Result{
		"BenchmarkStep": {NsPerOp: 16000, AllocsPerOp: 10, AllocsSet: true},
	}, DefaultLimits())
	out := Report(deltas, missing)
	for _, want := range []string{"REGRESSED", "allocs/op regressed (1 -> 10", "BenchmarkSweep", "MISSING"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := Write(path, base()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing baseline should error (the gate must not silently pass)")
	}
}
