// Package analysis implements flovlint: a small static-analysis suite,
// built purely on the standard library's go/parser, go/ast and go/types
// packages, that enforces the coding rules the simulator's determinism
// guarantees rest on.
//
// The sweep engine's content-addressed result cache and the equivalence
// tests assume that identical Job specs always produce bit-identical
// rows. That property holds only if simulation code draws randomness
// exclusively from the seeded sim.RNG, never reads the wall clock,
// never lets map-iteration order leak into results, and never compares
// latency/energy floats with ==. Each analyzer in this package checks
// one of those rules mechanically; cmd/flovlint wires them into a CI
// gate.
//
// Diagnostics can be suppressed for one line with a trailing or
// preceding comment of the form:
//
//	//flovlint:allow <rule>[,<rule>...] [-- reason]
//
// Suppressions are for code that is legitimately exempt (for example a
// CLI that reports wall-clock runtime); they should always carry a
// reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Path   string // import path of the package under analysis
	Module string // module path ("flov")

	rule    string
	diags   *[]Diagnostic
	allowed map[allowKey]bool
}

type allowKey struct {
	file string
	line int
	rule string
}

// Reportf records a diagnostic at pos unless a suppression comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	reportf(p.Fset, p.allowed, p.diags, p.rule, pos, format, args...)
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// InModule reports whether path lies inside the analyzed module.
func (p *Pass) InModule(path string) bool {
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}

// Analyzers returns the full per-package flovlint analyzer set. The
// module-wide set is ModuleAnalyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondetAnalyzer,
		MapRangeAnalyzer,
		FloatCmpAnalyzer,
		CopyLockAnalyzer,
		ErrCheckAnalyzer,
		ExhaustiveAnalyzer,
		LockSafeAnalyzer,
	}
}

// RunPackage runs the given analyzers over one loaded package and
// returns its diagnostics sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allowed := collectSuppressions(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:    pkg.Fset,
			Files:   pkg.Files,
			Pkg:     pkg.Types,
			Info:    pkg.Info,
			Path:    pkg.Path,
			Module:  pkg.Module,
			rule:    a.Name,
			diags:   &diags,
			allowed: allowed,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by position, then rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// collectSuppressions indexes //flovlint:allow comments. A suppression
// covers its own line (trailing comment) and the line below it
// (comment on the preceding line).
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//flovlint:allow")
				if !ok {
					continue
				}
				if reason := strings.SplitN(text, "--", 2); len(reason) > 0 {
					text = reason[0]
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Split(text, ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					allowed[allowKey{pos.Filename, pos.Line, rule}] = true
					allowed[allowKey{pos.Filename, pos.Line + 1, rule}] = true
				}
			}
		}
	}
	return allowed
}
