package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatecovAnalyzer proves the checkpoint subsystem's completeness
// contract: every field of every struct reachable from the snapshot
// roots is either round-tripped by a CaptureState/RestoreState pair (or
// one of the capture helpers they call, down to the reflection codec's
// plain-data state structs) or carries an explicit exemption. A field
// added to live simulation state without touching the snapshot layer
// would silently desynchronize restored runs — exactly the class of bug
// byte-identical resume cannot tolerate — so it becomes a lint error
// naming the owning type and field.
//
// Mechanics. The analyzer auto-discovers the snapshot roots: every
// module struct type with a CaptureState or RestoreState method
// (network.Network, the router/NI, the FLOV and RP mechanisms, the
// trace driver, the stats/power/fault state holders). It then walks the
// call graph from those methods — plus every function that calls one,
// which pulls in package snapshot's channel walkers — and records every
// struct field the closure touches (selector reads/writes and composite-
// literal keys both count). Finally it walks the type graph: from each
// root, through every covered field, into pointer/slice/array/map
// element types, checking each module struct it reaches. A field never
// touched by the capture/restore closure is reported at its declaration.
//
// Exemptions use a dedicated comment, on the field's line or the line
// above:
//
//	//flovsnap:skip <reason>
//
// The reason is mandatory (a skip without one is itself a finding): the
// point of the comment is an auditable record of why a field does not
// need to survive a restore (immutable configuration, wiring rebuilt by
// New, state re-derived from captured fields). A skip on a type
// declaration exempts the whole type and stops the type-graph walk from
// descending into it.
var StatecovAnalyzer = &ModuleAnalyzer{
	Name: "statecov",
	Doc:  "prove every snapshot-reachable struct field is captured/restored or //flovsnap:skip'd",
	Run:  runStatecov,
}

// skipMarker is the exemption comment prefix (the space matters: the
// reason follows it).
const skipMarker = "//flovsnap:skip"

const (
	captureName = "CaptureState"
	restoreName = "RestoreState"
)

// skipEntry is one parsed //flovsnap:skip comment.
type skipEntry struct {
	reason string
	pos    token.Pos
}

// snapRoot tracks which half of the capture/restore pair a root type
// declares.
type snapRoot struct {
	named   *types.Named
	capture bool
	restore bool
}

func runStatecov(p *ModulePass) {
	m := p.Module
	graph := m.Graph()

	skips := collectSkips(m)
	roots := findSnapRoots(m)
	if len(roots) == 0 {
		return // nothing snapshot-shaped in this load set
	}

	covered := coveredFields(m, graph)

	// Missing-half findings: a capture without a restore (or vice versa)
	// means the type round-trips in one direction only.
	for _, r := range roots {
		switch {
		case r.capture && !r.restore:
			p.Reportf(r.named.Obj().Pos(), "type %s has %s but no %s: snapshots of it cannot be applied",
				r.named.Obj().Name(), captureName, restoreName)
		case r.restore && !r.capture:
			p.Reportf(r.named.Obj().Pos(), "type %s has %s but no %s: nothing produces its snapshots",
				r.named.Obj().Name(), restoreName, captureName)
		}
	}

	// Type-graph walk from the roots through covered fields.
	seen := make(map[*types.Named]bool)
	var queue []*types.Named
	enqueue := func(n *types.Named) {
		n = n.Origin()
		if !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for _, r := range roots {
		enqueue(r.named)
	}

	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]

		if sk, ok := skipAt(m.Fset, skips, named.Obj().Pos()); ok {
			if sk.reason == "" {
				p.Reportf(sk.pos, "%s on type %s needs a reason", skipMarker, named.Obj().Name())
			}
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		typeName := named.Obj().Name()
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if sk, ok := skipAt(m.Fset, skips, f.Pos()); ok {
				if sk.reason == "" {
					p.Reportf(sk.pos, "%s on field %s.%s needs a reason", skipMarker, typeName, f.Name())
				}
				continue
			}
			if !covered[posKey(m.Fset, f.Pos())] {
				p.Reportf(f.Pos(),
					"field %s.%s is not touched by any %s/%s path: capture it or mark it %s <reason>",
					typeName, f.Name(), captureName, restoreName, skipMarker)
				continue
			}
			for _, elem := range elementTypes(f.Type()) {
				if en, ok := moduleStruct(p, elem); ok {
					enqueue(en)
				}
			}
		}
	}
}

// findSnapRoots lists every package-scope module struct type declaring a
// CaptureState or RestoreState method, in deterministic package/name
// order.
func findSnapRoots(m *Module) []snapRoot {
	var roots []snapRoot
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				continue
			}
			r := snapRoot{named: named}
			for i := 0; i < named.NumMethods(); i++ {
				switch named.Method(i).Name() {
				case captureName:
					r.capture = true
				case restoreName:
					r.restore = true
				}
			}
			if r.capture || r.restore {
				roots = append(roots, r)
			}
		}
	}
	return roots
}

// coveredFields walks the capture/restore closure — every CaptureState/
// RestoreState method, every function that directly calls one, and
// everything transitively reachable from those — and returns the set of
// struct fields the closure mentions, keyed by declaration position
// (position identity survives generic instantiation, object identity
// does not).
func coveredFields(m *Module, graph *CallGraph) map[string]bool {
	isPair := func(fn *types.Func) bool {
		return fn.Name() == captureName || fn.Name() == restoreName
	}
	var closure []*FuncNode
	visited := make(map[*FuncNode]bool)
	enqueue := func(n *FuncNode) {
		if !visited[n] {
			visited[n] = true
			closure = append(closure, n)
		}
	}
	for _, n := range graph.Nodes() {
		if isPair(n.Fn) {
			enqueue(n)
			continue
		}
		for _, e := range n.Callees {
			if isPair(e.Callee.Fn) {
				enqueue(n)
				break
			}
		}
	}
	for i := 0; i < len(closure); i++ {
		for _, e := range closure[i].Callees {
			enqueue(e.Callee)
		}
	}

	covered := make(map[string]bool)
	for _, n := range closure {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
				covered[posKey(m.Fset, v.Pos())] = true
			}
			return true
		})
	}
	return covered
}

// collectSkips indexes //flovsnap:skip comments by file and line; like
// //flovlint:allow, a skip covers its own line (trailing comment) and
// the line below (comment above the declaration).
func collectSkips(m *Module) map[string]map[int]skipEntry {
	return collectMarkerComments(m, skipMarker)
}

// skipAt looks up a //flovsnap:skip entry covering the given position.
func skipAt(fset *token.FileSet, skips map[string]map[int]skipEntry, pos token.Pos) (skipEntry, bool) {
	position := fset.Position(pos)
	e, ok := skips[position.Filename][position.Line]
	return e, ok
}

// posKey renders a declaration position as a map key.
func posKey(fset *token.FileSet, pos token.Pos) string {
	return fset.Position(pos).String()
}

// elementTypes strips containers: the element types the type-graph walk
// descends through for a field of type t.
func elementTypes(t types.Type) []types.Type {
	switch t := t.(type) {
	case *types.Pointer:
		return elementTypes(t.Elem())
	case *types.Slice:
		return elementTypes(t.Elem())
	case *types.Array:
		return elementTypes(t.Elem())
	case *types.Chan:
		return elementTypes(t.Elem())
	case *types.Map:
		return append(elementTypes(t.Key()), elementTypes(t.Elem())...)
	default:
		return []types.Type{t}
	}
}

// moduleStruct reports whether t is a named struct type declared in the
// analyzed module, returning its origin.
func moduleStruct(p *ModulePass, t types.Type) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	path := obj.Pkg().Path()
	if path != p.Module.Path && !strings.HasPrefix(path, p.Module.Path+"/") {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	return named.Origin(), true
}
