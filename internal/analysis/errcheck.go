package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckAnalyzer flags calls whose error result is silently
// discarded. A sweep that cannot write its output file, an encoder
// that fails mid-row, or a cache write that never lands must surface —
// a silently dropped error turns into a truncated CSV that looks like
// a simulation result.
//
// Two discard forms are treated differently:
//
//   - assignments whose left-hand side is entirely blank (`_ = f()`,
//     `_, _ = g()`) are allowed: they are deliberate, visible and
//     greppable;
//   - a call used as a bare statement, a deferred/spawned call, or a
//     mixed assignment like `n, _ := f()` silently continues with the
//     error gone, and is flagged.
//
// Calls that cannot fail or are terminal-chatter by convention are
// allowlisted: fmt printing to stdout, fmt.Fprint* to os.Stdout,
// os.Stderr, strings.Builder or bytes.Buffer, and methods on those two
// builder types.
var ErrCheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid silently discarded error results",
	Run:  runErrCheck,
}

// ignorableFuncs never need their error checked.
var ignorableFuncs = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// ignorableRecvTypes are receiver types whose methods cannot fail.
var ignorableRecvTypes = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
	"strings.Builder":  true,
	"bytes.Buffer":     true,
}

// fprintFuncs take an io.Writer first argument; they are ignorable
// when that writer is ignorable.
var fprintFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.checkDiscardedCall(call, "result of")
				}
			case *ast.DeferStmt:
				p.checkDiscardedCall(n.Call, "deferred")
			case *ast.GoStmt:
				p.checkDiscardedCall(n.Call, "spawned")
			case *ast.AssignStmt:
				p.checkBlankErrAssign(n)
			}
			return true
		})
	}
}

// checkDiscardedCall flags a call statement that drops an error result.
func (p *Pass) checkDiscardedCall(call *ast.CallExpr, how string) {
	if !p.hasErrorResult(call) || p.errIgnorable(call) {
		return
	}
	p.Reportf(call.Pos(), "%s %s discards its error; handle it or assign it to _ explicitly", how, callDesc(p, call))
}

// checkBlankErrAssign flags mixed assignments that keep data results
// but blank the error.
func (p *Pass) checkBlankErrAssign(as *ast.AssignStmt) {
	allBlank := true
	for _, lhs := range as.Lhs {
		if ident, ok := lhs.(*ast.Ident); !ok || ident.Name != "_" {
			allBlank = false
			break
		}
	}
	if allBlank {
		return // explicit, visible discard
	}
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || p.errIgnorable(call) {
		return
	}
	results := p.resultTypes(call)
	if len(results) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok || ident.Name != "_" || !isErrorType(results[i]) {
			continue
		}
		p.Reportf(lhs.Pos(), "error result of %s blanked while keeping the data results; check it", callDesc(p, call))
	}
}

// resultTypes returns the result types of a call (nil for conversions
// and calls with no results).
func (p *Pass) resultTypes(call *ast.CallExpr) []types.Type {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil // conversion, not a call
	}
	rt := p.Info.TypeOf(call)
	switch t := rt.(type) {
	case nil:
		return nil
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// hasErrorResult reports whether the call returns at least one error.
func (p *Pass) hasErrorResult(call *ast.CallExpr) bool {
	for _, t := range p.resultTypes(call) {
		if isErrorType(t) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errIgnorable reports whether the callee is on the cannot-fail /
// terminal-chatter allowlist.
func (p *Pass) errIgnorable(call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	if ignorableFuncs[name] {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if ignorableRecvTypes[sig.Recv().Type().String()] {
			return true
		}
	}
	if fprintFuncs[name] && len(call.Args) > 0 {
		return p.ignorableWriter(call.Args[0])
	}
	return false
}

// ignorableWriter reports whether an io.Writer argument cannot fail in
// a way worth handling: the process's own terminal streams, or the
// never-failing in-memory builders.
func (p *Pass) ignorableWriter(arg ast.Expr) bool {
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if pkgPath, ok := selectorPackage(p, sel); ok && pkgPath == "os" &&
			(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
			return true
		}
	}
	if t := p.TypeOf(arg); t != nil {
		switch t.String() {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	return false
}

// calleeFunc resolves the called *types.Func, or nil for builtins,
// conversions and indirect calls through function values.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callDesc names a call for diagnostics.
func callDesc(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}
