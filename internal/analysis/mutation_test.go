package analysis

import (
	"testing"
)

// purityNode resolves one fixture function in the module's call graph.
func purityNode(t *testing.T, m *Module, recv, fn string) *FuncNode {
	t.Helper()
	n := findRoot(m.Graph(), RootSpec{Pkg: "flov/internal/purefix", Recv: recv, Func: fn})
	if n == nil {
		t.Fatalf("%s.%s not in call graph", recv, fn)
	}
	return n
}

// summaryKeys renders a propagated summary's write set as allowlist
// keys.
func summaryKeys(s *Summary) map[string]bool {
	keys := make(map[string]bool, len(s.Writes))
	for loc := range s.Writes {
		keys[loc.Key()] = true
	}
	return keys
}

// TestMutationSummaryParamWrites pins the context-dependent half of a
// summary: a write through a pointer parameter is recorded against the
// parameter index, not as a concrete location.
func TestMutationSummaryParamWrites(t *testing.T) {
	m, _ := loadPurityModule(t)
	sums := NewSummaries(m, nil)

	scribble := sums.Of(purityNode(t, m, "", "scribble"))
	if scribble == nil {
		t.Fatal("no summary for scribble")
	}
	if len(scribble.Writes) != 0 {
		t.Errorf("scribble has no concrete writes, got %v", scribble.Writes)
	}
	if _, ok := scribble.ParamWrites[0]; !ok {
		t.Errorf("scribble must record a write through parameter 0, got %v", scribble.ParamWrites)
	}

	// Receivers are type-keyed, never parameters: TickShared's only
	// parameter write is through out (index 0), and its receiver field
	// write lands in Writes.
	shared := sums.Of(purityNode(t, m, "Machine", "TickShared"))
	if _, ok := shared.ParamWrites[0]; !ok {
		t.Errorf("TickShared must record a write through parameter 0, got %v", shared.ParamWrites)
	}
}

// TestMutationSummaryPropagation checks bottom-up propagation: the
// TickSleep summary must contain every location its transitive callees
// can write, resolved through pointer params, interface dispatch and
// closure capture.
func TestMutationSummaryPropagation(t *testing.T) {
	m, _ := loadPurityModule(t)
	sums := NewSummaries(m, nil)
	keys := summaryKeys(sums.Of(purityNode(t, m, "Machine", "TickSleep")))

	for _, want := range []string{
		"flov/internal/purefix.Machine.ticks", // direct receiver field
		"flov/internal/purefix.Counter.N",     // through the shared pointer
		"flov/internal/purefix.Counter.ByKey", // map element write
		"flov/internal/purefix.Global",        // package-level state
		"flov/internal/purefix.Impl.hits",     // via interface dispatch
		"flov/internal/purefix.Hidden",        // via wake, not excluded here
		"flov/internal/purefix.Counter.*",     // bump's param write at the call site
	} {
		if !keys[want] {
			t.Errorf("TickSleep summary missing %s; have %v", want, keys)
		}
	}
}

// TestMutationSummaryExclusion checks that excluding the wake boundary
// keeps its writes out of every summary that reaches it.
func TestMutationSummaryExclusion(t *testing.T) {
	m, _ := loadPurityModule(t)
	wake := purityNode(t, m, "Machine", "wake")
	sums := NewSummaries(m, map[*FuncNode]bool{wake: true})

	keys := summaryKeys(sums.Of(purityNode(t, m, "Machine", "TickSleep")))
	if keys["flov/internal/purefix.Hidden"] {
		t.Error("excluded boundary write leaked into TickSleep's summary")
	}
	if !keys["flov/internal/purefix.Counter.N"] {
		t.Error("exclusion must not drop unrelated writes")
	}
	// The boundary's own summary still exists; only edges into it are
	// cut.
	if !summaryKeys(sums.Of(wake))["flov/internal/purefix.Hidden"] {
		t.Error("wake's own summary must keep its write")
	}
}

// TestLocKeyAndString pins the two renderings the allowlist and the
// diagnostics depend on.
func TestLocKeyAndString(t *testing.T) {
	f := Loc{Kind: LocField, Pkg: "flov/internal/core", Type: "flovRouter", Field: "latch"}
	if f.Key() != "flov/internal/core.flovRouter.latch" {
		t.Errorf("field key = %s", f.Key())
	}
	if f.String() != "core.flovRouter.latch" {
		t.Errorf("field string = %s", f.String())
	}
	g := Loc{Kind: LocGlobal, Pkg: "flov/internal/purefix", Field: "Global"}
	if g.Key() != "flov/internal/purefix.Global" {
		t.Errorf("global key = %s", g.Key())
	}
	d := Loc{Kind: LocDeref, Desc: "write through escaping pointer"}
	if d.Key() != d.Desc || d.String() != d.Desc {
		t.Errorf("deref key/string = %s / %s", d.Key(), d.String())
	}
}
