package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural mutation-summary engine: for every
// function in the module call graph it computes a conservative summary
// of what the function can write when called — named-type fields
// (transitively through pointers, slices, maps and arrays), its own
// parameters, package-level variables, and "unknown" buckets for writes
// the field-sensitive resolution cannot place (escaping pointers,
// dynamic function values, calls out of the module). Summaries are
// propagated bottom-up over strongly connected components of the call
// graph, with the same closed-world interface dispatch the graph itself
// uses, so a root's summary covers everything reachable from it.
//
// The design splits each function into two halves:
//
//   - context-independent effects: writes whose target resolves to a
//     type-keyed field (any write to power.Ledger.dynPJ is one Loc, no
//     matter which Ledger), a package-level variable, or an unknown.
//     These merge wholesale along call edges — including bare reference
//     edges, so a callback stored in a field still contributes its
//     writes to whoever mentions it.
//   - context-dependent effects: writes through a parameter and calls
//     of a func-typed parameter. These are resolved per call site by
//     substituting the caller's argument roots, one edge at a time;
//     what cannot be resolved (a reference edge has no argument list)
//     degrades to an unknown write.
//
// Approximations, all on the conservative side except where noted:
// writes into value-typed locals and parameters are pure (Go copy
// semantics); writes through slice/map values track the backing store
// to wherever the value was read from; pointers laundered through
// composite-literal elements and writes through unnamed-struct pointers
// obtained from calls degrade to type-keyed or unknown locations;
// external (stdlib) calls are unknown unless on a small known-pure
// list, and external method calls are modelled as mutating their
// receiver. Cold regions — panic arguments and assert-gated debug
// blocks — are excluded, matching hotalloc: code that only runs while
// crashing or under flovdebug is not part of a purity obligation.

// LocKind classifies a mutation location.
type LocKind int

const (
	// LocField is a type-keyed field write: any write to Field of any
	// value of the named type Pkg.Type. Field "*" covers whole-value
	// writes (*p = T{...}) and element writes of named container types.
	LocField LocKind = iota
	// LocGlobal is a write to a package-level variable.
	LocGlobal
	// LocDeref is a write through a pointer the engine could not root.
	LocDeref
	// LocDynamic is a call through a function value with no static
	// target (a func-typed field, an unknown func value).
	LocDynamic
	// LocExternal is a call leaving the module that is not on the
	// known-pure list and so may write anything.
	LocExternal
)

// Loc is one mutation location. It is comparable: summaries are sets of
// Locs, and the purity allowlist matches on Key.
type Loc struct {
	Kind  LocKind
	Pkg   string // declaring package import path (LocField, LocGlobal)
	Type  string // named type (LocField)
	Field string // field name or "*" (LocField); variable name (LocGlobal)
	Desc  string // human description (LocDeref, LocDynamic, LocExternal)
}

// Key renders the loc in the fully-qualified form the purity allowlist
// matches against: "pkg/path.Type.Field" or "pkg/path.Var".
func (l Loc) Key() string {
	switch l.Kind {
	case LocField:
		return l.Pkg + "." + l.Type + "." + l.Field
	case LocGlobal:
		return l.Pkg + "." + l.Field
	default:
		return l.Desc
	}
}

// String renders the loc for diagnostics, with the package shortened to
// its base name the way reach chains are.
func (l Loc) String() string {
	switch l.Kind {
	case LocField:
		return shortPkg(l.Pkg) + "." + l.Type + "." + l.Field
	case LocGlobal:
		return shortPkg(l.Pkg) + "." + l.Field
	default:
		return l.Desc
	}
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Summary is the propagated mutation summary of one function: every
// location it can write when called, plus the context-dependent halves
// its callers must resolve — writes through its parameters and calls of
// its func-typed parameters (parameter indices follow Signature.Params;
// receivers are always type-keyed, never parameters).
type Summary struct {
	Writes      map[Loc]token.Pos
	ParamWrites map[int]token.Pos
	CallsParam  map[int]token.Pos
}

func newSummary() *Summary {
	return &Summary{
		Writes:      make(map[Loc]token.Pos),
		ParamWrites: make(map[int]token.Pos),
		CallsParam:  make(map[int]token.Pos),
	}
}

// Summaries holds the propagated mutation summaries for a module.
type Summaries struct {
	graph *CallGraph
	fx    map[*FuncNode]*funcEffects
	sums  map[*FuncNode]*Summary
	// excluded edges are not propagated: the purity analyzer excludes
	// its declared boundary functions so wake-event transitions do not
	// leak into the quiescent branch's obligation.
	excluded map[*FuncNode]bool
}

// NewSummaries builds per-function mutation summaries for the module,
// propagated bottom-up over call-graph SCCs. Edges into excluded nodes
// (may be nil) contribute nothing.
func NewSummaries(m *Module, excluded map[*FuncNode]bool) *Summaries {
	graph := m.Graph()
	s := &Summaries{
		graph:    graph,
		fx:       make(map[*FuncNode]*funcEffects),
		sums:     make(map[*FuncNode]*Summary),
		excluded: excluded,
	}
	for _, n := range graph.Nodes() {
		s.fx[n] = buildEffects(m, graph, n)
	}
	s.propagate()
	return s
}

// Of returns the propagated summary for n, or nil if n is not in the
// graph.
func (s *Summaries) Of(n *FuncNode) *Summary { return s.sums[n] }

// Effects returns n's direct (pre-propagation) effects; the purity walk
// uses them to report writes at their own positions.
func (s *Summaries) effects(n *FuncNode) *funcEffects { return s.fx[n] }

// propagate runs the bottom-up fixpoint. Tarjan emits SCCs callees
// first, so by the time an SCC is processed every summary it depends on
// outside itself is final.
func (s *Summaries) propagate() {
	for _, scc := range sccOrder(s.graph.Nodes()) {
		for _, n := range scc {
			s.sums[n] = s.directSummary(n)
		}
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if s.mergeCallees(n) {
					changed = true
				}
			}
		}
	}
}

// directSummary seeds a node's summary from its own body's effects.
func (s *Summaries) directSummary(n *FuncNode) *Summary {
	sum := newSummary()
	fx := s.fx[n]
	if fx == nil {
		return sum
	}
	for _, w := range fx.writes {
		if _, ok := sum.Writes[w.loc]; !ok {
			sum.Writes[w.loc] = w.pos
		}
	}
	for i, poss := range fx.paramWrites {
		sum.ParamWrites[i] = poss[0]
	}
	for i, poss := range fx.callsParam {
		sum.CallsParam[i] = poss[0]
	}
	return sum
}

// mergeCallees folds every callee's summary into n's, resolving the
// context-dependent parts at each call site. Reports whether n's
// summary grew.
func (s *Summaries) mergeCallees(n *FuncNode) bool {
	sum := s.sums[n]
	before := len(sum.Writes) + len(sum.ParamWrites) + len(sum.CallsParam)
	fx := s.fx[n]
	for _, e := range n.Callees {
		if s.excluded[e.Callee] {
			continue
		}
		if fx != nil && fx.cold.inCold(e.Pos) {
			continue
		}
		cal := s.sums[e.Callee]
		if cal == nil {
			continue
		}
		for loc := range cal.Writes {
			if _, ok := sum.Writes[loc]; !ok {
				sum.Writes[loc] = e.Pos
			}
		}
		for _, eff := range s.substEdge(n, e) {
			if eff.param >= 0 {
				if _, ok := sum.ParamWrites[eff.param]; !ok {
					sum.ParamWrites[eff.param] = e.Pos
				}
			} else if eff.callsParam >= 0 {
				if _, ok := sum.CallsParam[eff.callsParam]; !ok {
					sum.CallsParam[eff.callsParam] = e.Pos
				}
			} else if _, ok := sum.Writes[eff.loc]; !ok {
				sum.Writes[eff.loc] = e.Pos
			}
		}
	}
	return len(sum.Writes)+len(sum.ParamWrites)+len(sum.CallsParam) > before
}

// edgeEffect is one effect a call edge induces in the caller after
// substituting argument roots into the callee's summary. Exactly one of
// loc / param / callsParam is meaningful: param and callsParam are -1
// unless the effect escalates to one of the caller's own parameters.
type edgeEffect struct {
	loc        Loc
	param      int
	callsParam int
}

func locEffect(loc Loc) edgeEffect { return edgeEffect{loc: loc, param: -1, callsParam: -1} }

// substEdge resolves the context-dependent half of the callee's summary
// (ParamWrites, CallsParam) against the caller's argument roots at this
// edge. Reference edges carry no argument list, so anything
// context-dependent degrades to an unknown.
func (s *Summaries) substEdge(n *FuncNode, e CallEdge) []edgeEffect {
	cal := s.sums[e.Callee]
	if cal == nil || len(cal.ParamWrites)+len(cal.CallsParam) == 0 {
		return nil
	}
	fx := s.fx[n]
	var site [][]argRoot
	haveSite := false
	if fx != nil {
		site, haveSite = fx.sites[e.Pos]
	}
	calleeName := funcDisplay(e.Callee.Fn)
	var out []edgeEffect
	unknown := func(what string) {
		out = append(out, locEffect(Loc{Kind: LocDeref, Desc: what + " escapes through " + calleeName}))
	}
	for _, i := range sortedParamIndexes(cal.ParamWrites) {
		if !haveSite || i >= len(site) {
			unknown("a parameter write")
			continue
		}
		for _, r := range site[i] {
			switch r.kind {
			case arPure:
			case arLoc:
				out = append(out, locEffect(r.loc))
			case arParam:
				out = append(out, edgeEffect{param: r.param, callsParam: -1})
			default:
				unknown("a parameter write")
			}
		}
	}
	for _, i := range sortedParamIndexes(cal.CallsParam) {
		if !haveSite || i >= len(site) {
			out = append(out, locEffect(Loc{Kind: LocDynamic, Desc: "dynamic call of a function value passed to " + calleeName}))
			continue
		}
		for _, r := range site[i] {
			switch r.kind {
			case arPure, arFuncLit:
				// Literal arguments' bodies are attributed to the caller
				// already; a pure root cannot carry a live func value.
			case arFunc:
				// A named function's body is covered by the reference
				// edge its mention created; only its own parameter writes
				// are unresolvable from here.
				if t := s.nodeFor(r.fn); t != nil {
					if ts := s.sums[t]; ts != nil && len(ts.ParamWrites) > 0 {
						unknown("a parameter write")
					}
				}
			case arParam:
				out = append(out, edgeEffect{param: -1, callsParam: r.param})
			default:
				out = append(out, locEffect(Loc{Kind: LocDynamic, Desc: "dynamic call of a function value passed to " + calleeName}))
			}
		}
	}
	return out
}

// sortedParamIndexes returns the map's keys in increasing order, so
// per-edge substitution emits effects deterministically.
func sortedParamIndexes(m map[int]token.Pos) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func (s *Summaries) nodeFor(fn *types.Func) *FuncNode {
	if n := s.graph.Node(fn); n != nil {
		return n
	}
	return s.graph.Node(fn.Origin())
}

// sccOrder returns the strongly connected components of the call graph
// in dependency order (callees before callers), via Tarjan's algorithm
// with an explicit stack.
func sccOrder(nodes []*FuncNode) [][]*FuncNode {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*FuncNode]*state, len(nodes))
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	type frame struct {
		n    *FuncNode
		edge int
	}
	for _, root := range nodes {
		if states[root] != nil {
			continue
		}
		frames := []frame{{n: root}}
		states[root] = &state{index: next, lowlink: next}
		next++
		stack = append(stack, root)
		states[root].onStack = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			st := states[f.n]
			if f.edge < len(f.n.Callees) {
				c := f.n.Callees[f.edge].Callee
				f.edge++
				cs := states[c]
				if cs == nil {
					states[c] = &state{index: next, lowlink: next, onStack: true}
					next++
					stack = append(stack, c)
					frames = append(frames, frame{n: c})
				} else if cs.onStack {
					if cs.index < st.lowlink {
						st.lowlink = cs.index
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				ps := states[frames[len(frames)-1].n]
				if st.lowlink < ps.lowlink {
					ps.lowlink = st.lowlink
				}
			}
			if st.lowlink == st.index {
				var scc []*FuncNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[m].onStack = false
					scc = append(scc, m)
					if m == f.n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// ---- per-function direct effects ----

// writeEffect is one direct write with its source position.
type writeEffect struct {
	pos token.Pos
	loc Loc
}

// funcEffects is the context-sensitive raw material of one function
// body, before propagation.
type funcEffects struct {
	writes      []writeEffect
	paramWrites map[int][]token.Pos
	callsParam  map[int][]token.Pos
	// sites maps a call position to the argument roots at that call,
	// indexed by callee parameter; missing entries are reference edges.
	sites map[token.Pos][][]argRoot
	cold  *allocContext
}

// Argument/value root kinds.
const (
	arPure    = iota // fresh or copied memory: writes through it stay local
	arLoc            // rooted at a Loc
	arParam          // rooted at the enclosing function's parameter
	arFunc           // a named function or method value
	arFuncLit        // a function literal (body attributed to the caller)
	arUnknown        // escaping / untrackable
)

type argRoot struct {
	kind  int
	param int
	loc   Loc
	fn    *types.Func
}

type effectsBuilder struct {
	module *Module
	graph  *CallGraph
	node   *FuncNode
	info   *types.Info
	fx     *funcEffects

	recv       *types.Var
	recvNamed  *types.Named
	recvByPtr  bool
	params     map[*types.Var]int
	litParams  map[*types.Var]bool
	bindings   map[*types.Var][]binding
	resolving  map[*types.Var]bool
	writesSeen map[writeEffect]bool
}

// binding records one reaching definition of a local variable: the
// bound expression, or — for range bindings — the ranged-over container
// (whose backing the element values came from).
type binding struct {
	expr ast.Expr
}

// buildEffects scans one declared function body (closures included,
// attributed to the declaration like the call graph does) into its
// direct effects.
func buildEffects(m *Module, graph *CallGraph, n *FuncNode) *funcEffects {
	if n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	b := &effectsBuilder{
		module: m,
		graph:  graph,
		node:   n,
		info:   n.Pkg.Info,
		fx: &funcEffects{
			paramWrites: make(map[int][]token.Pos),
			callsParam:  make(map[int][]token.Pos),
			sites:       make(map[token.Pos][][]argRoot),
			cold:        newAllocContext(n.Pkg.Info, n.Decl.Body),
		},
		params:     make(map[*types.Var]int),
		litParams:  make(map[*types.Var]bool),
		bindings:   make(map[*types.Var][]binding),
		resolving:  make(map[*types.Var]bool),
		writesSeen: make(map[writeEffect]bool),
	}
	b.collectParams()
	b.collectBindings(n.Decl.Body)
	b.scan(n.Decl.Body)
	return b.fx
}

// collectParams indexes the declaration's receiver and parameters and
// the parameters of every closure in the body (whose values come from
// whoever invokes the closure, so shared writes through them are
// unknown).
func (b *effectsBuilder) collectParams() {
	decl := b.node.Decl
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		if v, ok := b.info.Defs[decl.Recv.List[0].Names[0]].(*types.Var); ok {
			b.recv = v
			t := v.Type()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				b.recvByPtr = true
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				b.recvNamed = named.Origin()
			}
		}
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if v, ok := b.info.Defs[name].(*types.Var); ok {
				b.params[v] = i
			}
			i++
		}
	}
	for _, lit := range funcLitsOf(decl.Body) {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := b.info.Defs[name].(*types.Var); ok {
					b.litParams[v] = true
				}
			}
		}
	}
}

// collectBindings records reaching definitions for local variables so
// value-chain resolution can follow aliases of shared backing stores.
func (b *effectsBuilder) collectBindings(body *ast.BlockStmt) {
	bind := func(id ast.Expr, e ast.Expr) {
		ident, ok := ast.Unparen(id).(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		v := b.varOf(ident)
		if v == nil || v.IsField() || b.isGlobal(v) {
			return
		}
		if _, isParam := b.params[v]; isParam || v == b.recv {
			return
		}
		b.bindings[v] = append(b.bindings[v], binding{expr: e})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(n.Lhs) == len(n.Rhs):
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			case len(n.Rhs) == 1:
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(n.Names) == len(n.Values):
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			case len(n.Values) == 1:
				for i := range n.Names {
					bind(n.Names[i], n.Values[0])
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				bind(n.Key, n.X)
			}
			if n.Value != nil {
				bind(n.Value, n.X)
			}
		}
		return true
	})
}

// scan walks the body recording direct writes, parameter writes,
// dynamic/external calls, and call-site argument roots.
func (b *effectsBuilder) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				b.writeTarget(lhs)
			}
		case *ast.IncDecStmt:
			b.writeTarget(n.X)
		case *ast.SendStmt:
			b.attr(n.Pos(), b.roots(n.Chan, true), nil, "channel send")
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					b.writeTarget(n.Key)
				}
				if n.Value != nil {
					b.writeTarget(n.Value)
				}
			}
		case *ast.CallExpr:
			b.handleCall(n)
		}
		return true
	})
}

// writeTarget classifies one assignment target.
func (b *effectsBuilder) writeTarget(e ast.Expr) {
	e = ast.Unparen(e)
	pos := e.Pos()
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if v := b.varOf(e); v != nil && b.isGlobal(v) {
			b.addWrite(pos, globalLoc(v))
		}
	case *ast.SelectorExpr:
		if v, ok := b.info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && b.isGlobal(v) {
			b.addWrite(pos, globalLoc(v))
			return
		}
		bt := b.typeOf(e.X)
		if bt == nil {
			return
		}
		if ptr, ok := bt.Underlying().(*types.Pointer); ok {
			b.pointerFieldWrite(pos, e.X, ptr.Elem(), e.Sel.Name)
			return
		}
		// Field of a value: mutates whatever memory holds the value.
		b.attr(pos, b.roots(e.X, false), nil, "field write")
	case *ast.IndexExpr:
		bt := b.typeOf(e.X)
		if bt == nil {
			return
		}
		switch bt.Underlying().(type) {
		case *types.Map, *types.Slice, *types.Pointer:
			b.attr(pos, b.roots(e.X, true), namedElemFallback(bt), "element write")
		case *types.Array:
			b.attr(pos, b.roots(e.X, false), nil, "element write")
		}
	case *ast.StarExpr:
		bt := b.typeOf(e.X)
		if bt == nil {
			return
		}
		var fallback *Loc
		if ptr, ok := bt.Underlying().(*types.Pointer); ok {
			if named := namedOf(ptr.Elem()); named != nil {
				fallback = fieldLocPtr(named, "*")
			}
		}
		b.attr(pos, b.roots(e.X, true), fallback, "write through pointer")
	}
}

// pointerFieldWrite handles x.f = v where x is a pointer. The written
// memory is field f of the pointee type — that names the Loc — and the
// base roots matter only for parameter escalation (caller resolves) and
// for proving the pointee is a fresh local. Keying the write by the
// pointer's provenance instead (e.g. Flit.Pkt for f.Pkt.LinkHops++)
// would both misname the mutation and let every write through a pointer
// field of an allowlisted type hide under that type's wildcard.
func (b *effectsBuilder) pointerFieldWrite(pos token.Pos, base ast.Expr, elem types.Type, field string) {
	var fallback *Loc
	if named := namedOf(elem); named != nil {
		fallback = fieldLocPtr(named, field)
	}
	for _, r := range b.roots(base, true) {
		switch r.kind {
		case arPure, arFunc, arFuncLit:
		case arParam:
			b.fx.paramWrites[r.param] = append(b.fx.paramWrites[r.param], pos)
		default:
			switch {
			case fallback != nil:
				b.addWrite(pos, *fallback)
			case r.kind == arLoc:
				b.addWrite(pos, r.loc)
			default:
				b.addWrite(pos, Loc{Kind: LocDeref, Desc: "write to field " + field + " through escaping pointer"})
			}
		}
	}
}

// attr records the effects of writing through the given roots: Locs and
// parameter writes directly, unknown roots via fallback (a type-keyed
// Loc) when available, LocDeref otherwise.
func (b *effectsBuilder) attr(pos token.Pos, roots []argRoot, fallback *Loc, what string) {
	for _, r := range roots {
		switch r.kind {
		case arPure, arFunc, arFuncLit:
		case arLoc:
			b.addWrite(pos, r.loc)
		case arParam:
			b.fx.paramWrites[r.param] = append(b.fx.paramWrites[r.param], pos)
		default:
			if fallback != nil {
				b.addWrite(pos, *fallback)
			} else {
				b.addWrite(pos, Loc{Kind: LocDeref, Desc: what + " through escaping pointer"})
			}
		}
	}
}

func (b *effectsBuilder) addWrite(pos token.Pos, loc Loc) {
	if b.fx.cold.inCold(pos) {
		return
	}
	w := writeEffect{pos: pos, loc: loc}
	if b.writesSeen[w] {
		return
	}
	b.writesSeen[w] = true
	b.fx.writes = append(b.fx.writes, w)
}

// handleCall records builtin mutations, call-site argument roots for
// module callees, dynamic calls, and external calls.
func (b *effectsBuilder) handleCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := b.info.Types[fun]; ok && tv.IsType() {
		return // conversion
	}
	pos := call.Pos()
	if id, ok := fun.(*ast.Ident); ok {
		if bi, ok := b.info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "append", "copy", "delete", "close":
				if len(call.Args) > 0 {
					bt := b.typeOf(call.Args[0])
					b.attr(pos, b.roots(call.Args[0], true), namedElemFallback(bt), bi.Name())
				}
			}
			return
		}
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		return // immediately invoked; body attributed to this node
	}

	callee := b.staticCallee(fun)
	if callee == nil {
		b.dynamicCall(call, fun)
		return
	}
	if iface, ok := callee.Type().(*types.Signature); ok && iface.Recv() != nil {
		if _, isIface := iface.Recv().Type().Underlying().(*types.Interface); isIface {
			// Interface dispatch: the graph's edges target every
			// implementation; record the site for their substitution.
			b.recordSite(call, fun, callee)
			return
		}
	}
	if b.nodeOf(callee) != nil {
		b.recordSite(call, fun, callee)
		return
	}
	b.externalCall(call, fun, callee)
}

// staticCallee resolves the called function object, if any.
func (b *effectsBuilder) staticCallee(fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := b.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := b.info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		return b.staticCallee(ast.Unparen(fun.X))
	case *ast.IndexListExpr:
		return b.staticCallee(ast.Unparen(fun.X))
	}
	return nil
}

func (b *effectsBuilder) nodeOf(fn *types.Func) *FuncNode {
	if n := b.graph.Node(fn); n != nil {
		return n
	}
	return b.graph.Node(fn.Origin())
}

// recordSite stores per-parameter argument roots for a resolvable call,
// aligned with the callee's Signature.Params indices (method
// expressions shift the receiver out of the argument list).
func (b *effectsBuilder) recordSite(call *ast.CallExpr, fun ast.Expr, callee *types.Func) {
	sig, ok := b.info.Types[ast.Unparen(call.Fun)].Type.(*types.Signature)
	if !ok {
		return
	}
	args := call.Args
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := b.info.Selections[sel]; ok && s.Kind() == types.MethodExpr && len(args) > 0 {
			args = args[1:]
		}
	}
	n := sig.Params().Len()
	site := make([][]argRoot, n)
	for i := 0; i < n; i++ {
		if sig.Variadic() && i == n-1 {
			// Without ... the variadic backing slice is fresh; pointer
			// elements written by the callee are type-keyed there.
			if call.Ellipsis.IsValid() && len(args) == n {
				site[i] = b.argRootsAt(args[i])
			}
			continue
		}
		if i < len(args) {
			site[i] = b.argRootsAt(args[i])
		}
	}
	b.fx.sites[call.Pos()] = site
}

// argRootsAt resolves one call argument's roots for substitution. For a
// pointer-valued argument that is not a literal &x, a callee writing
// through the parameter mutates the POINTEE, not the place the pointer
// was read from — so type-keyed provenance roots are rewritten to
// pointee-typed locations (&x arguments already root in the pointee,
// and parameter/pure roots keep their meaning: the pointee escapes
// upward or is a fresh local).
func (b *effectsBuilder) argRootsAt(arg ast.Expr) []argRoot {
	rts := b.roots(arg, true)
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return rts
	}
	t := b.typeOf(arg)
	if t == nil {
		return rts
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return rts
	}
	out := make([]argRoot, 0, len(rts))
	for _, r := range rts {
		if r.kind != arLoc {
			out = append(out, r)
			continue
		}
		if named := namedOf(ptr.Elem()); named != nil {
			out = append(out, argRoot{kind: arLoc, loc: *fieldLocPtr(named, "*")})
		} else {
			out = append(out, argRoot{kind: arUnknown})
		}
	}
	return out
}

// dynamicCall classifies a call with no static callee: parameter calls
// are context-dependent; literals and named function values are covered
// elsewhere; anything else is a dynamic-call unknown.
func (b *effectsBuilder) dynamicCall(call *ast.CallExpr, fun ast.Expr) {
	pos := call.Pos()
	if b.fx.cold.inCold(pos) {
		return
	}
	rs := b.roots(fun, true)
	resolved := len(rs) > 0
	for _, r := range rs {
		switch r.kind {
		case arFunc, arFuncLit:
			// The reference edge / inline attribution covers the body.
		case arParam:
			b.fx.callsParam[r.param] = append(b.fx.callsParam[r.param], pos)
		case arPure:
		default:
			resolved = false
		}
	}
	if !resolved {
		b.addWrite(pos, Loc{Kind: LocDynamic, Desc: "call through dynamic function value " + exprLabel(fun)})
	}
}

// pureExternal lists out-of-module functions known not to write module-
// visible state (their arguments included).
func pureExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "math", "math/bits", "unicode", "unicode/utf8", "errors":
		return true
	case "strings":
		return true
	case "strconv":
		return !strings.HasPrefix(name, "Append")
	case "fmt":
		return strings.HasPrefix(name, "Sprint") || name == "Errorf"
	case "sort":
		return strings.HasPrefix(name, "Search") || strings.HasPrefix(name, "IsSorted") ||
			name == "SliceIsSorted" || strings.HasSuffix(name, "AreSorted")
	}
	return false
}

// externalCall models a call leaving the module: methods may mutate
// their receiver; functions off the known-pure list may write anything
// reachable from their arguments.
func (b *effectsBuilder) externalCall(call *ast.CallExpr, fun ast.Expr, callee *types.Func) {
	pos := call.Pos()
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, ok := b.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				bt := b.typeOf(sel.X)
				b.attr(pos, b.roots(sel.X, true), namedElemFallback(bt), "mutating method "+callee.Name())
			}
		}
		return
	}
	if pureExternal(callee) {
		return
	}
	b.addWrite(pos, Loc{Kind: LocExternal, Desc: "call to " + funcDisplay(callee)})
}

// ---- value-chain root resolution ----

// roots resolves which memory a write through e can reach. shared is
// true when the write goes through a reference (slice/map/chan/pointer
// backing): copies of reference values still share their backing, so
// parameter and receiver bases stay attributable. With shared false the
// write lands inside the value itself, and local/parameter/receiver
// copies make it pure.
func (b *effectsBuilder) roots(e ast.Expr, shared bool) []argRoot {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return b.identRoots(e, shared)
	case *ast.SelectorExpr:
		if v, ok := b.info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && b.isGlobal(v) {
			return []argRoot{{kind: arLoc, loc: globalLoc(v)}}
		}
		if fn, ok := b.info.Uses[e.Sel].(*types.Func); ok {
			return []argRoot{{kind: arFunc, fn: fn}}
		}
		bt := b.typeOf(e.X)
		if bt == nil {
			return []argRoot{{kind: arUnknown}}
		}
		if ptr, ok := bt.Underlying().(*types.Pointer); ok {
			if named := namedOf(ptr.Elem()); named != nil {
				return []argRoot{{kind: arLoc, loc: fieldLoc(named, e.Sel.Name)}}
			}
			return []argRoot{{kind: arUnknown}}
		}
		return b.roots(e.X, shared)
	case *ast.IndexExpr:
		if fn := b.staticCallee(e); fn != nil {
			return []argRoot{{kind: arFunc, fn: fn}} // generic instantiation
		}
		return b.containerRoots(e.X, shared)
	case *ast.IndexListExpr:
		if fn := b.staticCallee(e); fn != nil {
			return []argRoot{{kind: arFunc, fn: fn}}
		}
		return []argRoot{{kind: arUnknown}}
	case *ast.SliceExpr:
		return b.containerRoots(e.X, shared)
	case *ast.StarExpr:
		bt := b.typeOf(e.X)
		if bt != nil {
			if ptr, ok := bt.Underlying().(*types.Pointer); ok {
				if named := namedOf(ptr.Elem()); named != nil {
					return []argRoot{{kind: arLoc, loc: fieldLoc(named, "*")}}
				}
			}
		}
		return b.roots(e.X, true)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			// &x aliases x's own storage: resolve as a write into x.
			return b.roots(e.X, false)
		case token.ARROW:
			return []argRoot{{kind: arUnknown}}
		default:
			return nil // arithmetic yields a fresh value
		}
	case *ast.TypeAssertExpr:
		return b.roots(e.X, shared)
	case *ast.CallExpr:
		fun := ast.Unparen(e.Fun)
		if tv, ok := b.info.Types[fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return b.roots(e.Args[0], shared)
			}
			return nil
		}
		if id, ok := fun.(*ast.Ident); ok {
			if bi, ok := b.info.Uses[id].(*types.Builtin); ok {
				switch bi.Name() {
				case "append":
					if len(e.Args) > 0 {
						return b.roots(e.Args[0], true)
					}
					return nil
				case "make", "new", "min", "max", "len", "cap", "abs":
					return nil
				}
				return nil
			}
		}
		return []argRoot{{kind: arUnknown}}
	case *ast.FuncLit:
		return []argRoot{{kind: arFuncLit}}
	case *ast.CompositeLit, *ast.BasicLit:
		return nil // fresh value
	}
	return []argRoot{{kind: arUnknown}}
}

// containerRoots resolves the base of an index/slice expression:
// slice/map/pointer bases cross a reference boundary (their backing is
// shared no matter how the value got here); array bases stay inside the
// value.
func (b *effectsBuilder) containerRoots(x ast.Expr, shared bool) []argRoot {
	bt := b.typeOf(x)
	if bt == nil {
		return []argRoot{{kind: arUnknown}}
	}
	switch bt.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return b.roots(x, true)
	case *types.Array:
		return b.roots(x, shared)
	}
	return nil // strings etc.
}

// identRoots resolves a bare identifier base.
func (b *effectsBuilder) identRoots(id *ast.Ident, shared bool) []argRoot {
	if fn, ok := b.info.Uses[id].(*types.Func); ok {
		return []argRoot{{kind: arFunc, fn: fn}}
	}
	v := b.varOf(id)
	if v == nil {
		return nil // nil, iota, ...
	}
	if b.isGlobal(v) {
		return []argRoot{{kind: arLoc, loc: globalLoc(v)}}
	}
	if v == b.recv {
		if !shared && !b.recvByPtr {
			return nil // value receiver copy
		}
		if b.recvNamed != nil {
			return []argRoot{{kind: arLoc, loc: fieldLoc(b.recvNamed, "*")}}
		}
		return []argRoot{{kind: arUnknown}}
	}
	if i, ok := b.params[v]; ok {
		if !shared {
			return nil // parameter copy
		}
		return []argRoot{{kind: arParam, param: i}}
	}
	if b.litParams[v] {
		if !shared {
			return nil
		}
		return []argRoot{{kind: arUnknown}}
	}
	if !shared {
		return nil // writes into a local copy stay local
	}
	// Local: union of its reaching definitions, cycle-guarded.
	if b.resolving[v] {
		return nil
	}
	b.resolving[v] = true
	defer delete(b.resolving, v)
	var out []argRoot
	for _, bd := range b.bindings[v] {
		out = append(out, b.roots(bd.expr, true)...)
	}
	return dedupeRoots(out)
}

func dedupeRoots(rs []argRoot) []argRoot {
	if len(rs) < 2 {
		return rs
	}
	seen := make(map[argRoot]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// ---- small helpers ----

func (b *effectsBuilder) typeOf(e ast.Expr) types.Type {
	if tv, ok := b.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (b *effectsBuilder) varOf(id *ast.Ident) *types.Var {
	if v, ok := b.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := b.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (b *effectsBuilder) isGlobal(v *types.Var) bool {
	return !v.IsField() && v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func globalLoc(v *types.Var) Loc {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	return Loc{Kind: LocGlobal, Pkg: pkg, Field: v.Name()}
}

func fieldLoc(named *types.Named, field string) Loc {
	obj := named.Origin().Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return Loc{Kind: LocField, Pkg: pkg, Type: obj.Name(), Field: field}
}

func fieldLocPtr(named *types.Named, field string) *Loc {
	l := fieldLoc(named, field)
	return &l
}

// namedOf unwraps t to its named type, if any (instantiated generics
// resolve to their origin so Delay[*Flit] and Delay[Credit] share Locs).
func namedOf(t types.Type) *types.Named {
	if named, ok := t.(*types.Named); ok {
		return named.Origin()
	}
	return nil
}

// namedElemFallback gives the type-keyed element Loc for a named
// container type, used when root resolution comes up unknown.
func namedElemFallback(t types.Type) *Loc {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named := namedOf(t); named != nil {
		return fieldLocPtr(named, "*")
	}
	return nil
}

// coldAt reports whether a node's body context marks pos cold, nil-safe
// for bodiless nodes.
func (fx *funcEffects) coldAt(pos token.Pos) bool {
	return fx != nil && fx.cold.inCold(pos)
}

// exprLabel renders a short label for dynamic-call diagnostics.
func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	case *ast.CallExpr:
		return exprLabel(e.Fun) + "(...)"
	}
	return "expression"
}
