package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ExhaustiveAnalyzer requires every switch over an in-module iota enum
// (a named integer type with two or more package-level constants, like
// core.PowerState or core.MsgType) to either cover all of the enum's
// constants or carry an explicit default clause. Adding a handshake
// message or power state then breaks the build of every switch that
// silently ignored it — the compiler cannot do this for Go enums, and a
// fallen-through MsgType is exactly how a protocol extension corrupts
// the FSM without tripping a test.
//
// Constants named with a Num/num prefix (NumPorts, numKinds) are
// counter sentinels marking the end of an iota block, not members, and
// are not required. Type switches and switches over out-of-module
// types are out of scope.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "require enum switches to cover every constant or declare a default",
	Run:  runExhaustive,
}

func runExhaustive(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			p.checkEnumSwitch(sw)
			return true
		})
	}
}

// enumMember is one declared constant of an enum type.
type enumMember struct {
	name string
	val  constant.Value
}

// checkEnumSwitch verifies one switch statement against its tag enum.
func (p *Pass) checkEnumSwitch(sw *ast.SwitchStmt) {
	named := moduleEnumType(p, p.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return // a lone constant is a named value, not an enum
	}

	covered := make(map[string]bool) // keyed by constant.Value.String()
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the author chose a fallback
		}
		for _, expr := range clause.List {
			if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.String()] = true
			} else {
				return // non-constant case: coverage is not decidable
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val.String()] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) > 0 {
		p.Reportf(sw.Pos(), "switch over %s misses %s; add the cases or an explicit default",
			named.Obj().Pkg().Name()+"."+named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// moduleEnumType returns t as a named, in-module, integer-backed type,
// or nil when the switch is out of scope.
func moduleEnumType(p *Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !p.InModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumMembers lists the package-level constants of exactly the named
// type, in declaration-name order, excluding Num*/num* count sentinels.
// Distinct names aliasing one value count as a single member for
// coverage (covering either name covers the value).
func enumMembers(named *types.Named) []enumMember {
	scope := named.Obj().Pkg().Scope()
	var out []enumMember
	seen := make(map[string]bool)
	for _, name := range scope.Names() { // Names is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue // iota-block length sentinel, not a member
		}
		key := c.Val().String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, enumMember{name: name, val: c.Val()})
	}
	return out
}
