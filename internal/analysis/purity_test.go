package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadPurityModule mounts the purity fixture as an in-module package
// and configures the fixture's roots, allowlist and boundary.
func loadPurityModule(t *testing.T) (*Module, string) {
	t.Helper()
	const path = "flov/internal/purefix"
	loader := newDirLoader(t, map[string]string{path: "purity"})
	if _, err := loader.Load(path); err != nil {
		t.Fatal(err)
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	m.PureRoots = []RootSpec{
		{Pkg: path, Recv: "Machine", Func: "TickSleep"},
		{Pkg: path, Recv: "Machine", Func: "TickShared"},
	}
	m.PureAllow = []string{"flov/internal/purefix.Machine.*"}
	m.PureBoundaries = []RootSpec{{Pkg: path, Recv: "Machine", Func: "wake"}}
	dir, err := filepath.Abs(filepath.Join("testdata", "purity"))
	if err != nil {
		t.Fatal(err)
	}
	return m, dir
}

// TestPurityFixture checks every escape hatch of the mutation-summary
// engine against the marked violations in testdata/purity: direct field
// writes, slice/map element writes, pointer-parameter writes resolved
// at call sites, interface dispatch, closure capture, function-value
// calls, the assume marker with and without a reason, and the declared
// wake boundary staying silent.
func TestPurityFixture(t *testing.T) {
	m, dir := loadPurityModule(t)

	got := make(map[finding]int)
	for _, d := range RunModule(m, []*ModuleAnalyzer{PurityAnalyzer}) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}

	want := wantFindings(t, dir)
	for f, n := range want {
		if f.rule != "purity" {
			continue
		}
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestPurityFindingMessages pins the user-facing shape of one finding:
// the mutated location and the call chain from the root.
func TestPurityFindingMessages(t *testing.T) {
	m, _ := loadPurityModule(t)
	diags := RunModule(m, []*ModuleAnalyzer{PurityAnalyzer})

	var sawChain, sawParam bool
	for _, d := range diags {
		if strings.Contains(d.Msg, "write to purefix.Counter.N") &&
			strings.Contains(d.Msg, "pure root flov/internal/purefix.Machine.TickSleep") {
			sawChain = true
		}
		if strings.Contains(d.Msg, "writes through one of its parameters") &&
			strings.Contains(d.Msg, "Machine.TickShared") {
			sawParam = true
		}
	}
	if !sawChain {
		t.Error("no finding names both purefix.Counter.N and the TickSleep root")
	}
	if !sawParam {
		t.Error("no finding reports TickShared's parameter write")
	}
}

// TestPurityStaleRoot checks that a root spec naming a function that no
// longer exists fails loudly instead of silently proving nothing.
func TestPurityStaleRoot(t *testing.T) {
	m, _ := loadPurityModule(t)
	m.PureRoots = []RootSpec{{Pkg: "flov/internal/purefix", Recv: "Machine", Func: "Vanished"}}
	diags := RunModule(m, []*ModuleAnalyzer{PurityAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "purity root") ||
		!strings.Contains(diags[0].Msg, "not found") {
		t.Fatalf("want one stale-root diagnostic, got %v", diags)
	}
}

// TestPurityStaleBoundary checks the same contract for the boundary
// list, using the finding-free TickQuiet root so the only diagnostic is
// the stale boundary itself.
func TestPurityStaleBoundary(t *testing.T) {
	m, _ := loadPurityModule(t)
	m.PureRoots = []RootSpec{{Pkg: "flov/internal/purefix", Recv: "Machine", Func: "TickQuiet"}}
	m.PureBoundaries = []RootSpec{{Pkg: "flov/internal/purefix", Recv: "Machine", Func: "gone"}}
	diags := RunModule(m, []*ModuleAnalyzer{PurityAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "purity boundary") ||
		!strings.Contains(diags[0].Msg, "not found") {
		t.Fatalf("want one stale-boundary diagnostic, got %v", diags)
	}
}

// TestDefaultPurityRootsResolve loads the real simulator packages and
// checks every built-in purity root and boundary still names a live
// function — the guard against the lists rotting as the code moves.
func TestDefaultPurityRootsResolve(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	specs := append(DefaultPurityRoots(), DefaultPurityBoundaries()...)
	for _, spec := range specs {
		if _, err := loader.Load(spec.Pkg); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	g := m.Graph()
	for _, spec := range specs {
		if findRoot(g, spec) == nil {
			t.Errorf("default purity spec %s does not resolve", spec)
		}
	}
}
