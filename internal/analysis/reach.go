package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// ReachAnalyzer proves that simulation entry points never transitively
// reach a forbidden determinism source: wall-clock time, math/rand,
// process-environment reads, or order-sensitive map iteration. It is
// the whole-program complement to the per-package nondeterm rule —
// a time.Now laundered through a helper in a wall-clock-allowlisted
// package, or hidden behind an interface method, escapes the package
// allowlist but not an entry-point reachability walk over the module
// call graph.
//
// Findings are reported at the forbidden source with the full call
// chain from the entry point, so the fix site and the reason are both
// in the message. Suppressing one (//flovlint:allow reach) therefore
// happens at the source use, where the justification belongs.
var ReachAnalyzer = &ModuleAnalyzer{
	Name: "reach",
	Doc:  "prove simulation entry points reach no wall-clock/rand/env/map-order source",
	Run:  runReach,
}

// RootSpec names one reach entry point.
type RootSpec struct {
	Pkg  string // import path, e.g. "flov/internal/network"
	Recv string // receiver base type name, "" for plain functions
	Func string
}

// String renders the spec in the "pkg.Recv.Func" form ParseRoot reads.
func (r RootSpec) String() string {
	if r.Recv == "" {
		return r.Pkg + "." + r.Func
	}
	return r.Pkg + "." + r.Recv + "." + r.Func
}

// ParseRoot parses "pkg/path.Func" or "pkg/path.Recv.Func". Pointer
// receivers need no marker: Recv matches the base type name.
func ParseRoot(s string) (RootSpec, error) {
	slash := strings.LastIndex(s, "/")
	rest := s[slash+1:]
	parts := strings.Split(rest, ".")
	switch len(parts) {
	case 2:
		return RootSpec{Pkg: s[:slash+1] + parts[0], Func: parts[1]}, nil
	case 3:
		return RootSpec{Pkg: s[:slash+1] + parts[0], Recv: parts[1], Func: parts[2]}, nil
	}
	return RootSpec{}, fmt.Errorf("analysis: root %q is not pkg.Func or pkg.Recv.Func", s)
}

// DefaultReachRoots returns the simulator's entry points: the per-cycle
// network step, the full synthetic run loop, the closed-loop trace
// driver, and the sweep engine's per-point simulation bodies (Job.Run
// itself wall-times the point, so the roots sit just below it).
func DefaultReachRoots() []RootSpec {
	return []RootSpec{
		{Pkg: "flov/internal/network", Recv: "Network", Func: "Step"},
		{Pkg: "flov/internal/network", Recv: "Network", Func: "Run"},
		{Pkg: "flov/internal/trace", Recv: "Driver", Func: "Run"},
		{Pkg: "flov/internal/sweep", Recv: "Job", Func: "runSynthetic"},
		{Pkg: "flov/internal/sweep", Recv: "Job", Func: "runPARSEC"},
		// Restore rebuilds live simulation state from a checkpoint; any
		// nondeterminism reachable from it would corrupt resumed runs.
		{Pkg: "flov/internal/snapshot", Func: "Restore"},
		// The reliability harness: trial derivation must be a pure
		// function of the spec (seeds included), and the replay of a
		// failing trial must re-simulate it bit-identically.
		{Pkg: "flov/internal/relcheck", Recv: "Spec", Func: "Jobs"},
		{Pkg: "flov/internal/relcheck", Func: "replayTrial"},
		// The optimizer's deterministic halves — candidate proposal and
		// score absorption (strategy Ask/Tell, archive updates, genome
		// decoding). The engine call between them is the only wall-clock
		// part of a generation; everything the search identity depends
		// on must stay pure or fronts stop reproducing across processes.
		{Pkg: "flov/internal/opt", Recv: "run", Func: "propose"},
		{Pkg: "flov/internal/opt", Recv: "run", Func: "absorb"},
		// The cluster's terminal row assembly: its output is the
		// byte-compared artifact of the "same rows on any topology"
		// contract, so nothing wall-clock or map-ordered may reach it
		// even though the rest of internal/cluster is allowlisted.
		{Pkg: "flov/internal/cluster", Func: "assembleRows"},
	}
}

func runReach(p *ModulePass) {
	m := p.Module
	roots := m.Roots
	if roots == nil {
		roots = DefaultReachRoots()
	}
	graph := m.Graph()

	loaded := make(map[string]*Package, len(m.Packages))
	for _, pkg := range m.Packages {
		loaded[pkg.Path] = pkg
	}

	// reported dedups sources reachable from several roots: the first
	// chain is proof enough.
	reported := make(map[SourceUse]bool)
	for _, root := range roots {
		node := findRoot(graph, root)
		if node == nil {
			// A root inside a loaded package that no longer resolves is
			// rot in the root list itself — fail loudly rather than
			// silently proving nothing. Roots of packages outside this
			// run's load set are skipped (partial invocations like
			// `flovlint ./internal/service` cannot see them).
			if pkg, ok := loaded[root.Pkg]; ok {
				p.Reportf(pkg.Files[0].Package, "reach entry point %s not found; update the root list", root)
			}
			continue
		}
		walkFrom(p, node, root, reported)
	}
}

// findRoot resolves a RootSpec against the graph.
func findRoot(g *CallGraph, root RootSpec) *FuncNode {
	for _, n := range g.Nodes() {
		fn := n.Fn
		if fn.Name() != root.Func || fn.Pkg() == nil || fn.Pkg().Path() != root.Pkg {
			continue
		}
		if recvBaseName(fn) == root.Recv {
			return n
		}
	}
	return nil
}

// recvBaseName returns the receiver's base type name, or "".
func recvBaseName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// walkFrom BFS-walks the graph from root, reporting every forbidden
// source in reach with its call chain.
func walkFrom(p *ModulePass, start *FuncNode, root RootSpec, reported map[SourceUse]bool) {
	parent := make(map[*FuncNode]*FuncNode)
	visited := map[*FuncNode]bool{start: true}
	queue := []*FuncNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, src := range n.Sources {
			if reported[src] {
				continue
			}
			reported[src] = true
			p.Reportf(src.Pos, "%s is reachable from entry point %s: %s",
				src.What, root, chainString(parent, start, n))
		}
		for _, e := range n.Callees {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				parent[e.Callee] = n
				queue = append(queue, e.Callee)
			}
		}
	}
}

// chainString renders the call chain start -> ... -> n.
func chainString(parent map[*FuncNode]*FuncNode, start, n *FuncNode) string {
	var rev []string
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, funcDisplay(cur.Fn))
		if cur == start {
			break
		}
	}
	var b strings.Builder
	for i := len(rev) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(rev[i])
	}
	return b.String()
}
