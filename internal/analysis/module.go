package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-program view: every package the loader brought in,
// presented to module-wide analyzers together with the reach entry
// points. Per-package analyzers see one Pass; module analyzers see one
// ModulePass over all of this.
type Module struct {
	Path     string // module path ("flov")
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
	// Roots are the reach entry points. cmd/flovlint fills in
	// DefaultReachRoots; tests substitute fixture entry points.
	Roots []RootSpec
	// HotRoots are the hotalloc entry points, defaulting to
	// DefaultHotAllocRoots when nil.
	HotRoots []RootSpec
	// PureRoots, PureAllow and PureBoundaries configure the purity
	// analyzer: entry points that must stay pure, the mutation-location
	// keys they may touch, and the wake-event functions the walk stops
	// at. Each defaults to its DefaultPurity* set when nil.
	PureRoots      []RootSpec
	PureAllow      []string
	PureBoundaries []RootSpec

	graph *CallGraph // built lazily, shared across module analyzers
}

// NewModule assembles a Module from loaded packages, sorting them by
// import path so every module-wide walk is deterministic.
func NewModule(path string, fset *token.FileSet, pkgs []*Package) *Module {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	return &Module{Path: path, Fset: fset, Packages: sorted}
}

// Graph returns the module's conservative static call graph, building
// it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = BuildCallGraph(m)
	}
	return m.graph
}

// ModuleAnalyzer is one named check run over the whole module.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass hands the module view to one analyzer.
type ModulePass struct {
	Module *Module

	rule    string
	diags   *[]Diagnostic
	allowed map[allowKey]bool
}

// Reportf records a diagnostic at pos unless a suppression comment
// covers it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	reportf(p.Module.Fset, p.allowed, p.diags, p.rule, pos, format, args...)
}

// ModuleAnalyzers returns the module-wide flovlint analyzer set.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{ReachAnalyzer, StatecovAnalyzer, HotAllocAnalyzer, PurityAnalyzer, UnitsafeAnalyzer}
}

// RunModule runs the given module analyzers over the loaded module and
// returns their diagnostics sorted by position.
func RunModule(m *Module, analyzers []*ModuleAnalyzer) []Diagnostic {
	var diags []Diagnostic
	allowed := make(map[allowKey]bool)
	for _, pkg := range m.Packages {
		for k, v := range collectSuppressions(pkg.Fset, pkg.Files) {
			allowed[k] = v
		}
	}
	for _, a := range analyzers {
		a.Run(&ModulePass{Module: m, rule: a.Name, diags: &diags, allowed: allowed})
	}
	SortDiagnostics(diags)
	return diags
}

// LoadModule discovers and loads the packages matching patterns and
// wraps everything the loader pulled in (including module-internal
// dependencies of the named packages) as a Module.
func LoadModule(l *Loader, patterns []string) (*Module, error) {
	paths, err := l.Discover(patterns)
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		if _, err := l.Load(path); err != nil {
			return nil, err
		}
	}
	return NewModule(l.ModulePath, l.Fset, l.Packages()), nil
}

// funcDisplay renders a function or method in the short form used by
// reach chains: "network.(*Network).Step", "sweep.Job.runSynthetic",
// "time.Now".
func funcDisplay(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		pkgName = parts[len(parts)-1] + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgName + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if pt, isPtr := recv.(*types.Pointer); isPtr {
		recv, ptr = pt.Elem(), "*"
	}
	name := recv.String()
	if named, isNamed := recv.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	if ptr != "" {
		return pkgName + "(*" + name + ")." + fn.Name()
	}
	return pkgName + name + "." + fn.Name()
}

// reportf is the shared diagnostic sink behind Pass and ModulePass.
func reportf(fset *token.FileSet, allowed map[allowKey]bool, diags *[]Diagnostic, rule string, pos token.Pos, format string, args ...any) {
	position := fset.Position(pos)
	if allowed[allowKey{position.Filename, position.Line, rule}] {
		return
	}
	*diags = append(*diags, Diagnostic{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// funcLitsOf returns the function literals syntactically inside node,
// outermost first, for walkers that analyze closures separately.
func funcLitsOf(node ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(node, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
		}
		return true
	})
	return lits
}
