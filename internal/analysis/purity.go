package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// PurityAnalyzer proves that declared pure roots — by default the
// gated-router branch of the cycle kernel — reach no mutation outside
// an allowlisted state set. This is the machine-checked precondition
// for gated-router cycle skipping (ROADMAP item 2): skipping a gated
// router's per-cycle work is only sound if that work provably touches
// nothing but the router's own FLOV latch/wake FSM state, which the
// flovdebug CheckInvariants build can only spot-check dynamically.
//
// The proof walks the call graph from each root, consuming the
// mutation-summary engine (mutation.go): direct writes are reported at
// their own positions, parameter-mediated writes at the call site that
// binds the argument, both with the full call chain from the root.
// Declared boundary functions — the wake-event transitions that
// legitimately end quiescence — stop the walk: work behind
// startWakeup/commitActive/abortWakeup happens exactly because the
// router is leaving the gated state.
//
// Escapes: a `//flovpure:assume <reason>` comment on (or above) the
// offending line suppresses the finding; the reason is mandatory. Roots
// and boundaries that no longer resolve fail loudly, like reach and
// hotalloc, so the proof cannot rot into a silent no-op.
var PurityAnalyzer = &ModuleAnalyzer{
	Name: "purity",
	Doc:  "prove the gated-router cycle branch mutates only allowlisted FLOV latch/wake state",
	Run:  runPurity,
}

// assumeMarker is the purity escape comment prefix (the space matters:
// the mandatory reason follows it).
const assumeMarker = "//flovpure:assume"

// DefaultPurityRoots returns the gated-router branch of the cycle
// kernel: the per-cycle entry points a sleeping or waking FLOV router
// runs instead of the full pipeline tick.
func DefaultPurityRoots() []RootSpec {
	return []RootSpec{
		{Pkg: "flov/internal/core", Recv: "flovRouter", Func: "tickSleep"},
		{Pkg: "flov/internal/core", Recv: "flovRouter", Func: "tickWakeup"},
	}
}

// DefaultPurityBoundaries returns the wake-event transition functions
// the walk stops at: they run exactly when the router leaves the gated
// state, so their mutations are outside the quiescence obligation.
func DefaultPurityBoundaries() []RootSpec {
	return []RootSpec{
		{Pkg: "flov/internal/core", Recv: "flovRouter", Func: "startWakeup"},
		{Pkg: "flov/internal/core", Recv: "flovRouter", Func: "commitActive"},
		{Pkg: "flov/internal/core", Recv: "flovRouter", Func: "abortWakeup"},
	}
}

// DefaultPurityAllow returns the state a quiescent FLOV router may
// touch: its own latch/wake FSM fields, the delay-queue internals every
// port operation goes through, the power ledger's dynamic-energy
// accumulators (latch traversals and handshakes are real energy), and
// the per-packet hop counters a latched flit carries with it.
func DefaultPurityAllow() []string {
	return []string{
		"flov/internal/core.flovRouter.*",
		"flov/internal/sim.Delay.*",
		"flov/internal/power.Ledger.dynPJ",
		"flov/internal/noc.Packet.LinkHops",
		"flov/internal/noc.Packet.FLOVHops",
	}
}

func runPurity(p *ModulePass) {
	m := p.Module
	roots := m.PureRoots
	if roots == nil {
		roots = DefaultPurityRoots()
	}
	allow := m.PureAllow
	if allow == nil {
		allow = DefaultPurityAllow()
	}
	bounds := m.PureBoundaries
	if bounds == nil {
		bounds = DefaultPurityBoundaries()
	}
	graph := m.Graph()

	loaded := make(map[string]*Package, len(m.Packages))
	for _, pkg := range m.Packages {
		loaded[pkg.Path] = pkg
	}

	type rootStart struct {
		spec RootSpec
		node *FuncNode
	}
	var starts []rootStart
	for _, root := range roots {
		node := findRoot(graph, root)
		if node == nil {
			// Same contract as reach/hotalloc: a root in a loaded package
			// that no longer resolves is rot in the root list — fail
			// loudly rather than silently proving nothing. Roots of
			// packages outside this run's load set are skipped.
			if pkg, ok := loaded[root.Pkg]; ok {
				p.Reportf(pkg.Files[0].Package, "purity root %s not found; update the root list", root)
			}
			continue
		}
		starts = append(starts, rootStart{root, node})
	}
	if len(starts) == 0 {
		return
	}

	boundary := make(map[*FuncNode]bool)
	for _, bs := range bounds {
		node := findRoot(graph, bs)
		if node == nil {
			if pkg, ok := loaded[bs.Pkg]; ok {
				p.Reportf(pkg.Files[0].Package, "purity boundary %s not found; update the boundary list", bs)
			}
			continue
		}
		boundary[node] = true
	}

	sums := NewSummaries(m, boundary)
	assumes := collectMarkerComments(m, assumeMarker)
	allowed := func(loc Loc) bool {
		key := loc.Key()
		for _, a := range allow {
			if a == key {
				return true
			}
			if strings.HasSuffix(a, ".*") && strings.HasPrefix(key, a[:len(a)-1]) {
				return true
			}
		}
		return false
	}

	// Dedup across roots and assumes: one finding per (position, loc),
	// one reasonless-assume finding per marker.
	reported := make(map[string]bool)
	badAssume := make(map[token.Pos]bool)
	report := func(pos token.Pos, loc Loc, format string, args ...any) {
		if a, ok := skipAt(m.Fset, assumes, pos); ok {
			if a.reason == "" && !badAssume[a.pos] {
				badAssume[a.pos] = true
				p.Reportf(a.pos, "%s needs a reason", assumeMarker)
			}
			return
		}
		key := posKey(m.Fset, pos) + "\x00" + loc.Key()
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf(pos, format, args...)
	}

	for _, st := range starts {
		walkPurity(p, sums, st.node, st.spec, boundary, allowed, report)
	}
}

// walkPurity BFS-walks the graph from one pure root, reporting every
// non-allowlisted mutation with its call chain.
func walkPurity(p *ModulePass, sums *Summaries, start *FuncNode, root RootSpec,
	boundary map[*FuncNode]bool, allowed func(Loc) bool,
	report func(token.Pos, Loc, string, ...any)) {

	parent := make(map[*FuncNode]*FuncNode)
	visited := map[*FuncNode]bool{start: true}
	queue := []*FuncNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		fx := sums.effects(n)
		chain := chainString(parent, start, n)

		if fx != nil {
			for _, w := range fx.writes {
				if allowed(w.loc) {
					continue
				}
				report(w.pos, w.loc, "impure %s reachable from pure root %s: %s",
					describeLoc(w.loc), root, chain)
			}
		}

		if n == start {
			// Writes through the root's own parameters escape to its
			// caller — nothing above the root can vouch for them.
			if sum := sums.Of(n); sum != nil {
				for _, pos := range sortedIntKeys(sum.ParamWrites) {
					report(pos, Loc{Kind: LocDeref, Desc: "parameter write"},
						"pure root %s writes through one of its parameters: %s", root, chain)
				}
				for _, pos := range sortedIntKeys(sum.CallsParam) {
					report(pos, Loc{Kind: LocDynamic, Desc: "parameter call"},
						"pure root %s calls a function passed in by its caller: %s", root, chain)
				}
			}
		}

		for _, e := range n.Callees {
			if boundary[e.Callee] {
				continue
			}
			if fx.coldAt(e.Pos) {
				continue
			}
			for _, eff := range sums.substEdge(n, e) {
				if eff.param >= 0 || eff.callsParam >= 0 {
					// Escalates to one of n's own parameters: resolved
					// where n's callers bind their arguments (every edge
					// into n is substituted too), or at the root check.
					continue
				}
				if allowed(eff.loc) {
					continue
				}
				report(e.Pos, eff.loc, "impure %s reachable from pure root %s: %s -> %s",
					describeLoc(eff.loc), root, chain, funcDisplay(e.Callee.Fn))
			}
			if !visited[e.Callee] {
				visited[e.Callee] = true
				parent[e.Callee] = n
				queue = append(queue, e.Callee)
			}
		}
	}
}

// describeLoc phrases a Loc for a finding message.
func describeLoc(loc Loc) string {
	switch loc.Kind {
	case LocField, LocGlobal:
		return "write to " + loc.String()
	default:
		return loc.Desc
	}
}

// sortedIntKeys returns the map's values ordered by key, so findings
// derived from parameter indices are deterministic.
func sortedIntKeys(m map[int]token.Pos) []token.Pos {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]token.Pos, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// collectMarkerComments indexes marker comments (//flovpure:assume,
// //flovsnap:skip, //flovunit:convert) by file and line; like
// //flovlint:allow, a marker covers its own line (trailing comment) and
// the line below (comment above the statement). The text after the
// marker, cut at any nested "//", is the reason.
func collectMarkerComments(m *Module, marker string) map[string]map[int]skipEntry {
	out := make(map[string]map[int]skipEntry)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, marker)
					if idx < 0 {
						continue
					}
					rest := c.Text[idx+len(marker):]
					// Require a clean token boundary: "//flovunit:convert"
					// must not be misread as a "//flovunit" tag.
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					if cut := strings.Index(rest, "//"); cut >= 0 {
						rest = rest[:cut]
					}
					pos := m.Fset.Position(c.Pos())
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]skipEntry)
						out[pos.Filename] = byLine
					}
					e := skipEntry{reason: strings.TrimSpace(rest), pos: c.Pos()}
					byLine[pos.Line] = e
					byLine[pos.Line+1] = e
				}
			}
		}
	}
	return out
}
