package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// UnitsafeAnalyzer is a units-of-measure lint for the energy model. A
// numeric named type tagged `//flovunit <dim>` (internal/power's
// Picojoules, Watts, Hertz) becomes a unit type, and the analyzer flags
// the ways a dimensional error can still slip past Go's nominal typing:
//
//   - arithmetic or comparison mixing two distinct unit types (Go
//     rejects most of these itself; constants and conversions reopen
//     the hole);
//   - a conversion rebranding one unit as another — Watts(pj) — or
//     carrying a unit-rooted value even when laundered through float64;
//   - a conversion erasing a unit back to a raw numeric type;
//   - a raw untyped constant adopting a unit type implicitly (the
//     `* 1e12` class of bug): assignment to a unit-typed variable,
//     a unit-typed call argument, return value or composite-lit field.
//
// Explicitness is the escape everywhere: `Picojoules(2.5)` and
// `const EBufWritePJ Picojoules = 1.30` attach a unit deliberately and
// are fine, as are dimensionless scale factors in multiplication and
// division (`w * (1 + HSCOverheadFrac)`) and zero. Package-level
// const/var blocks are calibration data and exempt from the raw-
// constant rule only. Functions that genuinely cross dimensions —
// Watts·cycles/Hertz → Picojoules — carry `//flovunit:convert <reason>`
// on the declaration, which exempts the body; the reason is mandatory.
var UnitsafeAnalyzer = &ModuleAnalyzer{
	Name: "unitsafe",
	Doc:  "flag arithmetic mixing unit types and raw values crossing unit boundaries",
	Run:  runUnitsafe,
}

const (
	// unitMarker tags a named numeric type as a unit: //flovunit pJ
	unitMarker = "//flovunit"
	// convertMarker marks a declared conversion helper whose body may
	// cross dimensions: //flovunit:convert <reason>
	convertMarker = "//flovunit:convert"
)

func runUnitsafe(p *ModulePass) {
	m := p.Module
	tags := collectMarkerComments(m, unitMarker)
	convs := collectMarkerComments(m, convertMarker)

	units := make(map[*types.TypeName]string)
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			basic, ok := tn.Type().Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsNumeric == 0 {
				continue
			}
			if e, ok := skipAt(m.Fset, tags, tn.Pos()); ok {
				label := e.reason
				if label == "" {
					label = tn.Name()
				}
				units[tn] = label
			}
		}
	}
	if len(units) == 0 {
		return // nothing unit-tagged in this load set
	}

	u := &unitScanner{
		p:        p,
		units:    units,
		claimed:  make(map[ast.Node]bool),
		attachOK: make(map[ast.Expr]bool),
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if e, ok := skipAt(m.Fset, convs, d.Pos()); ok {
						if e.reason == "" {
							p.Reportf(e.pos, "%s needs a reason", convertMarker)
						}
						continue // helper body is exempt
					}
					if d.Body != nil {
						u.scan(pkg, d.Body, false)
					}
				case *ast.GenDecl:
					// Package-level const/var blocks are calibration data:
					// raw constants allowed, unit mixing still checked.
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							u.scan(pkg, vs, true)
						}
					}
				}
			}
		}
	}
}

type unitScanner struct {
	p     *ModulePass
	units map[*types.TypeName]string
	// claimed marks subtrees a finding (or an allowance) already covers,
	// so one expression yields one finding.
	claimed map[ast.Node]bool
	// attachOK marks the top value expression of an explicitly
	// unit-typed var/const declaration: the declaration is the
	// attachment.
	attachOK map[ast.Expr]bool
}

// scan walks one declaration body or value spec. rawOK exempts the
// raw-constant rule (package-level calibration blocks).
func (u *unitScanner) scan(pkg *Package, root ast.Node, rawOK bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if u.claimed[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := pkg.Info.Types[n.Type]; ok && u.unitOf(tv.Type) != nil {
					for _, v := range n.Values {
						u.attachOK[v] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if !rawOK {
				u.rawConst(pkg, n)
				if u.claimed[n] {
					return false
				}
			}
			u.binop(pkg, n)
		case *ast.CallExpr:
			u.conversion(pkg, n)
			if u.claimed[n] {
				return false
			}
		default:
			if e, ok := n.(ast.Expr); ok && !rawOK {
				u.rawConst(pkg, e)
				if u.claimed[n] {
					return false
				}
			}
		}
		return true
	})
}

// binop flags arithmetic and comparisons whose operands root in two
// distinct units, and allows dimensionless constant scale factors in
// multiplicative positions.
func (u *unitScanner) binop(pkg *Package, n *ast.BinaryExpr) {
	switch n.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	lu := u.rootUnit(pkg, n.X)
	ru := u.rootUnit(pkg, n.Y)
	if lu != nil && ru != nil && lu != ru {
		u.p.Reportf(n.OpPos, "arithmetic mixes %s and %s; cross dimensions in a %s helper",
			u.display(lu), u.display(ru), convertMarker)
		u.claim(n.X)
		u.claim(n.Y)
		return
	}
	if n.Op == token.MUL || n.Op == token.QUO {
		// A dimensionless constant scale factor keeps the dimension:
		// w * (1 + HSCOverheadFrac) is fine; w + 0.1 is not.
		if lu != nil && ru == nil && isConstExpr(pkg, n.Y) {
			u.claim(n.Y)
		}
		if ru != nil && lu == nil && isConstExpr(pkg, n.X) {
			u.claim(n.X)
		}
	}
}

// conversion checks T(x) conversions: rebranding one unit as another
// and erasing a unit into a plain numeric type are findings; attaching
// a unit to a constant or a raw value is the legitimate explicit form.
func (u *unitScanner) conversion(pkg *Package, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	tv, ok := pkg.Info.Types[fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	target := u.unitOf(tv.Type)
	ru := u.rootUnit(pkg, arg)
	if target != nil {
		if ru != nil && ru != target {
			u.p.Reportf(call.Pos(), "conversion rebrands %s as %s; cross dimensions in a %s helper",
				u.display(ru), u.display(target), convertMarker)
			u.claim(arg)
			return
		}
		if isConstExpr(pkg, arg) {
			u.claim(arg) // explicit attachment of a constant
		}
		return
	}
	basic, numeric := tv.Type.Underlying().(*types.Basic)
	if numeric && basic.Info()&types.IsNumeric != 0 && ru != nil {
		u.p.Reportf(call.Pos(), "conversion to %s erases unit %s; keep the unit type or cross dimensions in a %s helper",
			basic.Name(), u.display(ru), convertMarker)
		u.claim(arg)
	}
}

// rawConst flags a nonzero untyped constant adopting a unit type with
// no syntactic unit root — the implicit raw-literal-into-unit-sink
// case.
func (u *unitScanner) rawConst(pkg *Package, e ast.Expr) {
	if u.attachOK[e] {
		return
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return
	}
	tn := u.unitOf(tv.Type)
	if tn == nil || zeroConst(tv.Value) {
		return
	}
	if u.rootUnit(pkg, e) != nil {
		return
	}
	u.p.Reportf(e.Pos(), "raw constant %s takes unit type %s; attach the unit explicitly (%s(...) or a typed constant)",
		tv.Value.String(), u.display(tn), tn.Name())
	u.claim(e)
}

// rootUnit resolves which unit an expression's value carries. For
// non-constants the static type decides (unwrapping unit-erasing
// conversions, so float64(pj) still roots in Picojoules); for constants
// the recorded contextual type lies — an untyped 2.5 in a Picojoules
// context is recorded as Picojoules — so resolution walks the syntax to
// the declared types of named constants.
func (u *unitScanner) rootUnit(pkg *Package, e ast.Expr) *types.TypeName {
	e = ast.Unparen(e)
	info := pkg.Info
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	if tv.Value == nil {
		if tn := u.unitOf(tv.Type); tn != nil {
			return tn
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			if ftv, ok := info.Types[fun]; ok && ftv.IsType() && len(e.Args) == 1 {
				return u.rootUnit(pkg, e.Args[0])
			}
		case *ast.UnaryExpr:
			if e.Op == token.ADD || e.Op == token.SUB {
				return u.rootUnit(pkg, e.X)
			}
		case *ast.BinaryExpr:
			return combineUnits(u.rootUnit(pkg, e.X), u.rootUnit(pkg, e.Y))
		}
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return u.unitOf(obj.Type())
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return u.unitOf(obj.Type())
		}
	case *ast.CallExpr:
		fun := ast.Unparen(e.Fun)
		if ftv, ok := info.Types[fun]; ok && ftv.IsType() {
			if tn := u.unitOf(ftv.Type); tn != nil {
				return tn
			}
			if len(e.Args) == 1 {
				return u.rootUnit(pkg, e.Args[0])
			}
		}
	case *ast.UnaryExpr:
		return u.rootUnit(pkg, e.X)
	case *ast.BinaryExpr:
		return combineUnits(u.rootUnit(pkg, e.X), u.rootUnit(pkg, e.Y))
	}
	return nil
}

// combineUnits merges operand units: agreement or one-sided dimensioned
// operands keep the unit; a genuine mix resolves to nothing (the binop
// rule reports it).
func combineUnits(l, r *types.TypeName) *types.TypeName {
	switch {
	case l == r:
		return l
	case l == nil:
		return r
	case r == nil:
		return l
	}
	return nil
}

func (u *unitScanner) unitOf(t types.Type) *types.TypeName {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := u.units[named.Obj()]; ok {
		return named.Obj()
	}
	return nil
}

// display renders a unit for messages: "Picojoules [pJ]", or just the
// name when the tag carried no label.
func (u *unitScanner) display(tn *types.TypeName) string {
	if label, ok := u.units[tn]; ok && label != tn.Name() {
		return tn.Name() + " [" + label + "]"
	}
	return tn.Name()
}

func (u *unitScanner) claim(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil {
			u.claimed[m] = true
		}
		return true
	})
}

func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

func zeroConst(v constant.Value) bool {
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
