package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// wallClockAllowed lists import-path prefixes where wall-clock time is
// legitimate: CLIs and the sweep engine report real elapsed time, and
// the cache stamps entries with a save date. Everything else in the
// module is simulation code, where the only admissible clock is the
// simulated cycle counter and the only admissible randomness is the
// seeded sim.RNG.
var wallClockAllowed = []string{
	"flov",                   // root API: reports wall-clock sweep duration
	"flov/cmd/",              // CLIs time their own runs
	"flov/examples/",         // example programs
	"flov/internal/sweep",    // engine wall timing + cache timestamps
	"flov/internal/analysis", // this tool
	"flov/internal/service",  // serving layer: real deadlines, queues, metrics
	"flov/internal/service/", // ... and its subpackages (client)
	"flov/internal/cluster",  // cluster plane: leases, deadlines, backoff are wall-clock by nature
}

// wallClockFuncs are the time-package functions that read the wall
// clock or real timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// NondetAnalyzer forbids ambient nondeterminism sources in simulation
// packages: the math/rand generators (global or not, they are not part
// of the seeded Job spec) and wall-clock time. Simulation code must
// draw randomness from sim.RNG and time from the cycle counter;
// violations make cached sweep rows and the equivalence tests
// meaningless.
var NondetAnalyzer = &Analyzer{
	Name: "nondeterm",
	Doc:  "forbid math/rand and wall-clock time in simulation packages",
	Run:  runNondet,
}

// nondetRestricted reports whether the package at path must be free of
// ambient nondeterminism.
func nondetRestricted(p *Pass) bool {
	if !p.InModule(p.Path) {
		return false
	}
	for _, allow := range wallClockAllowed {
		if strings.HasSuffix(allow, "/") {
			if strings.HasPrefix(p.Path, allow) {
				return false
			}
		} else if p.Path == allow {
			return false
		}
	}
	return true
}

func runNondet(p *Pass) {
	if !nondetRestricted(p) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "simulation package imports %s; use the seeded sim.RNG instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgPath, ok := selectorPackage(p, sel); ok && pkgPath == "time" && wallClockFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), "simulation package uses time.%s; simulated paths must use cycle time", sel.Sel.Name)
			}
			return true
		})
	}
}

// selectorPackage resolves pkg.Name selectors to the imported package
// path; ok is false when sel is not a package-qualified identifier.
func selectorPackage(p *Pass, sel *ast.SelectorExpr) (string, bool) {
	return selectorPkgPath(p.Info, sel)
}

// selectorPkgPath is selectorPackage over raw type information, shared
// with the module-wide call-graph builder.
func selectorPkgPath(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}
