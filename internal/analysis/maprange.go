package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeAnalyzer flags ranging over a map when the loop body is
// order-sensitive: appending to a slice, accumulating floats or
// strings, sending on a channel, or writing output. Go randomizes map
// iteration order per run, so any of these lets that randomness leak
// into results — the exact nondeterminism the sweep cache and the
// equivalence tests cannot tolerate.
//
// The one allowed shape is the canonical sort idiom — a body that only
// collects the keys:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort/slices sort of keys...
//
// (The analyzer cannot prove the subsequent sort; collecting keys and
// forgetting to sort them is still a bug, just not one it can see.)
// Order-independent bodies — counting, map-to-map writes, max/min over
// integers — are not flagged.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "forbid order-sensitive bodies under map iteration",
	Run:  runMapRange,
}

// writerCalls are method/function names whose call inside a map-range
// body emits output or feeds a hash in iteration order.
var writerCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": false, // pure, returns a value; order leaks only if accumulated
	"Encode": true, "Marshal": false,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectLoop(p, rs) {
				return true
			}
			p.checkMapRangeBody(rs)
			return true
		})
	}
}

// isKeyCollectLoop recognizes the sorted-iteration idiom: a body that
// is exactly `outer = append(outer, key)`.
func isKeyCollectLoop(p *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(p, call) || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || p.Info.Uses[arg] == nil || p.Info.Uses[arg] != p.Info.Defs[keyIdent] {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	dst, ok2 := call.Args[0].(*ast.Ident)
	return ok && ok2 && lhs.Name == dst.Name
}

// checkMapRangeBody reports the order-sensitive statements of a
// map-range body.
func (p *Pass) checkMapRangeBody(rs *ast.RangeStmt) {
	body := rs.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map iteration publishes values in random order; iterate sorted keys")
		case *ast.AssignStmt:
			p.checkMapRangeAssign(body, n)
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && writerCalls[name] {
				p.Reportf(n.Pos(), "%s call inside map iteration emits output in random order; iterate sorted keys", name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags appends and order-sensitive accumulation
// targeting variables that outlive the loop body.
func (p *Pass) checkMapRangeAssign(body *ast.BlockStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) {
				continue
			}
			if dst, ok := call.Args[0].(*ast.Ident); ok && p.declaredWithin(dst, body) {
				continue // scratch slice local to the body
			}
			p.Reportf(as.Pos(), "append inside map iteration builds a slice in random order; iterate sorted keys")
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		t := p.TypeOf(lhs)
		isStr := false
		if b, ok := types.Default(t).Underlying().(*types.Basic); ok {
			isStr = b.Info()&types.IsString != 0
		}
		if !isFloat(t) && !(as.Tok == token.ADD_ASSIGN && isStr) {
			return // integer accumulation commutes; order cannot leak
		}
		if root := rootIdent(lhs); root != nil && p.declaredWithin(root, body) {
			return
		}
		p.Reportf(as.Pos(), "%s accumulation inside map iteration is order-sensitive for %s operands; iterate sorted keys",
			as.Tok, types.Default(t))
	}
}

// declaredWithin reports whether ident's declaration lies inside node.
func (p *Pass) declaredWithin(ident *ast.Ident, node ast.Node) bool {
	obj := p.Info.Uses[ident]
	if obj == nil {
		obj = p.Info.Defs[ident]
	}
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// rootIdent returns the base identifier of an lvalue expression
// (x, x.f, x[i].f ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[ident].(*types.Builtin)
	return ok && obj.Name() == "append"
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}
