package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeAnalyzer flags ranging over a map when the loop body is
// order-sensitive: appending to a slice, accumulating floats or
// strings, sending on a channel, or writing output. Go randomizes map
// iteration order per run, so any of these lets that randomness leak
// into results — the exact nondeterminism the sweep cache and the
// equivalence tests cannot tolerate.
//
// The one allowed shape is the canonical sort idiom — a body that only
// collects the keys:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort/slices sort of keys...
//
// (The analyzer cannot prove the subsequent sort; collecting keys and
// forgetting to sort them is still a bug, just not one it can see.)
// Order-independent bodies — counting, map-to-map writes, max/min over
// integers — are not flagged.
//
// The detection itself lives in mapRangeViolations so the module-wide
// reach analyzer can reuse it as a forbidden-source predicate.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "forbid order-sensitive bodies under map iteration",
	Run:  runMapRange,
}

// writerCalls are method/function names whose call inside a map-range
// body emits output or feeds a hash in iteration order.
var writerCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": false, // pure, returns a value; order leaks only if accumulated
	"Encode": true, "Marshal": false,
}

// mapOrderViolation is one order-sensitive statement found under a
// map-range loop.
type mapOrderViolation struct {
	pos token.Pos
	msg string
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			for _, v := range mapRangeViolations(p.Info, rs) {
				p.Reportf(v.pos, "%s", v.msg)
			}
			return true
		})
	}
}

// mapRangeViolations returns the order-sensitive statements under rs,
// or nil when rs is not a map range, is the canonical key-collect
// idiom, or has an order-independent body.
func mapRangeViolations(info *types.Info, rs *ast.RangeStmt) []mapOrderViolation {
	t := info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	if isKeyCollectLoop(info, rs) {
		return nil
	}
	var out []mapOrderViolation
	body := rs.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, mapOrderViolation{n.Pos(),
				"channel send inside map iteration publishes values in random order; iterate sorted keys"})
		case *ast.AssignStmt:
			out = append(out, mapRangeAssignViolations(info, body, n)...)
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && writerCalls[name] {
				out = append(out, mapOrderViolation{n.Pos(),
					fmt.Sprintf("%s call inside map iteration emits output in random order; iterate sorted keys", name)})
			}
		}
		return true
	})
	return out
}

// isKeyCollectLoop recognizes the sorted-iteration idiom: a body that
// is exactly `outer = append(outer, key)`.
func isKeyCollectLoop(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(info, call) || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || info.Uses[arg] == nil || info.Uses[arg] != info.Defs[keyIdent] {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	dst, ok2 := call.Args[0].(*ast.Ident)
	return ok && ok2 && lhs.Name == dst.Name
}

// mapRangeAssignViolations flags appends and order-sensitive
// accumulation targeting variables that outlive the loop body.
func mapRangeAssignViolations(info *types.Info, body *ast.BlockStmt, as *ast.AssignStmt) []mapOrderViolation {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		var out []mapOrderViolation
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				continue
			}
			if dst, ok := call.Args[0].(*ast.Ident); ok && declaredWithin(info, dst, body) {
				continue // scratch slice local to the body
			}
			out = append(out, mapOrderViolation{as.Pos(),
				"append inside map iteration builds a slice in random order; iterate sorted keys"})
		}
		return out
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		t := info.TypeOf(lhs)
		isStr := false
		if b, ok := types.Default(t).Underlying().(*types.Basic); ok {
			isStr = b.Info()&types.IsString != 0
		}
		if !isFloat(t) && !(as.Tok == token.ADD_ASSIGN && isStr) {
			return nil // integer accumulation commutes; order cannot leak
		}
		if root := rootIdent(lhs); root != nil && declaredWithin(info, root, body) {
			return nil
		}
		return []mapOrderViolation{{as.Pos(),
			fmt.Sprintf("%s accumulation inside map iteration is order-sensitive for %s operands; iterate sorted keys",
				as.Tok, types.Default(t))}}
	}
	return nil
}

// declaredWithin reports whether ident's declaration lies inside node.
func declaredWithin(info *types.Info, ident *ast.Ident, node ast.Node) bool {
	obj := info.Uses[ident]
	if obj == nil {
		obj = info.Defs[ident]
	}
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// rootIdent returns the base identifier of an lvalue expression
// (x, x.f, x[i].f ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := info.Uses[ident].(*types.Builtin)
	return ok && obj.Name() == "append"
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}
