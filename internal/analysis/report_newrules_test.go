package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// newRuleDiags produces real statecov and hotalloc findings from the
// fixtures, so the reporting round-trips below exercise the actual
// rule names, file paths, and message shapes, not synthetic stand-ins.
func newRuleDiags(t *testing.T) ([]Diagnostic, string) {
	t.Helper()
	diags := RunModule(loadSnapcovModule(t), []*ModuleAnalyzer{StatecovAnalyzer})
	diags = append(diags, RunModule(loadHotpathModule(t), []*ModuleAnalyzer{HotAllocAnalyzer})...)
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if byRule["statecov"] == 0 || byRule["hotalloc"] == 0 {
		t.Fatalf("fixtures should yield both rules, got %v", byRule)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return diags, root
}

// TestNewRulesJSONRoundTrip renders the fixture findings as JSON and
// checks rule, module-relative file, and message survive.
func TestNewRulesJSONRoundTrip(t *testing.T) {
	diags, root := newRuleDiags(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var got []JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(diags) {
		t.Fatalf("want %d findings, got %d", len(diags), len(got))
	}
	for i, f := range got {
		if f.Rule != diags[i].Rule || f.Message != diags[i].Msg {
			t.Errorf("finding %d mangled: %+v vs %+v", i, f, diags[i])
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding %d file should be module-relative: %s", i, f.File)
		}
	}
}

// TestNewRulesSARIF checks the SARIF log carries descriptors for both
// new rules and one result each with the right location and message.
func TestNewRulesSARIF(t *testing.T) {
	diags, root := newRuleDiags(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID] = true
	}
	if !ids["statecov"] || !ids["hotalloc"] {
		t.Fatalf("SARIF rule metadata missing the new rules: %v", ids)
	}
	seen := map[string]bool{}
	for _, r := range log.Runs[0].Results {
		seen[r.RuleID] = true
		if len(r.Locations) != 1 || r.Message.Text == "" {
			t.Errorf("result %s missing location or message", r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		switch r.RuleID {
		case "statecov":
			if filepath.Base(uri) != "snapfix.go" {
				t.Errorf("statecov result should sit in snapfix.go, got %s", uri)
			}
		case "hotalloc":
			if filepath.Base(uri) != "hotfix.go" {
				t.Errorf("hotalloc result should sit in hotfix.go, got %s", uri)
			}
		}
	}
	if !seen["statecov"] || !seen["hotalloc"] {
		t.Fatalf("SARIF results missing a rule: %v", seen)
	}
}

// TestNewRulesBaseline acknowledges the fixture findings in a baseline,
// then checks matching is by rule+file+message (not line), a new
// finding stays fresh, and a fixed one surfaces as a stale entry.
func TestNewRulesBaseline(t *testing.T) {
	diags, root := newRuleDiags(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline stores unique rule+file+message keys: the two int64
	// boxings in the fixture's box() share one entry.
	uniq := map[string]bool{}
	for _, d := range diags {
		uniq[d.Rule+"\x00"+d.Pos.Filename+"\x00"+d.Msg] = true
	}
	if len(b.Findings) != len(uniq) {
		t.Fatalf("want %d baselined findings, got %d", len(uniq), len(b.Findings))
	}

	// Shift every line: still fully acknowledged.
	moved := append([]Diagnostic(nil), diags...)
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	fresh, stale := ApplyBaseline(b, root, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line moves should not disturb matching: fresh=%v stale=%v", fresh, stale)
	}

	// Drop one hotalloc finding (fixed) and reword one statecov message
	// (new finding): one fresh, two stale.
	next := append([]Diagnostic(nil), diags...)
	for i := range next {
		if next[i].Rule == "hotalloc" {
			next = append(next[:i], next[i+1:]...)
			break
		}
	}
	for i := range next {
		if next[i].Rule == "statecov" {
			next[i].Msg = strings.Replace(next[i].Msg, "field", "member", 1)
			break
		}
	}
	fresh, stale = ApplyBaseline(b, root, next)
	if len(fresh) != 1 || fresh[0].Rule != "statecov" {
		t.Errorf("want the reworded statecov finding fresh, got %v", fresh)
	}
	if len(stale) != 2 {
		t.Errorf("want the fixed hotalloc and original statecov entries stale, got %v", stale)
	}
}
