package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// sampleDiags builds a small diagnostic set rooted at dir.
func sampleDiags(dir string) []Diagnostic {
	return []Diagnostic{
		{
			Pos:  token.Position{Filename: filepath.Join(dir, "internal", "a.go"), Line: 10, Column: 2},
			Rule: "reach",
			Msg:  "time.Now is reachable from entry point X: a -> b",
		},
		{
			Pos:  token.Position{Filename: filepath.Join(dir, "internal", "b.go"), Line: 4, Column: 1},
			Rule: "exhaustive",
			Msg:  "switch over core.PowerState misses Wakeup; add the cases or an explicit default",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, dir, sampleDiags(dir)); err != nil {
		t.Fatal(err)
	}
	var got []JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d", len(got))
	}
	if got[0].File != "internal/a.go" || got[0].Line != 10 || got[0].Rule != "reach" {
		t.Errorf("first finding mangled: %+v", got[0])
	}

	// Empty input must stay a JSON array, not null.
	buf.Reset()
	if err := WriteJSON(&buf, dir, nil); err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Errorf("empty findings should encode as [], got %s", got)
	}
}

func TestWriteSARIF(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, dir, sampleDiags(dir)); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "flovlint" {
		t.Errorf("driver name: %s", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"nondeterm", "exhaustive", "locksafe", "reach"} {
		if !ruleIDs[want] {
			t.Errorf("rule metadata missing %s", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/a.go" || loc.Region.StartLine != 10 {
		t.Errorf("first result location mangled: %+v", loc)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := sampleDiags(dir)
	path := filepath.Join(dir, ".flovlint-baseline.json")

	if err := WriteBaseline(path, dir, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("want 2 baselined findings, got %d", len(b.Findings))
	}

	// Identical findings: nothing fresh, nothing stale. Line numbers
	// deliberately do not participate in matching.
	moved := append([]Diagnostic(nil), diags...)
	moved[0].Pos.Line += 40
	fresh, stale := ApplyBaseline(b, dir, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("moved-only findings should match baseline: fresh=%v stale=%v", fresh, stale)
	}

	// A new finding is fresh; a fixed one leaves its entry stale.
	next := []Diagnostic{
		diags[0],
		{
			Pos:  token.Position{Filename: filepath.Join(dir, "internal", "c.go"), Line: 7, Column: 3},
			Rule: "locksafe",
			Msg:  "returns with s.mu held",
		},
	}
	fresh, stale = ApplyBaseline(b, dir, next)
	if len(fresh) != 1 || fresh[0].Rule != "locksafe" {
		t.Errorf("want the locksafe finding fresh, got %v", fresh)
	}
	if len(stale) != 1 || stale[0].Rule != "exhaustive" {
		t.Errorf("want the exhaustive entry stale, got %v", stale)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing file should load as empty baseline, got %v", b.Findings)
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("garbage baseline should not parse")
	}
}

// TestCheckedInBaselineIsEmpty pins the repo's steady state: the
// committed baseline acknowledges nothing, so every finding fails CI.
func TestCheckedInBaselineIsEmpty(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(filepath.Join(root, ".flovlint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("checked-in baseline must stay empty; found %d entries", len(b.Findings))
	}
}
