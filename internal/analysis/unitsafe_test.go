package analysis

import (
	"path/filepath"
	"testing"
)

// loadUnitfixModule mounts the units fixture as an in-module package.
func loadUnitfixModule(t *testing.T) *Module {
	t.Helper()
	const path = "flov/internal/unitfix"
	loader := newDirLoader(t, map[string]string{path: "units"})
	if _, err := loader.Load(path); err != nil {
		t.Fatal(err)
	}
	return NewModule(loader.ModulePath, loader.Fset, loader.Packages())
}

// TestUnitsafeFixture checks the units-of-measure lint against the
// marked violations in testdata/units: unit-mixing arithmetic reached
// through float64 laundering, rebranding and erasing conversions, raw
// constants adopting a unit type at every sink, and the reasonless
// convert marker — next to the explicit attachments, dimensionless
// scale factors and package-level calibration data that must stay
// silent.
func TestUnitsafeFixture(t *testing.T) {
	m := loadUnitfixModule(t)

	got := make(map[finding]int)
	for _, d := range RunModule(m, []*ModuleAnalyzer{UnitsafeAnalyzer}) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}

	dir, err := filepath.Abs(filepath.Join("testdata", "units"))
	if err != nil {
		t.Fatal(err)
	}
	want := wantFindings(t, dir)
	for f, n := range want {
		if f.rule != "unitsafe" {
			continue
		}
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestUnitsafeNoTagsNoFindings checks the analyzer is inert on a load
// set with no //flovunit tags at all (the purity fixture).
func TestUnitsafeNoTagsNoFindings(t *testing.T) {
	const path = "flov/internal/purefix"
	loader := newDirLoader(t, map[string]string{path: "purity"})
	if _, err := loader.Load(path); err != nil {
		t.Fatal(err)
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	if diags := RunModule(m, []*ModuleAnalyzer{UnitsafeAnalyzer}); len(diags) != 0 {
		t.Fatalf("unitsafe should be inert without unit tags, got %v", diags)
	}
}
