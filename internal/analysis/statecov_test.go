package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadSnapcovModule mounts the statecov fixture as a module package.
func loadSnapcovModule(t *testing.T) *Module {
	t.Helper()
	const path = "flov/internal/snapfix"
	loader := newDirLoader(t, map[string]string{path: "snapcov"})
	if _, err := loader.Load(path); err != nil {
		t.Fatal(err)
	}
	return NewModule(loader.ModulePath, loader.Fset, loader.Packages())
}

// TestStatecovFixture checks statecov against the marked fixture: the
// uncaptured fields (root-level and through the type walk), the
// missing-restore half-pair, the reasonless skip — and silence on the
// captured fields, the reasoned skip, and the type-level exemption.
func TestStatecovFixture(t *testing.T) {
	m := loadSnapcovModule(t)

	got := make(map[finding]int)
	for _, d := range RunModule(m, []*ModuleAnalyzer{StatecovAnalyzer}) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "snapcov"))
	if err != nil {
		t.Fatal(err)
	}
	want := wantFindings(t, dir)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestStatecovMessages pins the wording that makes the findings
// actionable: the owning type and field for an uncaptured field, the
// pair name for a half-pair type, and the reason demand for a bare skip.
func TestStatecovMessages(t *testing.T) {
	m := loadSnapcovModule(t)
	diags := RunModule(m, []*ModuleAnalyzer{StatecovAnalyzer})

	wants := []string{
		"field Sim.Uncov is not touched by any CaptureState/RestoreState path",
		"field Packet.Meta is not touched by any CaptureState/RestoreState path",
		"type CaptOnly has CaptureState but no RestoreState",
		"//flovsnap:skip on field Sim.bad needs a reason",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no statecov finding contains %q; got %v", want, diags)
		}
	}
}
