package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// HotAllocAnalyzer reports every allocation site transitively reachable
// from the simulator's per-cycle hot paths: the network step, the router
// pipeline, and the sim.Delay channel operations. The steady-state cycle
// kernel is meant to run allocation-free — a stray allocation on these
// paths costs GC pressure multiplied by cycles×routers×sweep points —
// so each site is reported with the full call chain from the hot root,
// and intentional ones carry a //flovlint:allow hotalloc suppression
// with the justification.
//
// Reported allocation forms:
//
//   - make and new;
//   - growing append — append that can reallocate its backing array.
//     Amortized refills are exempt: appending a slice to itself when the
//     slice is persistent state (x.f = append(x.f, ...) or
//     x[i] = append(x[i], ...)), and appending onto a length-reset
//     prefix (append(x[:0], ...)). A self-append of a bare local is
//     still reported: the local's backing array is fresh per call.
//   - interface boxing: a concrete value whose representation is not a
//     single pointer word (struct, int, string, ...) passed to an
//     interface parameter, converted to an interface type, or assigned
//     to an interface variable. Pointers, channels, maps and funcs are
//     pointer-shaped and box without allocating.
//   - fmt calls, which allocate internally; boxing of their own
//     arguments is folded into the one finding at the call.
//   - closures: a func literal capturing variables, unless it is
//     invoked immediately or passed directly as a call argument (the
//     callback is assumed not to escape — a documented approximation);
//     a go statement's literal is always reported.
//
// Two code regions are exempt automatically, findings and call edges
// both: panic arguments (a path that allocates while crashing is not a
// hot path) and blocks guarded by the internal/assert debug gate
// (`if assert.On { ... }` is compiled away outside flovdebug builds).
var HotAllocAnalyzer = &ModuleAnalyzer{
	Name: "hotalloc",
	Doc:  "report every allocation site reachable from the sim hot-path roots",
	Run:  runHotAlloc,
}

// DefaultHotAllocRoots returns the per-cycle hot paths the steady-state
// zero-allocation goal covers: the whole-network step, the router
// pipeline tick, and the Delay queue operations links and NIs run every
// cycle. Push/Pop are reachable from Step too; naming them keeps them
// covered under partial loads like `flovlint ./internal/sim`.
func DefaultHotAllocRoots() []RootSpec {
	return []RootSpec{
		{Pkg: "flov/internal/network", Recv: "Network", Func: "Step"},
		{Pkg: "flov/internal/router", Recv: "Router", Func: "Tick"},
		{Pkg: "flov/internal/sim", Recv: "Delay", Func: "Push"},
		{Pkg: "flov/internal/sim", Recv: "Delay", Func: "PushAfter"},
		{Pkg: "flov/internal/sim", Recv: "Delay", Func: "Pop"},
		{Pkg: "flov/internal/sim", Recv: "Delay", Func: "Drain"},
	}
}

func runHotAlloc(p *ModulePass) {
	m := p.Module
	roots := m.HotRoots
	if roots == nil {
		roots = DefaultHotAllocRoots()
	}
	graph := m.Graph()

	loaded := make(map[string]*Package, len(m.Packages))
	for _, pkg := range m.Packages {
		loaded[pkg.Path] = pkg
	}

	// reported dedups sites reachable from several roots: the first chain
	// is proof enough. Alloc contexts are per-body syntax, so they are
	// shared across roots.
	reported := make(map[token.Pos]bool)
	ctxs := make(map[*FuncNode]*allocContext)
	ctxOf := func(n *FuncNode) *allocContext {
		if c, ok := ctxs[n]; ok {
			return c
		}
		var c *allocContext
		if n.Decl != nil && n.Decl.Body != nil {
			c = newAllocContext(n.Pkg.Info, n.Decl.Body)
		}
		ctxs[n] = c
		return c
	}
	for _, root := range roots {
		start := findRoot(graph, root)
		if start == nil {
			// Same contract as reach: a root in a loaded package that no
			// longer resolves is rot in the root list — fail loudly.
			if pkg, ok := loaded[root.Pkg]; ok {
				p.Reportf(pkg.Files[0].Package, "hotalloc root %s not found; update the root list", root)
			}
			continue
		}
		parent := make(map[*FuncNode]*FuncNode)
		visited := map[*FuncNode]bool{start: true}
		queue := []*FuncNode{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			ctx := ctxOf(n)
			if ctx != nil {
				scanAllocs(p, n, ctx, chainString(parent, start, n), reported)
			}
			for _, e := range n.Callees {
				if ctx != nil && ctx.inCold(e.Pos) {
					continue // call only happens on a panic/debug path
				}
				if !visited[e.Callee] {
					visited[e.Callee] = true
					parent[e.Callee] = n
					queue = append(queue, e.Callee)
				}
			}
		}
	}
}

// scanAllocs reports every allocation site in one function body, tagged
// with the call chain that reached it.
func scanAllocs(p *ModulePass, n *FuncNode, ctx *allocContext, chain string, reported map[token.Pos]bool) {
	info := n.Pkg.Info

	report := func(pos token.Pos, desc string) {
		if reported[pos] || ctx.inCold(pos) {
			return
		}
		reported[pos] = true
		p.Reportf(pos, "hot-path allocation: %s (%s)", desc, chain)
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			scanCall(info, ctx, node, report)
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i, rhs := range node.Rhs {
					checkBoxing(info, ctx, lhsType(info, node.Lhs[i]), rhs, report)
				}
			}
		case *ast.ValueSpec:
			if node.Type != nil {
				if tv, ok := info.Types[node.Type]; ok {
					for _, v := range node.Values {
						checkBoxing(info, ctx, tv.Type, v, report)
					}
				}
			}
		case *ast.FuncLit:
			scanFuncLit(info, ctx, node, report)
		}
		return true
	})
}

// scanCall classifies one call expression: builtin allocators, fmt
// calls, conversions to interface, and boxing at interface parameters.
func scanCall(info *types.Info, ctx *allocContext, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(v) where T is an interface type boxes v.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(info, ctx, tv.Type, call.Args[0], report)
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				if !ctx.amortized[call] {
					report(call.Pos(), "growing append")
				}
			}
			return
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if path, ok := selectorPkgPath(info, sel); ok && path == "fmt" {
			report(call.Pos(), "fmt."+sel.Sel.Name+" call")
			return // arg boxing is folded into this finding
		}
	}

	sig, ok := info.Types[fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(info, ctx, pt, arg, report)
	}
}

// scanFuncLit reports closures that allocate: literals with captured
// variables that are stored rather than invoked or passed directly, and
// every go-statement literal.
func scanFuncLit(info *types.Info, ctx *allocContext, lit *ast.FuncLit, report func(token.Pos, string)) {
	if ctx.goLits[lit] {
		report(lit.Pos(), "closure launched by go statement")
		return
	}
	if ctx.callArgLits[lit] {
		return // assumed non-escaping callback / immediate invocation
	}
	if n := captureCount(info, lit); n > 0 {
		word := "variables"
		if n == 1 {
			word = "variable"
		}
		report(lit.Pos(), strconv.Itoa(n)+" captured "+word+" escape into stored closure")
	}
}

// checkBoxing reports arg when assigning it to target requires heap-
// boxing a concrete value into an interface.
func checkBoxing(info *types.Info, ctx *allocContext, target types.Type, arg ast.Expr, report func(token.Pos, string)) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if bt, ok := at.(*types.Basic); ok && bt.Info()&types.IsUntyped != 0 {
		if bt.Kind() == types.UntypedNil {
			return
		}
		at = types.Default(at)
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return // interface-to-interface, no new box
	}
	if pointerShaped(at) {
		return
	}
	report(arg.Pos(), "interface boxing of "+at.String())
}

// pointerShaped reports whether values of t fit the interface data word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// allocContext is the per-body syntactic context the classifiers need:
// amortized appends, cold regions (panic arguments, assert-gated debug
// blocks), and how each func literal is used.
type allocContext struct {
	amortized   map[*ast.CallExpr]bool
	coldRanges  [][2]token.Pos
	callArgLits map[*ast.FuncLit]bool
	goLits      map[*ast.FuncLit]bool
}

func newAllocContext(info *types.Info, body *ast.BlockStmt) *allocContext {
	ctx := &allocContext{
		amortized:   make(map[*ast.CallExpr]bool),
		callArgLits: make(map[*ast.FuncLit]bool),
		goLits:      make(map[*ast.FuncLit]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call := asAppendCall(info, rhs)
				if call == nil {
					continue
				}
				// x.f = append(x.f, ...) refills persistent state; the
				// same shape on a bare local grows a fresh array per call.
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if sameExpr(n.Lhs[i], call.Args[0]) {
						ctx.amortized[call] = true
					}
				}
			}
		case *ast.CallExpr:
			if call := asAppendCall(info, n); call != nil && len(call.Args) > 0 {
				if se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok && zeroHigh(info, se) {
					ctx.amortized[call] = true // append(x[:0], ...) refill
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					ctx.coldRanges = append(ctx.coldRanges, [2]token.Pos{n.Lparen, n.Rparen})
				}
			}
			for _, arg := range n.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					ctx.callArgLits[fl] = true
				}
			}
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				ctx.callArgLits[fl] = true // immediately invoked
			}
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ctx.goLits[fl] = true
			}
		case *ast.IfStmt:
			if assertGated(info, n.Cond) {
				ctx.coldRanges = append(ctx.coldRanges, [2]token.Pos{n.Body.Lbrace, n.Body.Rbrace})
			}
		}
		return true
	})
	return ctx
}

// assertGated reports whether cond references the internal/assert
// compile-time debug gate, marking the guarded block dead in release
// builds.
func assertGated(info *types.Info, cond ast.Expr) bool {
	gated := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if path, ok := selectorPkgPath(info, sel); ok && strings.HasSuffix(path, "internal/assert") {
				gated = true
			}
		}
		return !gated
	})
	return gated
}

// inCold reports whether pos falls inside a panic argument list or an
// assert-gated debug block.
func (ctx *allocContext) inCold(pos token.Pos) bool {
	for _, r := range ctx.coldRanges {
		if r[0] < pos && pos < r[1] {
			return true
		}
	}
	return false
}

// asAppendCall returns e as a call to the append builtin, or nil.
func asAppendCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return call
}

// zeroHigh reports whether se is a length-reset reslice x[...:0].
func zeroHigh(info *types.Info, se *ast.SliceExpr) bool {
	if se.High == nil {
		return false
	}
	tv, ok := info.Types[se.High]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// sameExpr reports structural equality for the expression shapes a
// self-append target can take: identifiers, field selections and index
// expressions over them.
func sameExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(a.X, b.X) && sameExpr(a.Index, b.Index)
	case *ast.BasicLit:
		b, ok := b.(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	}
	return false
}

// captureCount counts distinct variables a func literal captures from
// its enclosing function.
func captureCount(info *types.Info, lit *ast.FuncLit) int {
	captured := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures, and anything declared
		// inside the literal (params included) is its own.
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured[v] = true
		}
		return true
	})
	return len(captured)
}

// lhsType resolves the static type of an assignment target (including
// newly declared := targets).
func lhsType(info *types.Info, lhs ast.Expr) types.Type {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj, ok := info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
		if obj, ok := info.Uses[id]; ok {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}
