package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadEvasionModule loads the three evasion fixture packages — the
// restricted entry point, the cross-package helper, and the wall-clock
// implementation mounted under an allowlisted sweep path — and wraps
// them as a Module rooted at the fixture's Sim.Step.
func loadEvasionModule(t *testing.T) (*Module, []*Package) {
	t.Helper()
	loader := newDirLoader(t, map[string]string{
		"flov/internal/evasion/entry":  filepath.Join("evasion", "entry"),
		"flov/internal/evasion/helper": filepath.Join("evasion", "helper"),
		"flov/cmd/evclock":             filepath.Join("evasion", "wallclock"),
	})
	var pkgs []*Package
	for _, path := range []string{"flov/internal/evasion/entry", "flov/cmd/evclock"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	m.Roots = []RootSpec{{Pkg: "flov/internal/evasion/entry", Recv: "Sim", Func: "Step"}}
	return m, pkgs
}

// TestReachFlagsEvasionFixture is the seeded-evasion acceptance test:
// time.Now hidden behind an interface in an allowlisted package, called
// through a cross-package helper, is invisible to the per-package
// nondeterm rule but must be flagged by reach with the full call chain.
func TestReachFlagsEvasionFixture(t *testing.T) {
	m, pkgs := loadEvasionModule(t)

	// The old analyzer sees nothing anywhere in the fixture.
	for _, pkg := range pkgs {
		for _, d := range RunPackage(pkg, []*Analyzer{NondetAnalyzer}) {
			t.Errorf("nondeterm should be blind to the evasion fixture, got: %s", d)
		}
	}

	diags := RunModule(m, []*ModuleAnalyzer{ReachAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 reach finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "reach" {
		t.Fatalf("want rule reach, got %s", d.Rule)
	}
	if filepath.Base(d.Pos.Filename) != "wallclock.go" {
		t.Errorf("finding should sit at the time.Now use in wallclock.go, got %s", d.Pos)
	}
	wantChain := "entry.(*Sim).Step -> helper.Advance -> evclock.SysClock.Ticks"
	if !strings.Contains(d.Msg, "time.Now is reachable from entry point flov/internal/evasion/entry.Sim.Step") {
		t.Errorf("message lacks source and root: %s", d.Msg)
	}
	if !strings.Contains(d.Msg, wantChain) {
		t.Errorf("message lacks call chain %q: %s", wantChain, d.Msg)
	}
}

// TestCallGraphEvasionEdges pins the graph structure the reach proof
// rests on: a direct call edge into the helper and an interface
// dispatch edge to the module's lone implementation.
func TestCallGraphEvasionEdges(t *testing.T) {
	m, _ := loadEvasionModule(t)
	g := m.Graph()

	step := findRoot(g, m.Roots[0])
	if step == nil {
		t.Fatal("Sim.Step not in graph")
	}
	if len(step.Callees) != 1 || funcDisplay(step.Callees[0].Callee.Fn) != "helper.Advance" {
		t.Fatalf("Step should call exactly helper.Advance, got %v", step.Callees)
	}
	adv := step.Callees[0].Callee
	if len(adv.Callees) != 1 {
		t.Fatalf("Advance should have exactly one dispatch edge, got %v", adv.Callees)
	}
	edge := adv.Callees[0]
	if funcDisplay(edge.Callee.Fn) != "evclock.SysClock.Ticks" {
		t.Errorf("dispatch should land on SysClock.Ticks, got %s", funcDisplay(edge.Callee.Fn))
	}
	if !strings.HasPrefix(edge.Via, "dispatch on ") {
		t.Errorf("edge should be an interface dispatch, got via %q", edge.Via)
	}
	if len(edge.Callee.Sources) != 1 || edge.Callee.Sources[0].What != "time.Now" {
		t.Errorf("Ticks should record the time.Now source, got %v", edge.Callee.Sources)
	}
}

// TestReachUnresolvedRoot checks that a stale root spec over a loaded
// package fails loudly instead of silently proving nothing.
func TestReachUnresolvedRoot(t *testing.T) {
	m, _ := loadEvasionModule(t)
	m.Roots = []RootSpec{{Pkg: "flov/internal/evasion/entry", Recv: "Sim", Func: "Gone"}}
	diags := RunModule(m, []*ModuleAnalyzer{ReachAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "not found") {
		t.Fatalf("want one not-found diagnostic, got %v", diags)
	}
}

// TestParseRoot covers both accepted spellings and the error case.
func TestParseRoot(t *testing.T) {
	r, err := ParseRoot("flov/internal/network.Network.Step")
	if err != nil {
		t.Fatal(err)
	}
	want := RootSpec{Pkg: "flov/internal/network", Recv: "Network", Func: "Step"}
	if r != want {
		t.Errorf("got %+v, want %+v", r, want)
	}
	if r.String() != "flov/internal/network.Network.Step" {
		t.Errorf("String round-trip broke: %s", r.String())
	}

	r, err = ParseRoot("flov/internal/routing.YX")
	if err != nil {
		t.Fatal(err)
	}
	if (r != RootSpec{Pkg: "flov/internal/routing", Func: "YX"}) {
		t.Errorf("plain function spec parsed wrong: %+v", r)
	}

	if _, err := ParseRoot("flov/internal/network.A.B.C"); err == nil {
		t.Error("four-part spec should be rejected")
	}
}

// TestDefaultReachRootsResolve loads the real simulator packages and
// checks every built-in root still names a live function — the guard
// against the root list rotting as the code moves.
func TestDefaultReachRootsResolve(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range DefaultReachRoots() {
		if _, err := loader.Load(spec.Pkg); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	g := m.Graph()
	for _, spec := range DefaultReachRoots() {
		if findRoot(g, spec) == nil {
			t.Errorf("default root %s does not resolve", spec)
		}
	}
}

// TestLockSafeFixture checks the locksafe rule against its dedicated
// fixture, mounted inside the analyzer's service scope.
func TestLockSafeFixture(t *testing.T) {
	const path = "flov/internal/service/fixture"
	loader := newDirLoader(t, map[string]string{path: "locks_service"})
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[finding]int)
	for _, d := range RunPackage(pkg, []*Analyzer{LockSafeAnalyzer}) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "locks_service"))
	if err != nil {
		t.Fatal(err)
	}
	want := wantFindings(t, dir)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestLockSafeOutOfScope reloads the same fixture outside the service
// and nlog scope: the analyzer must not run there.
func TestLockSafeOutOfScope(t *testing.T) {
	const path = "flov/internal/fixture2"
	loader := newDirLoader(t, map[string]string{path: "locks_service"})
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunPackage(pkg, []*Analyzer{LockSafeAnalyzer}) {
		t.Errorf("locksafe ran outside its scope: %s", d)
	}
}
