package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadHotpathModule mounts the hotalloc fixture and roots it at the
// fixture's Sim.Step.
func loadHotpathModule(t *testing.T) *Module {
	t.Helper()
	const path = "flov/internal/hotfix"
	loader := newDirLoader(t, map[string]string{path: "hotpath"})
	if _, err := loader.Load(path); err != nil {
		t.Fatal(err)
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	m.HotRoots = []RootSpec{{Pkg: path, Recv: "Sim", Func: "Step"}}
	return m
}

// TestHotAllocFixture checks hotalloc against the marked fixture: every
// allocation form is flagged, and the amortized appends, non-escaping
// callbacks, pointer-shaped boxes, cold regions, suppressed sites, and
// unreachable functions stay silent.
func TestHotAllocFixture(t *testing.T) {
	m := loadHotpathModule(t)

	got := make(map[finding]int)
	for _, d := range RunModule(m, []*ModuleAnalyzer{HotAllocAnalyzer}) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "hotpath"))
	if err != nil {
		t.Fatal(err)
	}
	want := wantFindings(t, dir)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestHotAllocChain pins the full call chain on a finding two hops below
// the root: the chain is what turns "there is an allocation" into "here
// is the hot path that reaches it".
func TestHotAllocChain(t *testing.T) {
	m := loadHotpathModule(t)
	diags := RunModule(m, []*ModuleAnalyzer{HotAllocAnalyzer})

	const wantChain = "hotfix.(*Sim).Step -> hotfix.helperChain -> hotfix.(*Sim).deep"
	for _, d := range diags {
		if strings.Contains(d.Msg, wantChain) {
			if !strings.Contains(d.Msg, "interface boxing of int64") {
				t.Errorf("chained finding should be the deep boxing site: %s", d.Msg)
			}
			return
		}
	}
	t.Errorf("no hotalloc finding carries chain %q; got %v", wantChain, diags)
}

// TestHotAllocUnresolvedRoot checks that a stale hot root over a loaded
// package fails loudly instead of silently proving nothing.
func TestHotAllocUnresolvedRoot(t *testing.T) {
	m := loadHotpathModule(t)
	m.HotRoots = []RootSpec{{Pkg: "flov/internal/hotfix", Recv: "Sim", Func: "Gone"}}
	diags := RunModule(m, []*ModuleAnalyzer{HotAllocAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "not found") {
		t.Fatalf("want one not-found diagnostic, got %v", diags)
	}
}

// TestDefaultHotAllocRootsResolve loads the real simulator packages and
// checks every built-in hot root still names a live function — the guard
// against the root list rotting as the code moves.
func TestDefaultHotAllocRootsResolve(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range DefaultHotAllocRoots() {
		if _, err := loader.Load(spec.Pkg); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModule(loader.ModulePath, loader.Fset, loader.Packages())
	g := m.Graph()
	for _, spec := range DefaultHotAllocRoots() {
		if findRoot(g, spec) == nil {
			t.Errorf("default hot root %s does not resolve", spec)
		}
	}
}
