package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Machine-readable reporting and the finding baseline.
//
// The baseline file holds previously-acknowledged findings so CI can
// fail on anything new while legacy suppressions stay visible and
// auditable in one reviewed artifact instead of scattered allow
// comments. Entries match on (rule, file, message) — deliberately not
// on line numbers, so unrelated edits above a finding do not churn the
// baseline. The intended steady state for this module is an empty
// baseline: the file exists to make any future exception loud.

// JSONFinding is one diagnostic in -json output.
type JSONFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// jsonFindings converts diagnostics to their wire form with root-
// relative paths.
func jsonFindings(root string, diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONFinding{
			Rule:    d.Rule,
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Msg,
		})
	}
	return out
}

// WriteJSON emits the findings as a JSON array (never null).
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonFindings(root, diags))
}

// SARIF wire structs — the minimal subset of SARIF 2.1.0 that GitHub
// code scanning and most viewers consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// RuleDocs maps analyzer names to their one-line docs, for SARIF rule
// metadata.
func RuleDocs() map[string]string {
	docs := make(map[string]string)
	for _, a := range Analyzers() {
		docs[a.Name] = a.Doc
	}
	for _, a := range ModuleAnalyzers() {
		docs[a.Name] = a.Doc
	}
	return docs
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	docs := RuleDocs()
	var names []string
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	rules := make([]sarifRule, 0, len(names))
	for _, name := range names {
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifText{docs[name]}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "flovlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// BaselineEntry identifies one acknowledged finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-root-relative, slash-separated
	Message string `json:"message"`
}

// Baseline is the checked-in set of acknowledged findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline (path is then simply not in use yet).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a fresh baseline file.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	b := &Baseline{Version: 1}
	seen := make(map[BaselineEntry]bool)
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: relPath(root, d.Pos.Filename), Message: d.Msg}
		if !seen[e] {
			seen[e] = true
			b.Findings = append(b.Findings, e)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline splits diags into fresh findings (not in the baseline,
// these fail the run) and returns the stale baseline entries that
// matched nothing (candidates for removal, reported but not fatal).
func ApplyBaseline(b *Baseline, root string, diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	known := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e] = true
	}
	matched := make(map[BaselineEntry]bool)
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: relPath(root, d.Pos.Filename), Message: d.Msg}
		if known[e] {
			matched[e] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		if !matched[e] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// relPath renders filename relative to the module root with forward
// slashes, falling back to the input when it lies outside the root.
func relPath(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || rel == "" {
		return filepath.ToSlash(filename)
	}
	if len(rel) >= 2 && rel[:2] == ".." {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
