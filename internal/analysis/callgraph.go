package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a conservative, module-closed static call graph over
// every function declared in the loaded packages.
//
// Edges:
//
//   - direct calls to module functions and concretely-typed methods;
//   - interface dispatch, resolved to the matching method of every
//     in-module named type that implements the interface (the closed-
//     world assumption: implementations living outside the module are
//     invisible, which is sound here because the module vendors no
//     plugins and stdlib types cannot reach module-forbidden sources);
//   - function references: a function whose value is mentioned (stored
//     in a field, passed as a callback, launched with go/defer) gains
//     an edge from the mentioning function, over-approximating "anyone
//     I hand this to may call it".
//
// Function literals are attributed to their enclosing declaration, and
// package-level variable initializers are attributed to a per-package
// pseudo-function named "<init>". Reflection and unsafe are out of
// scope (the module uses neither on call paths).
//
// Each node also records the forbidden determinism sources its body
// touches (wall clock, math/rand, environment reads, order-sensitive
// map iteration), which is what the reach analyzer consumes.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// order lists nodes sorted by position so every whole-graph walk is
	// deterministic.
	order []*FuncNode
}

// FuncNode is one function in the call graph.
type FuncNode struct {
	Fn      *types.Func
	Pkg     *Package
	Decl    *ast.FuncDecl // the declaration, for analyzers that scan bodies
	Callees []CallEdge
	Sources []SourceUse
}

// CallEdge is one resolved call or reference.
type CallEdge struct {
	Callee *FuncNode
	Pos    token.Pos
	// Via describes how the edge arises: "call" for static calls,
	// "dispatch on I" for interface dispatch, "ref" for a function value
	// reference.
	Via string
}

// SourceUse is one use of a forbidden determinism source.
type SourceUse struct {
	Pos  token.Pos
	What string // e.g. "time.Now", "math/rand.Int63", "os.Getenv", "order-sensitive map iteration"
}

// Node returns the graph node for fn, or nil.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Nodes returns every node in deterministic (position) order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// envReadFuncs are os functions whose result depends on the process
// environment — forbidden on simulation paths for the same reason the
// wall clock is.
var envReadFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// BuildCallGraph constructs the module call graph.
func BuildCallGraph(m *Module) *CallGraph {
	b := &graphBuilder{
		graph:      &CallGraph{nodes: make(map[*types.Func]*FuncNode)},
		module:     m,
		dispatch:   make(map[dispatchKey][]*types.Func),
		namedTypes: collectNamedTypes(m),
	}
	// First pass: one node per declared function body, so edge
	// resolution can target any of them regardless of package order.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd}
				b.graph.nodes[fn] = node
				// Packages are sorted and files/decls follow source
				// order, so insertion order is already deterministic.
				b.graph.order = append(b.graph.order, node)
			}
		}
	}
	// Second pass: walk bodies, resolving edges and recording sources.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						b.walkBody(b.graph.nodes[fn], pkg, d.Body)
					}
				case *ast.GenDecl:
					// Package-level initializers (var x = f()) run at
					// program start, not on simulation paths; their
					// closures are deliberately outside the graph.
				}
			}
		}
	}
	for _, n := range b.graph.order {
		sort.SliceStable(n.Callees, func(i, j int) bool { return n.Callees[i].Pos < n.Callees[j].Pos })
		sort.SliceStable(n.Sources, func(i, j int) bool { return n.Sources[i].Pos < n.Sources[j].Pos })
	}
	return b.graph
}

type dispatchKey struct {
	iface  *types.Interface
	method string
}

type graphBuilder struct {
	graph      *CallGraph
	module     *Module
	dispatch   map[dispatchKey][]*types.Func
	namedTypes []*types.Named
}

// collectNamedTypes lists every named (non-interface, non-alias) type
// declared at package scope anywhere in the module, in deterministic
// order; these are the closed world for interface dispatch.
func collectNamedTypes(m *Module) []*types.Named {
	var out []*types.Named
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// walkBody records every edge and forbidden source in one function
// body (including its closures, attributed to the same node).
func (b *graphBuilder) walkBody(node *FuncNode, pkg *Package, body *ast.BlockStmt) {
	info := pkg.Info
	// calleePos marks selector/ident nodes that are the operator of a
	// call, and selSel the Sel children of visited selectors, so the
	// reference walk below does not double-count either.
	calleePos := make(map[ast.Expr]bool)
	selSel := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			calleePos[fun] = true
			b.resolveCall(node, pkg, n, fun)
		case *ast.RangeStmt:
			for _, v := range mapRangeViolations(info, n) {
				node.Sources = append(node.Sources, SourceUse{v.pos, "order-sensitive map iteration"})
				break // one source per loop is enough for a reach proof
			}
		case *ast.SelectorExpr:
			selSel[n.Sel] = true
			b.noteSelector(node, pkg, n, calleePos[n])
		case *ast.Ident:
			if calleePos[n] || selSel[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				b.addEdge(node, fn, n.Pos(), "ref")
			}
		}
		return true
	})
}

// noteSelector handles pkg.Fn / x.Method selector expressions: records
// forbidden-source uses and reference edges for method values.
func (b *graphBuilder) noteSelector(node *FuncNode, pkg *Package, sel *ast.SelectorExpr, isCallee bool) {
	info := pkg.Info
	if path, ok := selectorPkgPath(info, sel); ok {
		name := sel.Sel.Name
		switch {
		case path == "time" && wallClockFuncs[name]:
			node.Sources = append(node.Sources, SourceUse{sel.Pos(), "time." + name})
		case path == "math/rand" || path == "math/rand/v2":
			node.Sources = append(node.Sources, SourceUse{sel.Pos(), path + "." + name})
		case path == "os" && envReadFuncs[name]:
			node.Sources = append(node.Sources, SourceUse{sel.Pos(), "os." + name})
		}
	}
	if isCallee {
		return // call edges handled by resolveCall
	}
	// A method value (x.M stored or passed) is a reference edge; for
	// interface receivers it references every implementation.
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		b.methodEdges(node, s, sel.Pos(), "ref")
	} else if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		b.addEdge(node, fn, sel.Pos(), "ref")
	}
}

// resolveCall adds edges for one call expression.
func (b *graphBuilder) resolveCall(node *FuncNode, pkg *Package, call *ast.CallExpr, fun ast.Expr) {
	info := pkg.Info
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			b.addEdge(node, fn, call.Pos(), "call")
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			b.methodEdges(node, s, call.Pos(), "call")
			return
		}
		// Package-qualified function or func-typed field: the former
		// resolves through Uses; the latter has no static target and is
		// covered by reference edges at its assignment sites.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			b.addEdge(node, fn, call.Pos(), "call")
		}
	}
}

// methodEdges adds edges for a method selection: the concrete method
// itself, or — for interface receivers — every in-module implementation.
func (b *graphBuilder) methodEdges(node *FuncNode, s *types.Selection, pos token.Pos, how string) {
	m, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := s.Recv()
	if recv != nil {
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			for _, impl := range b.implementers(iface, m) {
				b.addEdge(node, impl, pos, "dispatch on "+recvDisplay(recv))
			}
			return
		}
	}
	b.addEdge(node, m, pos, how)
}

// implementers returns the concrete in-module methods an interface
// method call can dispatch to, memoized per (interface, method).
func (b *graphBuilder) implementers(iface *types.Interface, m *types.Func) []*types.Func {
	key := dispatchKey{iface, m.Name()}
	if impls, ok := b.dispatch[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range b.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		selection := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
		if selection == nil {
			continue
		}
		if impl, ok := selection.Obj().(*types.Func); ok {
			impls = append(impls, impl)
		}
	}
	b.dispatch[key] = impls
	return impls
}

// addEdge links caller -> callee when the callee is a module function
// with a body in the graph. Methods of instantiated generic types (e.g.
// sim.Delay[*noc.Flit].Push) are distinct objects from the declaration
// the graph indexed, so resolution goes through Origin.
func (b *graphBuilder) addEdge(caller *FuncNode, callee *types.Func, pos token.Pos, via string) {
	target, ok := b.graph.nodes[callee]
	if !ok {
		target, ok = b.graph.nodes[callee.Origin()]
	}
	if !ok || target == caller {
		return
	}
	caller.Callees = append(caller.Callees, CallEdge{Callee: target, Pos: pos, Via: via})
}

// recvDisplay names an interface receiver type for edge annotations.
func recvDisplay(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
