package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafeAnalyzer enforces the serving layer's mutex discipline in
// internal/service and internal/nlog (the only concurrent packages;
// the simulator core is single-threaded by design):
//
//   - every return path of a function that takes a lock releases it
//     (directly or via defer) — a forgotten unlock on an early error
//     return deadlocks the job queue under load, the kind of bug that
//     only fires when a 429/cancel path is actually exercised;
//   - no channel send, in-module interface method call, or call through
//     a function value while a lock is held: the callee can block
//     indefinitely or re-enter the lock (observer callbacks must be
//     invoked after unlocking, as feed.append's wake-channel close —
//     which cannot block — is the one sanctioned pattern);
//   - no goroutine launched inside a loop may capture a variable that
//     the loop reassigns but declared outside it: all iterations share
//     one binding, so the goroutines race on it.
//
// The walker is structural, not a full CFG: branches merge
// conservatively (a lock held on either arm counts as held after), and
// loop bodies are walked once. That over-approximates "held", which is
// the safe direction for a linter with per-line suppressions.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "enforce unlock-on-every-path and no blocking calls under locks in service/nlog",
	Run:  runLockSafe,
}

// lockSafeScope lists the import-path prefixes the analyzer covers.
var lockSafeScope = []string{
	"flov/internal/service",
	"flov/internal/nlog",
	"flov/internal/cluster",
}

func runLockSafe(p *Pass) {
	inScope := false
	for _, prefix := range lockSafeScope {
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkLockDiscipline(fd.Body)
			p.checkGoLoopCapture(fd.Body)
		}
	}
}

// checkLockDiscipline analyzes one function body plus each of its
// closures as an independent unit (a closure runs on its own goroutine
// or at an unknown later time, so lock state does not flow into it).
func (p *Pass) checkLockDiscipline(body *ast.BlockStmt) {
	w := &lockWalker{p: p}
	units := []*ast.BlockStmt{body}
	for _, fl := range funcLitsOf(body) {
		units = append(units, fl.Body)
	}
	for _, unit := range units {
		st := newLockState()
		if terminated := w.stmts(unit.List, st, unit); !terminated {
			w.reportHeld(st, unit.End()-1, "function ends")
		}
	}
}

// lockState tracks which lock expressions are held at a program point.
type lockState struct {
	held     map[string]token.Pos // lock key -> acquisition site
	deferred map[string]bool      // keys with a pending deferred unlock
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]token.Pos), deferred: make(map[string]bool)}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// merge unions other into st: held-anywhere is held (the conservative
// direction for every check this walker does).
func (st *lockState) merge(other *lockState) {
	for k, v := range other.held {
		if _, ok := st.held[k]; !ok {
			st.held[k] = v
		}
	}
	for k, v := range other.deferred {
		if v {
			st.deferred[k] = true
		}
	}
}

// heldKeys returns the held lock keys in sorted order.
func (st *lockState) heldKeys() []string {
	var keys []string
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type lockWalker struct {
	p *Pass
}

// stmts walks a statement list; the boolean reports whether control
// cannot fall out the end (return, panic-free termination not modeled).
// encl is the innermost enclosing block, used to skip closures.
func (w *lockWalker) stmts(list []ast.Stmt, st *lockState, encl ast.Node) bool {
	for _, s := range list {
		if w.stmt(s, st, encl) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState, encl ast.Node) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := w.lockOp(call); ok {
				w.applyLockOp(st, key, op, call.Pos())
				return false
			}
		}
		w.scanCalls(s, st)
	case *ast.DeferStmt:
		if key, op, ok := w.lockOp(s.Call); ok && op == opRelease {
			if _, held := st.held[key]; !held {
				w.p.Reportf(s.Pos(), "deferred unlock of %s, which is not held here", key)
			}
			st.deferred[key] = true
			return false
		}
		// Other deferred calls run at return, outside the held window
		// this walker models; skip them.
	case *ast.ReturnStmt:
		w.scanCalls(s, st)
		w.reportHeld(st, s.Pos(), "returns")
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treat as
		// terminating this path (the loop re-walk covers the rest).
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List, st, encl)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st, encl)
		}
		w.scanCalls(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.stmts(s.Body.List, thenSt, encl)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt, encl)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st, encl)
		}
		bodySt := st.clone()
		w.stmts(s.Body.List, bodySt, encl)
		// The body may run zero times: continue from the entry state.
		// An unconditional loop with no break never falls through.
		if s.Cond == nil && !hasShallowBreak(s.Body) {
			return true
		}
	case *ast.RangeStmt:
		bodySt := st.clone()
		w.stmts(s.Body.List, bodySt, encl)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branching(s, st, encl)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st, encl)
	case *ast.GoStmt:
		// Runs on another goroutine: its body is analyzed as a separate
		// unit; launching it does not touch this goroutine's locks.
	case *ast.SendStmt:
		w.reportBlocked(st, s.Pos(), "channel send")
		w.scanCalls(s, st)
	default:
		w.scanCalls(s, st)
	}
	return false
}

// branching handles switch/type-switch/select uniformly: every clause
// starts from the entry state; exits merge conservatively.
func (w *lockWalker) branching(s ast.Stmt, st *lockState, encl ast.Node) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st, encl)
		}
		w.scanCalls(s.Tag, st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	entry := st.clone()
	merged := (*lockState)(nil)
	allTerm := true
	for _, cs := range body.List {
		var list []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				w.scanCalls(e, entry)
			}
			list = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				if send, ok := cs.Comm.(*ast.SendStmt); ok {
					w.reportBlocked(entry, send.Pos(), "channel send")
				}
			}
			list = cs.Body
		}
		caseSt := entry.clone()
		if !w.stmts(list, caseSt, encl) {
			allTerm = false
			if merged == nil {
				merged = caseSt
			} else {
				merged.merge(caseSt)
			}
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); (hasDefault || isSelect) && allTerm && len(body.List) > 0 {
		// A select always takes some case; a switch needs a default to
		// guarantee one runs.
		return true
	}
	if merged != nil {
		st.merge(merged)
	}
	return false
}

// lock operation kinds.
const (
	opAcquire = iota
	opRelease
)

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock calls on sync types and
// returns the lock's identity key (the receiver expression's text).
func (w *lockWalker) lockOp(call *ast.CallExpr) (string, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	key := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return key, opAcquire, true
	case "Unlock", "RUnlock":
		return key, opRelease, true
	}
	return "", 0, false
}

func (w *lockWalker) applyLockOp(st *lockState, key string, op int, pos token.Pos) {
	switch op {
	case opAcquire:
		if prev, held := st.held[key]; held && !st.deferred[key] {
			w.p.Reportf(pos, "%s locked again while already held (locked at %s)", key, w.p.Fset.Position(prev))
		}
		st.held[key] = pos
	case opRelease:
		if _, held := st.held[key]; !held && !st.deferred[key] {
			w.p.Reportf(pos, "%s unlocked but not held on this path", key)
		}
		delete(st.held, key)
		delete(st.deferred, key)
	default:
	}
}

// reportHeld flags locks still held (and not deferred-released) at a
// path exit.
func (w *lockWalker) reportHeld(st *lockState, pos token.Pos, how string) {
	for _, key := range st.heldKeys() {
		if st.deferred[key] {
			continue
		}
		w.p.Reportf(pos, "%s with %s held (locked at %s); unlock on every path or defer the unlock",
			how, key, w.p.Fset.Position(st.held[key]))
	}
}

// reportBlocked flags a potentially blocking operation under any held
// lock, deferred or not.
func (w *lockWalker) reportBlocked(st *lockState, pos token.Pos, what string) {
	for _, key := range st.heldKeys() {
		w.p.Reportf(pos, "%s while holding %s (locked at %s); release the lock first",
			what, key, w.p.Fset.Position(st.held[key]))
	}
}

// scanCalls inspects a node (skipping nested closures) for calls that
// can block or re-enter while a lock is held: calls through function
// values and in-module interface methods.
func (w *lockWalker) scanCalls(node ast.Node, st *lockState) {
	if node == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, ok := w.blockingCallee(call); ok {
			w.reportBlocked(st, call.Pos(), what)
		}
		return true
	})
}

// blockingCallee classifies a call as one that may block or re-enter:
// a call through a func-typed value, or an in-module interface method.
func (w *lockWalker) blockingCallee(call *ast.CallExpr) (string, bool) {
	info := w.p.Info
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return "", false // conversion
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if v, ok := obj.(*types.Var); ok && isFuncType(v.Type()) {
			return "call through function value " + fun.Name, true
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			switch s.Kind() {
			case types.FieldVal:
				if isFuncType(s.Type()) {
					return "call through function-valued field " + types.ExprString(fun), true
				}
			case types.MethodVal:
				if _, isIface := s.Recv().Underlying().(*types.Interface); !isIface {
					return "", false
				}
				if named, ok := s.Recv().(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && w.p.InModule(obj.Pkg().Path()) {
						return "interface method call " + types.ExprString(fun), true
					}
				}
			default:
			}
		}
	}
	return "", false
}

// isFuncType reports whether t is (under the hood) a function type.
func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// hasShallowBreak reports whether body contains a break that targets
// the enclosing loop (i.e. not inside a nested loop/switch/select,
// which consume unlabeled breaks).
func hasShallowBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			// A labeled break can target the enclosing loop from
			// anywhere; assume it does (conservative: loop may exit).
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return true
	})
	return found
}

// checkGoLoopCapture flags goroutines launched inside a loop that
// capture a variable the loop reassigns but which is declared outside
// the loop: all iterations share one binding, so every goroutine reads
// whatever the loop wrote last (and races with the writes).
func (p *Pass) checkGoLoopCapture(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		loop := n
		assigned := loopAssignedOuterVars(p, loop)
		if len(assigned) == 0 {
			return true
		}
		ast.Inspect(loopBody, func(inner ast.Node) bool {
			gs, ok := inner.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(gs.Call, func(c ast.Node) bool {
				ident, ok := c.(*ast.Ident)
				if !ok {
					return true
				}
				if v, ok := p.Info.Uses[ident].(*types.Var); ok && assigned[v] {
					p.Reportf(ident.Pos(), "goroutine captures %s, which the enclosing loop reassigns; pass it as an argument or declare it inside the loop", ident.Name)
				}
				return true
			})
			return true
		})
		return true
	})
}

// loopAssignedOuterVars collects variables assigned inside the loop
// (including its range/for clause) whose declarations lie outside it.
func loopAssignedOuterVars(p *Pass, loop ast.Node) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	note := func(e ast.Expr) {
		ident, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := p.Info.Uses[ident].(*types.Var)
		if !ok {
			return
		}
		if v.Pos() < loop.Pos() || v.Pos() >= loop.End() {
			out[v] = true
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				note(n.Key)
				note(n.Value)
			}
		}
		return true
	})
	return out
}
