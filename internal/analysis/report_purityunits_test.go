package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// purityUnitDiags produces real purity and unitsafe findings from the
// fixtures, so the reporting round-trips below exercise the actual rule
// names, file paths, and message shapes.
func purityUnitDiags(t *testing.T) ([]Diagnostic, string) {
	t.Helper()
	m, _ := loadPurityModule(t)
	diags := RunModule(m, []*ModuleAnalyzer{PurityAnalyzer})
	diags = append(diags, RunModule(loadUnitfixModule(t), []*ModuleAnalyzer{UnitsafeAnalyzer})...)
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if byRule["purity"] == 0 || byRule["unitsafe"] == 0 {
		t.Fatalf("fixtures should yield both rules, got %v", byRule)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return diags, root
}

// TestPurityUnitsafeJSONRoundTrip renders the fixture findings as JSON
// and checks rule, module-relative file, and message survive.
func TestPurityUnitsafeJSONRoundTrip(t *testing.T) {
	diags, root := purityUnitDiags(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var got []JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(diags) {
		t.Fatalf("want %d findings, got %d", len(diags), len(got))
	}
	for i, f := range got {
		if f.Rule != diags[i].Rule || f.Message != diags[i].Msg {
			t.Errorf("finding %d mangled: %+v vs %+v", i, f, diags[i])
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding %d file should be module-relative: %s", i, f.File)
		}
	}
}

// TestPurityUnitsafeSARIF checks the SARIF log carries descriptors for
// both rules and results in the right fixture files.
func TestPurityUnitsafeSARIF(t *testing.T) {
	diags, root := purityUnitDiags(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID] = true
	}
	if !ids["purity"] || !ids["unitsafe"] {
		t.Fatalf("SARIF rule metadata missing the new rules: %v", ids)
	}
	seen := map[string]bool{}
	for _, r := range log.Runs[0].Results {
		seen[r.RuleID] = true
		if len(r.Locations) != 1 {
			t.Errorf("result %s missing location", r.RuleID)
			continue
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		switch r.RuleID {
		case "purity":
			if filepath.Base(uri) != "purefix.go" {
				t.Errorf("purity result should sit in purefix.go, got %s", uri)
			}
		case "unitsafe":
			if filepath.Base(uri) != "unitfix.go" {
				t.Errorf("unitsafe result should sit in unitfix.go, got %s", uri)
			}
		}
	}
	if !seen["purity"] || !seen["unitsafe"] {
		t.Fatalf("SARIF results missing a rule: %v", seen)
	}
}

// TestPurityUnitsafeBaseline acknowledges the fixture findings, then
// checks line moves stay acknowledged and a reworded finding surfaces
// fresh.
func TestPurityUnitsafeBaseline(t *testing.T) {
	diags, root := purityUnitDiags(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	moved := append([]Diagnostic(nil), diags...)
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	fresh, stale := ApplyBaseline(b, root, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line moves should not disturb matching: fresh=%v stale=%v", fresh, stale)
	}

	next := append([]Diagnostic(nil), diags...)
	for i := range next {
		if next[i].Rule == "unitsafe" {
			next[i].Msg = "entirely new unitsafe finding"
			break
		}
	}
	fresh, stale = ApplyBaseline(b, root, next)
	if len(fresh) != 1 || fresh[0].Rule != "unitsafe" {
		t.Errorf("want the reworded unitsafe finding fresh, got %v", fresh)
	}
	if len(stale) != 1 {
		t.Errorf("want the original unitsafe entry stale, got %v", stale)
	}
}
