package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer forbids == and != on floating-point operands.
// Latency and energy accumulators are floats whose exact bit pattern
// depends on summation order; comparing them with == either works by
// accident or breaks silently when an optimization reorders an
// accumulation. Code should compare against an epsilon, or restructure
// to compare the integers the floats were derived from. Comparisons
// where both operands are compile-time constants are exempt (the
// result is decided at compile time).
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid == and != on float operands",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
			if xt.Value != nil && yt.Value != nil {
				return true // constant comparison, folded at compile time
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				p.Reportf(be.OpPos, "%s on float operands; compare with an epsilon or restructure around integers", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t is (or defaults to) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := types.Default(t).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
