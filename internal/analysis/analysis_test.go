package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// finding is a (file, line, rule) triple, the granularity at which the
// fixture declares its expected diagnostics.
type finding struct {
	file string // base name
	line int
	rule string
}

// newTestLoader builds a loader over the real module with the fixture
// directory mapped to the given fake in-module import paths.
func newTestLoader(t *testing.T, importPaths ...string) (*Loader, string) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	loader.Overrides = make(map[string]string)
	for _, p := range importPaths {
		loader.Overrides[p] = dir
	}
	return loader, dir
}

// newDirLoader builds a loader over the real module with arbitrary
// testdata subdirectories mapped to fake in-module import paths.
func newDirLoader(t *testing.T, mapping map[string]string) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Overrides = make(map[string]string)
	for path, subdir := range mapping {
		dir, err := filepath.Abs(filepath.Join("testdata", subdir))
		if err != nil {
			t.Fatal(err)
		}
		loader.Overrides[path] = dir
	}
	return loader
}

// wantFindings scans the fixture sources for trailing
// "// want <rule>..." markers.
func wantFindings(t *testing.T, dir string) map[finding]int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rules := make(map[string]bool)
	for _, a := range Analyzers() {
		rules[a.Name] = true
	}
	for _, a := range ModuleAnalyzers() {
		rules[a.Name] = true
	}
	want := make(map[finding]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(after) {
				if rules[rule] { // prose mentioning "// want" is not a marker
					want[finding{e.Name(), i + 1, rule}]++
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("no // want markers found under %s", dir)
	}
	return want
}

// TestAnalyzersOnFixture checks every analyzer against the marked
// violations in testdata/fixture, including that the //flovlint:allow
// suppression and the allowed idioms produce no extra findings.
func TestAnalyzersOnFixture(t *testing.T) {
	const path = "flov/internal/fixture" // restricted: nondeterm applies
	loader, dir := newTestLoader(t, path)
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[finding]int)
	for _, d := range RunPackage(pkg, Analyzers()) {
		got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
	}

	want := wantFindings(t, dir)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.rule, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.rule, n)
		}
	}
}

// TestNondetAllowlistedPath reloads the same fixture under a cmd/ path,
// where wall-clock time and ambient randomness are legitimate: the
// nondeterm analyzer must stay silent.
func TestNondetAllowlistedPath(t *testing.T) {
	const path = "flov/cmd/fixture"
	loader, _ := newTestLoader(t, path)
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunPackage(pkg, []*Analyzer{NondetAnalyzer}) {
		t.Errorf("allowlisted package flagged: %s", d)
	}
}

// TestNondetServiceAllowlisted reloads the fixture under the serving
// layer's import paths: flovd is a wall-clock program (queues, HTTP
// deadlines, metrics), so the nondeterm analyzer must stay silent for
// internal/service and its subpackages.
func TestNondetServiceAllowlisted(t *testing.T) {
	for _, path := range []string{"flov/internal/service", "flov/internal/service/client", "flov/internal/cluster"} {
		loader, _ := newTestLoader(t, path)
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range RunPackage(pkg, []*Analyzer{NondetAnalyzer}) {
			t.Errorf("%s: allowlisted package flagged: %s", path, d)
		}
	}
}

// TestNondetFaultStreamPermitted pins the fault-injection carve-out from
// the permitted side: the real fault subsystem and the reliability
// harness draw all randomness from the dedicated seeded sim.RNG stream,
// so the nondeterm analyzer must pass them without any allowlist entry —
// the approved stream is the permission.
func TestNondetFaultStreamPermitted(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"flov/internal/fault", "flov/internal/relcheck"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range RunPackage(pkg, []*Analyzer{NondetAnalyzer}) {
			t.Errorf("%s: seeded-stream package flagged: %s", path, d)
		}
	}
}

// TestNondetSimulationStaysForbidden pins the other side of the
// serving-layer carve-out: core simulation packages — the fault
// subsystem included — must still reject wall-clock time and ambient
// randomness, with exactly the findings the fixture's markers declare.
func TestNondetSimulationStaysForbidden(t *testing.T) {
	for _, path := range []string{"flov/internal/network/fixture", "flov/internal/sim/fixture", "flov/internal/fault/fixture"} {
		loader, dir := newTestLoader(t, path)
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[finding]int)
		for _, d := range RunPackage(pkg, []*Analyzer{NondetAnalyzer}) {
			got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}]++
		}
		want := make(map[finding]int)
		for f, n := range wantFindings(t, dir) {
			if f.rule == NondetAnalyzer.Name {
				want[f] = n
			}
		}
		if len(want) == 0 {
			t.Fatal("fixture declares no nondeterm markers")
		}
		for f, n := range want {
			if got[f] != n {
				t.Errorf("%s: %s:%d: want %d nondeterm finding(s), got %d", path, f.file, f.line, n, got[f])
			}
		}
		for f, n := range got {
			if want[f] == 0 {
				t.Errorf("%s: %s:%d: unexpected nondeterm finding (x%d)", path, f.file, f.line, n)
			}
		}
	}
}

// TestDiscoverSkipsTestdata checks that ./... expansion covers the real
// packages but never descends into testdata fixtures.
func TestDiscoverSkipsTestdata(t *testing.T) {
	loader, _ := newTestLoader(t)
	paths, err := loader.Discover([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Discover leaked a testdata package: %s", p)
		}
	}
	for _, must := range []string{"flov", "flov/internal/analysis", "flov/internal/sweep", "flov/cmd/flovlint"} {
		if !seen[must] {
			t.Errorf("Discover missed %s (got %d packages)", must, len(paths))
		}
	}
}

// TestDiscoverSubtreePattern checks ./dir/... expansion: everything at
// or under the prefix, nothing outside it.
func TestDiscoverSubtreePattern(t *testing.T) {
	loader, _ := newTestLoader(t)
	paths, err := loader.Discover([]string{"./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("./cmd/... matched nothing")
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		if p != "flov/cmd" && !strings.HasPrefix(p, "flov/cmd/") {
			t.Errorf("./cmd/... leaked %s", p)
		}
	}
	if !seen["flov/cmd/flovlint"] {
		t.Errorf("./cmd/... missed flov/cmd/flovlint: %v", paths)
	}
}
