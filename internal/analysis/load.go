package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path   string // import path
	Module string // module path
	Dir    string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader parses and type-checks module packages without any dependency
// on golang.org/x/tools: module-internal imports are resolved against
// the module root, standard-library imports through the stdlib source
// importer.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet
	BuildTags  []string

	// Overrides maps an import path to a directory, letting tests load
	// fixture packages under testdata/ as if they lived in the module.
	Overrides map[string]string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleRoot, reading the module
// path from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// buildContext returns the file-matching context for the configured
// build tags.
func (l *Loader) buildContext() build.Context {
	ctx := build.Default
	ctx.BuildTags = append([]string(nil), l.BuildTags...)
	return ctx
}

// dirFor resolves an import path inside the module to a directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if dir, ok := l.Overrides[path]; ok {
		return dir, true
	}
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// inModule reports whether path should be loaded from the module tree.
func (l *Loader) inModule(path string) bool {
	_, ok := l.dirFor(path)
	return ok
}

// Load parses and type-checks the package at the given import path,
// memoizing the result. Test files (_test.go) are excluded: flovlint's
// rules target non-test code.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not a module package", path)
	}
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}

	pkg := &Package{
		Path:   path,
		Module: l.ModulePath,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Packages returns every module package the loader has brought in so
// far — explicitly loaded ones plus module-internal dependencies —
// sorted by import path.
func (l *Loader) Packages() []*Package {
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, l.pkgs[path])
	}
	return out
}

// importPkg resolves one import during type checking.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// sourceFiles lists the non-test Go files of dir that match the build
// context (so //go:build flovdebug variants are selected consistently
// with an ordinary build).
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := l.buildContext()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Discover expands package patterns into import paths. Supported
// patterns: "./..." (every package under the module root), a relative
// directory ("./internal/sim"), or a plain import path.
func (l *Loader) Discover(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			// Subtree pattern like ./cmd/...: every module package at or
			// under the prefix.
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(strings.TrimSuffix(pat, "/..."), "./")))
			prefix := l.ModulePath
			if rel != "." {
				prefix = l.ModulePath + "/" + rel
			}
			paths, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkModule lists every buildable package directory in the module,
// skipping testdata, hidden and vendor directories.
func (l *Loader) walkModule() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := l.sourceFiles(p)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return paths, err
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
