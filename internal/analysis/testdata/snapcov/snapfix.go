// Package snapfix is the statecov fixture: one full snapshot root, one
// half-pair type, a nested struct the type walk descends into, a
// type-level exemption, and every skip-comment outcome.
package snapfix

// Config is reachable from Sim.Cfg but wholly exempt: the type-level
// skip stops the walk before its fields.
//
//flovsnap:skip immutable fixture configuration
type Config struct {
	Rate float64 // uncaptured, but exempt through the type skip
}

// Packet rides in Sim.queue, so the walk descends into it.
type Packet struct {
	ID   int
	Meta int // want statecov
}

// State is the wire form CaptureState produces.
type State struct {
	Cycle int64
	IDs   []int
}

// Sim is the snapshot root: it declares the full pair.
type Sim struct {
	Cycle   int64
	Cfg     Config
	queue   []*Packet
	Uncov   int   // want statecov
	scratch []int //flovsnap:skip rebuilt from queue on first use
	bad     int   //flovsnap:skip // want statecov
}

// CaptureState serializes the live state.
func (s *Sim) CaptureState() State {
	st := State{Cycle: s.Cycle}
	for _, p := range s.queue {
		st.IDs = append(st.IDs, p.ID)
	}
	_ = s.Cfg
	return st
}

// RestoreState applies a snapshot.
func (s *Sim) RestoreState(st State) {
	s.Cycle = st.Cycle
	s.queue = s.queue[:0]
	for _, id := range st.IDs {
		s.queue = append(s.queue, &Packet{ID: id})
	}
}

// CaptOnly declares only the capture half of the pair.
type CaptOnly struct { // want statecov
	N int
}

// CaptureState serializes N.
func (c *CaptOnly) CaptureState() int { return c.N }
