// Package fixture contains deliberate violations of the locksafe rule,
// marked with trailing "// want locksafe" comments. The tests load it
// under flov/internal/service/fixture, inside the analyzer's scope.
package fixture

import (
	"context"
	"sync"
)

// Store is the guarded fixture type.
type Store struct {
	mu   sync.Mutex
	n    int
	ch   chan int
	hook func(int)
}

// Observer is an in-module interface; calling it under a lock can
// re-enter or block.
type Observer interface {
	Notify(int)
}

// Get is the canonical clean pattern: defer the unlock.
func (s *Store) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Bump leaks the lock on the early return.
func (s *Store) Bump(limit int) bool {
	s.mu.Lock()
	if s.n >= limit {
		return false // want locksafe
	}
	s.n++
	s.mu.Unlock()
	return true
}

// Publish sends on a channel while holding the lock.
func (s *Store) Publish() {
	s.mu.Lock()
	s.ch <- s.n // want locksafe
	s.mu.Unlock()
}

// Hook calls through a function-valued field while holding the lock.
func (s *Store) Hook() {
	s.mu.Lock()
	s.hook(s.n) // want locksafe
	s.mu.Unlock()
}

// Tell calls an in-module interface method while holding the lock.
func (s *Store) Tell(o Observer) {
	s.mu.Lock()
	o.Notify(s.n) // want locksafe
	s.mu.Unlock()
}

// TellAfter is the sanctioned shape: snapshot under the lock, notify
// after releasing it.
func (s *Store) TellAfter(o Observer) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	o.Notify(n)
}

// TellAllowed is Tell with a justified suppression.
func (s *Store) TellAllowed(o Observer) {
	s.mu.Lock()
	//flovlint:allow locksafe -- fixture: observer is non-blocking by contract
	o.Notify(s.n)
	s.mu.Unlock()
}

// WithCtx may call stdlib interface methods under the lock: ctx.Err
// cannot re-enter this package.
func (s *Store) WithCtx(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ctx.Err()
}

// Relock acquires a lock it already holds.
func (s *Store) Relock() {
	s.mu.Lock()
	s.mu.Lock() // want locksafe
	s.n++
	s.mu.Unlock()
}

// Unbalanced unlocks on a path that never locked.
func (s *Store) Unbalanced(b bool) {
	if b {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
	s.mu.Unlock() // want locksafe
}

// DeferFirst defers the unlock before anything is held.
func (s *Store) DeferFirst() {
	defer s.mu.Unlock() // want locksafe
	s.mu.Lock()
	s.n++
}

// BothArms locks on both branches and releases once after the merge.
func (s *Store) BothArms(b bool) {
	if b {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	s.n++
	s.mu.Unlock()
}

// Runner is the service event-loop pattern: lock and unlock within
// each iteration of an unconditional loop.
func (s *Store) Runner(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// process consumes goroutine work.
func process(int) {}

// Spawn launches goroutines that all share the outer variable the loop
// keeps reassigning.
func Spawn(work []int) {
	var w int
	for _, x := range work {
		w = x
		go func() {
			process(w) // want locksafe
		}()
	}
}

// SpawnEach uses the per-iteration range variable, which every
// goroutine captures independently.
func SpawnEach(work []int) {
	for _, x := range work {
		go process(x)
	}
}
