// Package helper is the cross-package laundering layer of the reach
// evasion fixture: it consumes the clock through an interface, so
// nothing in this file names the time package and no per-package rule
// has anything to see.
package helper

// Clock abstracts a tick source; the concrete implementation decides
// whether it is deterministic.
type Clock interface {
	Ticks() int64
}

// Advance reads the clock on behalf of the caller.
func Advance(c Clock) int64 {
	return c.Ticks()
}
