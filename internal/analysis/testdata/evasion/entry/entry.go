// Package entry is the simulation side of the reach evasion fixture:
// Step never mentions time, rand or os, yet transitively reaches
// time.Now through helper.Advance and the Clock interface.
package entry

import "flov/internal/evasion/helper"

// Sim is a fixture stand-in for network.Network.
type Sim struct {
	clock helper.Clock
	now   int64
}

// Step advances the simulation one cycle.
func (s *Sim) Step() {
	s.now = helper.Advance(s.clock)
}
