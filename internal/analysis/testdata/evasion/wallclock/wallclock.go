// Package evclock hides time.Now behind the helper.Clock interface
// from inside a wall-clock-allowlisted import path (the tests mount it
// under flov/cmd/evclock). The per-package nondeterm rule is blind to
// it by construction; the module-wide reach walk is not.
package evclock

import (
	"time"

	"flov/internal/evasion/helper"
)

// SysClock reads the wall clock.
type SysClock struct{}

// Ticks implements helper.Clock with the real time.
func (SysClock) Ticks() int64 {
	return time.Now().UnixNano()
}

var _ helper.Clock = SysClock{}
