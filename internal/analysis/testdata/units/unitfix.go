// Package unitfix exercises the unitsafe analyzer: two tagged unit
// types and one instance of every way a dimensional error can slip
// past Go's nominal typing, marked with the finding it must produce,
// next to the explicit forms that must stay silent.
package unitfix

// PJ is the fixture's energy unit.
type PJ float64 //flovunit pJ

// W is the fixture's power unit.
type W float64 //flovunit W

// EFixPJ is a typed package-level constant: the declaration is the
// attachment.
const EFixPJ PJ = 1.30

// frac is a dimensionless scale factor.
const frac = 0.01

// Table is package-level calibration data: raw constants allowed.
var Table = []PJ{1.5, 2.5}

// Budget has a unit-typed field for the composite-literal sink.
type Budget struct {
	Limit PJ
}

func consume(p PJ) {}

func report(f float64) {}

// toPJ legitimately crosses dimensions and says so.
//
//flovunit:convert fixture W·cycles/Hz dimension crossing
func toPJ(w W, cycles float64) PJ {
	return PJ(float64(w) * cycles * 1e12)
}

//flovunit:convert // want unitsafe
func reasonless(w W) float64 {
	return float64(w)
}

// Bad collects the findings.
func Bad(p PJ, w W) {
	mixed := float64(p) + float64(w) // want unitsafe
	report(mixed)

	q := p + 1.5 // want unitsafe
	var total PJ
	total = 2.5 // want unitsafe
	consume(total + q)

	raw := float64(p) * 2 // want unitsafe
	report(raw)

	wrong := PJ(w) // want unitsafe
	consume(wrong)

	b := Budget{Limit: 9.5} // want unitsafe
	consume(b.Limit)

	consume(4.5) // want unitsafe
}

func leak() PJ {
	return 6.5 // want unitsafe
}

// Good collects the explicit forms that must stay silent.
func Good(p PJ, w W) {
	ok1 := PJ(1.5)
	scaled := p * 2
	scaled2 := p * (1 + frac)
	var ok3 PJ = 3.5
	var zero PJ
	zero = 0
	consume(ok1 + scaled + scaled2 + ok3 + zero)
	consume(toPJ(w, 1000))
	consume(EFixPJ)
	consume(Table[0])
}
