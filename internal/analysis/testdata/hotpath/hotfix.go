// Package hotfix is the hotalloc fixture: one hot root (Sim.Step) whose
// call tree holds every allocation form the analyzer classifies, the
// amortized and cold shapes it must stay silent on, and an allocating
// function only reachable through a debug-gated edge.
package hotfix

import (
	"fmt"

	"flov/internal/assert"
)

// Sink is the interface target boxing findings land on.
type Sink interface {
	Put(v any)
}

// Sim is the fixture's hot-path state.
type Sim struct {
	buf  []int
	seen []int
	sink Sink
	hook func()
}

// Step is the fixture hot root.
func (s *Sim) Step(now int64) {
	s.buf = append(s.buf, int(now)) // amortized: persistent self-append
	s.refill()
	s.allocate(now)
	s.box(now)
	s.closures(now)
	s.cold(now)
	helperChain(s, now)
}

// refill exercises the length-reset refill exemption.
func (s *Sim) refill() {
	s.seen = append(s.seen[:0], len(s.buf))
}

// allocate exercises the builtin allocators; the bare-local self-append
// grows a fresh backing array every call, so it is not amortized.
func (s *Sim) allocate(now int64) {
	m := make([]int, 4) // want hotalloc
	p := new(Sim)       // want hotalloc
	var local []int
	local = append(local, int(now)) // want hotalloc
	_, _, _ = m, p, local
}

// box exercises interface boxing at a parameter, a declaration, and an
// assignment, plus the fmt fold and the pointer-shaped exemptions.
func (s *Sim) box(now int64) {
	s.sink.Put(now)  // want hotalloc
	var v any = now  // want hotalloc
	v = s.buf        // want hotalloc
	s.sink.Put(s)    // *Sim is pointer-shaped: no box
	v = s.sink       // interface-to-interface: no new box
	fmt.Println(now) // want hotalloc
	_ = v
}

// closures exercises the stored-closure and go-statement findings and
// the direct-callback exemption.
func (s *Sim) closures(now int64) {
	s.hook = func() { s.buf = append(s.buf, int(now)) } // want hotalloc
	s.each(func(x int) { _ = x + int(now) })
	go func() { s.refill() }() // want hotalloc
}

// each visits buf entries through a non-escaping callback.
func (s *Sim) each(f func(int)) {
	for _, x := range s.buf {
		f(x)
	}
}

// cold exercises the two automatic exemptions: panic arguments and the
// assert-gated debug block, whose call edges are not even traversed.
func (s *Sim) cold(now int64) {
	if now < 0 {
		panic(fmt.Sprintf("bad cycle %d", now))
	}
	if assert.On {
		s.debugDump()
	}
}

// debugDump allocates freely; it is only reachable through the
// assert-gated block, so none of it is reported.
func (s *Sim) debugDump() {
	dump := make([]int, len(s.buf))
	copy(dump, s.buf)
	fmt.Println(dump)
}

// helperChain is the middle link of the chain the marker test pins; its
// own allocation is deliberately waived.
func helperChain(s *Sim, now int64) {
	s.deep(now)
	t := make([]int64, 1) //flovlint:allow hotalloc -- fixture waiver
	_ = t
}

// deep carries the boxing site whose reported chain must read
// Step -> helperChain -> deep.
func (s *Sim) deep(now int64) {
	s.sink.Put(now) // want hotalloc
}

// rebuild is not reachable from Step: cold-start work, never reported.
func (s *Sim) rebuild(n int) {
	s.buf = make([]int, 0, n)
	s.seen = make([]int, 0, n)
}
