package fixture

// SumAndCollect leaks map-iteration order into a float accumulator and
// a result slice.
func SumAndCollect(m map[string]float64) ([]string, float64) {
	var out []string
	var sum float64
	for k, v := range m {
		out = append(out, k) // want maprange
		sum += v             // want maprange
	}
	return out, sum
}

// SortedKeys is the canonical allowed key-collection idiom.
func SortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// CountValues is order-insensitive and allowed: integer accumulation
// commutes.
func CountValues(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
