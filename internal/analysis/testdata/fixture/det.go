// Package fixture contains deliberate violations of every flovlint
// rule, each marked with a trailing "// want <rule>" comment. The
// analysis tests load this package under a fake in-module import path
// and compare the diagnostics against the markers. It lives under
// testdata so ordinary builds, vet and flovlint ./... never see it.
package fixture

import (
	"math/rand" // want nondeterm
	"time"
)

// Jitter mixes ambient randomness with wall-clock time — the exact
// combination that makes a cached sweep row unreproducible.
func Jitter() int64 {
	start := time.Now() // want nondeterm
	v := rand.Int63()
	return v + int64(time.Since(start)) // want nondeterm
}
