package fixture

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Sloppy discards errors in all three flagged forms: a mixed blank
// assignment, a deferred call, and a bare statement writing to a
// writer that can fail.
func Sloppy(w io.Writer, path string) {
	f, _ := os.Open(path) // want errcheck
	defer f.Close()       // want errcheck
	fmt.Fprintf(w, "hi")  // want errcheck
}

// Careful shows the allowed forms: never-failing builders, terminal
// chatter, and an explicit all-blank discard.
func Careful() string {
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintln(os.Stderr, "progress")
	_, _ = fmt.Fprintf(io.Discard, "explicitly dropped")
	return b.String()
}
