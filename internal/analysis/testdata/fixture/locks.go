package fixture

import "sync"

// Guarded carries a mutex, so by-value copies desynchronize it.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Incr uses the lock properly through a pointer receiver.
func (g *Guarded) Incr() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// ReadByValue copies the receiver's mutex.
func (g Guarded) ReadByValue() int { // want copylock
	return g.n
}

// CopyOut duplicates an existing guarded value.
func CopyOut(g *Guarded) int {
	cp := *g // want copylock
	return cp.n
}

// Fresh construction from a composite literal is fine.
func Fresh() *Guarded {
	g := Guarded{}
	return &g
}
