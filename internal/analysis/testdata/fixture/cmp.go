package fixture

// EqualLatency compares measured floats exactly.
func EqualLatency(a, b float64) bool {
	return a == b // want floatcmp
}

// SentinelOK shows a suppressed comparison: the value is assigned,
// never computed, so exact equality is intentional.
func SentinelOK(v float64) bool {
	//flovlint:allow floatcmp -- -1 is an assigned sentinel, never computed
	return v == -1
}

// IntCompare is exact and fine.
func IntCompare(a, b int) bool {
	return a == b
}
