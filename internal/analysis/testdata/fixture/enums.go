package fixture

// Phase is an iota enum like core.PowerState: a named integer type with
// package-level constants, so switches over it must be exhaustive.
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseDrain
	PhaseSleep
	PhaseWake
	// NumPhases is an iota-count sentinel, not a member; exhaustive
	// switches need not cover it.
	NumPhases
)

// PhaseInitial aliases PhaseIdle: covering either name covers the value.
const PhaseInitial = PhaseIdle

// Describe misses PhaseWake and has no default.
func Describe(p Phase) string {
	switch p { // want exhaustive
	case PhaseIdle:
		return "idle"
	case PhaseDrain:
		return "drain"
	case PhaseSleep:
		return "sleep"
	}
	return "?"
}

// Advance covers every member, so the missing sentinel is fine.
func Advance(p Phase) Phase {
	switch p {
	case PhaseInitial: // alias of PhaseIdle: covers the value
		return PhaseDrain
	case PhaseDrain:
		return PhaseSleep
	case PhaseSleep:
		return PhaseWake
	case PhaseWake:
		return PhaseIdle
	}
	return p
}

// Gated is incomplete but declares its fallback explicitly.
func Gated(p Phase) bool {
	switch p {
	case PhaseSleep:
		return true
	default:
		return false
	}
}

// Matches switches on a non-constant case, where coverage is not
// decidable; the analyzer stays silent.
func Matches(p, q Phase) bool {
	switch p {
	case q:
		return true
	}
	return false
}

// mode has a single constant: a named value, not an enum.
type mode int

const onlyMode mode = 0

// useMode keeps the lone-constant type out of scope.
func useMode(m mode) bool {
	switch m {
	case onlyMode:
		return true
	}
	return false
}

// DescribeAllowed is Describe with the finding suppressed.
func DescribeAllowed(p Phase) string {
	//flovlint:allow exhaustive -- fixture: suppression must silence the rule
	switch p {
	case PhaseIdle:
		return "idle"
	}
	return "?"
}
