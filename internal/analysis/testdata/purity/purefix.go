// Package purefix exercises the purity analyzer: TickSleep and
// TickShared are declared pure roots whose allowlist covers only
// Machine's own fields, wake is a declared boundary, and every escape
// hatch of the mutation-summary engine appears once, marked with the
// finding it must produce.
package purefix

// Counter is shared state outside the allowlist; any write reaching it
// from a root is impure.
type Counter struct {
	N     int
	Elems []int
	ByKey map[string]int
}

// Mutator is dispatched through an interface from the root.
type Mutator interface{ Mutate() }

// Impl is the module's only Mutator; closed-world dispatch must find
// its write.
type Impl struct{ hits int }

// Mutate is reached from TickSleep via interface dispatch.
func (i *Impl) Mutate() {
	i.hits++ // want purity
}

// Global is package-level state: always impure.
var Global int

// Hidden is written only behind the wake boundary; the walk must not
// reach it.
var Hidden int

// Machine is the fixture's gated router stand-in. Its own fields are
// allowlisted via purefix.Machine.*.
type Machine struct {
	ticks  int
	shared *Counter
	sink   Mutator
	cb     func()
}

// TickSleep is the primary pure root.
func (m *Machine) TickSleep() {
	m.ticks++ // allowed: Machine's own field

	m.shared.N++            // want purity
	m.shared.Elems[0] = 2   // want purity
	m.shared.ByKey["x"] = 1 // want purity

	scribble(&m.ticks) // allowed: the pointee is Machine.ticks
	scribble(&Global)  // want purity

	bump(m.shared) // want purity

	m.sink.Mutate() // finding lands at the write inside Impl.Mutate

	invoke(m.cb) // want purity

	hook := func() {
		Global = 3 // want purity
	}
	hook()

	m.shared.N = 0 //flovpure:assume reset is replayed from the wake log on exit

	Global = 4 //flovpure:assume // want purity

	if m.ticks > 5 {
		m.wake() // boundary: Hidden write must stay silent
	}
}

// TickShared is a root that writes through its own parameter — nothing
// above the root can vouch for where out points.
func (m *Machine) TickShared(out *int) {
	*out = m.ticks // want purity
}

// TickQuiet is a root with no findings at all, for the stale-boundary
// test.
func (m *Machine) TickQuiet() {
	m.ticks++
}

// wake is the declared boundary: its write is the legitimate end of
// quiescence.
func (m *Machine) wake() {
	Hidden = 1
}

// scribble writes through its pointer parameter; impurity depends on
// what each call site binds.
func scribble(p *int) {
	*p = 7
}

// bump writes through its pointer parameter; the finding lands at each
// call site, keyed by the pointee type the argument dereferences to.
func bump(c *Counter) {
	c.N += 2
}

// invoke calls a function value passed in by its caller.
func invoke(h func()) {
	h()
}
