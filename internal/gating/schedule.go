// Package gating produces core power-gating schedules: which cores the
// (simulated) OS has put to sleep at any given cycle. FLOV routers react
// to these locally; Router Parking's fabric manager reconfigures the
// network on every change.
package gating

import (
	"fmt"

	"flov/internal/sim"
	"flov/internal/topology"
)

// Event switches the gated-core set at a given cycle.
type Event struct {
	At    int64  // cycle the new mask takes effect
	Gated []bool // per-node: true when the core is power-gated
}

// Schedule is a time-ordered sequence of gating events. The first event
// must be at cycle 0. The zero value is unusable; use New or Static.
type Schedule struct {
	n      int
	events []Event
}

// New builds a schedule from events; events must be sorted by At with the
// first at cycle 0, and every mask must have n entries.
func New(n int, events []Event) (*Schedule, error) {
	if len(events) == 0 || events[0].At != 0 {
		return nil, fmt.Errorf("gating: schedule must start with an event at cycle 0")
	}
	prev := int64(-1)
	for _, e := range events {
		if e.At <= prev {
			return nil, fmt.Errorf("gating: events must be strictly ordered, got %d after %d", e.At, prev)
		}
		if len(e.Gated) != n {
			return nil, fmt.Errorf("gating: mask has %d entries, want %d", len(e.Gated), n)
		}
		prev = e.At
	}
	return &Schedule{n: n, events: events}, nil
}

// Static builds a schedule with a single, constant gated set.
func Static(gated []bool) *Schedule {
	cp := append([]bool(nil), gated...)
	return &Schedule{n: len(cp), events: []Event{{At: 0, Gated: cp}}}
}

// N returns the number of nodes covered.
func (s *Schedule) N() int { return s.n }

// Events returns the underlying event list (do not mutate).
func (s *Schedule) Events() []Event { return s.events }

// MaskAt returns the gated mask in effect at cycle now.
func (s *Schedule) MaskAt(now int64) []bool {
	cur := s.events[0].Gated
	for _, e := range s.events[1:] {
		if e.At > now {
			break
		}
		cur = e.Gated
	}
	return cur
}

// NextChange returns the cycle of the first event strictly after now, or
// -1 if none remain.
func (s *Schedule) NextChange(now int64) int64 {
	for _, e := range s.events {
		if e.At > now {
			return e.At
		}
	}
	return -1
}

// RandomGated returns a mask gating `count` cores chosen uniformly at
// random, never gating nodes in protect (e.g. memory-controller corners).
func RandomGated(m topology.Mesh, count int, protect []int, rng *sim.RNG) []bool {
	n := m.N()
	prot := make([]bool, n)
	for _, p := range protect {
		prot[p] = true
	}
	var eligible []int
	for i := 0; i < n; i++ {
		if !prot[i] {
			eligible = append(eligible, i)
		}
	}
	if count > len(eligible) {
		count = len(eligible)
	}
	mask := make([]bool, n)
	perm := rng.Perm(len(eligible))
	for i := 0; i < count; i++ {
		mask[eligible[perm[i]]] = true
	}
	return mask
}

// FractionGated returns a mask gating ⌊frac*eligible⌋ cores.
func FractionGated(m topology.Mesh, frac float64, protect []int, rng *sim.RNG) []bool {
	eligible := m.N() - len(protect)
	count := int(frac * float64(eligible))
	return RandomGated(m, count, protect, rng)
}

// CountGated returns the number of gated cores in a mask.
func CountGated(mask []bool) int {
	n := 0
	for _, g := range mask {
		if g {
			n++
		}
	}
	return n
}
