package gating

import (
	"testing"
	"testing/quick"

	"flov/internal/sim"
	"flov/internal/topology"
)

func mesh8(t testing.TB) topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticSchedule(t *testing.T) {
	mask := make([]bool, 4)
	mask[2] = true
	s := Static(mask)
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	got := s.MaskAt(12345)
	if !got[2] || got[0] {
		t.Fatal("MaskAt wrong")
	}
	if s.NextChange(0) != -1 {
		t.Fatal("static schedule has no changes")
	}
	// Static copies the mask.
	mask[0] = true
	if s.MaskAt(0)[0] {
		t.Fatal("Static did not copy the mask")
	}
}

func TestScheduleValidation(t *testing.T) {
	n := 4
	ok := []Event{{At: 0, Gated: make([]bool, n)}, {At: 10, Gated: make([]bool, n)}}
	if _, err := New(n, ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := [][]Event{
		{},
		{{At: 5, Gated: make([]bool, n)}}, // must start at 0
		{{At: 0, Gated: make([]bool, n)}, {At: 0, Gated: make([]bool, n)}}, // strictly ordered
		{{At: 0, Gated: make([]bool, 3)}},                                  // wrong width
	}
	for i, evs := range bad {
		if _, err := New(n, evs); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestMaskAtAndNextChange(t *testing.T) {
	n := 2
	m0 := []bool{false, false}
	m1 := []bool{true, false}
	m2 := []bool{false, true}
	s, err := New(n, []Event{{At: 0, Gated: m0}, {At: 100, Gated: m1}, {At: 200, Gated: m2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaskAt(99)[0] || s.MaskAt(100)[0] != true || s.MaskAt(250)[1] != true {
		t.Fatal("MaskAt selects wrong event")
	}
	if s.NextChange(0) != 100 || s.NextChange(100) != 200 || s.NextChange(200) != -1 {
		t.Fatal("NextChange wrong")
	}
}

func TestRandomGatedCountAndProtect(t *testing.T) {
	m := mesh8(t)
	protect := []int{0, 7, 56, 63}
	mask := RandomGated(m, 20, protect, sim.NewRNG(5))
	if CountGated(mask) != 20 {
		t.Fatalf("gated %d, want 20", CountGated(mask))
	}
	for _, p := range protect {
		if mask[p] {
			t.Fatalf("protected node %d gated", p)
		}
	}
}

func TestRandomGatedClampsToEligible(t *testing.T) {
	m := mesh8(t)
	mask := RandomGated(m, 1000, []int{0}, sim.NewRNG(5))
	if CountGated(mask) != 63 {
		t.Fatalf("gated %d, want 63", CountGated(mask))
	}
}

func TestFractionGated(t *testing.T) {
	m := mesh8(t)
	mask := FractionGated(m, 0.5, nil, sim.NewRNG(7))
	if CountGated(mask) != 32 {
		t.Fatalf("gated %d, want 32", CountGated(mask))
	}
}

// Property: RandomGated is deterministic in its seed and never gates
// protected nodes.
func TestRandomGatedProperty(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(seed uint32, countRaw uint8) bool {
		count := int(countRaw) % 60
		a := RandomGated(m, count, []int{1, 2}, sim.NewRNG(uint64(seed)))
		b := RandomGated(m, count, []int{1, 2}, sim.NewRNG(uint64(seed)))
		if a[1] || a[2] || CountGated(a) != count {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
