package topology

import (
	"testing"
	"testing/quick"
)

func mesh8(t *testing.T) Mesh {
	t.Helper()
	m, err := NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshRejectsTiny(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {0, 0}, {-3, 4}} {
		if _, err := NewMesh(dims[0], dims[1]); err == nil {
			t.Errorf("NewMesh(%d,%d) accepted", dims[0], dims[1])
		}
	}
}

func TestXYIDRoundTrip(t *testing.T) {
	m := mesh8(t)
	for id := 0; id < m.N(); id++ {
		x, y := m.XY(id)
		if m.ID(x, y) != id {
			t.Fatalf("round trip failed for %d", id)
		}
	}
}

func TestDirectionOpposite(t *testing.T) {
	pairs := map[Direction]Direction{North: South, South: North, East: West, West: East}
	for d, o := range pairs {
		if d.Opposite() != o {
			t.Errorf("%v.Opposite() = %v", d, d.Opposite())
		}
	}
}

func TestOppositeLocalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Local.Opposite()
}

// Property: neighbor relation is symmetric with opposite directions.
func TestNeighborSymmetry(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(idRaw uint8, dRaw uint8) bool {
		id := int(idRaw) % m.N()
		d := Direction(dRaw % 4)
		nb := m.Neighbor(id, d)
		if nb < 0 {
			return true
		}
		return m.Neighbor(nb, d.Opposite()) == id
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborEdges(t *testing.T) {
	m := mesh8(t)
	sw := m.ID(0, 0)
	if m.Neighbor(sw, South) != -1 || m.Neighbor(sw, West) != -1 {
		t.Fatal("south-west corner has southern/western neighbors")
	}
	if m.Neighbor(sw, North) != m.ID(0, 1) || m.Neighbor(sw, East) != m.ID(1, 0) {
		t.Fatal("south-west corner neighbors wrong")
	}
	if m.Neighbor(sw, Local) != -1 {
		t.Fatal("Local direction must have no neighbor")
	}
}

func TestCornerEdgeClassification(t *testing.T) {
	m := mesh8(t)
	corners := m.Corners()
	for _, c := range corners {
		if !m.IsCorner(c) || !m.IsEdge(c) {
			t.Errorf("corner %d misclassified", c)
		}
	}
	if m.IsCorner(m.ID(3, 0)) {
		t.Error("(3,0) is not a corner")
	}
	if !m.IsEdge(m.ID(3, 0)) {
		t.Error("(3,0) is an edge")
	}
	if m.IsEdge(m.ID(3, 3)) {
		t.Error("(3,3) is interior")
	}
}

func TestAONColumn(t *testing.T) {
	m := mesh8(t)
	if m.AONColumn() != 7 {
		t.Fatalf("AON column = %d", m.AONColumn())
	}
	if !m.InAONColumn(m.ID(7, 3)) || m.InAONColumn(m.ID(6, 3)) {
		t.Fatal("InAONColumn wrong")
	}
}

func TestFLOVDims(t *testing.T) {
	m := mesh8(t)
	cases := []struct {
		x, y   int
		fx, fy bool
	}{
		{0, 0, false, false}, // corner: no FLOV links
		{3, 0, true, false},  // bottom edge: X only
		{0, 3, false, true},  // left edge: Y only
		{3, 3, true, true},   // interior: both
		{7, 7, false, false}, // corner
	}
	for _, c := range cases {
		fx, fy := m.FLOVDims(m.ID(c.x, c.y))
		if fx != c.fx || fy != c.fy {
			t.Errorf("FLOVDims(%d,%d) = %v,%v want %v,%v", c.x, c.y, fx, fy, c.fx, c.fy)
		}
	}
}

func TestHops(t *testing.T) {
	m := mesh8(t)
	if h := m.Hops(m.ID(0, 0), m.ID(7, 7)); h != 14 {
		t.Fatalf("corner-to-corner hops = %d", h)
	}
	if h := m.Hops(5, 5); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
}

// Property: DirectionTo always reduces distance (or is Local at dest).
func TestDirectionToProgress(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(a, b uint8) bool {
		src, dst := int(a)%m.N(), int(b)%m.N()
		d := m.DirectionTo(src, dst, true)
		if src == dst {
			return d == Local
		}
		nb := m.Neighbor(src, d)
		return nb >= 0 && m.Hops(nb, dst) == m.Hops(src, dst)-1
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectionString(t *testing.T) {
	want := map[Direction]string{North: "N", East: "E", South: "S", West: "W", Local: "L"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%v.String() = %q", d, d.String())
		}
	}
}
