// Package topology describes the 2D mesh topology used by the FLOV NoC:
// node coordinates, port directions, neighbor arithmetic and the
// always-on (AON) column that the FLOV routing algorithm relies on.
package topology

import "fmt"

// Direction identifies a router port. The four cardinal directions index
// inter-router links; Local is the network-interface (core) port.
type Direction int

// Port directions. The numeric order is load-bearing: it is used to index
// per-port arrays everywhere in the simulator.
const (
	North Direction = iota
	East
	South
	West
	Local
	NumPorts // number of ports on a mesh router
)

// NumLinkDirs is the number of inter-router link directions (excludes Local).
const NumLinkDirs = 4

// String returns a short human-readable name for the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the direction a flit leaving through d arrives from at
// the neighbor: North<->South, East<->West. It panics for Local.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		panic("topology: Opposite of non-cardinal direction")
	}
}

// IsVertical reports whether d runs along the Y dimension.
func (d Direction) IsVertical() bool { return d == North || d == South }

// Mesh is a W x H 2D mesh. Node ids are row-major: id = y*Width + x,
// with x growing East and y growing North. Node 0 is the south-west corner.
type Mesh struct {
	Width  int
	Height int
}

// NewMesh returns a mesh of the given dimensions. Width and Height must be
// at least 2 so that every router has a neighbor in each dimension.
func NewMesh(width, height int) (Mesh, error) {
	if width < 2 || height < 2 {
		return Mesh{}, fmt.Errorf("topology: mesh must be at least 2x2, got %dx%d", width, height)
	}
	return Mesh{Width: width, Height: height}, nil
}

// N returns the number of nodes.
func (m Mesh) N() int { return m.Width * m.Height }

// XY returns the coordinates of node id.
func (m Mesh) XY(id int) (x, y int) { return id % m.Width, id / m.Width }

// ID returns the node id at coordinates (x, y).
func (m Mesh) ID(x, y int) int { return y*m.Width + x }

// InBounds reports whether (x, y) is a valid coordinate.
func (m Mesh) InBounds(x, y int) bool {
	return x >= 0 && x < m.Width && y >= 0 && y < m.Height
}

// Neighbor returns the node id adjacent to id in direction d, or -1 if id
// is on the mesh edge in that direction (or d is Local).
func (m Mesh) Neighbor(id int, d Direction) int {
	x, y := m.XY(id)
	switch d {
	case North:
		y++
	case South:
		y--
	case East:
		x++
	case West:
		x--
	default:
		return -1
	}
	if !m.InBounds(x, y) {
		return -1
	}
	return m.ID(x, y)
}

// HasNeighbor reports whether id has a neighbor in direction d.
func (m Mesh) HasNeighbor(id int, d Direction) bool { return m.Neighbor(id, d) >= 0 }

// DirectionTo returns the direction of the first hop from src toward dst
// under pure dimension-order preference given (dx, dy) deltas; it is a
// low-level helper — routing policy lives in package routing.
func (m Mesh) DirectionTo(src, dst int, yFirst bool) Direction {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	if yFirst {
		if dy > sy {
			return North
		}
		if dy < sy {
			return South
		}
	}
	if dx > sx {
		return East
	}
	if dx < sx {
		return West
	}
	if dy > sy {
		return North
	}
	if dy < sy {
		return South
	}
	return Local
}

// IsCorner reports whether node id sits on a mesh corner.
func (m Mesh) IsCorner(id int) bool {
	x, y := m.XY(id)
	return (x == 0 || x == m.Width-1) && (y == 0 || y == m.Height-1)
}

// IsEdge reports whether node id sits on the mesh boundary (including
// corners).
func (m Mesh) IsEdge(id int) bool {
	x, y := m.XY(id)
	return x == 0 || x == m.Width-1 || y == 0 || y == m.Height-1
}

// AONColumn returns the x coordinate of the always-on router column used
// by the FLOV routing algorithm (the last/east-most column, per the paper).
func (m Mesh) AONColumn() int { return m.Width - 1 }

// InAONColumn reports whether node id is in the always-on column.
func (m Mesh) InAONColumn(id int) bool {
	x, _ := m.XY(id)
	return x == m.AONColumn()
}

// Corners returns the four corner node ids (SW, SE, NW, NE), where the
// paper's full-system configuration places the memory controllers.
func (m Mesh) Corners() [4]int {
	return [4]int{
		m.ID(0, 0),
		m.ID(m.Width-1, 0),
		m.ID(0, m.Height-1),
		m.ID(m.Width-1, m.Height-1),
	}
}

// Hops returns the minimal hop count between two nodes.
func (m Mesh) Hops(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

// FLOVDims returns which dimensions of node id can host FLOV bypass links
// when the router is power-gated: a dimension qualifies only if the router
// has neighbors on both sides in that dimension (paper §III). Corner
// routers have none and are simply isolated when gated.
func (m Mesh) FLOVDims(id int) (xDim, yDim bool) {
	x, y := m.XY(id)
	return x > 0 && x < m.Width-1, y > 0 && y < m.Height-1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
