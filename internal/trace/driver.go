package trace

import (
	"fmt"

	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/noc"
	"flov/internal/sim"
)

// Packet kinds used by the closed-loop protocol.
const (
	kindMCRequest uint8 = iota + 1
	kindMCReply
	kindPeerRequest
	kindPeerReply
)

// Virtual networks, mirroring the MESI traffic classes of Table I:
// requests, forwarded/cache-to-cache transfers, and data responses.
const (
	vnetRequest = 0
	vnetForward = 1
	vnetData    = 2
)

// coreState tracks one core's closed-loop execution.
type coreState struct {
	slots     []int64 // per-MSHR cycle at which the slot may issue again; -1 = request in flight
	remaining int     // transactions left to issue this phase
	inFlight  int
}

// pendingReply is a reply scheduled after MC/peer service latency.
type pendingReply struct {
	at  int64
	src int // replying node
	dst int
	req uint64 // request packet id
	mc  bool
}

// Outcome is what a full-system run produces for Figs. 8(c)/(d).
type Outcome struct {
	Benchmark    string
	Mechanism    string
	RuntimeCyc   int64
	Transactions int64
	// Energies in pJ over the whole run.
	StaticPJ, DynamicPJ, TotalPJ float64
	AvgPktLatency                float64
	Completed                    bool
}

// String renders a one-line summary.
func (o Outcome) String() string {
	return fmt.Sprintf("%s/%s: runtime=%d cycles, txns=%d, Estat=%.2fuJ Edyn=%.2fuJ Etot=%.2fuJ, avgLat=%.1f",
		o.Benchmark, o.Mechanism, o.RuntimeCyc, o.Transactions,
		o.StaticPJ/1e6, o.DynamicPJ/1e6, o.TotalPJ/1e6, o.AvgPktLatency)
}

// Driver executes one benchmark profile on one network.
type Driver struct {
	net  *network.Network //flovsnap:skip wiring installed by NewDriver
	prof Profile
	rng  *sim.RNG

	cores   []coreState
	mcs     []int        //flovsnap:skip derived from mesh corners at construction
	mcSet   map[int]bool //flovsnap:skip derived from mesh corners at construction
	replies []pendingReply
	masks   [][]bool //flovsnap:skip pre-drawn deterministically at construction
	phase   int
	txns    int64

	activeList []int

	started  bool
	finished bool
}

// NewDriver prepares a closed-loop run. The network must have been built
// with a FullSystem-style config (3 vnets), no traffic generator, and no
// schedule; the driver owns gating masks and injection.
func NewDriver(n *network.Network, prof Profile, seed uint64) *Driver {
	d := &Driver{
		net:   n,
		prof:  prof,
		rng:   sim.NewRNG(seed ^ 0xfeedface),
		cores: make([]coreState, n.Cfg.N()),
		mcSet: make(map[int]bool),
	}
	corners := n.Mesh.Corners()
	d.mcs = corners[:]
	for _, mc := range d.mcs {
		d.mcSet[mc] = true
	}
	// Pre-draw one gating mask per phase (MC corners protected).
	for p := 0; p < prof.Phases; p++ {
		mask := gating.FractionGated(n.Mesh, prof.GatedFraction, d.mcs, d.rng.Fork(uint64(p)+100))
		d.masks = append(d.masks, mask)
	}
	for i := range n.NIs {
		n.NIs[i].OnDeliver = d.onDeliver
	}
	n.InjectHook = d.tickInject
	return d
}

// startPhase applies the phase mask and hands out per-core quotas.
func (d *Driver) startPhase(p int) {
	d.phase = p
	d.net.SetGatingMask(d.masks[p])
	d.activeList = d.activeList[:0]
	for id := range d.cores {
		c := &d.cores[id]
		c.remaining = 0
		if !d.masks[p][id] && !d.mcSet[id] {
			c.remaining = d.prof.QuotaPerCore
			c.slots = c.slots[:0]
			for s := 0; s < d.prof.MSHRs; s++ {
				c.slots = append(c.slots, d.net.Now()+int64(d.rng.Intn(d.prof.ThinkMean+1)))
			}
			d.activeList = append(d.activeList, id)
		}
	}
}

// phaseDone reports whether every active core finished its quota and has
// no replies outstanding.
func (d *Driver) phaseDone() bool {
	for _, id := range d.activeList {
		c := &d.cores[id]
		if c.remaining > 0 || c.inFlight > 0 {
			return false
		}
	}
	return len(d.replies) == 0
}

// tickInject is called by the network each cycle: issue due requests and
// inject due replies.
func (d *Driver) tickInject(now int64) {
	// MC/peer replies whose service latency elapsed.
	kept := d.replies[:0]
	for _, r := range d.replies {
		if r.at > now {
			kept = append(kept, r)
			continue
		}
		kind, vnet := kindPeerReply, vnetForward
		if r.mc {
			kind, vnet = kindMCReply, vnetData
		}
		p := d.net.NewPacket(r.src, r.dst, vnet, d.prof.RespFlits)
		p.Kind = kind
		p.ReplyTo = r.req
		d.net.NIs[r.src].Enqueue(p)
	}
	d.replies = kept

	// Request issue from free MSHR slots.
	for _, id := range d.activeList {
		c := &d.cores[id]
		if c.remaining <= 0 {
			continue
		}
		for s := range c.slots {
			if c.remaining <= 0 {
				break
			}
			if c.slots[s] < 0 || c.slots[s] > now {
				continue
			}
			var dst int
			var kind uint8
			if d.rng.Float64() < d.prof.MCFraction {
				dst = d.mcs[d.rng.Intn(len(d.mcs))]
				kind = kindMCRequest
			} else {
				dst = d.randomActivePeer(id)
				if dst < 0 {
					dst = d.mcs[d.rng.Intn(len(d.mcs))]
					kind = kindMCRequest
				} else {
					kind = kindPeerRequest
				}
			}
			p := d.net.NewPacket(id, dst, vnetRequest, d.prof.ReqFlits)
			p.Kind = kind
			d.net.NIs[id].Enqueue(p)
			c.slots[s] = -1
			c.remaining--
			c.inFlight++
		}
	}
}

// randomActivePeer picks an active non-MC core other than id, or -1.
func (d *Driver) randomActivePeer(id int) int {
	if len(d.activeList) < 2 {
		return -1
	}
	for i := 0; i < 8; i++ {
		p := d.activeList[d.rng.Intn(len(d.activeList))]
		if p != id {
			return p
		}
	}
	return -1
}

// onDeliver reacts to packet arrivals: requests schedule replies,
// replies free MSHR slots.
func (d *Driver) onDeliver(p *noc.Packet, now int64) {
	switch p.Kind {
	case kindMCRequest:
		d.replies = append(d.replies, pendingReply{
			at: now + int64(d.prof.MCServiceLat), src: p.Dst, dst: p.Src, req: p.ID, mc: true,
		})
	case kindPeerRequest:
		d.replies = append(d.replies, pendingReply{
			at: now + int64(d.prof.PeerServiceLat), src: p.Dst, dst: p.Src, req: p.ID, mc: false,
		})
	case kindMCReply, kindPeerReply:
		c := &d.cores[p.Dst]
		c.inFlight--
		d.txns++
		think := 1 + d.rng.Intn(2*d.prof.ThinkMean+1) // mean ~ ThinkMean
		for s := range c.slots {
			if c.slots[s] < 0 {
				c.slots[s] = now + int64(think)
				break
			}
		}
	}
}

// ensureStarted arms the first phase exactly once, so a run advanced in
// checkpointed increments starts the same way an uninterrupted one does.
func (d *Driver) ensureStarted() {
	if d.started {
		return
	}
	d.started = true
	d.net.Ledger.SetEnabled(true)
	d.startPhase(0)
}

// RunUntil advances the closed-loop run until every phase completes or
// the cycle counter reaches until, whichever comes first. It reports
// whether all phases have finished. Calling it repeatedly with growing
// bounds executes the exact cycle sequence of a single Run call, which
// is what lets checkpoints interleave with execution.
func (d *Driver) RunUntil(until int64) bool {
	d.ensureStarted()
	for !d.finished && d.net.Now() < until {
		d.net.Step()
		if d.phaseDone() {
			if d.phase+1 >= d.prof.Phases {
				d.finished = true
			} else {
				d.startPhase(d.phase + 1)
			}
		}
	}
	return d.finished
}

// Finished reports whether every phase has completed.
func (d *Driver) Finished() bool { return d.finished }

// Run executes all phases and returns the outcome. maxCycles bounds the
// run; an incomplete outcome signals livelock (a test failure upstream).
func (d *Driver) Run(maxCycles int64) Outcome {
	d.RunUntil(maxCycles)
	return d.Outcome()
}

// Outcome builds the run summary at the current cycle.
func (d *Driver) Outcome() Outcome {
	return Outcome{
		Benchmark:     d.prof.Name,
		Mechanism:     d.net.Mech.Name(),
		RuntimeCyc:    d.net.Now(),
		Transactions:  d.txns,
		StaticPJ:      d.net.Ledger.StaticEnergyPJ(),
		DynamicPJ:     d.net.Ledger.DynamicEnergyPJ(),
		TotalPJ:       d.net.Ledger.TotalEnergyPJ(),
		AvgPktLatency: d.net.Stats.AvgLatency(),
		Completed:     d.finished,
	}
}
