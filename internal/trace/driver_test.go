package trace

import (
	"testing"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/network"
	"flov/internal/rp"
)

// buildNet assembles a full-system network (3 vnets, no generator).
func buildNet(t *testing.T, mech network.Mechanism) *network.Network {
	t.Helper()
	cfg := config.FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 30 // the driver owns the loop
	n, err := network.New(cfg, mech, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// shortProfile trims a profile for fast unit testing.
func shortProfile() Profile {
	p, _ := ProfileByName("bodytrack")
	p.QuotaPerCore = 40
	p.Phases = 2
	return p
}

func TestDriverCompletesAllMechanisms(t *testing.T) {
	mechs := map[string]func() network.Mechanism{
		"baseline": func() network.Mechanism { return network.NewBaseline() },
		"rp":       func() network.Mechanism { return rp.New() },
		"rflov":    func() network.Mechanism { return core.NewRFLOV() },
		"gflov":    func() network.Mechanism { return core.NewGFLOV() },
	}
	for name, mk := range mechs {
		n := buildNet(t, mk())
		d := NewDriver(n, shortProfile(), 11)
		out := d.Run(3_000_000)
		if !out.Completed {
			t.Fatalf("%s: did not complete: %s", name, out)
		}
		if out.Transactions == 0 {
			t.Fatalf("%s: no transactions", name)
		}
		t.Logf("%s: %s", name, out)
	}
}

// Headline shape: gFLOV saves static energy vs both Baseline and RP, and
// runtime degradation vs Baseline stays small.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system comparison")
	}
	prof := shortProfile()
	prof.QuotaPerCore = 120

	run := func(mech network.Mechanism) Outcome {
		n := buildNet(t, mech)
		return NewDriver(n, prof, 11).Run(10_000_000)
	}
	base := run(network.NewBaseline())
	rpo := run(rp.New())
	gf := run(core.NewGFLOV())
	t.Logf("base: %s", base)
	t.Logf("rp:   %s", rpo)
	t.Logf("gflov:%s", gf)
	if !base.Completed || !rpo.Completed || !gf.Completed {
		t.Fatal("incomplete run")
	}
	if gf.StaticPJ >= base.StaticPJ {
		t.Errorf("gFLOV static energy %.0f >= baseline %.0f", gf.StaticPJ, base.StaticPJ)
	}
	if gf.StaticPJ >= rpo.StaticPJ {
		t.Errorf("gFLOV static energy %.0f >= RP %.0f", gf.StaticPJ, rpo.StaticPJ)
	}
	slowdown := float64(gf.RuntimeCyc)/float64(base.RuntimeCyc) - 1
	if slowdown > 0.10 {
		t.Errorf("gFLOV slowdown vs baseline too high: %.1f%%", slowdown*100)
	}
}
