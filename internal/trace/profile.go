// Package trace is the full-system (gem5 + PARSEC 2.1) substitute: a
// closed-loop, finite-MSHR request/reply driver with per-benchmark
// synthetic profiles.
//
// The paper's full-system results rest on two feedback paths that this
// driver reproduces: (1) idle cores are power-gated by the OS, so routers
// can gate too; (2) network latency feeds back into execution time
// because each core tolerates only a few outstanding misses. Absolute
// runtimes differ from gem5, but normalized energy/performance deltas
// between mechanisms retain the paper's shape.
//
// Work is fixed: each benchmark runs a set number of phases, and in each
// phase every active core completes a quota of memory transactions. The
// core-gating mask is re-drawn at phase boundaries (thread consolidation
// by the OS), which is exactly the event that forces Router Parking to
// reconfigure and lets FLOV react locally.
package trace

// Profile characterizes one PARSEC-like benchmark.
//
//flovsnap:skip immutable workload description: a restored driver is rebuilt from the same profile
type Profile struct {
	Name string

	// GatedFraction of cores the OS keeps power-gated (thread
	// consolidation); memory-controller corners are never gated.
	GatedFraction float64

	// MSHRs bounds outstanding requests per core.
	MSHRs int

	// ThinkMean is the mean compute gap (cycles) between completing one
	// transaction and issuing the next from the same MSHR.
	ThinkMean int

	// MCFraction of requests go to memory controllers; the rest are
	// cache-to-cache transfers to a random active peer.
	MCFraction float64

	// ReqFlits / RespFlits are packet sizes (control vs data).
	ReqFlits, RespFlits int

	// MCServiceLat / PeerServiceLat model DRAM access and remote-cache
	// lookup latency between request delivery and reply injection.
	MCServiceLat, PeerServiceLat int

	// QuotaPerCore transactions per active core per phase.
	QuotaPerCore int

	// Phases of execution; the gating mask is re-drawn at each boundary.
	Phases int
}

// Profiles returns the nine PARSEC 2.1 benchmarks the paper evaluates,
// with communication characteristics set from their published behaviour:
// blackscholes/swaptions are compute-bound with many idle cores, canneal
// and ferret are communication-heavy, facesim and fluidanimate move large
// data, x264 and bodytrack sit in between, dedup is bursty with moderate
// sharing.
func Profiles() []Profile {
	return []Profile{
		{Name: "blackscholes", GatedFraction: 0.60, MSHRs: 4, ThinkMean: 900, MCFraction: 0.30, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 80, Phases: 3},
		{Name: "bodytrack", GatedFraction: 0.45, MSHRs: 6, ThinkMean: 600, MCFraction: 0.30, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 100, Phases: 3},
		{Name: "canneal", GatedFraction: 0.30, MSHRs: 8, ThinkMean: 350, MCFraction: 0.40, ReqFlits: 1, RespFlits: 5, MCServiceLat: 45, PeerServiceLat: 12, QuotaPerCore: 140, Phases: 3},
		{Name: "dedup", GatedFraction: 0.50, MSHRs: 6, ThinkMean: 500, MCFraction: 0.35, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 100, Phases: 4},
		{Name: "facesim", GatedFraction: 0.40, MSHRs: 6, ThinkMean: 450, MCFraction: 0.35, ReqFlits: 1, RespFlits: 5, MCServiceLat: 50, PeerServiceLat: 14, QuotaPerCore: 120, Phases: 3},
		{Name: "ferret", GatedFraction: 0.35, MSHRs: 8, ThinkMean: 400, MCFraction: 0.30, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 130, Phases: 3},
		{Name: "fluidanimate", GatedFraction: 0.45, MSHRs: 6, ThinkMean: 550, MCFraction: 0.30, ReqFlits: 1, RespFlits: 5, MCServiceLat: 45, PeerServiceLat: 12, QuotaPerCore: 110, Phases: 3},
		{Name: "swaptions", GatedFraction: 0.65, MSHRs: 4, ThinkMean: 1000, MCFraction: 0.30, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 70, Phases: 3},
		{Name: "x264", GatedFraction: 0.40, MSHRs: 6, ThinkMean: 450, MCFraction: 0.35, ReqFlits: 1, RespFlits: 5, MCServiceLat: 40, PeerServiceLat: 12, QuotaPerCore: 120, Phases: 4},
	}
}

// ProfileByName looks a profile up; ok is false when unknown.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
