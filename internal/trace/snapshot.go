package trace

import "fmt"

// CoreStateSnap is the serializable closed-loop state of one core.
type CoreStateSnap struct {
	Slots     []int64
	Remaining int
	InFlight  int
}

// ReplySnap is one pending MC/peer reply.
type ReplySnap struct {
	At       int64
	Src, Dst int
	Req      uint64
	MC       bool
}

// DriverState is the serializable mutable state of a Driver. The phase
// gating masks, MC list and hooks are derived deterministically from the
// profile and seed during NewDriver, so only the execution cursor is
// captured.
type DriverState struct {
	RNG        uint64
	Cores      []CoreStateSnap
	Replies    []ReplySnap
	Phase      int
	Txns       int64
	ActiveList []int
	Started    bool
	Finished   bool
}

// CaptureState copies the driver's mutable state.
func (d *Driver) CaptureState() DriverState {
	s := DriverState{
		RNG:        d.rng.State(),
		Phase:      d.phase,
		Txns:       d.txns,
		ActiveList: append([]int(nil), d.activeList...),
		Started:    d.started,
		Finished:   d.finished,
	}
	for i := range d.cores {
		c := &d.cores[i]
		s.Cores = append(s.Cores, CoreStateSnap{
			Slots:     append([]int64(nil), c.slots...),
			Remaining: c.remaining,
			InFlight:  c.inFlight,
		})
	}
	for _, r := range d.replies {
		s.Replies = append(s.Replies, ReplySnap{At: r.at, Src: r.src, Dst: r.dst, Req: r.req, MC: r.mc})
	}
	return s
}

// RestoreState overwrites the driver's mutable state. The receiver must
// have been built with NewDriver over the same profile and seed, so the
// derived masks and MC set already match; restoring the gating mask on
// the network is the caller's job (it is part of the network section).
func (d *Driver) RestoreState(s DriverState) error {
	if len(s.Cores) != len(d.cores) {
		return fmt.Errorf("trace: snapshot has %d cores, driver has %d", len(s.Cores), len(d.cores))
	}
	if s.Phase < 0 || s.Phase >= d.prof.Phases {
		return fmt.Errorf("trace: snapshot phase %d out of range (profile has %d)", s.Phase, d.prof.Phases)
	}
	n := len(d.cores)
	for _, id := range s.ActiveList {
		if id < 0 || id >= n {
			return fmt.Errorf("trace: snapshot active core %d out of range", id)
		}
	}
	d.rng.SetState(s.RNG)
	for i := range d.cores {
		c := &d.cores[i]
		c.slots = append(c.slots[:0], s.Cores[i].Slots...)
		c.remaining = s.Cores[i].Remaining
		c.inFlight = s.Cores[i].InFlight
	}
	d.replies = d.replies[:0]
	for _, r := range s.Replies {
		d.replies = append(d.replies, pendingReply{at: r.At, src: r.Src, dst: r.Dst, req: r.Req, mc: r.MC})
	}
	d.phase = s.Phase
	d.txns = s.Txns
	d.activeList = append(d.activeList[:0], s.ActiveList...)
	d.started = s.Started
	d.finished = s.Finished
	return nil
}
