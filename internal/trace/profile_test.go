package trace

import "testing"

func TestNineBenchmarks(t *testing.T) {
	ps := Profiles()
	if len(ps) != 9 {
		t.Fatalf("paper evaluates nine PARSEC benchmarks, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileSanity(t *testing.T) {
	for _, p := range Profiles() {
		if p.GatedFraction <= 0 || p.GatedFraction >= 1 {
			t.Errorf("%s: gated fraction %v out of range", p.Name, p.GatedFraction)
		}
		if p.MSHRs < 1 || p.ThinkMean < 1 || p.QuotaPerCore < 1 || p.Phases < 1 {
			t.Errorf("%s: degenerate workload parameters %+v", p.Name, p)
		}
		if p.MCFraction < 0 || p.MCFraction > 1 {
			t.Errorf("%s: MC fraction %v out of range", p.Name, p.MCFraction)
		}
		if p.ReqFlits < 1 || p.RespFlits < 1 {
			t.Errorf("%s: zero-size packets", p.Name)
		}
		if p.RespFlits <= p.ReqFlits {
			t.Errorf("%s: data replies should outweigh control requests", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("canneal")
	if !ok || p.Name != "canneal" {
		t.Fatal("lookup failed")
	}
	if _, ok := ProfileByName("doom"); ok {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestProfileDiversity(t *testing.T) {
	// The evaluation depends on benchmarks spanning idle-heavy
	// (blackscholes, swaptions) to communication-heavy (canneal, ferret);
	// the spread is what makes the averaged headline numbers meaningful.
	hi, lo := 0.0, 1.0
	for _, p := range Profiles() {
		if p.GatedFraction > hi {
			hi = p.GatedFraction
		}
		if p.GatedFraction < lo {
			lo = p.GatedFraction
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("gated fractions too uniform: [%v, %v]", lo, hi)
	}
}
