package trace

import (
	"testing"

	"flov/internal/network"
	"flov/internal/noc"
)

func TestDriverDeterminism(t *testing.T) {
	run := func() Outcome {
		n := buildNet(t, network.NewBaseline())
		return NewDriver(n, shortProfile(), 99).Run(3_000_000)
	}
	a, b := run(), run()
	if a.RuntimeCyc != b.RuntimeCyc || a.TotalPJ != b.TotalPJ || a.Transactions != b.Transactions {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}

func TestDriverMCsNeverGated(t *testing.T) {
	n := buildNet(t, network.NewBaseline())
	prof := shortProfile()
	prof.GatedFraction = 0.9 // extreme
	d := NewDriver(n, prof, 5)
	for _, mask := range d.masks {
		for _, mc := range d.mcs {
			if mask[mc] {
				t.Fatalf("memory controller %d gated", mc)
			}
		}
	}
}

// The closed loop must exercise all three MESI-style virtual networks:
// requests on vnet 0, peer transfers on vnet 1, MC data replies on vnet 2.
func TestDriverUsesAllVNets(t *testing.T) {
	n := buildNet(t, network.NewBaseline())
	d := NewDriver(n, shortProfile(), 11)
	seen := map[int]bool{}
	for i := range n.NIs {
		inner := n.NIs[i].OnDeliver
		n.NIs[i].OnDeliver = func(p *noc.Packet, now int64) {
			seen[p.VNet] = true
			if inner != nil {
				inner(p, now)
			}
		}
	}
	out := d.Run(3_000_000)
	if !out.Completed {
		t.Fatal("incomplete")
	}
	for v := 0; v < 3; v++ {
		if !seen[v] {
			t.Errorf("vnet %d never carried traffic", v)
		}
	}
}

func TestDriverTransactionAccounting(t *testing.T) {
	n := buildNet(t, network.NewBaseline())
	prof := shortProfile()
	d := NewDriver(n, prof, 11)
	out := d.Run(3_000_000)
	if !out.Completed {
		t.Fatal("incomplete")
	}
	// Every issued transaction completes: quota x phases x active cores.
	active := 0
	for id, g := range d.masks[0] {
		if !g && !d.mcSet[id] {
			active++
		}
	}
	// Phases may have different active sets; just bound the count.
	min := int64(prof.QuotaPerCore) // at least one core's quota
	if out.Transactions < min {
		t.Fatalf("transactions %d below minimum %d", out.Transactions, min)
	}
}
