package cluster

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"flov/internal/sweep"
)

// Event is one line of a job's durable event feed, the cluster
// counterpart of the single-node daemon's stream events. The feed lives
// in the store, so any front door can replay it from any offset after a
// restart — streams are resumable by construction.
type Event struct {
	Type   string `json:"type"`
	Job    string `json:"job,omitempty"`
	Worker string `json:"worker,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`

	// Point progress.
	Index  int    `json:"index,omitempty"`
	Total  int    `json:"total,omitempty"`
	Desc   string `json:"desc,omitempty"`
	Status string `json:"status,omitempty"` // done|cached|error
	Err    string `json:"err,omitempty"`

	// Terminal summary and preemption bookkeeping.
	State     string `json:"state,omitempty"`
	Errors    int    `json:"errors,omitempty"`
	Remaining int    `json:"remaining,omitempty"`
}

// Event types on the feed, in rough lifecycle order. A stolen job's
// feed shows claimed ... preempted ... stolen(higher epoch, different
// worker) ... summary; a worker re-claiming its own preempted job
// emits claimed again. Duplicate point lines after a raced steal are
// possible and harmless (rows are deduplicated, the feed is not).
const (
	EventAccepted  = "accepted"
	EventClaimed   = "claimed"
	EventStolen    = "stolen"
	EventPoint     = "point"
	EventPreempted = "preempted"
	EventSummary   = "summary"
)

// Terminal job states in done records and summary events.
const (
	StateDone     = "done"
	StateCanceled = "canceled"
)

// Worker pulls leased jobs from a shared store and executes them
// through the sweep engine. Multiple workers on one store form the
// cluster's execution plane: each polls for claimable jobs (never
// claimed, released at a preemption boundary, or abandoned by a dead
// worker whose lease expired), adopts whatever durable rows and
// checkpoint snapshots earlier epochs left, and simulates only what
// remains. Determinism makes all interleavings equivalent: the final
// row set is byte-identical however execution was sliced or stolen.
type Worker struct {
	Store *Store
	// Cache is the node-local content-addressed result cache; with
	// Peers set it participates in cluster-wide cache federation.
	Cache *sweep.Cache
	Peers *Peers
	// Name identifies this worker in leases and events.
	Name string
	// LeaseTTL is how long a claim lasts between renewals; a worker that
	// dies stops renewing and its job becomes stealable one TTL later.
	// Default 10s.
	LeaseTTL time.Duration
	// Poll is the idle scan interval. Default 250ms.
	Poll time.Duration
	// Slice, when positive, preempts jobs that run longer: in-flight
	// points checkpoint to the store and the lease is released, so any
	// worker (this one included) can continue the job. 0 runs each
	// claimed job to completion under lease renewal.
	Slice time.Duration
	// Workers is the engine pool size per job (<= 0 means GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	jobsClaimed   atomic.Int64
	jobsStolen    atomic.Int64
	jobsFinished  atomic.Int64
	jobsPreempted atomic.Int64
	pointsRun     atomic.Int64
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) leaseTTL() time.Duration {
	if w.LeaseTTL > 0 {
		return w.LeaseTTL
	}
	return 10 * time.Second
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 250 * time.Millisecond
}

// Counters reports lifetime execution counts (claimed includes stolen).
func (w *Worker) Counters() (claimed, stolen, finished, preempted int64) {
	return w.jobsClaimed.Load(), w.jobsStolen.Load(), w.jobsFinished.Load(), w.jobsPreempted.Load()
}

// Run scans and executes until ctx is canceled. Claimed work is
// released (not abandoned) on shutdown: in-flight points checkpoint
// where slicing permits, and the lease expires immediately so another
// worker continues without waiting out the TTL.
func (w *Worker) Run(ctx context.Context) error {
	for {
		worked, err := w.Step(ctx)
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if worked {
			continue // drain eagerly while claimable work exists
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.poll()):
		}
	}
}

// Step makes one scan pass: claim and execute at most one job slice.
// It reports whether any work was done (callers poll when idle). Steps
// are the unit tests drive directly for deterministic orchestration.
func (w *Worker) Step(ctx context.Context) (worked bool, err error) {
	ids, err := w.Store.List()
	if err != nil {
		return false, err
	}
	for _, id := range ids {
		if ctx.Err() != nil {
			return worked, nil
		}
		if _, done := w.Store.Done(id); done {
			continue
		}
		prev, hadPrev := w.Store.CurrentLease(id)
		lease, err := w.Store.Claim(id, w.Name, w.leaseTTL())
		if err != nil {
			continue // held, vanished, or store hiccup: next job
		}
		rec, err := w.Store.Job(id)
		if err != nil {
			_ = lease.Release()
			continue
		}
		w.jobsClaimed.Add(1)
		// A steal is adopting a lease that lapsed in someone else's
		// hands; re-claiming a job this worker itself preempted (or
		// whose prior lease is unreadable) at a higher epoch counts
		// only when the previous holder was a different worker.
		stolen := lease.Epoch > 1 && (!hadPrev || prev.Worker != w.Name)
		if stolen {
			w.jobsStolen.Add(1)
		}
		w.execute(ctx, rec, lease, stolen)
		worked = true
	}
	return worked, nil
}

// sliceObserver receives engine progress for one execution slice: it
// persists finished rows to the store as they complete (durable
// incremental progress, the cluster's rows.ndjson), collects error rows
// in memory (errors are retried on adoption, never persisted), and
// appends point events to the feed. Called from engine worker
// goroutines.
type sliceObserver struct {
	w     *Worker
	job   string
	epoch int
	idx   []int // engine index -> original point index
	total int

	mu   sync.Mutex
	errs map[int]sweep.Result
}

// Event implements sweep.Progress.
func (o *sliceObserver) Event(ev sweep.Event) {
	i := o.idx[ev.Index]
	switch ev.Type {
	case sweep.JobStart, sweep.JobPaused:
		// Starts are noise on a durable feed; pauses are covered by the
		// job-level preempted event.
		return
	case sweep.CacheWriteError:
		o.w.logf("cache write failed for %s: %s", ev.Job.Desc(), ev.Err)
		return
	case sweep.JobError:
		o.mu.Lock()
		o.errs[i] = *ev.Result
		o.mu.Unlock()
		o.w.appendEvent(o.job, Event{Type: EventPoint, Index: i, Total: o.total,
			Desc: ev.Job.Desc(), Status: "error", Err: firstLine(ev.Err)})
		return
	case sweep.JobDone, sweep.JobCacheHit:
		status := "done"
		if ev.Type == sweep.JobCacheHit {
			status = "cached"
		}
		o.w.pointsRun.Add(1)
		if err := o.w.Store.AppendRow(o.job, i, o.epoch, *ev.Result); err != nil {
			// Row persistence is best-effort per row; the terminal results
			// write is the gate that matters, and it re-derives from the
			// engine's in-memory results on this path.
			o.w.logf("row append failed for %s point %d: %v", o.job, i, err)
		}
		o.w.appendEvent(o.job, Event{Type: EventPoint, Index: i, Total: o.total,
			Desc: ev.Job.Desc(), Status: status})
	}
}

// errors snapshots the slice's error rows.
func (o *sliceObserver) errors() map[int]sweep.Result {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[int]sweep.Result, len(o.errs))
	for k, v := range o.errs {
		out[k] = v
	}
	return out
}

// appendEvent marshals and appends one feed line, best-effort.
func (w *Worker) appendEvent(id string, ev Event) {
	ev.Job = id
	if ev.Worker == "" {
		ev.Worker = w.Name
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if err := w.Store.AppendEvent(id, line); err != nil {
		w.logf("event append failed for %s: %v", id, err)
	}
}

// execute runs one leased slice of a job: adopt durable rows and
// checkpoints, simulate pending points until done, preempted, deadline,
// or shutdown, then persist the outcome and release the lease.
func (w *Worker) execute(ctx context.Context, rec JobRecord, lease *Lease, stolen bool) {
	durable, err := w.Store.Rows(rec.ID, rec.Points)
	if err != nil {
		w.logf("rows read failed for %s: %v", rec.ID, err)
		_ = lease.Release()
		return
	}
	var idx []int
	for i := range rec.Points {
		if _, ok := durable[i]; !ok {
			idx = append(idx, i)
		}
	}
	kind := EventClaimed
	if stolen {
		kind = EventStolen
	}
	w.appendEvent(rec.ID, Event{Type: kind, Epoch: lease.Epoch,
		Total: len(rec.Points), Remaining: len(idx)})
	w.logf("%s %s epoch %d: %d of %d points pending",
		kind, rec.ID, lease.Epoch, len(idx), len(rec.Points))

	if len(idx) == 0 {
		// Every point already has a durable row — the previous holder
		// died between its last row and the terminal write. Finish the
		// bookkeeping it never got to.
		w.finalize(rec, lease, durable, nil, StateDone, "")
		return
	}

	// An already-lapsed absolute deadline cancels before the engine
	// starts. Requeues and steals never restart the clock, and a
	// pre-canceled context racing the engine's dispatch would leave it
	// nondeterministic which points error; skipping the engine makes
	// every pending point a clean cancellation.
	if rec.DeadlineMS > 0 && time.Now().UnixMilli() >= rec.DeadlineMS {
		w.finalize(rec, lease, durable, nil, StateCanceled, "job deadline exceeded")
		return
	}

	pending := make([]sweep.Job, len(idx))
	snaps := make([][]byte, len(idx))
	adoptedSnaps := 0
	for k, i := range idx {
		pending[k] = rec.Points[i]
		if snap, ok := w.Store.Snapshot(rec.ID, i); ok {
			snaps[k] = snap
			adoptedSnaps++
		}
	}
	if adoptedSnaps > 0 {
		w.logf("%s: adopted %d checkpoint snapshot(s)", rec.ID, adoptedSnaps)
	}

	// Cache federation: pull rows (and warm blobs, when the warm path is
	// active) computed elsewhere into the local cache before simulating.
	if w.Peers.Len() > 0 && w.Cache != nil {
		if n := w.Peers.Warm(w.Cache, pending, w.Slice <= 0); n > 0 {
			w.logf("%s: federated %d cache entr(ies) from peers", rec.ID, n)
		}
	}

	// The job's deadline is absolute (set once at submit), so requeues
	// and steals never restart the clock.
	dctx := ctx
	cancel := func() {}
	if rec.DeadlineMS > 0 {
		dctx, cancel = context.WithDeadline(ctx, time.UnixMilli(rec.DeadlineMS))
	}
	defer cancel()

	// Renew the lease while executing; losing it (a steal after a renew
	// gap) preempts the engine so this epoch stops burning CPU.
	var lost atomic.Bool
	renewCtx, stopRenew := context.WithCancel(dctx)
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		t := time.NewTicker(w.leaseTTL() / 3)
		defer t.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-t.C:
				if err := lease.Renew(w.leaseTTL()); err != nil {
					lost.Store(true)
					return
				}
			}
		}
	}()

	var sliceExpired atomic.Bool
	if w.Slice > 0 {
		timer := time.AfterFunc(w.Slice, func() { sliceExpired.Store(true) })
		defer timer.Stop()
	}

	obs := &sliceObserver{w: w, job: rec.ID, epoch: lease.Epoch,
		idx: idx, total: len(rec.Points), errs: make(map[int]sweep.Result)}
	engine := &sweep.Engine{
		Workers:   w.Workers,
		Cache:     w.Cache,
		Progress:  obs,
		WarmStart: w.Slice <= 0 && w.Cache != nil,
		Snapshots: snaps,
	}
	if w.Slice > 0 {
		engine.Pause = func() bool {
			return sliceExpired.Load() || lost.Load() || dctx.Err() != nil
		}
	}
	results := engine.Run(dctx, pending)
	stopRenew()
	renewWG.Wait()

	deadlineHit := dctx.Err() != nil && ctx.Err() == nil
	if ctx.Err() != nil {
		// Worker shutdown: persist whatever checkpoints the engine took,
		// release so another worker resumes without waiting out the TTL.
		w.persistSnapshots(rec.ID, idx, results)
		_ = lease.Release()
		return
	}
	if lost.Load() {
		// Stolen mid-slice. The thief owns the job now; rows this slice
		// already appended are valid (byte-identical by determinism), the
		// rest of this epoch's state is abandoned.
		w.logf("%s: lease lost mid-slice, abandoning epoch %d", rec.ID, lease.Epoch)
		return
	}

	paused := w.persistSnapshots(rec.ID, idx, results)
	if paused > 0 && !deadlineHit {
		w.jobsPreempted.Add(1)
		w.appendEvent(rec.ID, Event{Type: EventPreempted, Epoch: lease.Epoch,
			Total: len(rec.Points), Remaining: paused})
		w.logf("preempt %s: %d point(s) remaining", rec.ID, paused)
		_ = lease.Release() // requeue: claimable immediately, by anyone
		return
	}

	durable, err = w.Store.Rows(rec.ID, rec.Points)
	if err != nil {
		w.logf("rows re-read failed for %s: %v", rec.ID, err)
		_ = lease.Release()
		return
	}
	// Guard the row log's best-effort writes: rows finished this slice
	// are merged from memory too, so a full disk degrades durability of
	// intermediate progress, never the final row set.
	for k, r := range results {
		if !r.Paused && r.Err == "" {
			durable[idx[k]] = r
		}
	}
	state, reason := StateDone, ""
	if deadlineHit {
		state, reason = StateCanceled, "job deadline exceeded"
	}
	w.finalize(rec, lease, durable, obs.errors(), state, reason)
}

// persistSnapshots stores checkpoints of paused points and reports how
// many points remain unfinished.
func (w *Worker) persistSnapshots(id string, idx []int, results []sweep.Result) (paused int) {
	for k, r := range results {
		if !r.Paused {
			continue
		}
		paused++
		if r.Snapshot != nil {
			if err := w.Store.PutSnapshot(id, idx[k], r.Snapshot); err != nil {
				// Best effort: a lost checkpoint re-simulates from the last
				// durable one (or cold); progress slows, rows stay identical.
				w.logf("snapshot write failed for %s point %d: %v", id, idx[k], err)
			}
		}
	}
	return paused
}

// finalize publishes the canonical results, the terminal marker and the
// summary event, then cleans up execution state. First finisher wins
// the done marker; byte-identical determinism makes raced finalizers
// equivalent.
func (w *Worker) finalize(rec JobRecord, lease *Lease, durable, sliceErrs map[int]sweep.Result, state, reason string) {
	full := assembleRows(rec.Points, durable, sliceErrs)
	errors := 0
	for _, r := range full {
		if r.Err != "" {
			errors++
		}
	}
	data, err := MarshalResults(full)
	if err != nil {
		w.logf("encode results for %s: %v", rec.ID, err)
		_ = lease.Release()
		return
	}
	if err := w.Store.WriteResults(rec.ID, data); err != nil {
		w.logf("write results for %s: %v", rec.ID, err)
		_ = lease.Release()
		return
	}
	if err := w.Store.MarkDone(rec.ID, DoneRecord{
		State: state, Reason: reason, Errors: errors,
		FinishedMS: time.Now().UnixMilli(),
	}); err != nil {
		w.logf("mark done for %s: %v", rec.ID, err)
		_ = lease.Release()
		return
	}
	w.appendEvent(rec.ID, Event{Type: EventSummary, Epoch: lease.Epoch,
		Total: len(rec.Points), State: state, Err: reason, Errors: errors})
	w.jobsFinished.Add(1)
	w.Store.RemoveSnapshots(rec.ID)
	w.Store.RemoveLeases(rec.ID)
	w.logf("finish %s: %s (%d points, %d errors)", rec.ID, state, len(rec.Points), errors)
}

// firstLine truncates an error to its first line for feed events (full
// stacks stay in the durable row set).
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
