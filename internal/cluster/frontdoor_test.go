package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"flov/internal/sweep"
)

func newFrontDoor(t *testing.T, store *Store, cfg FrontDoorConfig) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewFrontDoor(store, cfg).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postClusterSpec(t *testing.T, url string, spec sweep.Spec, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/cluster/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Flov-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeClusterStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFrontDoorSubmitAndDedup(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{JobTimeout: time.Hour})

	resp := postClusterSpec(t, srv.URL, testSpec(0.1), "acme")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	st := decodeClusterStatus(t, resp)
	if st.ID == "" || st.State != "queued" || st.Points != 1 || st.Tenant != "acme" {
		t.Fatalf("status = %+v", st)
	}
	if st.DeadlineMS == 0 {
		t.Fatal("JobTimeout did not stamp an absolute deadline")
	}
	// Identical resubmission coincides with the stored job.
	st2 := decodeClusterStatus(t, postClusterSpec(t, srv.URL, testSpec(0.1), "acme"))
	if st2.ID != st.ID || !st2.Deduped {
		t.Fatalf("resubmit = %+v", st2)
	}
	// The accepted event is on the durable feed exactly once.
	lines, err := store.Events(st.ID, 0)
	if err != nil || len(lines) != 1 {
		t.Fatalf("events = %d lines, err %v", len(lines), err)
	}
}

func TestFrontDoorRateLimit429RetryAfter(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{RatePerMinute: 60, Burst: 1})

	resp := postClusterSpec(t, srv.URL, testSpec(0.1), "")
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp = postClusterSpec(t, srv.URL, testSpec(0.2), "")
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second value", resp.Header.Get("Retry-After"))
	}
	// Another tenant has its own bucket.
	resp2 := postClusterSpec(t, srv.URL, testSpec(0.3), "other")
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", resp2.StatusCode)
	}
}

func TestFrontDoorTenantQuota(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{MaxActivePerTenant: 1, RatePerMinute: 6000})

	resp := postClusterSpec(t, srv.URL, testSpec(0.1), "acme")
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first = %d", resp.StatusCode)
	}
	// No worker is draining the store, so the slot stays occupied.
	resp = postClusterSpec(t, srv.URL, testSpec(0.2), "acme")
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 missing Retry-After")
	}
	// Other tenants are unaffected.
	resp2 := postClusterSpec(t, srv.URL, testSpec(0.2), "other")
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d", resp2.StatusCode)
	}
}

// readStream collects NDJSON lines from a stream response.
func readStream(t *testing.T, resp *http.Response) []string {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestFrontDoorResumableStream pins statelessness: a client that
// counted its received lines can reconnect — to a brand-new front door
// process — with ?from=N and receive exactly the remainder of the feed.
func TestFrontDoorResumableStream(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{})

	points := mustPoints(t, testSpec(0.1, 0.2))
	st := decodeClusterStatus(t, postClusterSpec(t, srv.URL, testSpec(0.1, 0.2), ""))

	w := &Worker{Store: store, Name: "w1", LeaseTTL: time.Minute, Workers: 2}
	driveToDone(t, w, store, st.ID)

	resp, err := http.Get(srv.URL + "/v1/cluster/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	all := readStream(t, resp)
	if len(all) < 3 { // accepted, claimed, points..., summary
		t.Fatalf("full stream = %d lines", len(all))
	}
	var last Event
	if err := json.Unmarshal([]byte(all[len(all)-1]), &last); err != nil || last.Type != EventSummary {
		t.Fatalf("last line = %q (err %v), want summary", all[len(all)-1], err)
	}
	if last.Total != len(points) || last.State != StateDone {
		t.Fatalf("summary = %+v", last)
	}

	// "Restart" the front door: a second instance over the same store
	// serves the resumed stream identically.
	srv2 := newFrontDoor(t, store, FrontDoorConfig{})
	from := len(all) - 2
	resp, err = http.Get(srv2.URL + "/v1/cluster/jobs/" + st.ID + "/stream?from=" + strconv.Itoa(from))
	if err != nil {
		t.Fatal(err)
	}
	tail := readStream(t, resp)
	if len(tail) != 2 || tail[0] != all[from] || tail[1] != all[from+1] {
		t.Fatalf("resumed tail = %q, want last two lines of %d", tail, len(all))
	}
}

func TestFrontDoorResults(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{})

	points := mustPoints(t, testSpec(0.1))
	ref := referenceBytes(t, points)
	st := decodeClusterStatus(t, postClusterSpec(t, srv.URL, testSpec(0.1), ""))

	// Unfinished: 409.
	resp, err := http.Get(srv.URL + "/v1/cluster/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished results = %d, want 409", resp.StatusCode)
	}

	w := &Worker{Store: store, Name: "w1", LeaseTTL: time.Minute, Workers: 2}
	driveToDone(t, w, store, st.ID)

	resp, err = http.Get(srv.URL + "/v1/cluster/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, ref) {
		t.Error("served results differ from single-node reference bytes")
	}

	// Status reflects completion.
	resp, err = http.Get(srv.URL + "/v1/cluster/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := decodeClusterStatus(t, resp)
	if final.State != StateDone || final.Done != 1 {
		t.Fatalf("final status = %+v", final)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrontDoorUnknownJob(t *testing.T) {
	srv := newFrontDoor(t, openStore(t), FrontDoorConfig{})
	for _, path := range []string{"/v1/cluster/jobs/jnope", "/v1/cluster/jobs/jnope/stream", "/v1/cluster/jobs/jnope/results"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestFrontDoorTimeoutParam(t *testing.T) {
	store := openStore(t)
	srv := newFrontDoor(t, store, FrontDoorConfig{})

	body, _ := json.Marshal(testSpec(0.1))
	resp, err := http.Post(srv.URL+"/v1/cluster/jobs?timeout_ms=60000", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeClusterStatus(t, resp)
	if st.DeadlineMS == 0 {
		t.Fatal("timeout_ms did not set a deadline")
	}
	rec, err := store.Job(st.ID)
	if err != nil || rec.DeadlineMS != st.DeadlineMS {
		t.Fatalf("record deadline %d vs status %d (err %v)", rec.DeadlineMS, st.DeadlineMS, err)
	}
	want := time.Now().Add(time.Minute).UnixMilli()
	if d := rec.DeadlineMS - want; d < -5000 || d > 5000 {
		t.Fatalf("deadline %d not ~60s out (want ~%d)", rec.DeadlineMS, want)
	}
}
