package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Lease protocol. A job's execution right is a sequence of epochs:
// claiming epoch e+1 is an atomic hard link of a fully written lease
// file to leases/<id>.<e+1>, which exactly one process can win, and is
// only attempted once epoch e has expired (or released itself by
// renewing to an already-past expiry). Renewal rewrites the holder's
// own epoch file via rename, which is atomic, so readers always see a
// complete lease.
//
// The protocol is deliberately not a perfect fence: a holder that
// renews concurrently with a thief linking the next epoch can briefly
// leave two workers executing the same job. That is safe here — rows
// are deterministic, duplicate row records resolve last-write-wins,
// and the terminal marker is first-writer-wins — so the race costs CPU,
// never correctness. Holders detect the loss at the next renew
// (ErrLeaseLost) and abandon.

// leaseWire is the on-disk lease format.
type leaseWire struct {
	Job    string `json:"job"`
	Epoch  int    `json:"epoch"`
	Worker string `json:"worker"`
	// ExpiresMS is the absolute expiry (unix milliseconds). Wall clocks
	// across workers on one store are assumed loosely synchronized; the
	// TTL is seconds-scale, so ordinary skew only delays a steal.
	ExpiresMS int64 `json:"expires_ms"`
}

// LeaseInfo is a read-only view of a job's current lease epoch.
type LeaseInfo struct {
	Job       string
	Epoch     int
	Worker    string
	ExpiresMS int64
}

// Expired reports whether the lease has lapsed at now.
func (li LeaseInfo) Expired(now time.Time) bool {
	return now.UnixMilli() >= li.ExpiresMS
}

// Lease is a held execution right: the claim's epoch plus the handle to
// renew or release it.
type Lease struct {
	store  *Store
	Job    string
	Epoch  int
	Worker string
}

func (s *Store) leasePath(id string, epoch int) string {
	return filepath.Join(s.dir, "leases", fmt.Sprintf("%s.%08d", id, epoch))
}

// leaseEpochs lists a job's existing lease epochs, ascending.
func (s *Store) leaseEpochs(id string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "leases"))
	if err != nil {
		return nil, err
	}
	var epochs []int
	prefix := id + "."
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
		if err != nil {
			continue // temp files and foreign names
		}
		epochs = append(epochs, n)
	}
	sort.Ints(epochs)
	return epochs, nil
}

// readLease parses one epoch file. Lease files are only ever published
// whole (link or rename), so a parse failure is corruption; it reads as
// an expired lease so the job stays claimable rather than wedged.
func (s *Store) readLease(id string, epoch int) (leaseWire, bool) {
	data, err := os.ReadFile(s.leasePath(id, epoch))
	if err != nil {
		return leaseWire{}, false
	}
	var w leaseWire
	if err := json.Unmarshal(data, &w); err != nil {
		return leaseWire{Job: id, Epoch: epoch}, true // expired (zero ExpiresMS)
	}
	return w, true
}

// CurrentLease returns the newest lease epoch of a job, if any.
func (s *Store) CurrentLease(id string) (LeaseInfo, bool) {
	epochs, err := s.leaseEpochs(id)
	if err != nil || len(epochs) == 0 {
		return LeaseInfo{}, false
	}
	last := epochs[len(epochs)-1]
	w, ok := s.readLease(id, last)
	if !ok {
		return LeaseInfo{}, false
	}
	return LeaseInfo{Job: w.Job, Epoch: last, Worker: w.Worker, ExpiresMS: w.ExpiresMS}, true
}

// Claim attempts to take the job's next lease epoch for worker. It
// fails with ErrLeaseHeld while the current epoch is unexpired, and
// with ErrLeaseHeld (after losing the link race) when another claimant
// won the same epoch. A successful claim on epoch > 1 is an adoption:
// the new holder picks up the previous epoch's durable rows and
// checkpoints.
func (s *Store) Claim(id, worker string, ttl time.Duration) (*Lease, error) {
	if _, err := s.Job(id); err != nil {
		return nil, err
	}
	epochs, err := s.leaseEpochs(id)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(epochs) > 0 {
		last := epochs[len(epochs)-1]
		if w, ok := s.readLease(id, last); ok {
			if time.Now().UnixMilli() < w.ExpiresMS {
				return nil, ErrLeaseHeld
			}
		}
		next = last + 1
	}
	w := leaseWire{Job: id, Epoch: next, Worker: worker,
		ExpiresMS: time.Now().Add(ttl).UnixMilli()}
	data, err := json.Marshal(w)
	if err != nil {
		return nil, err
	}
	won, err := publish(s.leasePath(id, next), data)
	if err != nil {
		return nil, fmt.Errorf("cluster: claim lease: %w", err)
	}
	if !won {
		return nil, ErrLeaseHeld
	}
	return &Lease{store: s, Job: id, Epoch: next, Worker: worker}, nil
}

// Renew extends the held lease by ttl. It fails with ErrLeaseLost when
// a higher epoch exists — another worker decided this one was dead and
// stole the job — at which point the holder must abandon execution.
func (l *Lease) Renew(ttl time.Duration) error {
	return l.rewrite(time.Now().Add(ttl).UnixMilli())
}

// Release ends the lease by expiring it immediately, leaving the epoch
// file in place so epoch numbers stay monotonic. The job becomes
// claimable by any worker at once (requeue semantics).
func (l *Lease) Release() error {
	err := l.rewrite(0)
	if err == ErrLeaseLost {
		return nil // already stolen; nothing left to release
	}
	return err
}

// rewrite atomically replaces the holder's epoch file with a new
// expiry, after verifying the epoch is still the newest.
func (l *Lease) rewrite(expiresMS int64) error {
	epochs, err := l.store.leaseEpochs(l.Job)
	if err != nil {
		return err
	}
	if len(epochs) == 0 || epochs[len(epochs)-1] != l.Epoch {
		return ErrLeaseLost
	}
	w := leaseWire{Job: l.Job, Epoch: l.Epoch, Worker: l.Worker, ExpiresMS: expiresMS}
	data, err := json.Marshal(w)
	if err != nil {
		return err
	}
	dir := filepath.Dir(l.store.leasePath(l.Job, l.Epoch))
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), l.store.leasePath(l.Job, l.Epoch)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// RemoveLeases deletes a finished job's lease files (housekeeping; the
// done marker already ends all claims).
func (s *Store) RemoveLeases(id string) {
	epochs, err := s.leaseEpochs(id)
	if err != nil {
		return
	}
	for _, e := range epochs {
		_ = os.Remove(s.leasePath(id, e))
	}
}
