package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func TestSubmitIdempotent(t *testing.T) {
	s := openStore(t)
	points := mustPoints(t, testSpec(0.1))

	rec, created, err := s.Submit(JobRecord{Points: points, Tenant: "a", DeadlineMS: 42})
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	if rec.ID != JobID(points) || rec.SpecHash != SpecHash(points) {
		t.Fatalf("identity not derived: %+v", rec)
	}

	// Resubmission coincides: the original record (tenant, deadline)
	// wins, nothing is overwritten.
	again, created, err := s.Submit(JobRecord{Points: points, Tenant: "b"})
	if err != nil || created {
		t.Fatalf("second submit: created=%v err=%v", created, err)
	}
	if again.Tenant != "a" || again.DeadlineMS != 42 {
		t.Fatalf("resubmission clobbered the record: %+v", again)
	}

	ids, err := s.List()
	if err != nil || len(ids) != 1 || ids[0] != rec.ID {
		t.Fatalf("List = %v, %v", ids, err)
	}
}

func TestMarkDoneFirstWriterWins(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))

	if err := s.MarkDone(rec.ID, DoneRecord{State: StateDone, FinishedMS: 1}); err != nil {
		t.Fatal(err)
	}
	// A raced finisher (steal that also completed) loses silently.
	if err := s.MarkDone(rec.ID, DoneRecord{State: StateCanceled, Reason: "late"}); err != nil {
		t.Fatal(err)
	}
	done, ok := s.Done(rec.ID)
	if !ok || done.State != StateDone || done.Reason != "" {
		t.Fatalf("done = %+v, want first writer's record", done)
	}
}

// TestRowsTornTail pins the crash-tolerance contract of the row log: a
// partially appended final record, blank lines and garbage are skipped;
// duplicate records resolve last-write-wins; error rows and rows whose
// result does not hash to their point are never adopted.
func TestRowsTornTail(t *testing.T) {
	s := openStore(t)
	points := mustPoints(t, testSpec(0.1, 0.2))
	rec := submitJob(t, s, points)

	ref := referenceRows(t, points)
	r0, r1 := ref[0], ref[1]
	if err := s.AppendRow(rec.ID, 0, 1, r0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow(rec.ID, 1, 1, r1); err != nil {
		t.Fatal(err)
	}
	// Duplicate for point 0 from a raced epoch: last write wins.
	if err := s.AppendRow(rec.ID, 0, 2, r0); err != nil {
		t.Fatal(err)
	}
	// Error rows are skipped (they re-simulate on adoption).
	bad := r1
	bad.Err = "transient failure"
	if err := s.AppendRow(rec.ID, 1, 2, bad); err != nil {
		t.Fatal(err)
	}
	// A row claiming the wrong point index fails the hash pin.
	if err := s.AppendRow(rec.ID, 1, 2, r0); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a torn final line with no newline.
	f, err := os.OpenFile(s.rowsPath(rec.ID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"point":1,"epoch":3,"res`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rows, err := s.Rows(rec.ID, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("len(rows) = %d, want 2", len(rows))
	}
	if rows[0].Job.Hash() != points[0].Hash() || rows[1].Job.Hash() != points[1].Hash() {
		t.Fatal("rows not pinned to their points")
	}
	if rows[1].Err != "" {
		t.Fatal("error row adopted")
	}
}

func TestRowsZeroByteAndMissing(t *testing.T) {
	s := openStore(t)
	points := mustPoints(t, testSpec(0.1))
	rec := submitJob(t, s, points)

	// No file at all.
	rows, err := s.Rows(rec.ID, points)
	if err != nil || len(rows) != 0 {
		t.Fatalf("missing file: rows=%v err=%v", rows, err)
	}
	// Zero-byte file (crash between create and first append).
	if err := os.WriteFile(s.rowsPath(rec.ID), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err = s.Rows(rec.ID, points)
	if err != nil || len(rows) != 0 {
		t.Fatalf("zero-byte file: rows=%v err=%v", rows, err)
	}
}

// TestEventsWithholdTornTail pins replay-offset stability: a torn final
// line is invisible until its newline lands, so line i is line i on
// every read and resumable streams never shift.
func TestEventsWithholdTornTail(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))

	if err := s.AppendEvent(rec.ID, []byte(`{"type":"accepted"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent(rec.ID, []byte(`{"type":"claimed"}`)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(s.eventsPath(rec.ID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"poi`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	lines, err := s.Events(rec.ID, 0)
	if err != nil || len(lines) != 2 {
		t.Fatalf("Events(0) = %d lines, err %v; want 2 (torn tail withheld)", len(lines), err)
	}
	lines, err = s.Events(rec.ID, 1)
	if err != nil || len(lines) != 1 || string(lines[0]) != `{"type":"claimed"}` {
		t.Fatalf("Events(1) = %q, err %v", lines, err)
	}
	if lines, _ := s.Events(rec.ID, 5); lines != nil {
		t.Fatalf("Events past end = %q, want nil", lines)
	}

	// Completing the torn line makes it (and only it) appear.
	if err := s.AppendEvent(rec.ID, []byte(`nt"}`)); err == nil {
		// The completed line is "{"type":"poi" + our append; we appended a
		// full new line instead, so now the torn fragment plus this line
		// both end in newlines — the fragment becomes a (skipped or
		// parsed) line of its own. Offsets 0 and 1 are unchanged.
		lines, err := s.Events(rec.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(lines[0]) != `{"type":"accepted"}` || string(lines[1]) != `{"type":"claimed"}` {
			t.Fatal("completing the tail shifted earlier offsets")
		}
	}
}

func TestLeaseClaimRenewRelease(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))

	lease, err := s.Claim(rec.ID, "alpha", time.Minute)
	if err != nil || lease.Epoch != 1 {
		t.Fatalf("claim: %+v, %v", lease, err)
	}
	// Held: a second claimant is refused.
	if _, err := s.Claim(rec.ID, "beta", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second claim err = %v, want ErrLeaseHeld", err)
	}
	if err := lease.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	info, ok := s.CurrentLease(rec.ID)
	if !ok || info.Worker != "alpha" || info.Epoch != 1 || info.Expired(time.Now()) {
		t.Fatalf("lease info = %+v", info)
	}
	// Release requeues immediately: the next claim wins epoch 2.
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := s.Claim(rec.ID, "beta", time.Minute)
	if err != nil || l2.Epoch != 2 {
		t.Fatalf("claim after release: %+v, %v", l2, err)
	}
	// The superseded holder discovers the loss on renew, and its release
	// becomes a no-op rather than clobbering the thief's lease.
	if err := lease.Renew(time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew err = %v, want ErrLeaseLost", err)
	}
	if err := lease.Release(); err != nil {
		t.Fatalf("stale release err = %v, want nil", err)
	}
	if info, _ := s.CurrentLease(rec.ID); info.Worker != "beta" {
		t.Fatalf("stale release disturbed the live lease: %+v", info)
	}
}

func TestLeaseExpiryEnablesSteal(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))

	if _, err := s.Claim(rec.ID, "alpha", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Unexpired: refused.
	if _, err := s.Claim(rec.ID, "beta", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("early steal err = %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	l, err := s.Claim(rec.ID, "beta", time.Minute)
	if err != nil || l.Epoch != 2 || l.Worker != "beta" {
		t.Fatalf("steal after expiry: %+v, %v", l, err)
	}
}

func TestLeaseClaimRaceSingleWinner(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))

	const claimants = 8
	var wg sync.WaitGroup
	wins := make(chan int, claimants)
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if _, err := s.Claim(rec.ID, fmt.Sprintf("w%d", n), time.Minute); err == nil {
				wins <- n
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	won := 0
	for range wins {
		won++
	}
	if won != 1 {
		t.Fatalf("%d claimants won epoch 1, want exactly 1", won)
	}
}

func TestClaimUnknownJob(t *testing.T) {
	s := openStore(t)
	if _, err := s.Claim("jnope", "w", time.Minute); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestCorruptLeaseReadsAsExpired(t *testing.T) {
	s := openStore(t)
	rec := submitJob(t, s, mustPoints(t, testSpec(0.1)))
	if _, err := s.Claim(rec.ID, "alpha", time.Minute); err != nil {
		t.Fatal(err)
	}
	// Corrupt the lease file in place: the job must stay claimable, not
	// wedge forever behind an unparseable lease.
	if err := os.WriteFile(s.leasePath(rec.ID, 1), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := s.Claim(rec.ID, "beta", time.Minute)
	if err != nil || l.Epoch != 2 {
		t.Fatalf("claim over corrupt lease: %+v, %v", l, err)
	}
}

// TestMarshalResultsShape pins the canonical rendering: the indented
// json.Encoder form flovsweep writes, trailing newline included, so
// cluster results diff byte-identically against CLI output.
func TestMarshalResultsShape(t *testing.T) {
	points := mustPoints(t, testSpec(0.1))
	rows := referenceRows(t, points)
	data, err := MarshalResults(rows)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("no trailing newline")
	}
	var back []json.RawMessage
	if err := json.Unmarshal(data, &back); err != nil || len(back) != 1 {
		t.Fatalf("round-trip: %d rows, err %v", len(back), err)
	}
}
