package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestWorkerPreemptAndResume runs a job under aggressive slicing: every
// slice preempts, checkpoints land in the store, the lease is released
// at each boundary, and the final rows still match the single-node run.
func TestWorkerPreemptAndResume(t *testing.T) {
	points := mustPoints(t, longSpec(0.05, 0.1))
	ref := referenceBytes(t, points)

	store := openStore(t)
	rec := submitJob(t, store, points)
	w := &Worker{Store: store, Cache: newCache(t), Name: "slicer",
		LeaseTTL: time.Minute, Slice: time.Millisecond, Workers: 2}

	done := driveToDone(t, w, store, rec.ID)
	if done.State != StateDone || done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	_, _, finished, preempted := w.Counters()
	if preempted == 0 {
		t.Fatal("aggressive slicing never preempted")
	}
	if finished != 1 {
		t.Fatalf("finished = %d, want 1", finished)
	}
	got, ok := store.Results(rec.ID)
	if !ok {
		t.Fatal("no results file")
	}
	if !bytes.Equal(got, ref) {
		t.Error("sliced execution produced different bytes than single-node run")
	}
}

// TestWorkerFinishesAbandonedJob covers the epilogue steal: a previous
// holder wrote every row but died before the terminal bookkeeping; the
// next claimant finishes without re-simulating.
func TestWorkerFinishesAbandonedJob(t *testing.T) {
	points := mustPoints(t, testSpec(0.1, 0.2))
	rows := referenceRows(t, points)

	store := openStore(t)
	rec := submitJob(t, store, points)
	for i, r := range rows {
		if err := store.AppendRow(rec.ID, i, 1, r); err != nil {
			t.Fatal(err)
		}
	}
	w := &Worker{Store: store, Name: "janitor", LeaseTTL: time.Minute, Workers: 1}
	done := driveToDone(t, w, store, rec.ID)
	if done.State != StateDone || done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	got, _ := store.Results(rec.ID)
	if !bytes.Equal(got, referenceBytes(t, points)) {
		t.Error("assembled results differ from reference")
	}
}

// TestDeadlineIsAbsoluteAcrossRequeue pins the deadline fix: the job
// record carries an absolute deadline, so a steal or requeue does not
// restart the clock. A job whose deadline already passed cancels
// immediately regardless of how many epochs it went through.
func TestDeadlineIsAbsoluteAcrossRequeue(t *testing.T) {
	points := mustPoints(t, longSpec(0.05, 0.1))
	store := openStore(t)
	rec, _, err := store.Submit(JobRecord{Points: points,
		SubmittedMS: time.Now().Add(-time.Hour).UnixMilli(),
		DeadlineMS:  time.Now().Add(-time.Minute).UnixMilli()})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a prior epoch: claim and release, as a preempted worker
	// would. The deadline must not reset.
	l, err := store.Claim(rec.ID, "old", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}

	w := &Worker{Store: store, Name: "late", LeaseTTL: time.Minute, Workers: 2}
	done := driveToDone(t, w, store, rec.ID)
	if done.State != StateCanceled {
		t.Fatalf("state = %q, want canceled (expired absolute deadline)", done.State)
	}
	if done.Errors != len(points) {
		t.Fatalf("errors = %d, want %d (all points canceled)", done.Errors, len(points))
	}
	got, ok := store.Results(rec.ID)
	if !ok {
		t.Fatal("canceled job should still publish its (error) rows")
	}
	if !bytes.Contains(got, []byte("context canceled")) {
		t.Error("canceled rows should carry the canceled error, like the single-node daemon")
	}
}

// TestWorkerShutdownReleasesLease: canceling the worker's context mid
// slice releases the claim so another worker resumes without waiting
// out the TTL.
func TestWorkerShutdownReleasesLease(t *testing.T) {
	points := mustPoints(t, longSpec(0.05))
	store := openStore(t)
	rec := submitJob(t, store, points)

	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Store: store, Name: "doomed",
		LeaseTTL: time.Hour, // without release, a steal would wait an hour
		Slice:    50 * time.Millisecond, Workers: 1}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if _, done := store.Done(rec.ID); done {
		t.Skip("job finished before shutdown fired")
	}
	// The lease must be immediately claimable.
	if _, err := store.Claim(rec.ID, "heir", time.Minute); err != nil {
		t.Fatalf("claim after shutdown: %v (lease not released)", err)
	}
}
