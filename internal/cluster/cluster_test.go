package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flov/internal/sweep"
)

// testSpec is a small real grid: len(rates) baseline points on a 4x4
// mesh, cheap enough to simulate in a unit test.
func testSpec(rates ...float64) sweep.Spec {
	return sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      rates,
		GatedFracs: []float64{0.5},
		Mechanisms: []string{"baseline"},
		Width:      4, Height: 4,
		Cycles: 4_000, Warmup: 500,
		Seed: 7,
	}
}

// longSpec spans many checkpoint quanta per point, so slice preemption
// reliably catches points mid-run.
func longSpec(rates ...float64) sweep.Spec {
	s := testSpec(rates...)
	s.Cycles = 30_000
	return s
}

func mustPoints(t *testing.T, spec sweep.Spec) []sweep.Job {
	t.Helper()
	points, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newCache(t *testing.T) *sweep.Cache {
	t.Helper()
	c, err := sweep.NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// referenceRows runs the points through a cold single-node engine: the
// ground truth every cluster topology must reproduce.
func referenceRows(t *testing.T, points []sweep.Job) []sweep.Result {
	t.Helper()
	engine := &sweep.Engine{Workers: 2}
	return engine.Run(context.Background(), points)
}

// referenceBytes renders the single-node ground truth canonically.
func referenceBytes(t *testing.T, points []sweep.Job) []byte {
	t.Helper()
	data, err := MarshalResults(referenceRows(t, points))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// submitJob publishes a job record for points directly to the store.
func submitJob(t *testing.T, s *Store, points []sweep.Job) JobRecord {
	t.Helper()
	rec, _, err := s.Submit(JobRecord{Points: points, SubmittedMS: time.Now().UnixMilli()})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// driveToDone steps the worker until the job has a terminal marker.
func driveToDone(t *testing.T, w *Worker, s *Store, id string) DoneRecord {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if done, ok := s.Done(id); ok {
			return done
		}
		if _, err := w.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("job did not finish in time")
	return DoneRecord{}
}

// anySnapshot reports whether any point of the job has a stored
// checkpoint.
func anySnapshot(s *Store, id string, points int) bool {
	for i := 0; i < points; i++ {
		if _, ok := s.Snapshot(id, i); ok {
			return true
		}
	}
	return false
}

// TestClusterByteIdentical is the acceptance gate of the cluster
// subsystem: one sweep executed by two workers — with at least one
// stolen preempted slice and at least one federated cache hit — must
// produce results byte-identical to a single-node run of the same spec.
func TestClusterByteIdentical(t *testing.T) {
	points := mustPoints(t, longSpec(0.05, 0.1, 0.15, 0.2))
	ref := referenceBytes(t, points)

	// "Node gamma" computed this grid at some earlier time: its cache
	// holds the entries that must federate to node beta.
	cacheGamma := newCache(t)
	warmEngine := &sweep.Engine{Workers: 2, Cache: cacheGamma}
	warmEngine.Run(context.Background(), points)

	store := openStore(t)
	rec := submitJob(t, store, points)

	// Worker alpha (cold local cache) runs short slices: it preempts,
	// checkpointing in-run points, until at least one snapshot is durable.
	alpha := &Worker{Store: store, Cache: newCache(t), Name: "alpha",
		LeaseTTL: time.Minute, Slice: time.Millisecond, Workers: 2}
	for i := 0; i < 100 && !anySnapshot(store, rec.ID, len(points)); i++ {
		if _, err := alpha.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, done := store.Done(rec.ID); done {
			t.Fatal("job finished before a checkpoint was taken; shorten the slice")
		}
	}
	if !anySnapshot(store, rec.ID, len(points)) {
		t.Fatal("no checkpoint snapshot persisted by preempting worker")
	}
	_, _, _, preempted := alpha.Counters()
	if preempted == 0 {
		t.Fatal("alpha never preempted")
	}

	// Alpha crashes mid-epoch: it claims the job again and dies without
	// renewing or releasing. The lease must expire before beta can steal.
	if _, err := store.Claim(rec.ID, "alpha", 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Node beta: empty local cache, federated to gamma's.
	peerSrv := httptest.NewServer(CacheHandler(cacheGamma))
	defer peerSrv.Close()
	peers := NewPeers([]string{peerSrv.URL})
	beta := &Worker{Store: store, Cache: newCache(t), Peers: peers,
		Name: "beta", LeaseTTL: time.Minute, Workers: 2}

	done := driveToDone(t, beta, store, rec.ID)
	if done.State != StateDone {
		t.Fatalf("state = %q, want done (reason %q)", done.State, done.Reason)
	}
	if _, stolen, _, _ := beta.Counters(); stolen == 0 {
		t.Fatal("beta never stole the expired lease")
	}
	if hits, _, _ := peers.Counters(); hits == 0 {
		t.Fatal("no federated cache hit: pending entries should have come from gamma")
	}

	got, ok := store.Results(rec.ID)
	if !ok {
		t.Fatal("no results file")
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("cluster results differ from single-node run:\ncluster: %d bytes\nsingle:  %d bytes",
			len(got), len(ref))
	}

	// The lease file record shows the steal: the final epoch belongs to
	// beta and is at least 3 (alpha's preempts, alpha's crash, beta).
	lines, err := store.Events(rec.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawStolen, sawPreempted bool
	for _, line := range lines {
		if bytes.Contains(line, []byte(`"type":"stolen"`)) {
			sawStolen = true
		}
		if bytes.Contains(line, []byte(`"type":"preempted"`)) {
			sawPreempted = true
		}
	}
	if !sawStolen || !sawPreempted {
		t.Errorf("event feed missing steal/preempt markers (stolen=%v preempted=%v)",
			sawStolen, sawPreempted)
	}
}

// TestClusterSingleWorkerMatchesReference pins the simplest topology:
// one worker, no slicing, no federation.
func TestClusterSingleWorkerMatchesReference(t *testing.T) {
	points := mustPoints(t, testSpec(0.1, 0.2))
	ref := referenceBytes(t, points)

	store := openStore(t)
	rec := submitJob(t, store, points)
	w := &Worker{Store: store, Cache: newCache(t), Name: "solo",
		LeaseTTL: time.Minute, Workers: 2}
	done := driveToDone(t, w, store, rec.ID)
	if done.State != StateDone || done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	got, ok := store.Results(rec.ID)
	if !ok {
		t.Fatal("no results file")
	}
	if !bytes.Equal(got, ref) {
		t.Error("single-worker cluster results differ from direct engine run")
	}
	// Execution state is cleaned up; the durable artifacts remain.
	if anySnapshot(store, rec.ID, len(points)) {
		t.Error("snapshots not removed after completion")
	}
	if entries, err := os.ReadDir(filepath.Join(store.Dir(), "leases")); err != nil || len(entries) != 0 {
		t.Errorf("leases not removed after completion (%d left, err %v)", len(entries), err)
	}
}
