package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flov/internal/sweep"
)

// Front door: the cluster's stateless serving layer. All job state
// lives in the store, so any number of front doors can serve one
// cluster and a restarted front door resumes exactly where the old one
// stopped — a client re-requests its stream with ?from=<lines already
// seen> and replay continues from the durable event feed. The only
// in-memory state is admission smoothing (token buckets), which is
// deliberately lossy across restarts: forgetting a bucket briefly
// over-admits, never corrupts.

// maxSpecBytes bounds a submitted spec body, mirroring the single-node
// daemon's limit.
const maxSpecBytes = 1 << 20

// ErrQuotaExceeded reports a tenant at its unfinished-job quota.
var ErrQuotaExceeded = errors.New("cluster: tenant quota exceeded")

// ErrRateLimited reports a tenant submitting faster than its rate.
var ErrRateLimited = errors.New("cluster: tenant rate limited")

// FrontDoorConfig tunes admission control.
type FrontDoorConfig struct {
	// MaxActivePerTenant caps a tenant's unfinished (queued or running)
	// jobs; further submissions answer 429 until one finishes. <= 0
	// means 4.
	MaxActivePerTenant int
	// RatePerMinute caps a tenant's submission rate (token bucket).
	// <= 0 means 120.
	RatePerMinute int
	// Burst is the bucket depth. <= 0 means max(4, RatePerMinute/10).
	Burst int
	// JobTimeout, when positive, stamps submissions that carry no
	// explicit timeout with an absolute deadline this far out.
	JobTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c FrontDoorConfig) maxActive() int {
	if c.MaxActivePerTenant > 0 {
		return c.MaxActivePerTenant
	}
	return 4
}

func (c FrontDoorConfig) ratePerMinute() int {
	if c.RatePerMinute > 0 {
		return c.RatePerMinute
	}
	return 120
}

func (c FrontDoorConfig) burst() int {
	if c.Burst > 0 {
		return c.Burst
	}
	if b := c.ratePerMinute() / 10; b > 4 {
		return b
	}
	return 4
}

// JobStatus is the front door's poll/submit response body.
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"` // queued | running | done | canceled
	Tenant string `json:"tenant,omitempty"`
	Points int    `json:"points"`
	// Done counts durable rows (points that will not re-simulate).
	Done   int    `json:"done"`
	Errors int    `json:"errors,omitempty"`
	Err    string `json:"err,omitempty"`
	// Deduped marks a submission that coincided with an existing
	// identical job (content-addressed ids make this exact).
	Deduped bool `json:"deduped,omitempty"`
	// DeadlineMS is the job's absolute deadline (unix ms; 0 = none).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// errorBody is the JSON error payload, wire-compatible with the
// single-node daemon's.
type errorBody struct {
	Error string `json:"error"`
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// FrontDoor serves the cluster API over a store.
type FrontDoor struct {
	store *Store
	cfg   FrontDoorConfig

	mu      sync.Mutex
	buckets map[string]*bucket

	submits, deduped, rejected, streams atomic.Int64
}

// NewFrontDoor builds a front door over store.
func NewFrontDoor(store *Store, cfg FrontDoorConfig) *FrontDoor {
	return &FrontDoor{store: store, cfg: cfg, buckets: make(map[string]*bucket)}
}

func (f *FrontDoor) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Handler returns the cluster API:
//
//	POST /v1/cluster/jobs              submit a spec (202; 429 + Retry-After when throttled)
//	GET  /v1/cluster/jobs/{id}         job status
//	GET  /v1/cluster/jobs/{id}/stream  NDJSON event feed; ?from=N resumes after N lines
//	GET  /v1/cluster/jobs/{id}/results canonical result rows of a finished job
//	GET  /metrics                      Prometheus counters
//	GET  /healthz                      liveness
func (f *FrontDoor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/cluster/jobs/{id}", f.handleStatus)
	mux.HandleFunc("GET /v1/cluster/jobs/{id}/stream", f.handleStream)
	mux.HandleFunc("GET /v1/cluster/jobs/{id}/results", f.handleResults)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Committed response: an encode error means the client went away.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// tenant extracts the caller's tenant: the X-Flov-Tenant header, else
// "default". Authentication is out of scope; the quota machinery only
// needs a stable identity per caller.
func tenant(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Flov-Tenant")); t != "" {
		return t
	}
	return "default"
}

// admitRate charges one token from the tenant's bucket. On refusal it
// returns how long until a token is available, which the handler
// surfaces as Retry-After.
func (f *FrontDoor) admitRate(ten string, now time.Time) (time.Duration, error) {
	rate := float64(f.cfg.ratePerMinute()) / 60.0 // tokens per second
	depth := float64(f.cfg.burst())
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.buckets[ten]
	if !ok {
		b = &bucket{tokens: depth, last: now}
		f.buckets[ten] = b
	}
	b.tokens = math.Min(depth, b.tokens+now.Sub(b.last).Seconds()*rate)
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
		return wait, ErrRateLimited
	}
	b.tokens--
	return 0, nil
}

// activeJobs counts a tenant's unfinished jobs (store scan; the store
// is the only state, which is what keeps the front door stateless).
func (f *FrontDoor) activeJobs(ten string) (int, error) {
	ids, err := f.store.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		if _, done := f.store.Done(id); done {
			continue
		}
		rec, err := f.store.Job(id)
		if err != nil {
			continue
		}
		if rec.Tenant == ten {
			n++
		}
	}
	return n, nil
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// rounding up so clients never retry early (minimum 1).
func retryAfterSeconds(wait time.Duration) string {
	s := int(math.Ceil(wait.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// handleSubmit admits a spec into the store. Throttled submissions
// (rate or quota) answer 429 with a Retry-After header; the service
// client's bounded-backoff retry honors it.
func (f *FrontDoor) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ten := tenant(r)
	now := time.Now()
	if wait, err := f.admitRate(ten, now); err != nil {
		f.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	points, err := readSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	active, err := f.activeJobs(ten)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if active >= f.cfg.maxActive() {
		f.rejected.Add(1)
		// A finishing job frees the quota slot; a short fixed hint keeps
		// well-behaved clients from hammering the scan.
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusTooManyRequests, ErrQuotaExceeded.Error())
		return
	}

	rec := JobRecord{
		ID:          JobID(points),
		Tenant:      ten,
		Points:      points,
		SubmittedMS: now.UnixMilli(),
	}
	// The deadline is absolute from admission time: requeues and steals
	// inherit it unchanged, so a job's wall budget never restarts.
	timeout := f.cfg.JobTimeout
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "timeout_ms must be a non-negative integer")
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > 0 {
		rec.DeadlineMS = now.Add(timeout).UnixMilli()
	}

	stored, created, err := f.store.Submit(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	f.submits.Add(1)
	if created {
		line, err := json.Marshal(Event{Type: EventAccepted, Job: stored.ID,
			Total: len(stored.Points)})
		if err == nil {
			if aerr := f.store.AppendEvent(stored.ID, line); aerr != nil {
				f.logf("event append failed for %s: %v", stored.ID, aerr)
			}
		}
		f.logf("accepted %s from %s (%d points)", stored.ID, ten, len(stored.Points))
	} else {
		f.deduped.Add(1)
	}
	st := f.status(stored)
	st.Deduped = !created
	writeJSON(w, http.StatusAccepted, st)
}

// status derives a job's externally visible status from the store.
func (f *FrontDoor) status(rec JobRecord) JobStatus {
	st := JobStatus{
		ID:         rec.ID,
		Tenant:     rec.Tenant,
		Points:     len(rec.Points),
		State:      f.store.JobState(rec.ID),
		DeadlineMS: rec.DeadlineMS,
	}
	if done, ok := f.store.Done(rec.ID); ok {
		st.Done = len(rec.Points)
		st.Errors = done.Errors
		st.Err = done.Reason
		return st
	}
	if rows, err := f.store.Rows(rec.ID, rec.Points); err == nil {
		st.Done = len(rows)
	}
	return st
}

func (f *FrontDoor) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, err := f.store.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, f.status(rec))
}

// streamPoll is how often a live stream re-reads the feed while waiting
// for new lines.
const streamPoll = 150 * time.Millisecond

// handleStream replays a job's event feed as NDJSON and follows it live
// until the terminal summary. ?from=N skips the first N lines: a client
// that counted its received lines resumes exactly where its previous
// connection (possibly to a different front door) dropped.
func (f *FrontDoor) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := f.store.Job(id); err != nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative integer")
			return
		}
		from = v
	}
	f.streams.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	for {
		lines, err := f.store.Events(id, from)
		if err != nil {
			return
		}
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return // client gone
			}
			from++
			if flusher != nil {
				flusher.Flush()
			}
			var ev struct {
				Type string `json:"type"`
			}
			if json.Unmarshal(line, &ev) == nil && ev.Type == EventSummary {
				return
			}
		}
		// The done marker without a summary line means a worker died
		// between them; end the stream rather than following forever.
		if _, done := f.store.Done(id); done && len(lines) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(streamPoll):
		}
	}
}

// handleResults serves the canonical results file raw — the same bytes
// every worker computed, byte-identical to a single-node run.
func (f *FrontDoor) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := f.store.Job(id); err != nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	data, ok := f.store.Results(id)
	if !ok {
		writeError(w, http.StatusConflict, "job not finished: "+f.store.JobState(id))
		return
	}
	if done, ok := f.store.Done(id); ok && done.State == StateCanceled {
		writeError(w, http.StatusGone, "job canceled: "+done.Reason)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (f *FrontDoor) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("flov_cluster_submits_total", "Accepted job submissions.", f.submits.Load())
	counter("flov_cluster_deduped_total", "Submissions coinciding with an existing job.", f.deduped.Load())
	counter("flov_cluster_rejected_total", "Submissions refused by rate limit or quota.", f.rejected.Load())
	counter("flov_cluster_streams_total", "Event stream requests served.", f.streams.Load())
	states := map[string]int{}
	if ids, err := f.store.List(); err == nil {
		for _, id := range ids {
			states[f.store.JobState(id)]++
		}
	}
	fmt.Fprintf(&b, "# HELP flov_cluster_jobs Jobs in the store by state.\n# TYPE flov_cluster_jobs gauge\n")
	for _, st := range []string{"queued", "running", StateDone, StateCanceled} {
		fmt.Fprintf(&b, "flov_cluster_jobs{state=%q} %d\n", st, states[st])
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, b.String())
}

// readSpec parses and expands the request body into a point list,
// mirroring the single-node daemon's admission parsing.
func readSpec(r *http.Request) ([]sweep.Job, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("spec larger than %d bytes", maxSpecBytes)
	}
	var spec sweep.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("parse spec: %w", err)
	}
	points, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("spec expands to zero jobs")
	}
	return points, nil
}
