package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flov/internal/sweep"
)

// Store is the cluster's persistent job/row store: a directory of
// append-only files that any number of processes open concurrently.
// Every mutation is either an atomic filesystem operation (link, rename)
// or a single O_APPEND write of one complete NDJSON line, so a crash at
// any instant leaves at worst a torn final line, which every reader
// tolerates. A Store handle is safe for concurrent use.
type Store struct {
	dir string

	mu sync.Mutex // serializes this handle's appends (cross-process safety is O_APPEND)
}

// Store errors.
var (
	// ErrUnknownJob reports a job id with no record in the store.
	ErrUnknownJob = errors.New("cluster: unknown job")
	// ErrLeaseHeld reports a claim attempt on a job whose current lease
	// has not expired.
	ErrLeaseHeld = errors.New("cluster: lease held by another worker")
	// ErrLeaseLost reports a renew on a lease that was superseded by a
	// higher epoch (another worker stole the job).
	ErrLeaseLost = errors.New("cluster: lease lost")
)

// JobRecord is the durable description of one submitted job: the fully
// expanded point list plus identity and scheduling metadata. The record
// is immutable once published; all execution state (rows, leases,
// snapshots) lives beside it.
type JobRecord struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// SpecHash is the dedup identity: the hash of the expanded point
	// hashes, shared with the single-node daemon's dedup key.
	SpecHash string      `json:"spec_hash"`
	Points   []sweep.Job `json:"points"`
	// SubmittedMS stamps admission (unix milliseconds).
	SubmittedMS int64 `json:"submitted_ms"`
	// DeadlineMS is the absolute completion deadline (unix milliseconds;
	// 0 = none). Absolute, not a duration: the clock must not restart
	// when the job is requeued or stolen.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// DoneRecord is the terminal marker of a finished job.
type DoneRecord struct {
	State      string `json:"state"` // done | canceled
	Reason     string `json:"reason,omitempty"`
	FinishedMS int64  `json:"finished_ms"`
	Errors     int    `json:"errors"` // error-carrying rows in the final set
}

// rowRecord is one line of rows/<id>.ndjson. Epoch records which lease
// wrote the row — diagnostics only; determinism makes duplicate rows
// from raced epochs byte-identical, so readers just take the last valid
// record per point (last-write-wins).
type rowRecord struct {
	Point  int          `json:"point"`
	Epoch  int          `json:"epoch"`
	Result sweep.Result `json:"result"`
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"jobs", "leases", "rows", "events", "results", "snaps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cluster: create store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// SpecHash is the cluster-wide identity of a point list, identical to
// the single-node daemon's dedup key: the hash of the expanded point
// hashes, so two spellings of the same grid coincide.
func SpecHash(points []sweep.Job) string {
	h := sha256.New()
	for _, p := range points {
		// hash.Hash.Write never returns an error.
		_, _ = fmt.Fprintf(h, "%s\n", p.Hash())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobID derives the job id from a point list. Content-addressed: the
// same spec is the same job cluster-wide, which makes submission
// idempotent and dedups identical concurrent submissions for free.
func JobID(points []sweep.Job) string {
	return "j" + SpecHash(points)[:16]
}

func (s *Store) jobPath(id string) string     { return filepath.Join(s.dir, "jobs", id+".json") }
func (s *Store) donePath(id string) string    { return filepath.Join(s.dir, "jobs", id+".done.json") }
func (s *Store) rowsPath(id string) string    { return filepath.Join(s.dir, "rows", id+".ndjson") }
func (s *Store) eventsPath(id string) string  { return filepath.Join(s.dir, "events", id+".ndjson") }
func (s *Store) resultsPath(id string) string { return filepath.Join(s.dir, "results", id+".json") }
func (s *Store) snapPath(id string, point int) string {
	return filepath.Join(s.dir, "snaps", id, fmt.Sprintf("%d.snap", point))
}

// publish writes data to a unique temp file and links it to path: the
// link is the atomic commit, failing with EEXIST when another process
// published first. Content is complete at commit time by construction.
func publish(path string, data []byte) (won bool, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return false, err
	}
	name := tmp.Name()
	defer func() { _ = os.Remove(name) }() // best effort; the link keeps the inode alive
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Link(name, path); err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// appendLine appends one complete line to path with a single write, so
// concurrent appenders (including other processes) interleave whole
// lines, never fragments, on local filesystems.
func (s *Store) appendLine(path string, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		line = append(line, '\n')
	}
	_, werr := f.Write(line)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Submit publishes a job record. Submission is idempotent on the
// content-addressed id: a record already present is returned as-is with
// created=false, so concurrent identical submissions coincide instead
// of racing.
func (s *Store) Submit(rec JobRecord) (JobRecord, bool, error) {
	if rec.ID == "" {
		rec.ID = JobID(rec.Points)
	}
	if rec.SpecHash == "" {
		rec.SpecHash = SpecHash(rec.Points)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return JobRecord{}, false, fmt.Errorf("cluster: encode job: %w", err)
	}
	won, err := publish(s.jobPath(rec.ID), data)
	if err != nil {
		return JobRecord{}, false, fmt.Errorf("cluster: publish job: %w", err)
	}
	if won {
		return rec, true, nil
	}
	existing, err := s.Job(rec.ID)
	if err != nil {
		return JobRecord{}, false, err
	}
	return existing, false, nil
}

// Job reads a job record by id.
func (s *Store) Job(id string) (JobRecord, error) {
	data, err := os.ReadFile(s.jobPath(id))
	if err != nil {
		return JobRecord{}, ErrUnknownJob
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return JobRecord{}, fmt.Errorf("cluster: corrupt job record %s: %w", id, err)
	}
	return rec, nil
}

// List returns every submitted job id, sorted for deterministic scans.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".done.json") || !strings.HasSuffix(name, ".json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// MarkDone publishes the terminal marker. First writer wins; a losing
// write (a raced steal finishing the same job) is not an error — both
// computed byte-identical results.
func (s *Store) MarkDone(id string, rec DoneRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encode done record: %w", err)
	}
	if _, err := publish(s.donePath(id), data); err != nil {
		return fmt.Errorf("cluster: publish done record: %w", err)
	}
	return nil
}

// Done reports the terminal marker of a job, if present.
func (s *Store) Done(id string) (DoneRecord, bool) {
	data, err := os.ReadFile(s.donePath(id))
	if err != nil {
		return DoneRecord{}, false
	}
	var rec DoneRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return DoneRecord{}, false
	}
	return rec, true
}

// AppendRow records a durable finished row for one point. Error-carrying
// results are the caller's to keep out (errors re-simulate on adoption,
// like the flovsweep row log).
func (s *Store) AppendRow(id string, point, epoch int, r sweep.Result) error {
	line, err := json.Marshal(rowRecord{Point: point, Epoch: epoch, Result: r})
	if err != nil {
		return fmt.Errorf("cluster: encode row: %w", err)
	}
	return s.appendLine(s.rowsPath(id), line)
}

// Rows reads the durable rows of a job, keyed by point index. The
// reader is the torn-tail-tolerant counterpart of AppendRow: a
// partially written final record (crash mid-append), a zero-byte file,
// blank lines and error-carrying rows are all skipped, and duplicate
// records for one point resolve last-write-wins. points, when non-nil,
// additionally pins each row to the job hash of its point — a row for
// the wrong point (foreign writer, corrupted index) is dropped rather
// than adopted.
func (s *Store) Rows(id string, points []sweep.Job) (map[int]sweep.Result, error) {
	data, err := os.ReadFile(s.rowsPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]sweep.Result{}, nil
		}
		return nil, err
	}
	rows := make(map[int]sweep.Result)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec rowRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Result.Err != "" {
			continue
		}
		if rec.Point < 0 {
			continue
		}
		if points != nil {
			if rec.Point >= len(points) || rec.Result.Job.Hash() != points[rec.Point].Hash() {
				continue
			}
		}
		rows[rec.Point] = rec.Result
	}
	return rows, nil
}

// PutSnapshot stores a point's mid-run checkpoint (atomic replace).
func (s *Store) PutSnapshot(id string, point int, data []byte) error {
	dir := filepath.Join(s.dir, "snaps", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.snapPath(id, point)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Snapshot reads a point's checkpoint; a missing file is simply absent
// (the point starts cold). Integrity is the restorer's concern — the
// snapshot container is CRC-guarded, and a corrupt checkpoint fails the
// resume loudly rather than silently diverging.
func (s *Store) Snapshot(id string, point int) ([]byte, bool) {
	data, err := os.ReadFile(s.snapPath(id, point))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// RemoveSnapshots deletes a finished job's checkpoint directory.
func (s *Store) RemoveSnapshots(id string) {
	_ = os.RemoveAll(filepath.Join(s.dir, "snaps", id))
}

// AppendEvent appends one event line to the job's feed. Lines are
// opaque to the store (the front door and workers agree on the JSON
// shape), so the store never imports the serving layer.
func (s *Store) AppendEvent(id string, line []byte) error {
	return s.appendLine(s.eventsPath(id), line)
}

// Events returns the feed lines from index from onward. A torn final
// line (a writer crashed or is mid-append) is withheld until complete,
// so replayed offsets are stable: line i is line i forever.
func (s *Store) Events(id string, from int) ([][]byte, error) {
	data, err := os.ReadFile(s.eventsPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var lines [][]byte
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break // no trailing newline: torn tail, not yet visible
		}
		line := data[:i]
		data = data[i+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	if from >= len(lines) {
		return nil, nil
	}
	return lines[from:], nil
}

// WriteResults publishes the canonical final row set (atomic replace;
// raced writers produce byte-identical bytes, so last-wins is safe).
func (s *Store) WriteResults(id string, data []byte) error {
	dir := filepath.Join(s.dir, "results")
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.resultsPath(id)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Results reads the canonical final row set of a finished job.
func (s *Store) Results(id string) ([]byte, bool) {
	data, err := os.ReadFile(s.resultsPath(id))
	if err != nil {
		return nil, false
	}
	return data, true
}

// assembleRows builds the job's final row set in point order from the
// durable rows plus this slice's in-memory outcomes (error rows are
// never persisted, so they only exist in slice). Points with neither —
// a deadline or cancellation hit before they ran — report canceled,
// matching the single-node daemon. Pure and deterministic by
// construction: it is a flovlint reach root, because its output is the
// byte-compared artifact of the cluster's equivalence contract.
func assembleRows(points []sweep.Job, durable, slice map[int]sweep.Result) []sweep.Result {
	full := make([]sweep.Result, len(points))
	for i := range points {
		if r, ok := durable[i]; ok {
			full[i] = r
			continue
		}
		if r, ok := slice[i]; ok {
			full[i] = r
			continue
		}
		full[i] = sweep.Result{Job: points[i], Err: context.Canceled.Error()}
	}
	return full
}

// MarshalResults renders rows exactly as `flovsweep -format json` does
// (indented encoder, trailing newline), so a cluster job's results file
// diffs byte-identically against a single-node run of the same spec.
func MarshalResults(rows []sweep.Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(rows); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// JobState derives a job's lifecycle state from the store: the terminal
// marker wins, a live lease means running, anything else is queued.
func (s *Store) JobState(id string) string {
	if done, ok := s.Done(id); ok {
		return done.State
	}
	if info, ok := s.CurrentLease(id); ok && !info.Expired(time.Now()) {
		return "running"
	}
	return "queued"
}
