// Package cluster promotes flovd from a single node to a shared-nothing
// cluster: any number of worker processes pull leased jobs from a
// persistent store on a shared directory, execute them through the
// existing sweep.Engine, and work-steal each other's preempted job
// slices by adopting checkpoint snapshots when a lease expires. A
// stateless front door does admission control, per-tenant quotas and
// rate limits, and serves resumable client streams that replay a job's
// event feed from the store — a front-door restart loses nothing.
//
// The correctness contract is byte-identical determinism: the same spec
// produces the same result rows whether it ran on one node, on three,
// or was stolen mid-slice, because every row is a deterministic
// function of its sweep.Job and checkpoint restore is byte-exact
// (internal/snapshot's acceptance gate). That contract is what makes
// the design simple — a lease race that double-executes a point wastes
// CPU but cannot corrupt results, so leases only need to be atomic, not
// perfectly fenced.
//
// Store layout (one directory, shared by NFS-free local mounts or a
// single machine's processes):
//
//	jobs/<id>.json        job record, published by atomic link (idempotent submit)
//	jobs/<id>.done.json   terminal marker, first writer wins
//	leases/<id>.<epoch>   lease epochs, claimed by atomic hard link
//	rows/<id>.ndjson      finished rows, append-only, torn-tail tolerant
//	events/<id>.ndjson    job event feed, append-only (stream replay)
//	results/<id>.json     canonical final row set, written once at completion
//	snaps/<id>/<n>.snap   mid-run checkpoints of preempted points
//
// Everything wall-clock (leases, deadlines, polling) lives here and in
// cmd/flovd; simulation packages stay on cycle time — flovlint pins
// that, with internal/cluster allowlisted alongside internal/service.
package cluster
