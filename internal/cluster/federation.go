package cluster

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"flov/internal/sweep"
)

// Cache federation. Every node's content-addressed cache speaks a tiny
// read-only HTTP protocol over the existing keys: result entries by job
// hash, warm-start/checkpoint blobs by blob key. A node that misses
// locally asks its peers before simulating, then writes the fetched
// entry into its own cache, so a row or warm blob computed once is a
// hit everywhere. Keys are content hashes, so federation needs no
// invalidation protocol — an entry is either valid for its key or
// rejected by the same three-layer hardening local reads get
// (sweep.DecodeEntry); blobs are CRC-guarded by the snapshot container
// and additionally magic-checked before adoption.

// maxFederatedEntry bounds a fetched peer response; entries are a few
// KiB, blobs tens of KiB, so 64 MiB is generous and still DoS-safe.
const maxFederatedEntry = 64 << 20

// snapshotMagic mirrors the snapshot container's leading magic; a
// remote blob that does not even start with it is rejected before it
// can pollute the local cache (the CRC check at restore time is the
// real integrity gate; this just refuses obvious garbage cheaply).
var snapshotMagic = []byte("FLOVSNAP")

// validKey reports whether key is a plausible content hash — lowercase
// hex, at least one byte of prefix directory. Anything else (path
// traversal, foreign names) is rejected at the HTTP boundary.
func validKey(key string) bool {
	if len(key) < 2 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// CacheHandler serves a node's cache to its peers:
//
//	GET /v1/cache/entry/{hash}  raw result-cache entry bytes
//	GET /v1/cache/blob/{key}    raw blob bytes (warm snapshots)
//	GET /healthz                liveness
//
// Read-only by construction: peers validate and write into their own
// caches; nothing remote ever writes into this one.
func CacheHandler(c *sweep.Cache) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/entry/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if !validKey(hash) {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		data, ok := c.ReadEntry(hash)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Committed response: a failed write means the peer went away.
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /v1/cache/blob/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		data, ok := c.GetBlob(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// Peers is the fetching side of cache federation: an ordered list of
// peer cache base URLs tried on local misses. Safe for concurrent use.
type Peers struct {
	bases []string
	http  *http.Client

	hits, misses, rejected atomic.Int64
}

// NewPeers builds a federation client over peer base URLs (e.g.
// "http://node2:8091"). Requests are short-deadline: a slow or dead
// peer must cost milliseconds, not stall a worker — simulating locally
// is always a correct fallback.
func NewPeers(bases []string) *Peers {
	clean := make([]string, 0, len(bases))
	for _, b := range bases {
		if b = strings.TrimSpace(strings.TrimRight(b, "/")); b != "" {
			clean = append(clean, b)
		}
	}
	return &Peers{bases: clean, http: &http.Client{Timeout: 5 * time.Second}}
}

// Len reports the number of configured peers.
func (p *Peers) Len() int {
	if p == nil {
		return 0
	}
	return len(p.bases)
}

// Counters reports fetch outcomes: hits (validated entries adopted),
// misses (no peer had the key), rejected (a peer served bytes that
// failed validation — corruption or a foreign writer).
func (p *Peers) Counters() (hits, misses, rejected int64) {
	return p.hits.Load(), p.misses.Load(), p.rejected.Load()
}

// get fetches one key from one peer, bounded in size.
func (p *Peers) get(url string) ([]byte, bool) {
	resp, err := p.http.Get(url)
	if err != nil {
		return nil, false
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFederatedEntry+1))
	if err != nil || len(data) > maxFederatedEntry {
		return nil, false
	}
	return data, true
}

// FetchResult asks the peers for a job's cached result, first answer
// wins. Every remote entry passes the full local hardening
// (sweep.DecodeEntry): a corrupt or mismatched peer entry is counted,
// skipped, and the next peer is tried.
func (p *Peers) FetchResult(j sweep.Job) (sweep.Result, bool) {
	if p.Len() == 0 {
		return sweep.Result{}, false
	}
	hash := j.Hash()
	for _, base := range p.bases {
		data, ok := p.get(base + "/v1/cache/entry/" + hash)
		if !ok {
			continue
		}
		r, ok := sweep.DecodeEntry(hash, data)
		if !ok {
			p.rejected.Add(1)
			continue
		}
		p.hits.Add(1)
		return r, true
	}
	p.misses.Add(1)
	return sweep.Result{}, false
}

// FetchBlob asks the peers for a cache blob (a warm-start snapshot).
// Blobs are rejected unless they carry the snapshot container magic;
// the CRC-guarded restore remains the hard integrity gate, and a blob
// that fails it later is removed by the existing corrupt-blob healing.
func (p *Peers) FetchBlob(key string) ([]byte, bool) {
	if p.Len() == 0 {
		return nil, false
	}
	for _, base := range p.bases {
		data, ok := p.get(base + "/v1/cache/blob/" + key)
		if !ok {
			continue
		}
		if !bytes.HasPrefix(data, snapshotMagic) {
			p.rejected.Add(1)
			continue
		}
		p.hits.Add(1)
		return data, true
	}
	p.misses.Add(1)
	return nil, false
}

// Warm pulls a job's cached result (and, for warm-started synthetic
// points, its warm blob) from peers into the local cache when absent,
// so the engine's subsequent lookups hit locally. Best-effort: any
// failure simply leaves the point to simulate.
func (p *Peers) Warm(c *sweep.Cache, jobs []sweep.Job, warmStart bool) (adopted int) {
	if p.Len() == 0 || c == nil {
		return 0
	}
	for _, j := range jobs {
		if _, ok := c.ReadEntry(j.Hash()); !ok {
			if r, ok := p.FetchResult(j); ok {
				if err := c.Put(r); err == nil {
					adopted++
				}
			}
		}
		if warmStart && j.Kind == sweep.Synthetic && j.Config.WarmupCycles > 0 {
			key := j.WarmKey()
			if _, ok := c.GetBlob(key); !ok {
				if blob, ok := p.FetchBlob(key); ok {
					if err := c.PutBlob(key, blob); err == nil {
						adopted++
					}
				}
			}
		}
	}
	return adopted
}
