package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"flov/internal/sweep"
)

// fillCache simulates "another node computed these points": a cold
// engine run writing into c.
func fillCache(t *testing.T, c *sweep.Cache, points []sweep.Job) {
	t.Helper()
	engine := &sweep.Engine{Workers: 2, Cache: c}
	engine.Run(context.Background(), points)
}

func TestFederationEntryFetch(t *testing.T) {
	points := mustPoints(t, testSpec(0.1, 0.2))
	remote := newCache(t)
	fillCache(t, remote, points)

	srv := httptest.NewServer(CacheHandler(remote))
	defer srv.Close()
	peers := NewPeers([]string{srv.URL})

	local := newCache(t)
	if n := peers.Warm(local, points, false); n != len(points) {
		t.Fatalf("Warm adopted %d entries, want %d", n, len(points))
	}
	hits, misses, rejected := peers.Counters()
	if hits != int64(len(points)) || misses != 0 || rejected != 0 {
		t.Fatalf("counters = %d/%d/%d", hits, misses, rejected)
	}
	// The adopted entries hit locally and carry the exact remote rows.
	for _, p := range points {
		r, ok := local.Get(p)
		if !ok {
			t.Fatalf("local miss for %s after federation", p.Desc())
		}
		want, _ := remote.Get(p)
		if r.Job.Hash() != want.Job.Hash() {
			t.Fatal("federated entry decodes to a different job")
		}
	}
	// Re-warming is a no-op: everything already local.
	if n := peers.Warm(local, points, false); n != 0 {
		t.Fatalf("second Warm adopted %d, want 0", n)
	}
}

// TestFederationRejectsCorruptEntry pins the hardening: a peer serving
// mangled bytes (torn write, foreign writer, bitrot) is counted and
// skipped; the local cache never adopts them.
func TestFederationRejectsCorruptEntry(t *testing.T) {
	points := mustPoints(t, testSpec(0.1))
	remote := newCache(t)
	fillCache(t, remote, points)

	// Mangle the stored entry in place: parseable JSON, wrong content.
	hash := points[0].Hash()
	path := filepath.Join(remote.Dir(), hash[:2], hash+".json")
	if err := os.WriteFile(path, []byte(`{"hash":"`+hash+`","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(CacheHandler(remote))
	defer srv.Close()
	peers := NewPeers([]string{srv.URL})

	if _, ok := peers.FetchResult(points[0]); ok {
		t.Fatal("corrupt remote entry accepted")
	}
	_, misses, rejected := peers.Counters()
	if rejected != 1 || misses != 1 {
		t.Fatalf("rejected=%d misses=%d, want 1/1", rejected, misses)
	}
	local := newCache(t)
	if n := peers.Warm(local, points, false); n != 0 {
		t.Fatalf("Warm adopted %d corrupt entries", n)
	}
}

func TestFederationBlobFetch(t *testing.T) {
	remote := newCache(t)
	key := "ab12cd34"
	blob := append([]byte("FLOVSNAP"), []byte("checkpoint-payload")...)
	if err := remote.PutBlob(key, blob); err != nil {
		t.Fatal(err)
	}
	// A garbage blob without the container magic.
	if err := remote.PutBlob("ff00ff00", []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(CacheHandler(remote))
	defer srv.Close()
	peers := NewPeers([]string{srv.URL})

	got, ok := peers.FetchBlob(key)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("blob fetch: ok=%v len=%d", ok, len(got))
	}
	if _, ok := peers.FetchBlob("ff00ff00"); ok {
		t.Fatal("magic-less blob accepted")
	}
	if _, ok := peers.FetchBlob("0123456789abcdef"); ok {
		t.Fatal("missing blob reported as hit")
	}
}

// TestFederationHandlerRejectsBadKeys pins the HTTP boundary: only
// plausible content hashes reach the filesystem.
func TestFederationHandlerRejectsBadKeys(t *testing.T) {
	srv := httptest.NewServer(CacheHandler(newCache(t)))
	defer srv.Close()

	for _, key := range []string{"UPPER", "xyz!", "a", "..%2f..%2fetc"} {
		resp, err := http.Get(srv.URL + "/v1/cache/entry/" + key)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
			resp.StatusCode != http.StatusMovedPermanently {
			t.Errorf("key %q: status %d, want rejection", key, resp.StatusCode)
		}
	}
	// A well-formed miss is a clean 404.
	resp, err := http.Get(srv.URL + "/v1/cache/entry/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("miss status = %d, want 404", resp.StatusCode)
	}
}

// TestFederationDeadPeer: an unreachable peer is a fast miss, never an
// error — simulating locally is always a correct fallback.
func TestFederationDeadPeer(t *testing.T) {
	peers := NewPeers([]string{"http://127.0.0.1:1"}) // reliably refused
	points := mustPoints(t, testSpec(0.1))
	if _, ok := peers.FetchResult(points[0]); ok {
		t.Fatal("dead peer produced a hit")
	}
	if n := peers.Warm(newCache(t), points, true); n != 0 {
		t.Fatalf("Warm over dead peer adopted %d", n)
	}
}
