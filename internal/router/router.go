// Package router implements the baseline 3-stage virtual-channel router
// (Peh & Dally style) that all four mechanisms build on: per-VC input
// buffers, route computation, separable VC and switch allocation with
// round-robin priorities, switch traversal, and credit-based flow control.
//
// The router is mechanism-agnostic. Power-gating schemes customize it
// through four hooks: RouteFn (routing policy), AllocOK (handshake gating
// of new packet allocations per output), WakeReq (destination-gated wakeup
// trigger) and OnCtrl (non-credit control messages). Package core wraps it
// into a FLOV router; package rp drives it from the fabric manager.
package router

import (
	"fmt"

	"flov/internal/config"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/routing"
	"flov/internal/sim"
	"flov/internal/topology"
)

// TraceCredit, when non-nil, observes every credit consume/return and
// every bulk counter rewrite on every router (kind is one of "return",
// "consume", "copy", "full", "zero", "drop"). Intended for protocol
// debugging and invariant checks in tests; nil in normal runs.
var TraceCredit func(routerID int, port topology.Direction, vc int, count int, kind string)

// Signal is the unit carried by control channels: either a credit return
// for the paired flit channel, or a mechanism-defined control message.
type Signal struct {
	IsCredit bool
	VC       int // credit: freed VC index in the sender's input buffer
	Msg      any // control: mechanism-defined payload (nil for credits)
}

// CreditSignal builds a credit return for vc.
func CreditSignal(vc int) Signal { return Signal{IsCredit: true, VC: vc} }

// CtrlSignal builds a control-message signal.
func CtrlSignal(msg any) Signal { return Signal{Msg: msg} }

// FaultHook is the router's window onto an attached fault injector. The
// network installs one per router (capturing the router id); semantics
// live entirely on the network side so the router stays fault-agnostic.
type FaultHook interface {
	// FilterRoute post-processes a routing decision for a head flit that
	// has waited `waited` cycles since last progress; it may substitute a
	// reroute, NoRoute, or an Undeliverable classification.
	FilterRoute(inDir topology.Direction, pkt *noc.Packet, dec routing.Decision, waited int64) routing.Decision
	// LinkBlocked reports whether traversal onto output d is currently
	// forbidden (failed link, or permanently failed neighbor).
	LinkBlocked(d topology.Direction) bool
	// Recovering reports whether any fault has been injected so far,
	// enabling the VA-starvation escape heuristic. Must be false until
	// the first fault so fault-free runs stay byte-identical.
	Recovering() bool
	// StuckDrop reports whether a head flit wedged in VC allocation for
	// `waited` cycles should be dropped as undeliverable.
	StuckDrop(pkt *noc.Packet, waited int64) bool
}

// PortLink bundles the four directed channels of one router port. At mesh
// edges the non-existent neighbor's queues are nil. The Local port links
// the router to its network interface with the same machinery.
type PortLink struct {
	OutFlit *sim.Delay[*noc.Flit] // flits to the neighbor/NI
	InFlit  *sim.Delay[*noc.Flit] // flits from the neighbor/NI
	OutCtrl *sim.Delay[Signal]    // credits+control to the neighbor/NI
	InCtrl  *sim.Delay[Signal]    // credits+control from the neighbor/NI
}

// Connected reports whether this port has a neighbor attached.
func (p *PortLink) Connected() bool { return p.OutFlit != nil }

// Router is one baseline virtual-channel router.
type Router struct {
	ID    int
	Cfg   config.Config //flovsnap:skip immutable run configuration
	Mesh  topology.Mesh //flovsnap:skip immutable topology
	Ports [topology.NumPorts]PortLink

	// RouteFn computes the output port for a head flit that arrived on
	// inDir (topology.Local for injected packets). escape selects the
	// escape-subnetwork algorithm. Must be set before the first Tick.
	RouteFn func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision //flovsnap:skip routing function installed at construction
	// AllocOK reports whether NEW packets may currently be allocated
	// toward outDir (handshake draining gates this). nil means always ok.
	AllocOK func(outDir topology.Direction) bool //flovsnap:skip wiring installed by the gating mechanism on Attach
	// WakeReq is invoked (possibly repeatedly) when a packet must wait
	// for gated destination target to wake. nil ignores.
	WakeReq func(target int) //flovsnap:skip wiring installed by the gating mechanism on Attach
	// OnCtrl receives non-credit control messages. nil drops them.
	OnCtrl func(from topology.Direction, msg any) //flovsnap:skip wiring installed by the gating mechanism on Attach
	// DropCredit, when non-nil and true for a port, discards incoming
	// credits on it. A freshly woken FLOV router uses this to ignore
	// credits that raced ahead of (and are already included in) the
	// pending MsgCreditSync snapshot.
	DropCredit func(from topology.Direction) bool //flovsnap:skip wiring installed by the gating mechanism on Attach

	// Faults, when non-nil, is the fault-injection subsystem's per-router
	// hook: it filters routing decisions, blocks switch traversal onto
	// failed links and enables the fault-recovery heuristics. While no
	// fault has been injected every method is a strict no-op.
	Faults FaultHook //flovsnap:skip wiring installed by AttachFaults
	// OnDrop observes packets the fault path drops (classified losses):
	// flits is how many buffered flits were discarded. nil ignores.
	OnDrop func(pkt *noc.Packet, flits int, now int64) //flovsnap:skip observer hook, not simulation state
	// Frozen, when true, halts the whole pipeline: a faulted router
	// processes nothing until the fault heals. Links into it still queue
	// (bounded by credits).
	Frozen bool

	Ledger *power.Ledger //flovsnap:skip wiring installed by network.New

	in  [topology.NumPorts][]*noc.InputVC
	out [topology.NumPorts]*noc.OutputVCState

	vaPtr [topology.NumPorts]int
	saPtr [topology.NumPorts]int
	inPtr [topology.NumPorts]int

	// Per-cycle scratch buffers, reused so the VA stage allocates nothing
	// in steady state. Contents are only valid within one stage call.
	vcScratch []int       //flovsnap:skip scratch, valid only within one stage call
	vaScratch []saRequest //flovsnap:skip scratch, valid only within one stage call

	// Traversals counts flits switched through this router's crossbar
	// (utilization heat maps).
	Traversals int64
}

// New builds a router with empty buffers and full credits on every
// connected output. Channels must be wired into Ports by the caller
// (package network) before the first Tick.
func New(id int, cfg config.Config, mesh topology.Mesh, ledger *power.Ledger) *Router {
	r := &Router{ID: id, Cfg: cfg, Mesh: mesh, Ledger: ledger}
	vcs := cfg.VCsTotal()
	r.vcScratch = make([]int, 0, vcs)
	r.vaScratch = make([]saRequest, 0, int(topology.NumPorts)*vcs)
	for p := 0; p < int(topology.NumPorts); p++ {
		r.in[p] = make([]*noc.InputVC, vcs)
		for v := 0; v < vcs; v++ {
			r.in[p][v] = noc.NewInputVC(v, cfg.BufferDepth)
		}
		r.out[p] = noc.NewOutputVCState(vcs, cfg.BufferDepth, true)
	}
	return r
}

// Out returns the output credit state for a port (used by power-gating
// wrappers for credit sync).
func (r *Router) Out(d topology.Direction) *noc.OutputVCState { return r.out[d] }

// InVC returns one input VC (exposed for tests and drain checks).
func (r *Router) InVC(d topology.Direction, vc int) *noc.InputVC { return r.in[d][vc] }

// Tick advances the router one cycle: control processing, flit receive,
// then the RC, VA and SA/ST pipeline stages. A Frozen (faulted) router
// does nothing — its state is preserved until the fault heals.
func (r *Router) Tick(now int64) {
	if r.Frozen {
		return
	}
	r.processCtrl(now)
	r.receive(now)
	r.stageRC(now)
	r.stageVA(now)
	r.stageSA(now)
}

// processCtrl consumes credits and dispatches control messages.
func (r *Router) processCtrl(now int64) {
	for p := 0; p < int(topology.NumPorts); p++ {
		q := r.Ports[p].InCtrl
		if q == nil {
			continue
		}
		q.Drain(now, func(s Signal) {
			if s.IsCredit {
				if r.DropCredit != nil && r.DropCredit(topology.Direction(p)) {
					if TraceCredit != nil {
						TraceCredit(r.ID, topology.Direction(p), s.VC, r.out[p].Credits[s.VC], "drop")
					}
					return
				}
				if r.out[p].Credits[s.VC] >= r.out[p].Depth() {
					panic(fmt.Sprintf("router %d: duplicate credit on port %s vc %d at cycle %d",
						r.ID, topology.Direction(p), s.VC, now))
				}
				r.out[p].Return(s.VC)
				if TraceCredit != nil {
					TraceCredit(r.ID, topology.Direction(p), s.VC, r.out[p].Credits[s.VC], "return")
				}
			} else if r.OnCtrl != nil {
				r.OnCtrl(topology.Direction(p), s.Msg)
			}
		})
	}
}

// receive buffers flits arriving on every connected input port.
func (r *Router) receive(now int64) {
	for p := 0; p < int(topology.NumPorts); p++ {
		q := r.Ports[p].InFlit
		if q == nil {
			continue
		}
		q.Drain(now, func(f *noc.Flit) {
			r.acceptFlit(topology.Direction(p), f, now)
		})
	}
}

// acceptFlit writes one flit into its input VC. Exposed to the FLOV
// wrapper, which feeds flits arriving during power-state transitions.
func (r *Router) acceptFlit(p topology.Direction, f *noc.Flit, now int64) {
	ivc := r.in[p][f.VC]
	if ivc.State == noc.VCIdle {
		if !f.Type.IsHead() {
			panic(fmt.Sprintf("router %d: non-head flit %s into idle VC %d on port %s", r.ID, f, f.VC, p))
		}
		ivc.State = noc.VCRouting
		ivc.WaitSince = now
	}
	ivc.Push(f, now)
	r.Ledger.AddBufferWrite(1)
}

// stageRC computes routes for head flits at the front of VCs in RC state.
func (r *Router) stageRC(now int64) {
	for p := 0; p < int(topology.NumPorts); p++ {
		for _, ivc := range r.in[p] {
			if ivc.State != noc.VCRouting {
				continue
			}
			f := ivc.Front()
			if f == nil {
				continue
			}
			if !f.Type.IsHead() {
				panic(fmt.Sprintf("router %d: RC on non-head flit %s", r.ID, f))
			}
			pkt := f.Pkt
			// Duato-style recovery: a head stalled beyond the threshold
			// moves to the escape subnetwork and stays there.
			if !pkt.Escape && now-ivc.WaitSince > int64(r.Cfg.EscapeTimeout) {
				pkt.Escape = true
			}
			dec := r.RouteFn(topology.Direction(p), pkt.Escape, pkt)
			if r.Faults != nil {
				dec = r.Faults.FilterRoute(topology.Direction(p), pkt, dec, now-ivc.WaitSince)
			}
			switch {
			case dec.Undeliverable:
				// Partition (or fault wedge) classified: drop the packet
				// explicitly once all its flits are co-resident.
				r.dropFront(topology.Direction(p), ivc, now)
			case dec.Hold:
				if r.WakeReq != nil {
					r.WakeReq(dec.WakeTarget)
				}
			case dec.NoRoute:
				// Wait for a power-state change or the escape timeout.
			default:
				ivc.OutDir = dec.Dir
				ivc.State = noc.VCWaitVC
				ivc.RCCycle = now
			}
		}
	}
}

// candidateVCs returns the downstream VC indices a packet may be
// allocated: regular VCs of its vnet, or the escape VC once the packet
// has entered the escape subnetwork. Ejection (Local) frees the packet
// from the escape restriction — any VC of the vnet works at the NI.
func (r *Router) candidateVCs(pkt *noc.Packet, outDir topology.Direction) []int {
	if pkt.Escape && outDir != topology.Local {
		r.vcScratch = append(r.vcScratch[:0], r.Cfg.EscapeVC(pkt.VNet))
		return r.vcScratch
	}
	base := r.Cfg.VCBase(pkt.VNet)
	r.vcScratch = r.vcScratch[:0]
	for i := 0; i < r.Cfg.VCsPerVNet; i++ {
		r.vcScratch = append(r.vcScratch, base+i)
	}
	return r.vcScratch
}

// stageVA allocates downstream VCs to packets that completed RC at least
// one cycle ago (separable, per-output round-robin across input VCs).
func (r *Router) stageVA(now int64) {
	for out := 0; out < int(topology.NumPorts); out++ {
		outDir := topology.Direction(out)
		if !r.Ports[out].Connected() {
			continue
		}
		// Gather requesters for this output (reused scratch: gathering
		// afresh per output allocates nothing in steady state).
		r.vaScratch = r.vaScratch[:0]
		for p := 0; p < int(topology.NumPorts); p++ {
			for _, ivc := range r.in[p] {
				if ivc.State == noc.VCWaitVC && ivc.OutDir == outDir && ivc.RCCycle < now {
					r.vaScratch = append(r.vaScratch, saRequest{port: p, ivc: ivc})
				}
			}
		}
		reqs := r.vaScratch
		if len(reqs) == 0 {
			continue
		}
		if r.AllocOK != nil && outDir != topology.Local && !r.AllocOK(outDir) {
			// Handshake forbids starting new packets toward outDir:
			// return requesters to RC so they can adapt to the new
			// power states next cycle.
			for _, q := range reqs {
				q.ivc.State = noc.VCRouting
			}
			continue
		}
		start := r.vaPtr[out] % len(reqs)
		for i := 0; i < len(reqs); i++ {
			q := reqs[(start+i)%len(reqs)]
			f := q.ivc.Front()
			if f == nil {
				continue
			}
			granted := -1
			for _, vc := range r.candidateVCs(f.Pkt, outDir) {
				if !r.out[out].Allocated[vc] {
					granted = vc
					break
				}
			}
			if granted < 0 {
				continue
			}
			r.out[out].Allocated[granted] = true
			q.ivc.OutVC = granted
			q.ivc.State = noc.VCActive
			q.ivc.VACycle = now
			q.ivc.WaitSince = now
			r.Ledger.AddDyn(power.CatArbitration, 1)
		}
		r.vaPtr[out]++

		// Fault recovery: a requester starved of a VC grant past the
		// escape timeout (the downstream VC may be wedged behind failed
		// hardware) escalates to the escape subnetwork, and one wedged
		// beyond the drop timeout is classified undeliverable. Inactive
		// until the first fault, so fault-free runs are unaffected.
		if r.Faults != nil && r.Faults.Recovering() {
			for _, q := range reqs {
				ivc := q.ivc
				if ivc.State != noc.VCWaitVC {
					continue
				}
				f := ivc.Front()
				if f == nil {
					continue
				}
				waited := now - ivc.WaitSince
				if r.Faults.StuckDrop(f.Pkt, waited) {
					r.dropFront(topology.Direction(q.port), ivc, now)
					continue
				}
				if !f.Pkt.Escape && waited > int64(r.Cfg.EscapeTimeout) {
					f.Pkt.Escape = true
					ivc.State = noc.VCRouting
				}
			}
		}
	}
}

// saRequest is one input VC's allocation request (the VA stage's reused
// scratch element).
type saRequest struct {
	port int
	ivc  *noc.InputVC
}

// stageSA performs switch allocation and traversal: one flit per input
// port and per output port per cycle, credits permitting, respecting the
// pipeline depth (a flit departs no earlier than arrival + stages - 1).
func (r *Router) stageSA(now int64) {
	// A flit traverses the switch RouterStages cycles after arrival, so
	// one hop costs RouterStages (router) + LinkLatency (wire) cycles —
	// the paper's 3-cycle router + 1-cycle link.
	pipeGate := int64(r.Cfg.RouterStages)

	// Input-first: each input port nominates one ready VC (round-robin).
	var bids [topology.NumPorts]*noc.InputVC
	for p := 0; p < int(topology.NumPorts); p++ {
		vcs := r.in[p]
		n := len(vcs)
		start := r.inPtr[p] % n
		for i := 0; i < n; i++ {
			ivc := vcs[(start+i)%n]
			if ivc.State != noc.VCActive || ivc.Empty() {
				continue
			}
			if ivc.FrontArrived()+pipeGate > now {
				continue
			}
			if r.Faults != nil && ivc.OutDir != topology.Local && r.Faults.LinkBlocked(ivc.OutDir) {
				// Failed link: no new traversal onto it. An untouched head
				// may re-route (escape packets included, so they can take
				// an alternate legal turn); partially sent packets wait
				// for the fault to heal.
				r.releaseBlocked(ivc, now)
				continue
			}
			od := int(ivc.OutDir)
			if r.out[od].Credits[ivc.OutVC] <= 0 {
				r.maybeEscapeStarved(ivc, now)
				continue
			}
			bids[p] = ivc
			break
		}
		r.inPtr[p]++
	}

	// Output-side arbitration: one winner per output port. Counting then
	// re-walking the (six-entry) bid array keeps this allocation-free.
	for out := 0; out < int(topology.NumPorts); out++ {
		outDir := topology.Direction(out)
		cands := 0
		for p := range bids {
			if bids[p] != nil && bids[p].OutDir == outDir {
				cands++
			}
		}
		if cands == 0 {
			continue
		}
		pick := r.saPtr[out] % cands
		r.saPtr[out]++
		for p := range bids {
			if bids[p] == nil || bids[p].OutDir != outDir {
				continue
			}
			if pick == 0 {
				r.traverse(p, bids[p], now)
				// Losers keep their bids for future cycles; clear so an
				// input port sends at most one flit per cycle.
				bids[p] = nil
				break
			}
			pick--
		}
	}
}

// maybeEscapeStarved applies deadlock recovery to a packet that holds a
// downstream VC but has sent nothing and been starved of credits past the
// timeout: release the (untouched) allocation and re-route via escape.
func (r *Router) maybeEscapeStarved(ivc *noc.InputVC, now int64) {
	f := ivc.Front()
	if f == nil || !f.Type.IsHead() {
		return // mid-packet: downstream will drain via its own recovery
	}
	if f.Pkt.Escape || now-ivc.WaitSince <= int64(r.Cfg.EscapeTimeout) {
		return
	}
	r.out[ivc.OutDir].Allocated[ivc.OutVC] = false
	ivc.OutVC = -1
	f.Pkt.Escape = true
	ivc.State = noc.VCRouting
}

// releaseBlocked undoes an untouched VC allocation toward a failed link
// after the escape timeout, sending the head back to route computation in
// escape mode so it can pick a surviving path. Unlike maybeEscapeStarved
// it also releases packets already in escape mode — their deterministic
// escape route died under them and must be recomputed.
func (r *Router) releaseBlocked(ivc *noc.InputVC, now int64) {
	f := ivc.Front()
	if f == nil || !f.Type.IsHead() {
		return // mid-packet: must wait for the link to heal
	}
	if now-ivc.WaitSince <= int64(r.Cfg.EscapeTimeout) {
		return // give a transient fault a chance to heal in place
	}
	r.out[ivc.OutDir].Allocated[ivc.OutVC] = false
	ivc.OutVC = -1
	f.Pkt.Escape = true
	ivc.State = noc.VCRouting
}

// dropFront discards the packet at the front of ivc as a classified loss:
// every buffered flit is popped, its upstream credit returned (so flow
// control stays conserved), and OnDrop notified. It only acts once the
// whole packet is resident (head through tail) — wormhole flow control
// plus PacketSize <= BufferDepth guarantees the remaining flits arrive —
// and reports whether the drop happened. The VC must hold no downstream
// allocation (VCRouting/VCWaitVC states only).
func (r *Router) dropFront(port topology.Direction, ivc *noc.InputVC, now int64) bool {
	head := ivc.Front()
	if head == nil {
		return false
	}
	pkt := head.Pkt
	count := 0
	complete := false
	for i := 0; i < ivc.Len(); i++ {
		f := ivc.At(i)
		if f.Pkt != pkt {
			break
		}
		count++
		if f.Type.IsTail() {
			complete = true
			break
		}
	}
	if !complete {
		return false
	}
	for i := 0; i < count; i++ {
		ivc.Pop()
		if r.Ports[port].OutCtrl != nil {
			r.Ports[port].OutCtrl.Push(now, CreditSignal(ivc.Index))
			r.Ledger.AddDyn(power.CatCredit, 1)
		}
	}
	if ivc.Empty() {
		ivc.Reset()
	} else {
		nf := ivc.Front()
		if !nf.Type.IsHead() {
			panic(fmt.Sprintf("router %d: flit %s behind dropped tail is not a head", r.ID, nf))
		}
		ivc.OutVC = -1
		ivc.State = noc.VCRouting
		ivc.WaitSince = now
	}
	if r.OnDrop != nil {
		r.OnDrop(pkt, count, now)
	}
	return true
}

// traverse moves the winning flit through the crossbar onto its output
// link and returns a credit upstream.
func (r *Router) traverse(port int, ivc *noc.InputVC, now int64) {
	f := ivc.Pop()
	outDir := ivc.OutDir

	r.Ledger.AddBufferRead(1)
	r.Ledger.AddDyn(power.CatCrossbar, 1)
	r.Ledger.AddDyn(power.CatArbitration, 1)
	r.Traversals++

	if f.Type.IsHead() {
		f.Pkt.ActiveHops++
	}

	f.VC = ivc.OutVC
	r.out[outDir].Consume(ivc.OutVC)
	if TraceCredit != nil {
		TraceCredit(r.ID, outDir, ivc.OutVC, r.out[outDir].Credits[ivc.OutVC], "consume")
	}
	r.Ports[outDir].OutFlit.Push(now, f)
	if outDir != topology.Local {
		r.Ledger.AddDyn(power.CatLink, 1)
		if f.Type.IsHead() {
			f.Pkt.LinkHops++
		}
	}

	// Credit back to whoever feeds this input port (router or NI).
	if r.Ports[port].OutCtrl != nil {
		r.Ports[port].OutCtrl.Push(now, CreditSignal(ivc.Index))
		r.Ledger.AddDyn(power.CatCredit, 1)
	}

	ivc.WaitSince = now
	if f.Type.IsTail() {
		r.out[outDir].Allocated[ivc.OutVC] = false
		if ivc.Empty() {
			ivc.Reset()
		} else {
			nf := ivc.Front()
			if !nf.Type.IsHead() {
				panic(fmt.Sprintf("router %d: flit %s behind tail is not a head", r.ID, nf))
			}
			ivc.OutVC = -1
			ivc.State = noc.VCRouting
			ivc.WaitSince = now
		}
	}
}

// ReRoute sends every packet that computed a route toward d but has not
// yet been allocated a downstream VC back to route computation. Power-
// gating wrappers call this when a neighbor's power state changes: a
// route computed under the old state may now fly a packet over its own
// (freshly gated) destination, so it must be recomputed before it can
// commit. Committed packets (VCActive) are unaffected — the handshake
// protocol waits for them by design.
func (r *Router) ReRoute(d topology.Direction) {
	for p := 0; p < int(topology.NumPorts); p++ {
		for _, ivc := range r.in[p] {
			if ivc.State == noc.VCWaitVC && ivc.OutDir == d {
				ivc.State = noc.VCRouting
			}
		}
	}
}

// CommittedTo reports whether any in-flight packet still holds an
// allocation toward output port d — the condition a neighbor must wait
// out before answering a drain/wakeup handshake with drain_done.
func (r *Router) CommittedTo(d topology.Direction) bool {
	for p := 0; p < int(topology.NumPorts); p++ {
		for _, ivc := range r.in[p] {
			if ivc.State == noc.VCActive && ivc.OutDir == d {
				return true
			}
		}
	}
	return false
}

// BuffersEmpty reports whether every input VC buffer is empty.
func (r *Router) BuffersEmpty() bool {
	for p := 0; p < int(topology.NumPorts); p++ {
		for _, ivc := range r.in[p] {
			if !ivc.Empty() {
				return false
			}
		}
	}
	return true
}

// ArrivalsPending reports whether any flit is still queued on an input
// link (sent by a neighbor but not yet received).
func (r *Router) ArrivalsPending() bool {
	for p := 0; p < int(topology.NumPorts); p++ {
		if q := r.Ports[p].InFlit; q != nil && !q.Empty() {
			return true
		}
	}
	return false
}

// LocalActivity reports whether the router currently holds any flit that
// came from or is going to its local port (used for idle detection).
func (r *Router) LocalActivity() bool {
	for _, ivc := range r.in[topology.Local] {
		if !ivc.Empty() {
			return true
		}
	}
	for p := 0; p < int(topology.NumPorts); p++ {
		for _, ivc := range r.in[p] {
			if ivc.State != noc.VCIdle && ivc.State != noc.VCRouting && ivc.OutDir == topology.Local && !ivc.Empty() {
				return true
			}
		}
	}
	return false
}

// SendCtrl pushes a control message to the neighbor in direction d.
func (r *Router) SendCtrl(now int64, d topology.Direction, msg any) {
	r.Ports[d].OutCtrl.Push(now, CtrlSignal(msg))
	r.Ledger.AddDyn(power.CatHandshake, 1)
}
