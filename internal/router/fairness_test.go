package router

import (
	"testing"

	"flov/internal/config"
	"flov/internal/noc"
)

// Switch allocation must never grant two flits to one output port (or
// take two flits from one input port) in a single cycle.
func TestSAOneFlitPerPortPerCycle(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	// Saturate: three packets on distinct input VCs, all wanting East.
	for i := 0; i < 3; i++ {
		p := &noc.Packet{ID: uint64(i + 1), Src: 0, Dst: 1, Size: 4}
		for j, f := range noc.MakePacketFlits(p) {
			f.VC = i
			h.localIn.Push(int64(j), f)
		}
	}
	for h.now < 40 {
		h.step()
		count := 0
		h.eastOut.Drain(h.now, func(*noc.Flit) { count++ })
		if count > 1 {
			t.Fatalf("cycle %d: %d flits crossed one output port", h.now, count)
		}
	}
}

// VC allocation round-robin: with three packets contending for the same
// output, every one of them is eventually granted (no starvation).
func TestVAFairness(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	for i := 0; i < 3; i++ {
		p := &noc.Packet{ID: uint64(i + 1), Src: 0, Dst: 1, Size: 4}
		for j, f := range noc.MakePacketFlits(p) {
			f.VC = i
			h.localIn.Push(int64(i*4+j), f)
		}
	}
	delivered := map[uint64]bool{}
	for h.now < 80 {
		h.step()
		h.eastOut.Drain(h.now, func(f *noc.Flit) {
			if f.Type.IsTail() {
				delivered[f.Pkt.ID] = true
			}
			// Echo credits so nothing starves on flow control.
			h.eastCred.Push(h.now, CreditSignal(f.VC))
		})
	}
	for id := uint64(1); id <= 3; id++ {
		if !delivered[id] {
			t.Fatalf("packet %d starved", id)
		}
	}
}

// Distinct downstream VCs: two packets allocated to one output port in
// flight simultaneously must hold different output VCs.
func TestVADistinctDownstreamVCs(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	for i := 0; i < 2; i++ {
		p := &noc.Packet{ID: uint64(i + 1), Src: 0, Dst: 1, Size: 4}
		for j, f := range noc.MakePacketFlits(p) {
			f.VC = i
			h.localIn.Push(int64(j), f)
		}
	}
	seen := map[uint64]int{}
	for h.now < 40 {
		h.step()
		h.eastOut.Drain(h.now, func(f *noc.Flit) {
			if prev, ok := seen[f.Pkt.ID]; ok && prev != f.VC {
				t.Fatalf("packet %d changed downstream VC mid-flight: %d -> %d", f.Pkt.ID, prev, f.VC)
			}
			seen[f.Pkt.ID] = f.VC
		})
	}
	if len(seen) == 2 && seen[1] == seen[2] {
		t.Fatalf("both in-flight packets share downstream VC %d", seen[1])
	}
}
