package router

import (
	"testing"

	"flov/internal/config"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/routing"
	"flov/internal/sim"
	"flov/internal/topology"
)

// harness wires a single router with live Local and East ports and a
// controllable routing function.
type harness struct {
	r *Router

	localIn   *sim.Delay[*noc.Flit] // we -> router (injection)
	localCred *sim.Delay[Signal]    // router -> us (credits for injection VCs)
	eastOut   *sim.Delay[*noc.Flit] // router -> east neighbor
	eastCred  *sim.Delay[Signal]    // east neighbor -> router (credits)
	eastCtrl  *sim.Delay[Signal]    // router -> east neighbor (ctrl)
	localOut  *sim.Delay[*noc.Flit] // router -> us (ejection)
	localDown *sim.Delay[Signal]    // we -> router (ejection credits)

	now int64
}

func newHarness(t *testing.T, cfg config.Config) *harness {
	t.Helper()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	ledger := power.NewLedger(power.NewModel(cfg))
	// Node 0 is the SW corner: it has East and North neighbors; we wire
	// East and Local only and route everything East.
	r := New(0, cfg, mesh, ledger)
	h := &harness{
		r:         r,
		localIn:   sim.NewDelay[*noc.Flit](1),
		localCred: sim.NewDelay[Signal](1),
		eastOut:   sim.NewDelay[*noc.Flit](cfg.LinkLatency),
		eastCred:  sim.NewDelay[Signal](1),
		eastCtrl:  sim.NewDelay[Signal](1),
		localOut:  sim.NewDelay[*noc.Flit](1),
		localDown: sim.NewDelay[Signal](1),
	}
	r.Ports[topology.Local] = PortLink{
		InFlit: h.localIn, OutCtrl: h.localCred,
		OutFlit: h.localOut, InCtrl: h.localDown,
	}
	r.Ports[topology.East] = PortLink{
		OutFlit: h.eastOut, InCtrl: h.eastCred, OutCtrl: h.eastCtrl,
	}
	r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
		if pkt.Dst == 0 {
			return routing.Decision{Dir: topology.Local}
		}
		return routing.Decision{Dir: topology.East}
	}
	return h
}

// inject pushes a whole packet's flits, one per cycle, starting now.
func (h *harness) inject(p *noc.Packet, vc int) {
	for i, f := range noc.MakePacketFlits(p) {
		f.VC = vc
		h.localIn.Push(h.now+int64(i), f)
	}
}

func (h *harness) step() {
	h.r.Tick(h.now)
	h.now++
}

func TestRouterPipelineTiming(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 1}
	f := noc.MakePacketFlits(p)[0]
	h.localIn.Push(0, f) // visible to the router at cycle 1
	var depart int64 = -1
	for h.now < 20 && depart < 0 {
		h.step()
		if got, ok := h.eastOut.Pop(h.now); ok {
			if got != f {
				t.Fatal("wrong flit departed")
			}
			depart = h.now
		}
	}
	// Arrival at cycle 1; switch traversal at 1+RouterStages=4; on the
	// link one cycle later: first visible at 5.
	if depart != 5 {
		t.Fatalf("flit visible on link at %d, want 5 (3-cycle router + 1-cycle link)", depart)
	}
	if p.ActiveHops != 1 || p.LinkHops != 1 {
		t.Fatalf("hops: active=%d link=%d", p.ActiveHops, p.LinkHops)
	}
}

func TestRouterWormholeThroughput(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 0)
	var departs []int64
	for h.now < 30 {
		h.step()
		for {
			if _, ok := h.eastOut.Pop(h.now); ok {
				departs = append(departs, h.now)
				continue
			}
			break
		}
	}
	if len(departs) != 4 {
		t.Fatalf("departed %d flits", len(departs))
	}
	for i := 1; i < 4; i++ {
		if departs[i] != departs[i-1]+1 {
			t.Fatalf("body flits not pipelined 1/cycle: %v", departs)
		}
	}
}

func TestRouterCreditsReturnedUpstream(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 1)
	credits := 0
	for h.now < 30 {
		h.step()
		h.eastOut.Drain(h.now, func(*noc.Flit) {})
		h.localCred.Drain(h.now, func(s Signal) {
			if s.IsCredit && s.VC == 1 {
				credits++
			}
		})
	}
	if credits != 4 {
		t.Fatalf("returned %d credits, want 4", credits)
	}
}

func TestRouterBlocksWithoutCredits(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	// Deny all downstream credit returns; 3 regular VCs x 6 credits = 18
	// flit budget on the East output. Offer 6 packets (24 flits).
	for i := 0; i < 6; i++ {
		p := &noc.Packet{ID: uint64(i + 1), Src: 0, Dst: 1, Size: 4}
		for j, f := range noc.MakePacketFlits(p) {
			f.VC = i % 3 // spread across local input VCs
			h.localIn.Push(int64(i*4+j), f)
		}
	}
	sent := 0
	consumed := map[int]int{}
	for h.now < 120 {
		h.step()
		h.eastOut.Drain(h.now, func(f *noc.Flit) {
			sent++
			consumed[f.VC]++
		})
	}
	// Credit budget allows 18, but packet 6 is head-of-line blocked in
	// its input VC behind packet 3 (stuck mid-packet on a starved output
	// VC), so 16 flits is the correct wormhole outcome.
	if sent != 16 {
		t.Fatalf("sent %d flits with the credit budget exhausted, want 16", sent)
	}
	// A downstream router freeing every buffered flit (and echoing
	// credits for new ones) unblocks the rest.
	for vc, n := range consumed {
		for k := 0; k < n; k++ {
			h.eastCred.Push(h.now, CreditSignal(vc))
		}
	}
	for h.now < 240 {
		h.step()
		h.eastOut.Drain(h.now, func(f *noc.Flit) {
			sent++
			h.eastCred.Push(h.now, CreditSignal(f.VC))
		})
	}
	if sent != 24 {
		t.Fatalf("sent %d flits total after credits returned, want 24", sent)
	}
}

func TestRouterEjection(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 1, Dst: 0, Size: 4}
	h.inject(p, 0)
	got := 0
	for h.now < 30 {
		h.step()
		h.localOut.Drain(h.now, func(*noc.Flit) { got++ })
	}
	if got != 4 {
		t.Fatalf("ejected %d flits", got)
	}
}

func TestRouterAllocOKBlocksNewPackets(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	allow := false
	h.r.AllocOK = func(d topology.Direction) bool { return allow }
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 0)
	sent := 0
	for h.now < 40 {
		h.step()
		h.eastOut.Drain(h.now, func(*noc.Flit) { sent++ })
	}
	if sent != 0 {
		t.Fatalf("sent %d flits while allocation blocked", sent)
	}
	allow = true
	for h.now < 80 {
		h.step()
		h.eastOut.Drain(h.now, func(*noc.Flit) { sent++ })
	}
	if sent != 4 {
		t.Fatalf("sent %d flits after unblock", sent)
	}
}

func TestRouterCommittedTo(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	if h.r.CommittedTo(topology.East) {
		t.Fatal("fresh router committed")
	}
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 0)
	sawCommit := false
	for h.now < 40 {
		h.step()
		if h.r.CommittedTo(topology.East) {
			sawCommit = true
		}
		h.eastOut.Drain(h.now, func(*noc.Flit) {})
	}
	if !sawCommit {
		t.Fatal("never committed during packet transfer")
	}
	if h.r.CommittedTo(topology.East) {
		t.Fatal("still committed after tail departed")
	}
	if !h.r.BuffersEmpty() {
		t.Fatal("buffers not empty after drain")
	}
}

func TestRouterEscapeTimeout(t *testing.T) {
	cfg := config.Default()
	cfg.EscapeTimeout = 10
	h := newHarness(t, cfg)
	escaped := false
	h.r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
		if !escape {
			return routing.Decision{NoRoute: true} // adaptive routing stuck
		}
		escaped = true
		return routing.Decision{Dir: topology.East}
	}
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 0)
	sent := 0
	for h.now < 60 {
		h.step()
		h.eastOut.Drain(h.now, func(f *noc.Flit) {
			sent++
			if !cfg.IsEscapeVC(f.VC) {
				t.Fatalf("escape packet on regular VC %d", f.VC)
			}
		})
	}
	if !escaped || !p.Escape {
		t.Fatal("packet never escaped after timeout")
	}
	if sent != 4 {
		t.Fatalf("sent %d flits via escape", sent)
	}
}

func TestRouterWakeReqOnHold(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	var wakes []int
	h.r.WakeReq = func(target int) { wakes = append(wakes, target) }
	h.r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
		return routing.Decision{Hold: true, WakeTarget: pkt.Dst}
	}
	p := &noc.Packet{ID: 1, Src: 0, Dst: 5, Size: 1}
	h.inject(p, 0)
	for h.now < 10 {
		h.step()
	}
	if len(wakes) == 0 || wakes[0] != 5 {
		t.Fatalf("wake requests: %v", wakes)
	}
}

func TestRouterPanicsOnNonHeadIntoIdleVC(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	body := noc.MakePacketFlits(p)[1]
	body.VC = 0
	h.localIn.Push(0, body)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on orphan body flit")
		}
	}()
	for h.now < 5 {
		h.step()
	}
}
