package router

import (
	"testing"

	"flov/internal/config"
	"flov/internal/noc"
	"flov/internal/routing"
	"flov/internal/topology"
)

func TestReRouteReturnsPendingToRC(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	ivc := h.r.InVC(topology.Local, 0)
	ivc.State = noc.VCWaitVC
	ivc.OutDir = topology.East
	// A packet toward another direction is untouched.
	other := h.r.InVC(topology.Local, 1)
	other.State = noc.VCWaitVC
	other.OutDir = topology.North

	h.r.ReRoute(topology.East)
	if ivc.State != noc.VCRouting {
		t.Fatalf("pending East route not invalidated: %v", ivc.State)
	}
	if other.State != noc.VCWaitVC {
		t.Fatalf("unrelated direction invalidated: %v", other.State)
	}
}

func TestReRouteLeavesCommittedPackets(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	ivc := h.r.InVC(topology.Local, 0)
	ivc.State = noc.VCActive
	ivc.OutDir = topology.East
	h.r.ReRoute(topology.East)
	if ivc.State != noc.VCActive {
		t.Fatal("committed packet was re-routed (handshake relies on it finishing)")
	}
	ivc.State = noc.VCIdle // restore for other checks
}

func TestArrivalsPendingAndLocalActivity(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	if h.r.ArrivalsPending() || h.r.LocalActivity() {
		t.Fatal("fresh router reports pending work")
	}
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 1}
	f := noc.MakePacketFlits(p)[0]
	h.localIn.Push(0, f)
	if !h.r.ArrivalsPending() {
		t.Fatal("queued arrival not detected")
	}
	h.step() // cycle 0: flit not yet visible (1-cycle link)
	h.step() // cycle 1: received into the local buffer
	if h.r.ArrivalsPending() {
		t.Fatal("arrival still pending after receive")
	}
	if !h.r.LocalActivity() {
		t.Fatal("buffered local flit not detected as local activity")
	}
}

func TestLocalActivityOnEjection(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	p := &noc.Packet{ID: 1, Src: 1, Dst: 0, Size: 4} // routes to Local
	h.inject(p, 0)
	saw := false
	for h.now < 10 {
		h.step()
		if h.r.LocalActivity() {
			saw = true
		}
	}
	if !saw {
		t.Fatal("packet being ejected never counted as local activity")
	}
}

func TestSendCtrlDeliversMessage(t *testing.T) {
	cfg := config.Default()
	h := newHarness(t, cfg)
	h.r.SendCtrl(5, topology.East, "hello")
	s, ok := h.eastCtrl.Pop(6)
	if !ok || s.IsCredit || s.Msg != "hello" {
		t.Fatalf("control message not delivered: %+v ok=%v", s, ok)
	}
}

func TestEscapeStarvedReleasesUntouchedAllocation(t *testing.T) {
	cfg := config.Default()
	cfg.EscapeTimeout = 5
	h := newHarness(t, cfg)
	// Zero the East credits so an allocated packet starves pre-flight.
	out := h.r.Out(topology.East)
	for vc := range out.Credits {
		out.Credits[vc] = 0
	}
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	h.inject(p, 0)
	escapeRouted := false
	h.r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
		if escape {
			escapeRouted = true
		}
		return routing.Decision{Dir: topology.East}
	}
	for h.now < 40 {
		h.step()
	}
	if !p.Escape || !escapeRouted {
		t.Fatalf("starved pre-flight packet did not escape (escape=%v rerouted=%v)", p.Escape, escapeRouted)
	}
	// The regular-VC allocation must have been released.
	base := cfg.VCBase(0)
	for vc := base; vc < base+cfg.VCsPerVNet; vc++ {
		if out.Allocated[vc] {
			t.Fatalf("regular VC %d still allocated after escape re-route", vc)
		}
	}
}

func TestCtrlSignalConstructor(t *testing.T) {
	s := CtrlSignal(42)
	if s.IsCredit || s.Msg != 42 {
		t.Fatalf("CtrlSignal wrong: %+v", s)
	}
	c := CreditSignal(3)
	if !c.IsCredit || c.VC != 3 {
		t.Fatalf("CreditSignal wrong: %+v", c)
	}
}
