package router

import (
	"fmt"

	"flov/internal/noc"
	"flov/internal/topology"
)

// State is the serializable mutable state of one Router: input VC
// pipelines and buffers, output credit/allocation vectors, the three
// round-robin pointers and the traversal counter. Hooks, channels and
// configuration are structural and rebuilt by the caller.
type State struct {
	In         [][]noc.InputVCState // [NumPorts][VCsTotal]
	Out        []noc.OutputVCSnap   // [NumPorts]
	VAPtr      []int                // [NumPorts]
	SAPtr      []int                // [NumPorts]
	InPtr      []int                // [NumPorts]
	Traversals int64
}

// CaptureState copies the router's mutable state, registering every
// buffered flit's packet in t.
func (r *Router) CaptureState(t *noc.PacketTable) State {
	s := State{Traversals: r.Traversals}
	for p := 0; p < int(topology.NumPorts); p++ {
		vcs := make([]noc.InputVCState, len(r.in[p]))
		for v, ivc := range r.in[p] {
			vcs[v] = ivc.CaptureState(t)
		}
		s.In = append(s.In, vcs)
		s.Out = append(s.Out, r.out[p].CaptureState())
		s.VAPtr = append(s.VAPtr, r.vaPtr[p])
		s.SAPtr = append(s.SAPtr, r.saPtr[p])
		s.InPtr = append(s.InPtr, r.inPtr[p])
	}
	return s
}

// RestoreState overwrites the router's mutable state from a capture. The
// receiver must have been built from the same configuration (same port
// and VC counts); mismatches are reported, never partially applied.
func (r *Router) RestoreState(s State, pkts []*noc.Packet) error {
	np := int(topology.NumPorts)
	if len(s.In) != np || len(s.Out) != np ||
		len(s.VAPtr) != np || len(s.SAPtr) != np || len(s.InPtr) != np {
		return fmt.Errorf("router %d: snapshot has %d ports, router has %d", r.ID, len(s.In), np)
	}
	for p := 0; p < np; p++ {
		if len(s.In[p]) != len(r.in[p]) {
			return fmt.Errorf("router %d port %d: snapshot has %d VCs, router has %d",
				r.ID, p, len(s.In[p]), len(r.in[p]))
		}
		if len(s.Out[p].Credits) != len(r.out[p].Credits) {
			return fmt.Errorf("router %d port %d: snapshot has %d output VCs, router has %d",
				r.ID, p, len(s.Out[p].Credits), len(r.out[p].Credits))
		}
	}
	for p := 0; p < np; p++ {
		for v, ivc := range r.in[p] {
			ivc.RestoreState(s.In[p][v], pkts)
		}
		r.out[p].RestoreState(s.Out[p])
		r.vaPtr[p] = s.VAPtr[p]
		r.saPtr[p] = s.SAPtr[p]
		r.inPtr[p] = s.InPtr[p]
	}
	r.Traversals = s.Traversals
	return nil
}
