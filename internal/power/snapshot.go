package power

// LedgerState is the serializable accumulator state of a Ledger. The
// model is derived from the config and rebuilt by the caller.
type LedgerState struct {
	DynPJ    []float64 // one entry per DynCategory
	StaticPJ float64
	Cycles   int64
	Enabled  bool
}

// CaptureState copies the ledger's accumulators.
//
//flovunit:convert the snapshot wire format stays raw []float64
func (l *Ledger) CaptureState() LedgerState {
	dyn := make([]float64, len(l.dynPJ))
	for i, e := range l.dynPJ {
		dyn[i] = float64(e)
	}
	return LedgerState{
		DynPJ:    dyn,
		StaticPJ: float64(l.staticPJ),
		Cycles:   l.cycles,
		Enabled:  l.enabled,
	}
}

// RestoreState overwrites the ledger's accumulators. Like the copy() it
// replaced, a short DynPJ slice leaves the remaining categories alone.
func (l *Ledger) RestoreState(s LedgerState) {
	for i := 0; i < len(s.DynPJ) && i < len(l.dynPJ); i++ {
		l.dynPJ[i] = Picojoules(s.DynPJ[i])
	}
	l.staticPJ = Picojoules(s.StaticPJ)
	l.cycles = s.Cycles
	l.enabled = s.Enabled
}
