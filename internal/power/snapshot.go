package power

// LedgerState is the serializable accumulator state of a Ledger. The
// model is derived from the config and rebuilt by the caller.
type LedgerState struct {
	DynPJ    []float64 // one entry per DynCategory
	StaticPJ float64
	Cycles   int64
	Enabled  bool
}

// CaptureState copies the ledger's accumulators.
func (l *Ledger) CaptureState() LedgerState {
	return LedgerState{
		DynPJ:    append([]float64(nil), l.dynPJ[:]...),
		StaticPJ: l.staticPJ,
		Cycles:   l.cycles,
		Enabled:  l.enabled,
	}
}

// RestoreState overwrites the ledger's accumulators.
func (l *Ledger) RestoreState(s LedgerState) {
	copy(l.dynPJ[:], s.DynPJ)
	l.staticPJ = s.StaticPJ
	l.cycles = s.Cycles
	l.enabled = s.Enabled
}
