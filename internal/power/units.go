package power

// Typed units of measure for the energy model. The //flovunit tags make
// these unit types for flovlint's unitsafe rule: arithmetic mixing two
// of them, conversions rebranding one as another, and raw constants
// adopting a unit implicitly are all findings. The only legitimate
// dimension crossings live in the //flovunit:convert helpers below and
// on the raw-float reporting getters, each with its reason on record.
//
// The wrappers are numerically transparent: Scale multiplies by a
// dimensionless count with the same single IEEE multiply as the
// untyped code used, and EnergyPerCycle keeps the exact operation
// order of the integration it replaced, so every accumulated figure is
// byte-identical to the pre-typed model (pinned by
// TestTypedUnitsPreserveNumerics).

// Picojoules is an amount of energy.
type Picojoules float64 //flovunit pJ

// Watts is a power draw.
type Watts float64 //flovunit W

// Hertz is a clock frequency.
type Hertz float64 //flovunit Hz

// Scale multiplies an energy by a dimensionless event count.
func (p Picojoules) Scale(n float64) Picojoules { return p * Picojoules(n) }

// Scale multiplies a power draw by a dimensionless instance count.
func (w Watts) Scale(n float64) Watts { return w * Watts(n) }

// EnergyPerCycle integrates one clock cycle of this power draw:
// E[pJ] = P[W] * (1/hz)[s] * 1e12.
//
//flovunit:convert the one W·s→pJ dimension crossing in the model
func (w Watts) EnergyPerCycle(hz Hertz) Picojoules {
	return Picojoules(float64(w) / float64(hz) * 1e12)
}
