package power

// DynCategory classifies dynamic energy events for reporting.
type DynCategory int

// Dynamic energy categories tracked by the ledger.
const (
	CatBuffer DynCategory = iota
	CatCrossbar
	CatArbitration
	CatLink
	CatFLOVLatch
	CatCredit
	CatHandshake
	CatGating // power-gating transition overhead (17.7 pJ each)
	NumCategories
)

// String names the category.
func (c DynCategory) String() string {
	switch c {
	case CatBuffer:
		return "buffer"
	case CatCrossbar:
		return "crossbar"
	case CatArbitration:
		return "arbitration"
	case CatLink:
		return "link"
	case CatFLOVLatch:
		return "flov-latch"
	case CatCredit:
		return "credit"
	case CatHandshake:
		return "handshake"
	case CatGating:
		return "gating-overhead"
	default:
		return "unknown"
	}
}

// Ledger accumulates dynamic and static energy over a measurement window.
// Routers and NIs report events into it; the network integrates static
// power once per cycle. A Ledger is not safe for concurrent use (each
// simulated network owns one).
type Ledger struct {
	model *Model //flovsnap:skip immutable power model derived from config

	dynPJ    [NumCategories]Picojoules
	staticPJ Picojoules
	cycles   int64
	enabled  bool
}

// NewLedger returns an empty ledger bound to a power model. Ledgers start
// disabled so the warmup phase is not billed; call SetEnabled(true) when
// the measurement window opens.
func NewLedger(m *Model) *Ledger { return &Ledger{model: m} }

// Model returns the underlying power model.
func (l *Ledger) Model() *Model { return l.model }

// SetEnabled switches energy accounting on or off (off during warmup).
func (l *Ledger) SetEnabled(on bool) { l.enabled = on }

// Enabled reports whether events are currently billed.
func (l *Ledger) Enabled() bool { return l.enabled }

// AddDyn charges n events of category c.
func (l *Ledger) AddDyn(c DynCategory, n int) {
	if !l.enabled || n == 0 {
		return
	}
	var per Picojoules
	switch c {
	case CatBuffer:
		per = 0 // use AddBufferWrite/Read instead
	case CatCrossbar:
		per = EXbarPJ
	case CatArbitration:
		per = EArbPJ
	case CatLink:
		per = ELinkPJ
	case CatFLOVLatch:
		per = ELatchPJ
	case CatCredit:
		per = ECreditPJ
	case CatHandshake:
		per = EHandshakePJ
	case CatGating:
		per = l.model.GatingOverheadPJ()
	}
	l.dynPJ[c] += per.Scale(float64(n))
}

// Buffer events have distinct write/read energies, so they get dedicated
// methods that both bill CatBuffer.

// AddBufferWrite charges n buffer-write events.
func (l *Ledger) AddBufferWrite(n int) {
	if l.enabled {
		l.dynPJ[CatBuffer] += EBufWritePJ.Scale(float64(n))
	}
}

// AddBufferRead charges n buffer-read events.
func (l *Ledger) AddBufferRead(n int) {
	if l.enabled {
		l.dynPJ[CatBuffer] += EBufReadPJ.Scale(float64(n))
	}
}

// TickStatic integrates one cycle of leakage given the current count of
// routers in each power condition. flovCapable selects the per-router
// leakage (with or without HSC overhead and latch residuals).
func (l *Ledger) TickStatic(onRouters, gatedRouters int, flovCapable bool) {
	if !l.enabled {
		return
	}
	m := l.model
	var onW, gatedW Watts
	if flovCapable {
		onW = m.FLOVRouterStaticW()
		gatedW = m.GatedFLOVRouterStaticW()
	} else {
		onW = m.RouterStaticW()
		gatedW = m.GatedRouterStaticW()
	}
	linkW := m.LinkStaticW().Scale(float64(m.LinksInMesh()))
	totalW := onW.Scale(float64(onRouters)) + gatedW.Scale(float64(gatedRouters)) + linkW
	// One cycle at ClockHz: E[pJ] = P[W] * (1/ClockHz)[s] * 1e12.
	l.staticPJ += totalW.EnergyPerCycle(m.ClockHz())
	l.cycles++
}

// Cycles returns the number of measured cycles integrated so far.
func (l *Ledger) Cycles() int64 { return l.cycles }

// DynamicEnergyPJ returns total dynamic energy, optionally per category.
//
//flovunit:convert raw-float reporting boundary for stats/metrics consumers
func (l *Ledger) DynamicEnergyPJ() float64 {
	var sum Picojoules
	for _, e := range l.dynPJ {
		sum += e
	}
	return float64(sum)
}

// CategoryEnergyPJ returns the dynamic energy billed to one category.
//
//flovunit:convert raw-float reporting boundary for stats/metrics consumers
func (l *Ledger) CategoryEnergyPJ(c DynCategory) float64 { return float64(l.dynPJ[c]) }

// StaticEnergyPJ returns total integrated leakage energy.
//
//flovunit:convert raw-float reporting boundary for stats/metrics consumers
func (l *Ledger) StaticEnergyPJ() float64 { return float64(l.staticPJ) }

// TotalEnergyPJ returns static plus dynamic energy.
func (l *Ledger) TotalEnergyPJ() float64 { return l.StaticEnergyPJ() + l.DynamicEnergyPJ() }

// DynamicPowerW returns average dynamic power over the measured window.
func (l *Ledger) DynamicPowerW() float64 {
	if l.cycles == 0 {
		return 0
	}
	return l.DynamicEnergyPJ() * 1e-12 / l.model.CyclesToSeconds(l.cycles)
}

// StaticPowerW returns average static power over the measured window.
func (l *Ledger) StaticPowerW() float64 {
	if l.cycles == 0 {
		return 0
	}
	return l.StaticEnergyPJ() * 1e-12 / l.model.CyclesToSeconds(l.cycles)
}

// TotalPowerW returns average total power over the measured window.
func (l *Ledger) TotalPowerW() float64 { return l.StaticPowerW() + l.DynamicPowerW() }
