package power

import (
	"math"
	"testing"

	"flov/internal/config"
)

func TestModelComponentScaling(t *testing.T) {
	m1 := NewModel(config.Default())    // 1 vnet, 4 VCs
	m3 := NewModel(config.FullSystem()) // 3 vnets, 12 VCs
	if m1.BufferSlots() != 5*4*6 {
		t.Fatalf("slots = %d", m1.BufferSlots())
	}
	if m3.RouterStaticW() <= m1.RouterStaticW() {
		t.Fatal("more buffering must leak more")
	}
}

func TestGatedResidualOrdering(t *testing.T) {
	m := NewModel(config.Default())
	if !(m.GatedRouterStaticW() < m.RouterStaticW()) {
		t.Fatal("gated router must leak less than powered router")
	}
	if !(m.GatedFLOVRouterStaticW() > m.GatedRouterStaticW()) {
		t.Fatal("FLOV latches add leakage to a gated router")
	}
	if !(m.FLOVRouterStaticW() > m.RouterStaticW()) {
		t.Fatal("HSC/PSR overhead must add leakage")
	}
	ratio := m.GatedRouterStaticW() / m.RouterStaticW()
	if math.Abs(ratio-GatedResidualFrac) > 1e-9 {
		t.Fatalf("residual fraction = %v", ratio)
	}
}

func TestLinksInMesh(t *testing.T) {
	m := NewModel(config.Default()) // 8x8
	if m.LinksInMesh() != 2*(8*7+8*7) {
		t.Fatalf("links = %d", m.LinksInMesh())
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := NewModel(config.Default()) // 2 GHz
	if s := m.CyclesToSeconds(2e9); math.Abs(s-1.0) > 1e-12 {
		t.Fatalf("2e9 cycles at 2GHz = %v s", s)
	}
}

func TestLedgerDisabledBillsNothing(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.AddBufferWrite(10)
	l.AddDyn(CatLink, 10)
	l.TickStatic(64, 0, false)
	if l.TotalEnergyPJ() != 0 || l.Cycles() != 0 {
		t.Fatal("disabled ledger accumulated energy")
	}
}

func TestLedgerDynamicAccounting(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.SetEnabled(true)
	l.AddBufferWrite(2)
	l.AddBufferRead(2)
	l.AddDyn(CatCrossbar, 3)
	l.AddDyn(CatLink, 1)
	want := 2*EBufWritePJ + 2*EBufReadPJ + 3*EXbarPJ + ELinkPJ
	if math.Abs(l.DynamicEnergyPJ()-want) > 1e-9 {
		t.Fatalf("dyn = %v want %v", l.DynamicEnergyPJ(), want)
	}
	if math.Abs(l.CategoryEnergyPJ(CatCrossbar)-3*EXbarPJ) > 1e-9 {
		t.Fatal("category accounting wrong")
	}
}

func TestLedgerGatingOverhead(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.SetEnabled(true)
	l.AddDyn(CatGating, 2)
	if math.Abs(l.CategoryEnergyPJ(CatGating)-2*17.7) > 1e-9 {
		t.Fatalf("gating overhead = %v", l.CategoryEnergyPJ(CatGating))
	}
}

func TestLedgerStaticIntegration(t *testing.T) {
	m := NewModel(config.Default())
	l := NewLedger(m)
	l.SetEnabled(true)
	const cycles = 2000
	for i := 0; i < cycles; i++ {
		l.TickStatic(64, 0, false)
	}
	// Expected: (64 routers + links) for 1 us at 2 GHz.
	wantW := 64*m.RouterStaticW() + float64(m.LinksInMesh())*m.LinkStaticW()
	gotW := l.StaticPowerW()
	if math.Abs(gotW-wantW)/wantW > 1e-9 {
		t.Fatalf("static power %v W, want %v W", gotW, wantW)
	}
}

func TestLedgerGatedStaticLower(t *testing.T) {
	m := NewModel(config.Default())
	all := NewLedger(m)
	all.SetEnabled(true)
	half := NewLedger(m)
	half.SetEnabled(true)
	for i := 0; i < 100; i++ {
		all.TickStatic(64, 0, true)
		half.TickStatic(32, 32, true)
	}
	if half.StaticEnergyPJ() >= all.StaticEnergyPJ() {
		t.Fatal("gating half the routers must reduce static energy")
	}
}

func TestPowerZeroWhenNoCycles(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	if l.StaticPowerW() != 0 || l.DynamicPowerW() != 0 || l.TotalPowerW() != 0 {
		t.Fatal("power must be 0 with no measured cycles")
	}
}

func TestCategoryNames(t *testing.T) {
	for c := DynCategory(0); c < NumCategories; c++ {
		if c.String() == "unknown" {
			t.Errorf("category %d unnamed", int(c))
		}
	}
}
