package power

import (
	"math"
	"testing"

	"flov/internal/config"
)

func TestModelComponentScaling(t *testing.T) {
	m1 := NewModel(config.Default())    // 1 vnet, 4 VCs
	m3 := NewModel(config.FullSystem()) // 3 vnets, 12 VCs
	if m1.BufferSlots() != 5*4*6 {
		t.Fatalf("slots = %d", m1.BufferSlots())
	}
	if m3.RouterStaticW() <= m1.RouterStaticW() {
		t.Fatal("more buffering must leak more")
	}
}

func TestGatedResidualOrdering(t *testing.T) {
	m := NewModel(config.Default())
	if !(m.GatedRouterStaticW() < m.RouterStaticW()) {
		t.Fatal("gated router must leak less than powered router")
	}
	if !(m.GatedFLOVRouterStaticW() > m.GatedRouterStaticW()) {
		t.Fatal("FLOV latches add leakage to a gated router")
	}
	if !(m.FLOVRouterStaticW() > m.RouterStaticW()) {
		t.Fatal("HSC/PSR overhead must add leakage")
	}
	ratio := float64(m.GatedRouterStaticW() / m.RouterStaticW())
	if math.Abs(ratio-GatedResidualFrac) > 1e-9 {
		t.Fatalf("residual fraction = %v", ratio)
	}
}

func TestLinksInMesh(t *testing.T) {
	m := NewModel(config.Default()) // 8x8
	if m.LinksInMesh() != 2*(8*7+8*7) {
		t.Fatalf("links = %d", m.LinksInMesh())
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := NewModel(config.Default()) // 2 GHz
	if s := m.CyclesToSeconds(2e9); math.Abs(s-1.0) > 1e-12 {
		t.Fatalf("2e9 cycles at 2GHz = %v s", s)
	}
}

func TestLedgerDisabledBillsNothing(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.AddBufferWrite(10)
	l.AddDyn(CatLink, 10)
	l.TickStatic(64, 0, false)
	if l.TotalEnergyPJ() != 0 || l.Cycles() != 0 {
		t.Fatal("disabled ledger accumulated energy")
	}
}

func TestLedgerDynamicAccounting(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.SetEnabled(true)
	l.AddBufferWrite(2)
	l.AddBufferRead(2)
	l.AddDyn(CatCrossbar, 3)
	l.AddDyn(CatLink, 1)
	want := float64(2*EBufWritePJ + 2*EBufReadPJ + 3*EXbarPJ + ELinkPJ)
	if math.Abs(l.DynamicEnergyPJ()-want) > 1e-9 {
		t.Fatalf("dyn = %v want %v", l.DynamicEnergyPJ(), want)
	}
	if math.Abs(l.CategoryEnergyPJ(CatCrossbar)-float64(3*EXbarPJ)) > 1e-9 {
		t.Fatal("category accounting wrong")
	}
}

func TestLedgerGatingOverhead(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	l.SetEnabled(true)
	l.AddDyn(CatGating, 2)
	if math.Abs(l.CategoryEnergyPJ(CatGating)-2*17.7) > 1e-9 {
		t.Fatalf("gating overhead = %v", l.CategoryEnergyPJ(CatGating))
	}
}

func TestLedgerStaticIntegration(t *testing.T) {
	m := NewModel(config.Default())
	l := NewLedger(m)
	l.SetEnabled(true)
	const cycles = 2000
	for i := 0; i < cycles; i++ {
		l.TickStatic(64, 0, false)
	}
	// Expected: (64 routers + links) for 1 us at 2 GHz.
	wantW := float64(64*m.RouterStaticW() + m.LinkStaticW().Scale(float64(m.LinksInMesh())))
	gotW := l.StaticPowerW()
	if math.Abs(gotW-wantW)/wantW > 1e-9 {
		t.Fatalf("static power %v W, want %v W", gotW, wantW)
	}
}

func TestLedgerGatedStaticLower(t *testing.T) {
	m := NewModel(config.Default())
	all := NewLedger(m)
	all.SetEnabled(true)
	half := NewLedger(m)
	half.SetEnabled(true)
	for i := 0; i < 100; i++ {
		all.TickStatic(64, 0, true)
		half.TickStatic(32, 32, true)
	}
	if half.StaticEnergyPJ() >= all.StaticEnergyPJ() {
		t.Fatal("gating half the routers must reduce static energy")
	}
}

func TestPowerZeroWhenNoCycles(t *testing.T) {
	l := NewLedger(NewModel(config.Default()))
	if l.StaticPowerW() != 0 || l.DynamicPowerW() != 0 || l.TotalPowerW() != 0 {
		t.Fatal("power must be 0 with no measured cycles")
	}
}

// TestTypedUnitsPreserveNumerics pins the typed-unit refactor to the
// exact raw-float arithmetic it replaced: every derived figure and
// every accumulated ledger total must be bit-identical to the untyped
// formulation (Scale commutes a multiply, which IEEE 754 permits;
// everything else keeps the original operation order).
func TestTypedUnitsPreserveNumerics(t *testing.T) {
	cfg := config.Default()
	m := NewModel(cfg)

	sameBits := func(name string, got, want float64) {
		t.Helper()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s = %v (bits %016x), want %v (bits %016x)",
				name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}

	rawRouterW := float64(m.BufferSlots())*55e-6 + 1.6e-3 + 0.4e-3 + 1.2e-3
	rawOnW := rawRouterW * (1 + 0.01)
	rawGatedW := rawRouterW*0.07 + 0.15e-3
	sameBits("RouterStaticW", float64(m.RouterStaticW()), rawRouterW)
	sameBits("FLOVRouterStaticW", float64(m.FLOVRouterStaticW()), rawOnW)
	sameBits("GatedRouterStaticW", float64(m.GatedRouterStaticW()), rawRouterW*0.07)
	sameBits("GatedFLOVRouterStaticW", float64(m.GatedFLOVRouterStaticW()), rawGatedW)

	l := NewLedger(m)
	l.SetEnabled(true)
	l.AddBufferWrite(3)
	l.AddBufferRead(2)
	l.AddDyn(CatCrossbar, 7)
	l.AddDyn(CatGating, 2)
	for i := 0; i < 1000; i++ {
		l.TickStatic(60, 4, true)
	}

	var rawCat [NumCategories]float64
	rawCat[CatBuffer] += 1.30 * float64(3)
	rawCat[CatBuffer] += 0.90 * float64(2)
	rawCat[CatCrossbar] += 1.90 * float64(7)
	rawCat[CatGating] += cfg.GatingOverheadPJ * float64(2)
	var rawDyn float64
	for _, e := range rawCat {
		rawDyn += e
	}
	rawLinkW := 0.4e-3 * float64(m.LinksInMesh())
	rawTotalW := rawOnW*float64(60) + rawGatedW*float64(4) + rawLinkW
	var rawStatic float64
	for i := 0; i < 1000; i++ {
		rawStatic += rawTotalW / cfg.ClockHz * 1e12
	}

	sameBits("DynamicEnergyPJ", l.DynamicEnergyPJ(), rawDyn)
	sameBits("CategoryEnergyPJ(CatBuffer)", l.CategoryEnergyPJ(CatBuffer), rawCat[CatBuffer])
	sameBits("StaticEnergyPJ", l.StaticEnergyPJ(), rawStatic)

	// The []float64 snapshot wire format must survive the round trip.
	state := l.CaptureState()
	fresh := NewLedger(m)
	fresh.RestoreState(state)
	sameBits("restored StaticEnergyPJ", fresh.StaticEnergyPJ(), l.StaticEnergyPJ())
	sameBits("restored DynamicEnergyPJ", fresh.DynamicEnergyPJ(), l.DynamicEnergyPJ())
}

func TestCategoryNames(t *testing.T) {
	for c := DynCategory(0); c < NumCategories; c++ {
		if c.String() == "unknown" {
			t.Errorf("category %d unnamed", int(c))
		}
	}
}
