// Package power implements the DSENT-substitute analytical power model:
// per-event dynamic energies and per-component leakage for a 32 nm,
// 2 GHz NoC with 16-byte (128-bit) flits and 50% switching activity.
//
// Absolute values are calibrated to published DSENT-class magnitudes; the
// evaluation cares about relative behaviour (static vs dynamic shares,
// FLOV latch vs full router pipeline, gated-residual leakage), which the
// model preserves. All energies are Picojoules, all powers Watts — typed
// units (units.go) checked by flovlint's unitsafe rule.
package power

import "flov/internal/config"

// Per-event dynamic energies (pJ per flit or per event) at 32 nm for a
// 128-bit flit. Sources of magnitude: DSENT router/link models as used by
// the paper (50% switching activity).
const (
	EBufWritePJ  Picojoules = 1.30 // write one flit into an input VC buffer
	EBufReadPJ   Picojoules = 0.90 // read one flit out of an input VC buffer
	EXbarPJ      Picojoules = 1.90 // one flit through the 5x5 crossbar
	EArbPJ       Picojoules = 0.18 // one allocator decision (VA or SA grant)
	ELinkPJ      Picojoules = 2.00 // one flit across a 1 mm link
	ELatchPJ     Picojoules = 0.35 // one flit through a FLOV output latch (write+forward)
	ECreditPJ    Picojoules = 0.05 // one credit on the reverse wire
	EHandshakePJ Picojoules = 0.10 // one HSC handshake signal (FLOV) or FM message (RP)
)

// Leakage model (watts per instance) at 32 nm. Buffer leakage is charged
// per flit-slot so it scales with VC count and depth, matching how static
// power grows with buffering in DSENT.
const (
	PBufLeakPerSlotW Watts = 55e-6  // per flit buffer slot
	PXbarLeakW       Watts = 1.6e-3 // crossbar
	PAllocLeakW      Watts = 0.4e-3 // VA+SA allocators
	PMiscLeakW       Watts = 1.2e-3 // clock tree, pipeline registers, misc control
	PLinkLeakW       Watts = 0.4e-3 // one unidirectional 1 mm link (always on)

	// GatedResidualFrac is the fraction of router leakage that survives
	// power-gating (sleep-transistor and always-on wakeup logic).
	// Dimensionless, so deliberately not unit-typed.
	GatedResidualFrac = 0.07

	// PFLOVLatchLeakW is the leakage of the four FLOV output latches and
	// muxes/demuxes, consumed only while the router is power-gated with
	// FLOV links active.
	PFLOVLatchLeakW Watts = 0.15e-3

	// HSCOverheadFrac is the extra leakage FLOV adds to every (powered-on)
	// router for the HSC FSM, PSRs and modified CCL — the paper quantifies
	// the area at 3% of the router; we charge 1% of router leakage.
	// Dimensionless, so deliberately not unit-typed.
	HSCOverheadFrac = 0.01
)

// Model derives per-instance power figures from a configuration.
type Model struct {
	cfg config.Config
}

// NewModel returns a power model for the given configuration.
func NewModel(cfg config.Config) *Model { return &Model{cfg: cfg} }

// BufferSlots returns the number of flit buffer slots in one router.
func (m *Model) BufferSlots() int {
	return 5 * m.cfg.VCsTotal() * m.cfg.BufferDepth
}

// RouterStaticW returns the leakage of one powered-on baseline router.
func (m *Model) RouterStaticW() Watts {
	return PBufLeakPerSlotW.Scale(float64(m.BufferSlots())) + PXbarLeakW + PAllocLeakW + PMiscLeakW
}

// FLOVRouterStaticW returns the leakage of a powered-on FLOV router
// (baseline plus the HSC/PSR overhead).
func (m *Model) FLOVRouterStaticW() Watts {
	return m.RouterStaticW() * (1 + HSCOverheadFrac)
}

// GatedRouterStaticW returns the residual leakage of a power-gated router
// (without FLOV latches).
func (m *Model) GatedRouterStaticW() Watts {
	return m.RouterStaticW() * GatedResidualFrac
}

// GatedFLOVRouterStaticW returns the residual leakage of a power-gated
// FLOV router with its bypass latches active.
func (m *Model) GatedFLOVRouterStaticW() Watts {
	return m.GatedRouterStaticW() + PFLOVLatchLeakW
}

// LinkStaticW returns the leakage of one unidirectional link. Links stay
// powered in every mechanism (FLOV needs them for fly-over paths; link
// drivers are shared infrastructure).
func (m *Model) LinkStaticW() Watts { return PLinkLeakW }

// LinksInMesh returns the number of unidirectional inter-router links.
func (m *Model) LinksInMesh() int {
	w, h := m.cfg.Width, m.cfg.Height
	return 2 * (w*(h-1) + h*(w-1))
}

// GatingOverheadPJ returns the energy of one power-gating transition
// (either direction), from Table I.
func (m *Model) GatingOverheadPJ() Picojoules { return Picojoules(m.cfg.GatingOverheadPJ) }

// ClockHz returns the configured clock frequency.
func (m *Model) ClockHz() Hertz { return Hertz(m.cfg.ClockHz) }

// CyclesToSeconds converts a cycle count to seconds at the configured clock.
func (m *Model) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / m.cfg.ClockHz
}
