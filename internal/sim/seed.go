package sim

// This file is the single home of the module's seed-derivation
// arithmetic. The sweep engine, the reliability harness and the
// design-space optimizer all need families of well-separated seeds that
// are pure functions of a spec — the derivations live here so the three
// layers cannot drift on seed semantics (a drift would silently change
// every content-addressed cache key derived from them).

// golden is the SplitMix64 additive constant (2^64/phi), used to spread
// sequential indices across the whole 64-bit space before finalizing.
const golden = 0x9e3779b97f4a7c15

// Mix64 applies the SplitMix64 finalizer: a bijective avalanche that
// turns correlated inputs (sequential trial indices, XOR-ed labels)
// into statistically independent-looking 64-bit values.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DeriveSeed derives the seed of element index within the stream named
// by label, decorrelated from the (base, salt) pair: salt is XOR-ed
// with an avalanche of base, the scaled index and the label, so every
// (label, index) combination draws an independent-looking stream while
// staying a pure function of its inputs. The reliability harness uses
// it for per-trial fault seeds and the optimizer for per-generation
// search streams; both identities feed content-addressed caches, so the
// formula must never change silently.
func DeriveSeed(base, salt, label uint64, index int) uint64 {
	return salt ^ Mix64(base+uint64(index)*golden+label)
}

// MaskSeed derives the gated-set draw seed from a run seed. This is
// flovsim's -seed derivation, shared by flov.Build, sweep specs, the
// reliability harness and the optimizer, so one simulation point has
// one cache identity no matter which layer built it.
func MaskSeed(seed uint64) uint64 { return seed ^ 0xabcd }
