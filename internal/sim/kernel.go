package sim

// Component is anything stepped by the kernel once per cycle.
//
// Within one cycle every component's Tick is called exactly once, in a
// fixed registration order. Components must communicate with each other
// exclusively through Delay queues (latency >= 1), which makes the
// registration order unobservable.
type Component interface {
	// Tick advances the component by one cycle. now is the current cycle.
	Tick(now int64)
}

// TickFunc adapts a plain function to the Component interface.
type TickFunc func(now int64)

// Tick calls f(now).
func (f TickFunc) Tick(now int64) { f(now) }

// Kernel drives a set of components through simulated cycles.
type Kernel struct {
	now        int64
	components []Component
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Register adds a component to the tick list.
func (k *Kernel) Register(c Component) { k.components = append(k.components, c) }

// Now returns the current cycle (the cycle about to be executed by Step).
func (k *Kernel) Now() int64 { return k.now }

// Step executes one cycle: every component ticks once.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Tick(k.now)
	}
	k.now++
}

// Run executes cycles until the predicate returns true or the cycle limit
// is reached. It returns the cycle at which it stopped and whether the
// predicate was satisfied. The predicate is checked before each cycle.
func (k *Kernel) Run(limit int64, done func(now int64) bool) (int64, bool) {
	for k.now < limit {
		if done != nil && done(k.now) {
			return k.now, true
		}
		k.Step()
	}
	return k.now, done != nil && done(k.now)
}

// RunFor executes exactly n cycles.
func (k *Kernel) RunFor(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}
