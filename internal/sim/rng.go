// Package sim provides the cycle-driven simulation kernel used by the
// FLOV network-on-chip simulator: a deterministic random number generator,
// delay queues that give register-transfer (two-phase) semantics between
// components, and the top-level cycle loop.
//
// Everything in this package is deterministic: two runs with the same seed
// and the same component set produce bit-identical results, which the test
// suite relies on.
package sim

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64. It is small, fast, allocation-free and good enough for
// workload generation; it is NOT cryptographically secure.
//
// The zero value is a valid generator seeded with 0; use NewRNG to seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here;
	// the slight modulo bias for huge n is irrelevant for workload draws.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG whose stream is decorrelated from r's, derived
// from r's current state and the given label. Useful to give each traffic
// source its own stream while keeping global determinism.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

// State returns the generator's internal state. Together with SetState it
// lets a checkpoint capture and later resume the exact stream position.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state (checkpoint restore).
func (r *RNG) SetState(s uint64) { r.state = s }
