package sim

// Delay is an ordered delay queue: items pushed at cycle t with latency L
// become visible at cycle t+L. It models a pipelined wire/FIFO between two
// components. Because consumers can only observe items pushed on earlier
// cycles, evaluation order between components within a cycle does not
// matter, which gives the simulator register-transfer semantics.
//
// FIFO order is preserved even for items pushed on the same cycle, so a
// control channel can rely on "credit then notice" ordering.
type Delay[T any] struct {
	latency int64 //flovsnap:skip property of the wire, not of the traffic on it
	items   []timed[T]
}

type timed[T any] struct {
	ready int64
	v     T
}

// NewDelay returns a delay queue with the given latency in cycles.
// Latency must be at least 1 to preserve order-independence.
func NewDelay[T any](latency int) *Delay[T] {
	if latency < 1 {
		panic("sim: Delay latency must be >= 1")
	}
	return &Delay[T]{latency: int64(latency)}
}

// Push enqueues v at cycle now; it becomes visible at now+latency.
func (d *Delay[T]) Push(now int64, v T) {
	d.items = append(d.items, timed[T]{ready: now + d.latency, v: v})
}

// PushAfter enqueues v with an extra delay on top of the base latency.
func (d *Delay[T]) PushAfter(now int64, extra int64, v T) {
	d.items = append(d.items, timed[T]{ready: now + d.latency + extra, v: v})
}

// Ready reports whether an item is visible at cycle now.
func (d *Delay[T]) Ready(now int64) bool {
	return len(d.items) > 0 && d.items[0].ready <= now
}

// Pop removes and returns the front item if it is visible at cycle now.
func (d *Delay[T]) Pop(now int64) (T, bool) {
	var zero T
	if !d.Ready(now) {
		return zero, false
	}
	v := d.items[0].v
	// Shift rather than reslice forever; the queue is short in practice.
	copy(d.items, d.items[1:])
	d.items = d.items[:len(d.items)-1]
	return v, true
}

// PopAll removes and returns every item visible at cycle now, in order.
func (d *Delay[T]) PopAll(now int64) []T {
	var out []T
	for d.Ready(now) {
		v, _ := d.Pop(now)
		out = append(out, v)
	}
	return out
}

// Drain visits every item visible at cycle now, in order, without
// allocating a result slice.
func (d *Delay[T]) Drain(now int64, fn func(T)) {
	for d.Ready(now) {
		v, _ := d.Pop(now)
		fn(v)
	}
}

// Each visits every queued item (visible or not), in order, without
// removing anything. Used for consistency snapshots (e.g. counting
// in-flight flits when synchronizing credits across a power transition).
func (d *Delay[T]) Each(fn func(T)) {
	for _, it := range d.items {
		fn(it.v)
	}
}

// Len returns the number of queued items (visible or not).
func (d *Delay[T]) Len() int { return len(d.items) }

// Empty reports whether no items are queued at all.
func (d *Delay[T]) Empty() bool { return len(d.items) == 0 }

// Latency returns the queue's base latency in cycles.
func (d *Delay[T]) Latency() int64 { return d.latency }

// Queued is one in-flight item of a Delay with its absolute ready cycle,
// as captured by Queued()/restored by SetQueued (checkpointing).
type Queued[T any] struct {
	Ready int64
	V     T
}

// Queued returns every in-flight item with its absolute ready cycle, in
// queue order.
func (d *Delay[T]) Queued() []Queued[T] {
	out := make([]Queued[T], len(d.items))
	for i, it := range d.items {
		out[i] = Queued[T]{Ready: it.ready, V: it.v}
	}
	return out
}

// SetQueued replaces the queue contents with the given items (absolute
// ready cycles, queue order). The latency is unchanged; it is a property
// of the wire, not of the traffic on it.
func (d *Delay[T]) SetQueued(items []Queued[T]) {
	d.items = d.items[:0]
	for _, it := range items {
		d.items = append(d.items, timed[T]{ready: it.Ready, v: it.V})
	}
}
