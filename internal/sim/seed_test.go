package sim

import "testing"

// TestMix64Avalanche pins the finalizer to known SplitMix64 values so a
// formula change (which would invalidate every derived cache key) fails
// loudly.
func TestMix64Avalanche(t *testing.T) {
	// SplitMix64(seed=0) first output is Mix64(0 + golden).
	r := NewRNG(0)
	if got, want := r.Uint64(), Mix64(golden); got != want {
		t.Fatalf("Mix64 disagrees with the RNG stream: got %#x, want %#x", got, want)
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collided on adjacent inputs")
	}
}

// TestDeriveSeedIsPureAndSeparated checks the derivation is a pure
// function of its inputs and that neighboring indices, labels and salts
// give distinct seeds.
func TestDeriveSeedIsPureAndSeparated(t *testing.T) {
	a := DeriveSeed(7, 9, 0x666c6f7672656c, 3)
	b := DeriveSeed(7, 9, 0x666c6f7672656c, 3)
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %#x vs %#x", a, b)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		s := DeriveSeed(7, 9, 0x666c6f7672656c, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collided at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 9, 1, 0) == DeriveSeed(7, 9, 2, 0) {
		t.Fatal("labels do not separate streams")
	}
	if DeriveSeed(7, 9, 1, 0) == DeriveSeed(8, 9, 1, 0) {
		t.Fatal("bases do not separate streams")
	}
}

// TestMaskSeedDerivation pins the flovsim -seed derivation: run seed 1
// must keep drawing the gated set from seed 1^0xabcd, or every cached
// sweep row changes identity.
func TestMaskSeedDerivation(t *testing.T) {
	if got, want := MaskSeed(1), uint64(1^0xabcd); got != want {
		t.Fatalf("MaskSeed(1) = %#x, want %#x", got, want)
	}
}
