package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	err := quick.Check(func(n uint8) bool {
		m := int(n%63) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.28 || rate > 0.32 {
		t.Fatalf("Bernoulli(0.3) measured %.3f", rate)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGForkDecorrelates(t *testing.T) {
	base := NewRNG(5)
	f1 := base.Fork(1)
	f2 := base.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

func TestDelayLatency(t *testing.T) {
	d := NewDelay[int](3)
	d.Push(10, 42)
	for now := int64(10); now < 13; now++ {
		if d.Ready(now) {
			t.Fatalf("visible too early at %d", now)
		}
	}
	v, ok := d.Pop(13)
	if !ok || v != 42 {
		t.Fatalf("Pop(13) = %v, %v", v, ok)
	}
}

func TestDelayFIFOWithinCycle(t *testing.T) {
	d := NewDelay[int](1)
	d.Push(0, 1)
	d.Push(0, 2)
	d.Push(0, 3)
	got := d.PopAll(1)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order violated: %v", got)
	}
}

func TestDelayOrderAcrossCycles(t *testing.T) {
	d := NewDelay[int](1)
	d.Push(0, 1)
	d.Push(1, 2)
	if v, _ := d.Pop(1); v != 1 {
		t.Fatal("first item not first out")
	}
	if d.Ready(1) {
		t.Fatal("second item visible too early")
	}
	if v, _ := d.Pop(2); v != 2 {
		t.Fatal("second item lost")
	}
}

func TestDelayPushAfter(t *testing.T) {
	d := NewDelay[int](1)
	d.PushAfter(0, 5, 9)
	if d.Ready(5) {
		t.Fatal("extra delay ignored")
	}
	if v, ok := d.Pop(6); !ok || v != 9 {
		t.Fatal("PushAfter item lost")
	}
}

func TestDelayEachAndLen(t *testing.T) {
	d := NewDelay[int](2)
	d.Push(0, 7)
	d.Push(0, 8)
	var sum int
	d.Each(func(v int) { sum += v })
	if sum != 15 || d.Len() != 2 || d.Empty() {
		t.Fatalf("Each/Len broken: sum=%d len=%d", sum, d.Len())
	}
}

func TestDelayRejectsZeroLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for latency 0")
		}
	}()
	NewDelay[int](0)
}

func TestDelayDrainConsumesOnlyReady(t *testing.T) {
	d := NewDelay[int](1)
	d.Push(0, 1)
	d.Push(5, 2)
	var got []int
	d.Drain(1, func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Drain consumed wrong items: %v", got)
	}
	if d.Len() != 1 {
		t.Fatal("unready item removed")
	}
}

func TestKernelStepOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Register(TickFunc(func(now int64) { order = append(order, 1) }))
	k.Register(TickFunc(func(now int64) { order = append(order, 2) }))
	k.Step()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tick order: %v", order)
	}
	if k.Now() != 1 {
		t.Fatalf("Now() = %d after one step", k.Now())
	}
}

func TestKernelRunPredicate(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Register(TickFunc(func(now int64) { count++ }))
	end, done := k.Run(100, func(now int64) bool { return now == 10 })
	if !done || end != 10 || count != 10 {
		t.Fatalf("Run stopped at %d done=%v count=%d", end, done, count)
	}
}

func TestKernelRunFor(t *testing.T) {
	k := NewKernel()
	k.RunFor(25)
	if k.Now() != 25 {
		t.Fatalf("Now() = %d", k.Now())
	}
}
