// Package render draws ASCII views of the mesh: per-router power states
// and scalar heat maps (traffic, buffer occupancy). Useful for eyeballing
// what a power-gating mechanism actually did to the network.
package render

import (
	"fmt"
	"math"
	"strings"

	"flov/internal/topology"
)

// PowerMap renders the mesh as a grid of state glyphs, north row first
// (matching the usual figure orientation). glyph(id) supplies one rune
// per router, e.g. 'A' active, 'D' draining, '.' sleeping, 'W' waking.
func PowerMap(m topology.Mesh, glyph func(id int) rune) string {
	var b strings.Builder
	for y := m.Height - 1; y >= 0; y-- {
		for x := 0; x < m.Width; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			b.WriteRune(glyph(m.ID(x, y)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HeatMap renders a scalar per router on a 0-9 scale (min..max of the
// provided values), '.' for exact zero. North row first.
func HeatMap(m topology.Mesh, value func(id int) float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for id := 0; id < m.N(); id++ {
		v := value(id)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for y := m.Height - 1; y >= 0; y-- {
		for x := 0; x < m.Width; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			v := value(m.ID(x, y))
			switch {
			case math.Abs(v) < 1e-12:
				b.WriteByte('.')
			case hi-lo < 1e-12:
				b.WriteByte('5')
			default:
				level := int(math.Round(9 * (v - lo) / (hi - lo)))
				b.WriteByte(byte('0' + level))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend renders a one-line legend for a power map.
func Legend() string {
	return "A=active  D=draining  W=waking  .=power-gated  (north row on top)"
}

// SideBySide joins two equally tall blocks with a gutter, for printing a
// power map next to a heat map.
func SideBySide(left, right, gutter string) string {
	ls := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rs := strings.Split(strings.TrimRight(right, "\n"), "\n")
	n := len(ls)
	if len(rs) > n {
		n = len(rs)
	}
	width := 0
	for _, l := range ls {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ls) {
			l = ls[i]
		}
		if i < len(rs) {
			r = rs[i]
		}
		fmt.Fprintf(&b, "%-*s%s%s\n", width, l, gutter, r)
	}
	return b.String()
}
