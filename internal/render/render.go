// Package render draws ASCII views of the mesh: per-router power states
// and scalar heat maps (traffic, buffer occupancy). Useful for eyeballing
// what a power-gating mechanism actually did to the network.
package render

import (
	"fmt"
	"math"
	"strings"

	"flov/internal/topology"
)

// PowerMap renders the mesh as a grid of state glyphs, north row first
// (matching the usual figure orientation). glyph(id) supplies one rune
// per router, e.g. 'A' active, 'D' draining, '.' sleeping, 'W' waking.
func PowerMap(m topology.Mesh, glyph func(id int) rune) string {
	var b strings.Builder
	for y := m.Height - 1; y >= 0; y-- {
		for x := 0; x < m.Width; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			b.WriteRune(glyph(m.ID(x, y)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HeatMap renders a scalar per router on a 0-9 scale (min..max of the
// provided values), '.' for exact zero. North row first.
func HeatMap(m topology.Mesh, value func(id int) float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for id := 0; id < m.N(); id++ {
		v := value(id)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for y := m.Height - 1; y >= 0; y-- {
		for x := 0; x < m.Width; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			v := value(m.ID(x, y))
			switch {
			case math.Abs(v) < 1e-12:
				b.WriteByte('.')
			case hi-lo < 1e-12:
				b.WriteByte('5')
			default:
				level := int(math.Round(9 * (v - lo) / (hi - lo)))
				b.WriteByte(byte('0' + level))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// XY is one point of a scatter plot.
type XY struct {
	X, Y float64
}

// Series is one glyph-tagged point set of a scatter plot. Later series
// draw over earlier ones where cells collide.
type Series struct {
	Glyph rune
	Pts   []XY
}

// Scatter renders series into a w x h character grid with a box border
// and the axis ranges annotated underneath — enough to eyeball a Pareto
// front in a terminal or a CI log. Ranges cover all series; degenerate
// ranges (a single x or y value) center their points. The output is a
// pure function of the input, so golden tests and cross-process
// determinism checks can compare it byte-for-byte.
func Scatter(w, h int, series []Series) string {
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Pts {
			xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
			ylo, yhi = math.Min(ylo, p.Y), math.Max(yhi, p.Y)
		}
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	// cell maps a value into [0, n) along a possibly degenerate range.
	cell := func(v, lo, hi float64, n int) int {
		if hi-lo < 1e-300 {
			return n / 2
		}
		i := int(math.Round(float64(n-1) * (v - lo) / (hi - lo)))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	plotted := false
	for _, s := range series {
		for _, p := range s.Pts {
			plotted = true
			x := cell(p.X, xlo, xhi, w)
			y := cell(p.Y, ylo, yhi, h)
			grid[h-1-y][x] = s.Glyph // y grows upward
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	if plotted {
		fmt.Fprintf(&b, "x: %g .. %g   y: %g .. %g\n", xlo, xhi, ylo, yhi)
	} else {
		b.WriteString("(no points)\n")
	}
	return b.String()
}

// Legend renders a one-line legend for a power map.
func Legend() string {
	return "A=active  D=draining  W=waking  .=power-gated  (north row on top)"
}

// SideBySide joins two equally tall blocks with a gutter, for printing a
// power map next to a heat map.
func SideBySide(left, right, gutter string) string {
	ls := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rs := strings.Split(strings.TrimRight(right, "\n"), "\n")
	n := len(ls)
	if len(rs) > n {
		n = len(rs)
	}
	width := 0
	for _, l := range ls {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ls) {
			l = ls[i]
		}
		if i < len(rs) {
			r = rs[i]
		}
		fmt.Fprintf(&b, "%-*s%s%s\n", width, l, gutter, r)
	}
	return b.String()
}
