package render

import (
	"strings"
	"testing"

	"flov/internal/topology"
)

func TestPowerMapOrientation(t *testing.T) {
	m, _ := topology.NewMesh(3, 2)
	// Node ids: row y=0 is 0,1,2; y=1 is 3,4,5. North (y=1) prints first.
	out := PowerMap(m, func(id int) rune { return rune('a' + id) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", lines)
	}
	if lines[0] != "d e f" || lines[1] != "a b c" {
		t.Fatalf("orientation wrong: %q", lines)
	}
}

func TestHeatMapScale(t *testing.T) {
	m, _ := topology.NewMesh(2, 2)
	vals := map[int]float64{0: 0, 1: 5, 2: 10, 3: 10}
	out := HeatMap(m, func(id int) float64 { return vals[id] })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// North row: ids 2,3 = max -> 9 9 ; south row: 0 (zero -> '.'), 1 -> ~4/5.
	if lines[0] != "9 9" {
		t.Fatalf("north row: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], ".") {
		t.Fatalf("zero not dotted: %q", lines[1])
	}
}

func TestHeatMapUniformValues(t *testing.T) {
	m, _ := topology.NewMesh(2, 2)
	out := HeatMap(m, func(id int) float64 { return 3 })
	if !strings.Contains(out, "5") {
		t.Fatalf("uniform map should print 5s: %q", out)
	}
}

func TestSideBySide(t *testing.T) {
	got := SideBySide("a\nbb\n", "X\nY\n", " | ")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if lines[0] != "a  | X" || lines[1] != "bb | Y" {
		t.Fatalf("side by side: %q", lines)
	}
}

func TestScatterPlacesCorners(t *testing.T) {
	got := Scatter(11, 5, []Series{{Glyph: '*', Pts: []XY{{0, 0}, {10, 4}}}})
	lines := strings.Split(got, "\n")
	// Border top, 5 rows, border bottom, axis line, trailing "".
	if len(lines) != 9 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if lines[5] != "|*          |" {
		t.Errorf("min corner misplaced: %q", lines[5])
	}
	if lines[1] != "|          *|" {
		t.Errorf("max corner misplaced: %q", lines[1])
	}
	if lines[7] != "x: 0 .. 10   y: 0 .. 4" {
		t.Errorf("axis annotation: %q", lines[7])
	}
}

func TestScatterDeterministicAndDegenerate(t *testing.T) {
	s := []Series{{Glyph: 'o', Pts: []XY{{3, 7}, {3, 7}}}}
	a, b := Scatter(8, 4, s), Scatter(8, 4, s)
	if a != b {
		t.Fatal("Scatter not deterministic")
	}
	// A single-valued range must still land inside the box, centered.
	if !strings.Contains(a, "o") {
		t.Fatalf("degenerate-range point not plotted:\n%s", a)
	}
	if empty := Scatter(8, 4, nil); !strings.Contains(empty, "(no points)") {
		t.Fatalf("empty plot missing placeholder:\n%s", empty)
	}
}

func TestScatterLaterSeriesWins(t *testing.T) {
	got := Scatter(5, 3, []Series{
		{Glyph: '.', Pts: []XY{{0, 0}, {1, 1}}},
		{Glyph: '#', Pts: []XY{{0, 0}}},
	})
	if !strings.Contains(got, "#") {
		t.Fatalf("overlay glyph lost:\n%s", got)
	}
}

func TestLegendNonEmpty(t *testing.T) {
	if Legend() == "" {
		t.Fatal("legend empty")
	}
}
