package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Engine fans a job list out across a worker pool. The zero value is
// usable: GOMAXPROCS workers, no cache, no progress observer.
type Engine struct {
	// Workers caps pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, memoizes successful results on disk.
	Cache *Cache
	// Progress, when non-nil, receives per-job lifecycle events. The
	// observer is called from worker goroutines and must be safe for
	// concurrent use (Reporter is).
	Progress Progress

	// RunJob, when non-nil, substitutes the job runner (tests use it
	// for panic injection and timing control; the serving layer's tests
	// use it to block points on demand). Nil means Job.Run.
	RunJob func(Job) Result

	// WarmStart, when set (and Cache is non-nil), runs synthetic points
	// with a warmup phase via Job.RunWarm: points sharing a (topology,
	// workload, warmup) prefix restore one cached post-warmup snapshot
	// instead of each re-simulating the warmup. Results are byte-for-byte
	// identical to cold runs.
	WarmStart bool

	// Pause, when non-nil, makes execution preemptible: workers poll it
	// between simulation quanta and, when it reports true, checkpoint the
	// running job and return a Paused result instead of finishing. Jobs
	// not yet started when Pause turns true return Paused with a nil
	// Snapshot (nothing simulated yet). Must be safe for concurrent use.
	Pause func() bool

	// Snapshots, when non-nil, must be index-aligned with the job list
	// passed to Run: a non-nil element resumes that job from the
	// checkpoint instead of starting cold (the snapshot of an earlier
	// Paused result for the same job).
	Snapshots [][]byte
}

// Run executes jobs and returns one Result per job, in job order,
// regardless of completion order. A job that fails — returns an error,
// or panics inside the simulator — yields an error-carrying Result
// without disturbing its siblings. When ctx is cancelled, jobs not yet
// started return a "canceled" Result; jobs already running complete
// normally (simulation points are short; there is no preemption).
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	for i, j := range jobs {
		results[i] = Result{Job: j, Err: context.Canceled.Error()}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		return results
	}

	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := range jobs {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = e.one(i, len(jobs), jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// one runs a single job: cache lookup, guarded execution, cache fill,
// progress events.
func (e *Engine) one(index, total int, j Job) Result {
	var snap []byte
	if e.Snapshots != nil {
		snap = e.Snapshots[index]
	}
	if e.Pause != nil && snap == nil && e.Pause() {
		// Preemption requested before this job simulated anything: yield
		// it whole (nil snapshot means "start cold next time") without
		// burning a quantum on it first.
		return Result{Job: j, Paused: true}
	}

	e.emit(Event{Type: JobStart, Index: index, Total: total, Job: j})

	if e.Cache != nil {
		if r, ok := e.Cache.Get(j); ok {
			r.CacheHit = true
			e.emit(Event{Type: JobCacheHit, Index: index, Total: total, Job: j,
				Wall: r.Wall, SimCycles: r.SimCycles(), Result: &r})
			return r
		}
	}

	r := e.guardedRun(j, snap)

	if r.Paused {
		e.emit(Event{Type: JobPaused, Index: index, Total: total, Job: j, Wall: r.Wall})
		return r
	}

	if r.Err == "" && e.Cache != nil {
		// Cache fills are best-effort: a full disk must not fail the sweep.
		if err := e.Cache.Put(r); err != nil {
			e.emit(Event{Type: CacheWriteError, Index: index, Total: total, Job: j, Err: err.Error()})
		}
	}

	ev := Event{Type: JobDone, Index: index, Total: total, Job: j,
		Wall: r.Wall, SimCycles: r.SimCycles(), Result: &r}
	if r.Err != "" {
		ev.Type = JobError
		ev.Err = r.Err
	}
	e.emit(ev)
	return r
}

// guardedRun executes the job with panic isolation: a crashing point
// reports an error instead of killing the sweep. The full stack is
// preserved unbounded (debug.Stack) so deep simulator frames survive
// into the error row.
func (e *Engine) guardedRun(j Job, snap []byte) (r Result) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			r = Result{
				Job:  j,
				Err:  fmt.Sprintf("panic: %v\n%s", p, debug.Stack()),
				Wall: time.Since(start),
			}
		}
	}()
	if e.RunJob != nil {
		return e.RunJob(j)
	}
	if e.Pause != nil || snap != nil {
		return j.RunResumable(snap, e.Pause)
	}
	if e.WarmStart && e.Cache != nil {
		return j.RunWarm(e.Cache)
	}
	return j.Run()
}

func (e *Engine) emit(ev Event) {
	if e.Progress != nil {
		e.Progress.Event(ev)
	}
}

// Stats aggregates a finished sweep for reporting.
type Stats struct {
	Jobs      int
	CacheHits int
	Errors    int
	// SimCycles totals simulated cycles across all points.
	SimCycles int64
	// WorkWall sums per-job wall time (CPU-side work, all workers).
	WorkWall time.Duration
	// Wall is the end-to-end elapsed time the caller measured.
	Wall time.Duration
}

// Summarize folds a result list (plus the caller-measured elapsed time)
// into Stats.
func Summarize(results []Result, wall time.Duration) Stats {
	s := Stats{Jobs: len(results), Wall: wall}
	for _, r := range results {
		if r.CacheHit {
			s.CacheHits++
		}
		if r.Err != "" {
			s.Errors++
		}
		s.SimCycles += r.SimCycles()
		s.WorkWall += r.Wall
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	line := fmt.Sprintf("%d jobs (%d cached, %d failed) in %v",
		s.Jobs, s.CacheHits, s.Errors, s.Wall.Round(time.Millisecond))
	if s.Wall > 0 && s.SimCycles > 0 {
		line += fmt.Sprintf(", %.1f Mcycles simulated (%.1f Mcyc/s)",
			float64(s.SimCycles)/1e6, float64(s.SimCycles)/1e6/s.Wall.Seconds())
	}
	return line
}
