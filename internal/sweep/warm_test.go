package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flov/internal/config"
)

// rowJSON renders a result as its durable JSON row (transient fields are
// excluded by their tags), the byte-level currency of equivalence tests.
func rowJSON(t *testing.T, r Result) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return data
}

// warmJob is quickJob with a long warmup relative to its measurement
// window, the shape warm-start forking targets.
func warmJob(mech config.Mechanism, total int64) Job {
	j := quickJob(mech, 0.02, 0.5)
	j.Config.WarmupCycles = 2_000
	j.Config.TotalCycles = total
	return j
}

func TestWarmKeySharedAcrossWindows(t *testing.T) {
	a := warmJob(config.GFLOV, 4_000)
	b := warmJob(config.GFLOV, 6_000)
	if a.WarmKey() != b.WarmKey() {
		t.Fatal("jobs differing only in measurement window must share a warm key")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("jobs differing in measurement window must not share a result hash")
	}
	c := warmJob(config.GFLOV, 4_000)
	c.Rate = 0.03
	if a.WarmKey() == c.WarmKey() {
		t.Fatal("jobs with different workloads must not share a warm key")
	}
}

// TestWarmStartMatchesCold is the warm-fork soundness property: both the
// donor run (which publishes the blob) and every restored run produce
// rows byte-identical to cold execution.
func TestWarmStartMatchesCold(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []config.Mechanism{config.Baseline, config.GFLOV, config.RP} {
		donor := warmJob(mech, 4_000)
		fork := warmJob(mech, 5_500)

		coldDonor := rowJSON(t, donor.Run())
		coldFork := rowJSON(t, fork.Run())

		if _, ok := cache.GetBlob(donor.WarmKey()); ok {
			t.Fatalf("%v: blob present before donor ran", mech)
		}
		warmDonor := donor.RunWarm(cache)
		if warmDonor.Err != "" {
			t.Fatalf("%v donor: %s", mech, warmDonor.Err)
		}
		if !bytes.Equal(coldDonor, rowJSON(t, warmDonor)) {
			t.Fatalf("%v: donor warm run differs from cold run", mech)
		}
		if _, ok := cache.GetBlob(donor.WarmKey()); !ok {
			t.Fatalf("%v: donor did not publish a warm blob", mech)
		}

		warmFork := fork.RunWarm(cache)
		if warmFork.Err != "" {
			t.Fatalf("%v fork: %s", mech, warmFork.Err)
		}
		if !bytes.Equal(coldFork, rowJSON(t, warmFork)) {
			t.Fatalf("%v: warm-forked run differs from cold run", mech)
		}
	}
}

// TestWarmStartHealsCorruptBlob: a mangled blob must never poison
// results — the point re-simulates cold and republishes.
func TestWarmStartHealsCorruptBlob(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := warmJob(config.GFLOV, 4_000)
	cold := rowJSON(t, j.Run())

	key := j.WarmKey()
	if err := cache.PutBlob(key, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	r := j.RunWarm(cache)
	if r.Err != "" {
		t.Fatalf("warm run with corrupt blob: %s", r.Err)
	}
	if !bytes.Equal(cold, rowJSON(t, r)) {
		t.Fatal("corrupt blob changed the result")
	}
	blob, ok := cache.GetBlob(key)
	if !ok {
		t.Fatal("healed blob not republished")
	}
	if bytes.Equal(blob, []byte("not a snapshot")) {
		t.Fatal("corrupt blob survived")
	}
	// The republished blob must now serve restores.
	r2 := j.RunWarm(cache)
	if r2.Err != "" || !bytes.Equal(cold, rowJSON(t, r2)) {
		t.Fatal("restore from republished blob differs from cold run")
	}
}

// TestSnapshotSchemaInJobHash (satellite): bumping the snapshot schema
// version must change every job hash, so rows (and warm blobs) written
// under the old state layout miss instead of being served.
func TestSnapshotSchemaInJobHash(t *testing.T) {
	j := quickJob(config.GFLOV, 0.02, 0.5)
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := j.Run()
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if err := cache.Put(r); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(j); !ok {
		t.Fatal("cache must hit before the schema bump")
	}
	oldHash, oldWarm := j.Hash(), j.WarmKey()

	orig := snapSchemaVersion
	defer func() { snapSchemaVersion = orig }()
	snapSchemaVersion = orig + "-bumped"

	if j.Hash() == oldHash {
		t.Fatal("snapshot schema bump did not change the job hash")
	}
	if j.WarmKey() == oldWarm {
		t.Fatal("snapshot schema bump did not change the warm key")
	}
	if _, ok := cache.Get(j); ok {
		t.Fatal("cache served a row written under the old snapshot schema")
	}
}

// explodeDeepInStack panics from a named helper so the test below can
// assert the frame survives into the reported stack.
func explodeDeepInStack() { panic("synthetic test explosion") }

// TestPanicStackInErrorRow (satellite): the panic stack captured by the
// engine must be complete — the panicking function's name appears in the
// error row even when marshaled to JSON.
func TestPanicStackInErrorRow(t *testing.T) {
	e := &Engine{Workers: 1, RunJob: func(Job) Result {
		explodeDeepInStack()
		return Result{}
	}}
	results := e.Run(context.Background(), []Job{quickJob(config.GFLOV, 0.02, 0)})
	if len(results) != 1 || results[0].Err == "" {
		t.Fatal("expected one error-carrying result")
	}
	row := string(rowJSON(t, results[0]))
	if !strings.Contains(row, "explodeDeepInStack") {
		t.Fatalf("panic frame missing from JSON row:\n%s", row)
	}
	if !strings.Contains(row, "synthetic test explosion") {
		t.Fatalf("panic value missing from JSON row:\n%s", row)
	}
}

// TestResumableMatchesUninterrupted drives a job through repeated
// pause/checkpoint/resume cycles and requires the final row to be
// byte-identical to an uninterrupted run.
func TestResumableMatchesUninterrupted(t *testing.T) {
	for _, mech := range []config.Mechanism{config.GFLOV, config.RP} {
		j := quickJob(mech, 0.02, 0.5)
		j.Config.TotalCycles = 20_000
		cold := rowJSON(t, j.Run())

		pauseAlways := func() bool { return true }
		var snap []byte
		var r Result
		rounds := 0
		for {
			r = j.RunResumable(snap, pauseAlways)
			if r.Err != "" {
				t.Fatalf("%v round %d: %s", mech, rounds, r.Err)
			}
			if !r.Paused {
				break
			}
			if len(r.Snapshot) == 0 {
				t.Fatalf("%v round %d: paused without a snapshot", mech, rounds)
			}
			snap = r.Snapshot
			rounds++
			if rounds > 100 {
				t.Fatalf("%v: no forward progress across pauses", mech)
			}
		}
		if rounds == 0 {
			t.Fatalf("%v: run never paused (quantum too large for test window?)", mech)
		}
		if !bytes.Equal(cold, rowJSON(t, r)) {
			t.Fatalf("%v: resumed run differs from uninterrupted run after %d pauses", mech, rounds)
		}
	}
}

// TestEnginePreemptionRoundTrip exercises the engine-level contract:
// pause a sweep mid-flight, collect Paused results (with and without
// snapshots), re-run with the snapshots, and require the merged rows to
// equal an unpreempted sweep.
func TestEnginePreemptionRoundTrip(t *testing.T) {
	jobs := []Job{quickJob(config.GFLOV, 0.02, 0.5), quickJob(config.RP, 0.02, 0.5)}
	for i := range jobs {
		jobs[i].Config.TotalCycles = 20_000
	}
	want := (&Engine{Workers: 1}).Run(context.Background(), jobs)

	// Round 1: preempt after the third Pause poll. With one worker, job 0
	// makes a couple of quanta of progress and checkpoints; job 1 is
	// yielded before starting (nil snapshot).
	var polls atomic.Int64
	eng := &Engine{Workers: 1, Pause: func() bool { return polls.Add(1) >= 3 }}
	round1 := eng.Run(context.Background(), jobs)

	if !round1[0].Paused || len(round1[0].Snapshot) == 0 {
		t.Fatalf("job 0 should have paused with a snapshot (paused=%v)", round1[0].Paused)
	}
	if !round1[1].Paused || round1[1].Snapshot != nil {
		t.Fatalf("job 1 should have been yielded unstarted (paused=%v, snap=%d bytes)",
			round1[1].Paused, len(round1[1].Snapshot))
	}

	// Round 2: resume with the snapshots, no pause pressure.
	snaps := make([][]byte, len(jobs))
	for i, r := range round1 {
		snaps[i] = r.Snapshot
	}
	round2 := (&Engine{Workers: 1, Snapshots: snaps}).Run(context.Background(), jobs)
	for i := range jobs {
		if round2[i].Paused || round2[i].Err != "" {
			t.Fatalf("job %d did not finish on resume: paused=%v err=%q",
				i, round2[i].Paused, round2[i].Err)
		}
		if !bytes.Equal(rowJSON(t, want[i]), rowJSON(t, round2[i])) {
			t.Fatalf("job %d: resumed row differs from unpreempted row", i)
		}
	}
}

// TestEngineNeverCachesPausedResults: a paused row is half a simulation;
// caching it would poison later sweeps.
func TestEngineNeverCachesPausedResults(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.GFLOV, 0.02, 0.5)
	j.Config.TotalCycles = 20_000
	var polls atomic.Int64
	eng := &Engine{Workers: 1, Cache: cache, Pause: func() bool { return polls.Add(1) >= 2 }}
	results := eng.Run(context.Background(), []Job{j})
	if !results[0].Paused {
		t.Fatal("job should have paused")
	}
	if _, ok := cache.Get(j); ok {
		t.Fatal("paused result was cached")
	}
}

// TestWarmStartBench measures the warm-start speedup on a sweep whose
// points share a long warmup, and records it as a benchmark artifact.
// Opt-in via FLOV_BENCH_SNAPSHOT=<output path> (CI sets it); the ≥2x
// bound is part of the subsystem's acceptance criteria.
func TestWarmStartBench(t *testing.T) {
	outPath := os.Getenv("FLOV_BENCH_SNAPSHOT")
	if outPath == "" {
		t.Skip("set FLOV_BENCH_SNAPSHOT=<path> to run the warm-start benchmark")
	}
	const (
		warmup = 60_000
		window = 2_000
		points = 5
	)
	jobs := make([]Job, points)
	for i := range jobs {
		j := quickJob(config.GFLOV, 0.02, 0.5)
		j.Config.WarmupCycles = warmup
		// Distinct measurement windows, one shared warmup prefix.
		j.Config.TotalCycles = warmup + int64(window*(i+1))
		jobs[i] = j
	}

	coldStart := time.Now()
	cold := make([]Result, points)
	for i, j := range jobs {
		cold[i] = j.Run()
		if cold[i].Err != "" {
			t.Fatalf("cold point %d: %s", i, cold[i].Err)
		}
	}
	coldWall := time.Since(coldStart)

	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmStart := time.Now()
	warm := make([]Result, points)
	for i, j := range jobs {
		warm[i] = j.RunWarm(cache)
		if warm[i].Err != "" {
			t.Fatalf("warm point %d: %s", i, warm[i].Err)
		}
	}
	warmWall := time.Since(warmStart)

	for i := range jobs {
		if !bytes.Equal(rowJSON(t, cold[i]), rowJSON(t, warm[i])) {
			t.Fatalf("point %d: warm row differs from cold row", i)
		}
	}

	speedup := float64(coldWall) / float64(warmWall)
	report, err := json.MarshalIndent(map[string]any{
		"points":        points,
		"warmup_cycles": warmup,
		"window_cycles": window,
		"cold_ms":       coldWall.Milliseconds(),
		"warm_ms":       warmWall.Milliseconds(),
		"speedup":       speedup,
	}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil && filepath.Dir(outPath) != "." {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(report, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("warm-start bench: cold=%v warm=%v speedup=%.2fx", coldWall, warmWall, speedup)
	if speedup < 2 {
		t.Fatalf("warm-start speedup %.2fx below the 2x acceptance bound", speedup)
	}
}
