package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flov/internal/config"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.GFLOV, 0.02, 0.5)
	if _, ok := c.Get(j); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := j.Run()
	if want.Err != "" {
		t.Fatal(want.Err)
	}
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(j)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got.Res, want.Res) {
		t.Fatal("cached results differ from the original run")
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("cleared cache reported a hit")
	}
}

func TestCacheCorruptEntryMisses(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.Baseline, 0.02, 0)
	r := j.Run()
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), j.Hash()[:2], j.Hash()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not removed")
	}
}

// TestCacheTruncatedEntryRecovers is the failure mode a crashed writer
// or full disk leaves behind: a truncated entry must act as a miss, the
// engine must recompute the point (no error-carrying Result surfaces),
// and the slot must be rewritten so the next run hits again.
func TestCacheTruncatedEntryRecovers(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.RFLOV, 0.02, 0.5)
	e := &Engine{Workers: 1, Cache: c}
	cold := e.Run(context.Background(), []Job{j})
	if cold[0].Err != "" {
		t.Fatal(cold[0].Err)
	}

	// Truncate the entry mid-file: still bytes on disk, no longer JSON.
	path := filepath.Join(c.Dir(), j.Hash()[:2], j.Hash()+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	warm := e.Run(context.Background(), []Job{j})
	if warm[0].Err != "" {
		t.Fatalf("truncated entry surfaced an error-carrying result: %s", warm[0].Err)
	}
	if warm[0].CacheHit {
		t.Fatal("truncated entry was served as a cache hit")
	}
	if !reflect.DeepEqual(stripTransient(cold), stripTransient(warm)) {
		t.Fatal("recomputed rows differ from the original run")
	}

	// The recompute must have rewritten the slot: third run hits.
	third := e.Run(context.Background(), []Job{j})
	if !third[0].CacheHit {
		t.Fatal("recovered entry was not rewritten to the cache")
	}
}

// TestCacheMangledBodyMisses: an entry that parses and carries the right
// key but whose job body no longer hashes to that key (bit rot, foreign
// writer) must miss rather than serve another point's rows.
func TestCacheMangledBodyMisses(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.Baseline, 0.02, 0)
	r := j.Run()
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), j.Hash()[:2], j.Hash()+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the embedded job's seed: still valid JSON, wrong content.
	mangled := strings.Replace(string(data), `"Seed": 7`, `"Seed": 8`, 1)
	if mangled == string(data) {
		t.Fatal("test setup: seed field not found in entry")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("mangled entry served as a hit")
	}
}

// TestCacheNeverServesCachedErrors: an error-carrying entry on disk
// (corruption or a foreign writer; the engine never caches failures)
// misses so the point recomputes.
func TestCacheNeverServesCachedErrors(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.Baseline, 0.02, 0)
	r := j.Run()
	r.Err = "injected failure"
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("error-carrying entry served as a hit")
	}
}

// TestEngineCacheSecondRunAllHits is the headline cache property: an
// unchanged sweep re-run is served entirely from disk with identical
// rows.
func TestEngineCacheSecondRunAllHits(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := testGrid()

	cold := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	for _, r := range cold {
		if r.CacheHit {
			t.Fatal("cold run reported a cache hit")
		}
		if r.Err != "" {
			t.Fatal(r.Err)
		}
	}

	warm := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	for i, r := range warm {
		if !r.CacheHit {
			t.Fatalf("warm run missed the cache at job %d", i)
		}
	}
	if !reflect.DeepEqual(stripTransient(cold), stripTransient(warm)) {
		t.Fatal("cached rows differ from simulated rows")
	}

	// A changed point misses cleanly; unchanged siblings still hit.
	jobs[0].Config.Seed++
	mixed := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	if mixed[0].CacheHit {
		t.Fatal("changed job was served from the cache")
	}
	if !mixed[1].CacheHit {
		t.Fatal("unchanged job was re-simulated")
	}
}

// TestEngineDoesNotCacheErrors: failed points re-run on the next sweep.
func TestEngineDoesNotCacheErrors(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.GFLOV, 0.02, 0.5)
	j.Config.Width = 0 // invalid
	e := &Engine{Workers: 1, Cache: c}
	first := e.Run(context.Background(), []Job{j})
	if first[0].Err == "" {
		t.Fatal("invalid job did not fail")
	}
	second := e.Run(context.Background(), []Job{j})
	if second[0].CacheHit {
		t.Fatal("error result was cached")
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("FLOV_SWEEP_CACHE", "/tmp/custom-flov-cache")
	d, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if d != "/tmp/custom-flov-cache" {
		t.Fatalf("DefaultDir = %q", d)
	}
}
