package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flov/internal/config"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.GFLOV, 0.02, 0.5)
	if _, ok := c.Get(j); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := j.Run()
	if want.Err != "" {
		t.Fatal(want.Err)
	}
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(j)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got.Res, want.Res) {
		t.Fatal("cached results differ from the original run")
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("cleared cache reported a hit")
	}
}

func TestCacheCorruptEntryMisses(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.Baseline, 0.02, 0)
	r := j.Run()
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), j.Hash()[:2], j.Hash()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not removed")
	}
}

// TestEngineCacheSecondRunAllHits is the headline cache property: an
// unchanged sweep re-run is served entirely from disk with identical
// rows.
func TestEngineCacheSecondRunAllHits(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := testGrid()

	cold := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	for _, r := range cold {
		if r.CacheHit {
			t.Fatal("cold run reported a cache hit")
		}
		if r.Err != "" {
			t.Fatal(r.Err)
		}
	}

	warm := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	for i, r := range warm {
		if !r.CacheHit {
			t.Fatalf("warm run missed the cache at job %d", i)
		}
	}
	if !reflect.DeepEqual(stripTransient(cold), stripTransient(warm)) {
		t.Fatal("cached rows differ from simulated rows")
	}

	// A changed point misses cleanly; unchanged siblings still hit.
	jobs[0].Config.Seed++
	mixed := (&Engine{Workers: 4, Cache: c}).Run(context.Background(), jobs)
	if mixed[0].CacheHit {
		t.Fatal("changed job was served from the cache")
	}
	if !mixed[1].CacheHit {
		t.Fatal("unchanged job was re-simulated")
	}
}

// TestEngineDoesNotCacheErrors: failed points re-run on the next sweep.
func TestEngineDoesNotCacheErrors(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := quickJob(config.GFLOV, 0.02, 0.5)
	j.Config.Width = 0 // invalid
	e := &Engine{Workers: 1, Cache: c}
	first := e.Run(context.Background(), []Job{j})
	if first[0].Err == "" {
		t.Fatal("invalid job did not fail")
	}
	second := e.Run(context.Background(), []Job{j})
	if second[0].CacheHit {
		t.Fatal("error result was cached")
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("FLOV_SWEEP_CACHE", "/tmp/custom-flov-cache")
	d, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if d != "/tmp/custom-flov-cache" {
		t.Fatalf("DefaultDir = %q", d)
	}
}
