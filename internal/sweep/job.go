// Package sweep is the parallel sweep engine: every figure of the paper
// is a grid of independent simulation points, and this package fans those
// points out across a worker pool with content-addressed result caching
// and per-job observability.
//
// The pieces compose:
//
//   - Job fully describes one simulation point (config, pattern, rate,
//     gated fraction, mechanism, seeds) and hashes canonically;
//   - Engine runs a job list across GOMAXPROCS goroutines with context
//     cancellation, panic isolation and deterministic result ordering;
//   - Cache memoizes finished Results on disk keyed by the job hash, so
//     re-running a figure only simulates changed points;
//   - Progress observers receive start/finish/cache-hit events.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"time"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/fault"
	"flov/internal/network"
	"flov/internal/rp"
	"flov/internal/snapshot"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// Kind selects the workload a Job describes.
type Kind int

// Job kinds.
const (
	// Synthetic is a BookSim-style open-loop run (RunSynthetic).
	Synthetic Kind = iota
	// PARSEC is a closed-loop full-system benchmark run (RunPARSEC).
	PARSEC
)

// String names the kind as used in job descriptions and JSON.
func (k Kind) String() string {
	switch k {
	case Synthetic:
		return "synthetic"
	case PARSEC:
		return "parsec"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// parseKind is the inverse of Kind.String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "synthetic":
		return Synthetic, nil
	case "parsec":
		return PARSEC, nil
	}
	return Synthetic, fmt.Errorf("sweep: unknown job kind %q", s)
}

// Job fully describes one simulation point. Two jobs with equal fields
// produce bit-identical Results (the simulator is deterministic), which
// is what makes the on-disk cache sound: the canonical Hash of a Job is
// the cache key.
//
// Schedules (time-varying gating masks) are intentionally not part of a
// Job — points that need one (Fig. 10, churn ablations) run outside the
// engine via flov.Build.
type Job struct {
	// Kind selects synthetic vs PARSEC; the zero value is Synthetic.
	Kind Kind

	// Config is the full testbed configuration for the point.
	Config config.Config

	// Synthetic workload point.
	Pattern  traffic.Pattern
	Rate     float64 // offered load (flits/cycle/node)
	Frac     float64 // fraction of cores power-gated
	MaskSeed uint64  // seed for the random gated-set draw
	Protect  []int   // node ids never gated
	Hotspots []int   // hotspot destinations (Hotspot pattern only)

	// Mechanism under test (both kinds).
	Mechanism config.Mechanism

	// Faults optionally attaches the fault-injection subsystem to a
	// synthetic run (reliability harness points). PARSEC jobs reject it.
	Faults *fault.Spec

	// PARSEC workload point.
	Profile   trace.Profile // benchmark profile (zero Name when synthetic)
	Seed      uint64        // driver seed for the closed-loop workload
	MaxCycles int64         // run bound for the closed-loop driver
}

// jobJSON is the wire form of a Job: enum fields are spelled out as the
// names the CLIs accept, so specs and cached results stay readable and
// stable across enum renumbering.
type jobJSON struct {
	Kind      string        `json:"kind"`
	Config    config.Config `json:"config"`
	Pattern   string        `json:"pattern,omitempty"`
	Rate      float64       `json:"rate,omitempty"`
	Frac      float64       `json:"gated_frac,omitempty"`
	MaskSeed  uint64        `json:"mask_seed,omitempty"`
	Protect   []int         `json:"protect,omitempty"`
	Hotspots  []int         `json:"hotspots,omitempty"`
	Mechanism string        `json:"mechanism"`
	Faults    *fault.Spec   `json:"faults,omitempty"`
	Profile   trace.Profile `json:"profile,omitempty"`
	Seed      uint64        `json:"seed,omitempty"`
	MaxCycles int64         `json:"max_cycles,omitempty"`
}

// MarshalJSON renders the job with symbolic kind/pattern/mechanism names.
func (j Job) MarshalJSON() ([]byte, error) {
	return json.Marshal(jobJSON{
		Kind:      j.Kind.String(),
		Config:    j.Config,
		Pattern:   j.Pattern.String(),
		Rate:      j.Rate,
		Frac:      j.Frac,
		MaskSeed:  j.MaskSeed,
		Protect:   j.Protect,
		Hotspots:  j.Hotspots,
		Mechanism: j.Mechanism.String(),
		Faults:    j.Faults,
		Profile:   j.Profile,
		Seed:      j.Seed,
		MaxCycles: j.MaxCycles,
	})
}

// UnmarshalJSON parses the symbolic wire form back into a Job.
func (j *Job) UnmarshalJSON(data []byte) error {
	var w jobJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	kind, err := parseKind(w.Kind)
	if err != nil {
		return err
	}
	mech, err := config.ParseMechanism(w.Mechanism)
	if err != nil {
		return err
	}
	pat := traffic.Uniform
	if w.Pattern != "" {
		if pat, err = traffic.ParsePattern(w.Pattern); err != nil {
			return err
		}
	}
	*j = Job{
		Kind:      kind,
		Config:    w.Config,
		Pattern:   pat,
		Rate:      w.Rate,
		Frac:      w.Frac,
		MaskSeed:  w.MaskSeed,
		Protect:   w.Protect,
		Hotspots:  w.Hotspots,
		Mechanism: mech,
		Faults:    w.Faults,
		Profile:   w.Profile,
		Seed:      w.Seed,
		MaxCycles: w.MaxCycles,
	}
	return nil
}

// SchemaVersion is folded into every job hash; bump it whenever the
// simulator's observable behaviour changes in a way the Config does not
// capture, to invalidate stale cached results wholesale.
const SchemaVersion = "flov-sweep-v1"

// snapSchemaVersion folds the checkpoint state schema into job hashes:
// warm-start blobs and cached rows derived from them are only sound for
// the snapshot layout this build writes, so a schema bump must miss
// every old cache entry. A variable (not the constant) so tests can
// simulate a bump.
var snapSchemaVersion = snapshot.SchemaVersion

// moduleVersion pins cache keys to the built module version so an
// upgraded binary never serves results simulated by an older one.
// Development builds report "(devel)"; the SchemaVersion constant is the
// knob that matters there.
var moduleVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}()

// Hash returns the canonical content hash of the job: SHA-256 over the
// schema version, module version and the canonical JSON encoding (field
// order is fixed by the wire struct, floats render shortest-form, so the
// encoding is deterministic).
func (j Job) Hash() string {
	enc, err := json.Marshal(j)
	if err != nil {
		// Job is plain data; Marshal cannot fail on it. Guard anyway so a
		// future field type mistake surfaces as distinct hashes, not
		// silent cache collisions.
		enc = []byte(fmt.Sprintf("unencodable:%#v", j))
	}
	h := sha256.New()
	// hash.Hash.Write is documented to never return an error.
	_, _ = fmt.Fprintf(h, "%s|%s|%s|", SchemaVersion, snapSchemaVersion, moduleVersion)
	_, _ = h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// Desc is a short human-readable point description for progress lines.
func (j Job) Desc() string {
	if j.Kind == PARSEC {
		return fmt.Sprintf("%s/%s seed=%d", j.Profile.Name, j.Mechanism, j.Seed)
	}
	return fmt.Sprintf("%s/%s rate=%.3f gated=%.0f%%",
		j.Pattern, j.Mechanism, j.Rate, j.Frac*100)
}

// Result is the outcome of one job: exactly one of Res (synthetic) or
// Out (PARSEC) is populated, unless Err is set. CacheHit and Wall
// describe this invocation, not the cached original, and are excluded
// from result-equality comparisons.
type Result struct {
	Job Job    `json:"job"`
	Err string `json:"err,omitempty"`

	// Res holds synthetic-run results (Kind == Synthetic).
	Res network.Results `json:"res"`
	// Out holds full-system outcomes (Kind == PARSEC).
	Out trace.Outcome `json:"out"`

	// CacheHit reports whether the result was served from the cache.
	CacheHit bool `json:"-"`
	// Wall is the wall-clock time this invocation spent on the job
	// (near zero for cache hits).
	Wall time.Duration `json:"-"`

	// Paused reports that a resumable run yielded to a preemption
	// request before finishing: Res/Out are unset and Snapshot holds the
	// checkpoint to resume from. Paused results are never cached.
	Paused bool `json:"-"`
	// Snapshot is the serialized mid-run checkpoint of a paused job.
	Snapshot []byte `json:"-"`
}

// SimCycles returns the number of simulated cycles the point covered,
// for throughput reporting.
func (r Result) SimCycles() int64 {
	if r.Job.Kind == PARSEC {
		return r.Out.RuntimeCyc
	}
	return r.Res.RunCycles
}

// NewMechanism instantiates the controller for a mechanism. This is the
// single factory shared by the public API, the experiments and the
// engine.
func NewMechanism(m config.Mechanism) (network.Mechanism, error) {
	switch m {
	case config.Baseline:
		return network.NewBaseline(), nil
	case config.RP:
		return rp.New(), nil
	case config.RFLOV:
		return core.NewRFLOV(), nil
	case config.GFLOV:
		return core.NewGFLOV(), nil
	}
	return nil, fmt.Errorf("sweep: unknown mechanism %v", m)
}

// Run executes the job synchronously in the calling goroutine and
// returns its result. Errors (bad config, incomplete benchmark) are
// reported in Result.Err; Run never panics on invalid input, but the
// simulator itself may — the Engine isolates that.
func (j Job) Run() Result {
	start := time.Now()
	r := Result{Job: j}
	switch j.Kind {
	case Synthetic:
		res, err := j.runSynthetic()
		if err != nil {
			r.Err = err.Error()
		}
		r.Res = res
	case PARSEC:
		out, err := j.runPARSEC()
		if err != nil {
			r.Err = err.Error()
		}
		r.Out = out
	default:
		r.Err = fmt.Sprintf("sweep: unknown job kind %v", j.Kind)
	}
	r.Wall = time.Since(start)
	return r
}

// runSynthetic mirrors flov.RunSynthetic: static mask drawn from
// MaskSeed, standard warmup/measure/drain run.
func (j Job) runSynthetic() (network.Results, error) {
	n, err := j.buildSynthetic()
	if err != nil {
		return network.Results{}, err
	}
	return n.Run(), nil
}

// runPARSEC mirrors flov.RunProfile: closed-loop driver over the job's
// profile, bounded by MaxCycles.
func (j Job) runPARSEC() (trace.Outcome, error) {
	if j.Faults != nil {
		return trace.Outcome{}, fmt.Errorf("sweep: fault injection is only supported for synthetic jobs")
	}
	mech, err := NewMechanism(j.Mechanism)
	if err != nil {
		return trace.Outcome{}, err
	}
	n, err := network.New(j.Config, mech, nil, nil, 0)
	if err != nil {
		return trace.Outcome{}, err
	}
	max := j.MaxCycles
	if max <= 0 {
		max = 20_000_000
	}
	out := trace.NewDriver(n, j.Profile, j.Seed).Run(max)
	if !out.Completed {
		return out, fmt.Errorf("sweep: benchmark %s/%v did not complete within %d cycles",
			j.Profile.Name, j.Mechanism, max)
	}
	return out, nil
}
