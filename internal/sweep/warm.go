package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/snapshot"
	"flov/internal/topology"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// resumeQuantum is the granularity of preemption checks: resumable runs
// advance this many cycles between Pause polls. A run always makes at
// least one quantum of progress per invocation, so even a Pause that is
// permanently true cannot livelock a sweep — every requeue cycle moves
// each job forward.
const resumeQuantum = 4096

// WarmKey is the cache key for the job's post-warmup snapshot. Jobs that
// differ only in measurement window (TotalCycles, DrainCycles) simulate
// an identical warmup phase, so the key is the hash of the job with
// those fields zeroed — they all share one warm blob. The snapshot
// schema and module versions are folded in for the same reason they are
// in Hash: a blob written by an incompatible build must miss.
func (j Job) WarmKey() string {
	j.Config.TotalCycles = 0
	j.Config.DrainCycles = 0
	enc, err := json.Marshal(j)
	if err != nil {
		enc = []byte(fmt.Sprintf("unencodable:%#v", j))
	}
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "warm|%s|%s|%s|", SchemaVersion, snapSchemaVersion, moduleVersion)
	_, _ = h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// buildSynthetic assembles (but does not run) the job's network; shared
// by the cold, warm and resumable paths so all three simulate the
// identical system.
func (j Job) buildSynthetic() (*network.Network, error) {
	mesh, err := topology.NewMesh(j.Config.Width, j.Config.Height)
	if err != nil {
		return nil, err
	}
	mask := gating.FractionGated(mesh, j.Frac, j.Protect, sim.NewRNG(j.MaskSeed))
	gen := traffic.NewGenerator(j.Pattern, mesh, j.Hotspots)
	mech, err := NewMechanism(j.Mechanism)
	if err != nil {
		return nil, err
	}
	n, err := network.New(j.Config, mech, gating.Static(mask), gen, j.Rate)
	if err != nil {
		return nil, err
	}
	if j.Faults != nil {
		if err := n.AttachFaults(*j.Faults); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// BuildSynthetic assembles (but does not run) the network for a
// synthetic job — the reliability harness uses it to replay a failing
// trial under external control (checkpoints, tracing).
func (j Job) BuildSynthetic() (*network.Network, error) {
	if j.Kind != Synthetic {
		return nil, fmt.Errorf("sweep: BuildSynthetic on %v job", j.Kind)
	}
	return j.buildSynthetic()
}

// RunWarm executes a synthetic job with warm-start forking: the first
// point for a given (topology, workload, warmup) prefix simulates its
// warmup once and stores the post-warmup snapshot in the cache; every
// later point restores that snapshot and simulates only its own
// measurement window. Restored results are byte-identical to cold runs —
// the donor path *is* the cold run, merely checkpointed mid-way.
//
// Jobs the optimization does not apply to (PARSEC, no warmup phase, nil
// cache) fall back to Run. A blob that fails to restore is deleted and
// the point re-simulates cold, re-publishing a fresh blob.
func (j Job) RunWarm(c *Cache) Result {
	if j.Kind != Synthetic || j.Config.WarmupCycles <= 0 || c == nil {
		return j.Run()
	}
	start := time.Now()
	r := Result{Job: j}
	key := j.WarmKey()

	if blob, ok := c.GetBlob(key); ok {
		n, err := j.buildSynthetic()
		if err != nil {
			r.Err = err.Error()
			r.Wall = time.Since(start)
			return r
		}
		if err := snapshot.RestoreWarm(bytes.NewReader(blob), n); err == nil {
			r.Res = n.Run()
			r.Wall = time.Since(start)
			return r
		}
		// Corrupt or incompatible blob: heal the slot and run cold below.
		c.RemoveBlob(key)
	}

	n, err := j.buildSynthetic()
	if err != nil {
		r.Err = err.Error()
		r.Wall = time.Since(start)
		return r
	}
	n.RunTo(j.Config.WarmupCycles)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, n, nil); err == nil {
		// Blob publication is best-effort, like result-cache fills.
		_ = c.PutBlob(key, buf.Bytes())
	}
	r.Res = n.Run()
	r.Wall = time.Since(start)
	return r
}

// RunResumable executes the job preemptibly: restore from snap when
// non-nil, then advance in resumeQuantum-cycle slices, polling pause
// between slices. When pause reports true the live state is checkpointed
// and returned in a Paused result; re-running the same job with that
// snapshot continues exactly where it left off, producing the same final
// result as an uninterrupted run. A nil pause never preempts.
func (j Job) RunResumable(snap []byte, pause func() bool) Result {
	start := time.Now()
	r := Result{Job: j}
	switch j.Kind {
	case Synthetic:
		r = j.runSyntheticResumable(snap, pause)
	case PARSEC:
		r = j.runPARSECResumable(snap, pause)
	default:
		r.Err = fmt.Sprintf("sweep: unknown job kind %v", j.Kind)
	}
	r.Wall = time.Since(start)
	return r
}

func (j Job) runSyntheticResumable(snap []byte, pause func() bool) Result {
	r := Result{Job: j}
	n, err := j.buildSynthetic()
	if err != nil {
		r.Err = err.Error()
		return r
	}
	if snap != nil {
		if err := snapshot.Restore(bytes.NewReader(snap), n, nil); err != nil {
			r.Err = fmt.Sprintf("sweep: resuming from checkpoint: %v", err)
			return r
		}
	}
	for n.Now() < j.Config.TotalCycles {
		next := n.Now() + resumeQuantum
		if next > j.Config.TotalCycles {
			next = j.Config.TotalCycles
		}
		n.RunTo(next)
		if n.Now() >= j.Config.TotalCycles {
			break
		}
		if pause != nil && pause() {
			var buf bytes.Buffer
			if err := snapshot.Save(&buf, n, nil); err != nil {
				r.Err = fmt.Sprintf("sweep: checkpointing for preemption: %v", err)
				return r
			}
			r.Paused, r.Snapshot = true, buf.Bytes()
			return r
		}
	}
	// The drain phase is short and bounded; it runs to completion even
	// under a pending preemption request.
	r.Res = n.Run()
	return r
}

func (j Job) runPARSECResumable(snap []byte, pause func() bool) Result {
	r := Result{Job: j}
	mech, err := NewMechanism(j.Mechanism)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	n, err := network.New(j.Config, mech, nil, nil, 0)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	d := trace.NewDriver(n, j.Profile, j.Seed)
	if snap != nil {
		if err := snapshot.Restore(bytes.NewReader(snap), n, d); err != nil {
			r.Err = fmt.Sprintf("sweep: resuming from checkpoint: %v", err)
			return r
		}
	}
	max := j.MaxCycles
	if max <= 0 {
		max = 20_000_000
	}
	for !d.Finished() && n.Now() < max {
		next := n.Now() + resumeQuantum
		if next > max {
			next = max
		}
		d.RunUntil(next)
		if d.Finished() || n.Now() >= max {
			break
		}
		if pause != nil && pause() {
			var buf bytes.Buffer
			if err := snapshot.Save(&buf, n, d); err != nil {
				r.Err = fmt.Sprintf("sweep: checkpointing for preemption: %v", err)
				return r
			}
			r.Paused, r.Snapshot = true, buf.Bytes()
			return r
		}
	}
	out := d.Outcome()
	r.Out = out
	if !out.Completed {
		r.Err = fmt.Sprintf("sweep: benchmark %s/%v did not complete within %d cycles",
			j.Profile.Name, j.Mechanism, max)
	}
	return r
}
