package sweep

import (
	"strings"
	"testing"
	"time"

	"flov/internal/config"
)

func TestReporterLines(t *testing.T) {
	var b strings.Builder
	r := NewReporter(&b)
	j := quickJob(config.GFLOV, 0.02, 0.5)
	r.Event(Event{Type: JobStart, Index: 0, Total: 3, Job: j})
	r.Event(Event{Type: JobDone, Index: 0, Total: 3, Job: j, Wall: time.Second, SimCycles: 4000})
	r.Event(Event{Type: JobCacheHit, Index: 1, Total: 3, Job: j})
	r.Event(Event{Type: JobError, Index: 2, Total: 3, Job: j, Err: "boom\nstack"})
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines (start is silent), got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "[1/3]") || !strings.Contains(lines[0], "Mcyc/s") {
		t.Errorf("bad done line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "cached") {
		t.Errorf("bad cache line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "ERROR: boom") || strings.Contains(lines[2], "stack") {
		t.Errorf("bad error line: %q", lines[2])
	}
}
