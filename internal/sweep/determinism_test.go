package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/traffic"
)

// determinismChildEnv names the env var that flips
// TestDeterminismAcrossProcesses into its child role: when set, the test
// writes its result rows to the named file and exits instead of spawning
// another process.
const determinismChildEnv = "FLOV_DETERMINISM_OUT"

// determinismJobs is the fixed workload the determinism tests replay:
// one small synthetic point per mechanism, all from the same seeds.
func determinismJobs() []Job {
	cfg := config.Default()
	cfg.TotalCycles = 3000
	cfg.WarmupCycles = 300
	var jobs []Job
	for _, m := range []config.Mechanism{config.Baseline, config.RP, config.RFLOV, config.GFLOV} {
		jobs = append(jobs, Job{
			Config:    cfg,
			Pattern:   traffic.Uniform,
			Rate:      0.05,
			Frac:      0.5,
			MaskSeed:  11,
			Mechanism: m,
		})
	}
	// One fault-injection point: the fault schedule (rate-driven draws
	// from the dedicated stream plus explicit permanent and transient
	// events) is part of the byte-identity contract too.
	jobs = append(jobs, Job{
		Config:    cfg,
		Pattern:   traffic.Uniform,
		Rate:      0.05,
		Frac:      0.5,
		MaskSeed:  11,
		Mechanism: config.GFLOV,
		Faults: &fault.Spec{
			Seed:            17,
			LinkRate:        2e-4,
			TransientCycles: 60,
			Schedule: []fault.Event{
				{At: 500, Kind: "router", Node: 5},
				{At: 900, Kind: "link", Node: 9, Dir: "E", Transient: 300},
			},
			DropTimeout: 300,
		},
	})
	return jobs
}

// determinismRows runs the fixed workload and renders every result as
// one canonical JSON row. Wall/CacheHit are excluded from the JSON form,
// so the bytes depend only on what the simulator computed.
func determinismRows(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, j := range determinismJobs() {
		r := j.Run()
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", j.Desc(), r.Err)
		}
		row, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal row: %v", err)
		}
		buf.Write(row)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestDeterminismInProcess pins the property flovlint protects: the same
// seeded simulation run twice in one process yields byte-identical rows.
func TestDeterminismInProcess(t *testing.T) {
	first := determinismRows(t)
	second := determinismRows(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seeds, different rows across in-process runs:\nfirst:\n%ssecond:\n%s", first, second)
	}
}

// TestDeterminismAcrossProcesses re-runs the same workload in a fresh
// `go test -count=1` child process and asserts its rows are byte-identical
// to this process's. A fresh process gets fresh map-iteration seeds and
// fresh ASLR, so any ordering leak the in-process test misses shows up
// here.
func TestDeterminismAcrossProcesses(t *testing.T) {
	if out := os.Getenv(determinismChildEnv); out != "" {
		// Child role: emit rows for the parent and stop.
		if err := os.WriteFile(out, determinismRows(t), 0o644); err != nil {
			t.Fatalf("write child rows: %v", err)
		}
		return
	}
	if testing.Short() {
		t.Skip("skipping child go test invocation in -short mode")
	}

	parent := determinismRows(t)

	outFile := filepath.Join(t.TempDir(), "rows.json")
	cmd := exec.Command("go", "test", "-count=1", "-run", "^TestDeterminismAcrossProcesses$", ".")
	cmd.Env = append(os.Environ(), determinismChildEnv+"="+outFile)
	if combined, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child go test: %v\n%s", err, combined)
	}
	child, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("read child rows: %v", err)
	}
	if !bytes.Equal(parent, child) {
		t.Fatalf("same seeds, different rows across processes:\nparent:\n%schild:\n%s", parent, child)
	}
}
