package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"flov/internal/config"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// quickJob returns a small, fast synthetic point for engine tests.
func quickJob(mech config.Mechanism, rate, frac float64) Job {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles, cfg.TotalCycles = 500, 4_000
	cfg.Seed = 7
	cfg.Mechanism = mech
	return Job{
		Kind:      Synthetic,
		Config:    cfg,
		Pattern:   traffic.Uniform,
		Rate:      rate,
		Frac:      frac,
		Mechanism: mech,
		MaskSeed:  99,
	}
}

func TestJobHashDeterministic(t *testing.T) {
	a := quickJob(config.GFLOV, 0.02, 0.5)
	b := quickJob(config.GFLOV, 0.02, 0.5)
	if a.Hash() != b.Hash() {
		t.Fatalf("equal jobs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash is not hex sha256: %q", a.Hash())
	}
}

func TestJobHashSensitivity(t *testing.T) {
	base := quickJob(config.GFLOV, 0.02, 0.5)
	mutations := map[string]Job{}

	j := base
	j.Rate = 0.03
	mutations["rate"] = j

	j = base
	j.Frac = 0.6
	mutations["frac"] = j

	j = base
	j.Mechanism = config.RP
	mutations["mechanism"] = j

	j = base
	j.MaskSeed++
	mutations["mask seed"] = j

	j = base
	j.Config.Seed++
	mutations["config seed"] = j

	j = base
	j.Config.WakeupLatency = 40
	mutations["config knob"] = j

	j = base
	j.Pattern = traffic.Tornado
	mutations["pattern"] = j

	j = base
	j.Protect = []int{0}
	mutations["protect"] = j

	for name, m := range mutations {
		if m.Hash() == base.Hash() {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestJobJSONRoundTrip(t *testing.T) {
	prof, _ := trace.ProfileByName("canneal")
	jobs := []Job{
		quickJob(config.RFLOV, 0.08, 0.3),
		{
			Kind:      PARSEC,
			Config:    config.FullSystem(),
			Mechanism: config.RP,
			Profile:   prof,
			Seed:      11,
			MaxCycles: 123,
		},
	}
	for _, j := range jobs {
		data, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		var back Job
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Hash() != j.Hash() {
			t.Errorf("round trip changed the job:\n  in:  %+v\n  out: %+v", j, back)
		}
	}
}

func TestJobJSONSymbolicNames(t *testing.T) {
	data, err := json.Marshal(quickJob(config.GFLOV, 0.02, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"synthetic"`, `"pattern":"uniform"`, `"mechanism":"gFLOV"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("job JSON missing %s:\n%s", want, data)
		}
	}
}

func TestJobRunReportsErrors(t *testing.T) {
	j := quickJob(config.GFLOV, 0.02, 0.5)
	j.Config.Width = 0 // invalid mesh
	r := j.Run()
	if r.Err == "" {
		t.Fatal("invalid config produced no error")
	}
	if r.CacheHit {
		t.Fatal("fresh run marked as cache hit")
	}
}

func TestSpecExpansion(t *testing.T) {
	s := Spec{
		Patterns:   []string{"uniform", "tornado"},
		Rates:      []float64{0.02, 0.08},
		GatedFracs: []float64{0, 0.5},
		Mechanisms: []string{"baseline", "gflov"},
		Width:      4, Height: 4,
		Cycles: 4000, Warmup: 500,
		Seed: 3,
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2*2 {
		t.Fatalf("expected 16 jobs, got %d", len(jobs))
	}
	// Deterministic order: pattern x rate x frac x mechanism.
	if jobs[0].Pattern != traffic.Uniform || jobs[0].Mechanism != config.Baseline {
		t.Errorf("unexpected first job: %s", jobs[0].Desc())
	}
	if jobs[1].Mechanism != config.GFLOV {
		t.Errorf("mechanism should vary fastest, got %s", jobs[1].Desc())
	}
	last := jobs[len(jobs)-1]
	if last.Pattern != traffic.Tornado || last.Frac != 0.5 {
		t.Errorf("unexpected last job: %s", last.Desc())
	}
	for _, j := range jobs {
		if j.Config.Width != 4 || j.Config.TotalCycles != 4000 || j.Config.Seed != 3 {
			t.Fatalf("overrides not applied: %+v", j.Config)
		}
	}
}

func TestSpecPARSEC(t *testing.T) {
	s := Spec{Benchmarks: []string{"all"}, Mechanisms: []string{"gflov"}}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(trace.Profiles()) {
		t.Fatalf("expected %d jobs, got %d", len(trace.Profiles()), len(jobs))
	}
	for _, j := range jobs {
		if j.Kind != PARSEC || j.Profile.Name == "" {
			t.Fatalf("bad PARSEC job: %+v", j)
		}
	}
	if _, err := (Spec{Benchmarks: []string{"nope"}}).Jobs(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := (Spec{Mechanisms: []string{"nope"}}).Jobs(); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, err := (Spec{Patterns: []string{"nope"}}).Jobs(); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
