package sweep

import (
	"encoding/json"
	"fmt"
	"os"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/sim"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// Spec is a declarative sweep description: the cross product of its
// lists, in deterministic pattern × rate × fraction × mechanism order
// (benchmark × mechanism for PARSEC specs). It is the JSON schema
// cmd/flovsweep accepts and what the CLI flags are folded into.
type Spec struct {
	// Synthetic grid. Ignored when Benchmarks is non-empty.
	Patterns   []string  `json:"patterns,omitempty"`
	Rates      []float64 `json:"rates,omitempty"`
	GatedFracs []float64 `json:"gated_fractions,omitempty"`

	// Mechanisms under test; empty means all four.
	Mechanisms []string `json:"mechanisms,omitempty"`

	// Benchmarks switches the spec to the PARSEC closed-loop workloads;
	// the single entry "all" expands to every profile.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Testbed overrides (zero values take Table I defaults).
	Width  int   `json:"width,omitempty"`
	Height int   `json:"height,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`

	// Seed drives both the simulator RNG and the gated-set draw, exactly
	// like flovsim's -seed, so a sweep point and the equivalent single
	// run share one cache identity.
	Seed uint64 `json:"seed,omitempty"`

	// Faults optionally attaches one fault-injection scenario to every
	// synthetic point (fault-scenario jobs submitted through flovd);
	// PARSEC specs reject it.
	Faults *fault.Spec `json:"faults,omitempty"`

	// MaxCycles bounds PARSEC runs (0 = default bound).
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// LoadSpec reads a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("sweep: parse spec %s: %w", path, err)
	}
	return s, nil
}

// Jobs expands the spec into its job list.
func (s Spec) Jobs() ([]Job, error) {
	mechs, err := s.mechanisms()
	if err != nil {
		return nil, err
	}
	if len(s.Benchmarks) > 0 {
		if s.Faults != nil {
			return nil, fmt.Errorf("sweep: fault injection is only supported for synthetic specs")
		}
		return s.parsecJobs(mechs)
	}
	return s.syntheticJobs(mechs)
}

func (s Spec) mechanisms() ([]config.Mechanism, error) {
	if len(s.Mechanisms) == 0 || (len(s.Mechanisms) == 1 && s.Mechanisms[0] == "all") {
		return config.Mechanisms(), nil
	}
	var mechs []config.Mechanism
	for _, name := range s.Mechanisms {
		m, err := config.ParseMechanism(name)
		if err != nil {
			return nil, err
		}
		mechs = append(mechs, m)
	}
	return mechs, nil
}

// baseConfig applies the spec's testbed overrides to a Table I config.
func (s Spec) baseConfig(cfg config.Config) config.Config {
	if s.Width > 0 {
		cfg.Width = s.Width
	}
	if s.Height > 0 {
		cfg.Height = s.Height
	}
	if s.Cycles > 0 {
		cfg.TotalCycles = s.Cycles
	}
	if s.Warmup > 0 {
		cfg.WarmupCycles = s.Warmup
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg
}

func (s Spec) syntheticJobs(mechs []config.Mechanism) ([]Job, error) {
	patterns := s.Patterns
	if len(patterns) == 0 {
		patterns = []string{"uniform"}
	}
	rates := s.Rates
	if len(rates) == 0 {
		rates = []float64{0.02}
	}
	fracs := s.GatedFracs
	if len(fracs) == 0 {
		fracs = []float64{0.5}
	}
	var jobs []Job
	for _, pname := range patterns {
		pat, err := traffic.ParsePattern(pname)
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			for _, frac := range fracs {
				for _, m := range mechs {
					cfg := s.baseConfig(config.Default())
					cfg.Mechanism = m
					jobs = append(jobs, Job{
						Kind:      Synthetic,
						Config:    cfg,
						Pattern:   pat,
						Rate:      rate,
						Frac:      frac,
						Mechanism: m,
						// Same derivation as flov.Build, so flovsim and
						// flovsweep agree on a point's identity.
						MaskSeed: sim.MaskSeed(cfg.Seed),
						Faults:   s.Faults,
					})
				}
			}
		}
	}
	return jobs, nil
}

func (s Spec) parsecJobs(mechs []config.Mechanism) ([]Job, error) {
	benches := s.Benchmarks
	if len(benches) == 1 && benches[0] == "all" {
		benches = nil
		for _, p := range trace.Profiles() {
			benches = append(benches, p.Name)
		}
	}
	var jobs []Job
	for _, name := range benches {
		prof, ok := trace.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown benchmark %q", name)
		}
		for _, m := range mechs {
			cfg := s.baseConfig(config.FullSystem())
			cfg.WarmupCycles = 0
			cfg.TotalCycles = 1 << 40
			cfg.Mechanism = m
			jobs = append(jobs, Job{
				Kind:      PARSEC,
				Config:    cfg,
				Mechanism: m,
				Profile:   prof,
				Seed:      cfg.Seed,
				MaxCycles: s.MaxCycles,
			})
		}
	}
	return jobs, nil
}
