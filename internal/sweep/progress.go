package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType classifies a progress event.
type EventType int

// Progress event types.
const (
	// JobStart fires when a worker picks a job up (before cache lookup).
	JobStart EventType = iota
	// JobDone fires when a job simulated to completion.
	JobDone
	// JobCacheHit fires when a job was served from the result cache.
	JobCacheHit
	// JobError fires when a job failed (simulator error or panic).
	JobError
	// CacheWriteError fires when a finished result could not be cached;
	// the sweep continues.
	CacheWriteError
	// JobPaused fires when a resumable job checkpointed and yielded to a
	// preemption request instead of finishing; the caller holds its
	// snapshot and will re-run it later.
	JobPaused
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case JobStart:
		return "start"
	case JobDone:
		return "done"
	case JobCacheHit:
		return "cached"
	case JobError:
		return "error"
	case CacheWriteError:
		return "cache-write-error"
	case JobPaused:
		return "paused"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one job-lifecycle notification.
type Event struct {
	Type  EventType
	Index int // job position in the sweep (result order)
	Total int // sweep size
	Job   Job
	// Wall is the job's execution time (JobDone/JobError) or the
	// original simulation time of the cached entry (JobCacheHit).
	Wall time.Duration
	// SimCycles is the number of cycles the point simulated.
	SimCycles int64
	// Err carries the failure message for JobError/CacheWriteError.
	Err string
	// Result is the finished row for JobDone/JobCacheHit/JobError
	// events (nil for JobStart/CacheWriteError). Observers that stream
	// rows as they complete read it; the terminal Reporter ignores it.
	Result *Result
}

// Progress observes sweep execution. Implementations are called
// concurrently from worker goroutines.
type Progress interface {
	Event(Event)
}

// Reporter is a terminal Progress implementation: one line per finished
// job with wall time and simulated-cycle throughput, plus running
// done/total and cache-hit counts. Safe for concurrent use.
type Reporter struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	done   int
	hits   int
	errs   int
	cycles int64
}

// NewReporter returns a Reporter writing to w.
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, start: time.Now()}
}

// Event implements Progress.
func (r *Reporter) Event(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Type {
	case JobStart:
		return // line per completion keeps output bounded
	case CacheWriteError:
		// Progress lines are best effort; a broken ticker pipe must not
		// kill the sweep that is feeding it.
		_, _ = fmt.Fprintf(r.w, "sweep: cache write failed for %s: %s\n", e.Job.Desc(), e.Err)
		return
	case JobPaused:
		// A paused job is not done — it re-runs from its checkpoint — so
		// it must not advance the done counter.
		_, _ = fmt.Fprintf(r.w, "sweep: %s paused at cycle boundary (will resume)\n", e.Job.Desc())
		return
	case JobCacheHit:
		r.hits++
	case JobError:
		r.errs++
	case JobDone:
		// Counts only toward the completion line below.
	}
	r.done++
	r.cycles += e.SimCycles

	elapsed := time.Since(r.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(r.cycles) / 1e6 / elapsed
	}
	switch e.Type {
	case JobError:
		_, _ = fmt.Fprintf(r.w, "[%*d/%d] %-40s ERROR: %s\n",
			width(e.Total), r.done, e.Total, e.Job.Desc(), firstLine(e.Err))
	case JobCacheHit:
		_, _ = fmt.Fprintf(r.w, "[%*d/%d] %-40s cached\n",
			width(e.Total), r.done, e.Total, e.Job.Desc())
	default:
		_, _ = fmt.Fprintf(r.w, "[%*d/%d] %-40s %6.2fs  %7.1f Mcyc/s\n",
			width(e.Total), r.done, e.Total, e.Job.Desc(),
			e.Wall.Seconds(), rate)
	}
}

// width returns the print width of total, to keep columns aligned.
func width(total int) int { return len(fmt.Sprint(total)) }

// firstLine truncates multi-line errors (panic stacks) for the ticker.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
