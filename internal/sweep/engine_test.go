package sweep

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"flov/internal/config"
)

// testGrid is a small mixed grid exercising all four mechanisms.
func testGrid() []Job {
	var jobs []Job
	for _, m := range config.Mechanisms() {
		for _, frac := range []float64{0, 0.5} {
			jobs = append(jobs, quickJob(m, 0.02, frac))
		}
	}
	return jobs
}

// stripTransient zeroes the per-invocation fields so results compare by
// simulation content only.
func stripTransient(results []Result) []Result {
	out := make([]Result, len(results))
	for i, r := range results {
		r.Wall = 0
		r.CacheHit = false
		out[i] = r
	}
	return out
}

// TestParallelMatchesSequential is the engine's core guarantee: the same
// job list produces identical rows, in identical order, at any worker
// count.
func TestParallelMatchesSequential(t *testing.T) {
	jobs := testGrid()
	seq := (&Engine{Workers: 1}).Run(context.Background(), jobs)
	par := (&Engine{Workers: 8}).Run(context.Background(), jobs)
	if !reflect.DeepEqual(stripTransient(seq), stripTransient(par)) {
		t.Fatal("parallel results differ from sequential results")
	}
	for i, r := range par {
		if r.Job.Hash() != jobs[i].Hash() {
			t.Fatalf("result %d is out of order", i)
		}
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
	}
}

// TestEngineResultOrdering uses a fake runner with inverted timing (first
// job slowest) to force out-of-order completion.
func TestEngineResultOrdering(t *testing.T) {
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = quickJob(config.Baseline, 0.02, 0)
		jobs[i].MaskSeed = uint64(i) // distinguish jobs
	}
	e := &Engine{
		Workers: 8,
		RunJob: func(j Job) Result {
			time.Sleep(time.Duration(16-j.MaskSeed) * time.Millisecond)
			return Result{Job: j}
		},
	}
	results := e.Run(context.Background(), jobs)
	for i, r := range results {
		if r.Job.MaskSeed != uint64(i) {
			t.Fatalf("result %d carries job %d", i, r.Job.MaskSeed)
		}
	}
}

// TestEnginePanicIsolation: a crashing job reports an error row; its
// siblings complete.
func TestEnginePanicIsolation(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = quickJob(config.Baseline, 0.02, 0)
		jobs[i].MaskSeed = uint64(i)
	}
	e := &Engine{
		Workers: 3,
		RunJob: func(j Job) Result {
			if j.MaskSeed == 2 {
				panic("boom")
			}
			return Result{Job: j}
		},
	}
	results := e.Run(context.Background(), jobs)
	for i, r := range results {
		if i == 2 {
			if !strings.Contains(r.Err, "panic: boom") {
				t.Fatalf("panicking job reported %q", r.Err)
			}
			continue
		}
		if r.Err != "" {
			t.Fatalf("sibling %d failed: %s", i, r.Err)
		}
	}
}

// TestEngineCancellation: cancelling the context marks unstarted jobs as
// canceled without hanging the pool.
func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = quickJob(config.Baseline, 0.02, 0)
		jobs[i].MaskSeed = uint64(i)
	}
	e := &Engine{
		Workers: 2,
		RunJob: func(j Job) Result {
			cancel()
			// Keep the workers busy so the feeder observes the cancel
			// before another worker frees up.
			time.Sleep(10 * time.Millisecond)
			return Result{Job: j}
		},
	}
	results := e.Run(ctx, jobs)
	ran, canceled := 0, 0
	for _, r := range results {
		if r.Err == context.Canceled.Error() {
			canceled++
		} else if r.Err == "" {
			ran++
		} else {
			t.Fatalf("unexpected error: %s", r.Err)
		}
	}
	if canceled == 0 {
		t.Fatal("no jobs were canceled")
	}
	if ran == 0 {
		t.Fatal("no jobs ran")
	}
	if ran+canceled != len(jobs) {
		t.Fatalf("ran %d + canceled %d != %d", ran, canceled, len(jobs))
	}
}

// TestEngineProgressEvents: every job emits start and exactly one
// completion event, with consistent totals.
func TestEngineProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventType]int{}
	obs := progressFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		counts[e.Type]++
		if e.Total != 8 {
			t.Errorf("event total = %d, want 8", e.Total)
		}
	})
	jobs := testGrid()
	e := &Engine{Workers: 4, Progress: obs, RunJob: func(j Job) Result { return Result{Job: j} }}
	e.Run(context.Background(), jobs)
	if counts[JobStart] != 8 || counts[JobDone] != 8 {
		t.Fatalf("unexpected event counts: %v", counts)
	}
}

// progressFunc adapts a function to the Progress interface.
type progressFunc func(Event)

func (f progressFunc) Event(e Event) { f(e) }

func TestSummarize(t *testing.T) {
	results := []Result{
		{CacheHit: true, Wall: time.Second},
		{Err: "x", Wall: time.Second},
		{Wall: 2 * time.Second},
	}
	s := Summarize(results, 3*time.Second)
	if s.Jobs != 3 || s.CacheHits != 1 || s.Errors != 1 || s.WorkWall != 4*time.Second || s.Wall != 3*time.Second {
		t.Fatalf("bad stats: %+v", s)
	}
	if !strings.Contains(s.String(), "3 jobs (1 cached, 1 failed)") {
		t.Fatalf("bad stats string: %s", s)
	}
}
